//! # htm-gil
//!
//! Facade crate for the HTM-GIL reproduction of *Odaira, Castanos &
//! Tomari, "Eliminating Global Interpreter Locks in Ruby through Hardware
//! Transactional Memory" (PPoPP 2014)*.
//!
//! Re-exports the workspace's public API so examples and downstream users
//! need a single dependency:
//!
//! ```
//! use htm_gil::{Executor, ExecConfig, RuntimeMode, LengthPolicy, MachineProfile, VmConfig};
//!
//! let profile = MachineProfile::generic(4);
//! let cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
//! let mut ex = Executor::new("puts(1 + 1)", VmConfig::default(), profile, cfg).unwrap();
//! let report = ex.run().unwrap();
//! assert_eq!(report.stdout, "2");
//! ```
//!
//! Layer map (bottom-up):
//!
//! * [`machine`] — discrete-event multicore simulator and machine
//!   profiles (zEC12, Xeon E3-1275 v3);
//! * [`htm`] — best-effort transactional memory over a word-addressed
//!   heap (read/write sets, requester-wins conflicts, capacity aborts,
//!   the Intel learning predictor);
//! * [`lang`] / [`vm`] — the Ruby-subset front-end and the CRuby-1.9-like
//!   bytecode VM (slot heap, free lists, GC, inline caches, threads);
//! * [`core`] — **the paper's contribution**: GIL elision through
//!   transactional lock elision with dynamic per-yield-point transaction
//!   lengths, plus the GIL/fine-grained/ideal baselines;
//! * [`bench_workloads`] — the evaluation programs (micro, NPB, WEBrick,
//!   Rails, write-set probe);
//! * [`stats`] — series/tables/charts for the figure harnesses.

pub use htm_gil_core as core;
pub use htm_gil_stats as stats;
pub use htm_sim as htm;
pub use machine_sim as machine;
pub use ruby_lang as lang;
pub use ruby_vm as vm;
pub use workloads as bench_workloads;

pub use htm_gil_core::{
    ExecConfig, Executor, LengthPolicy, RunReport, RuntimeMode, SubscriptionPolicy,
    WatchdogConstants, YieldPolicy,
};
pub use htm_sim::{FaultPlan, SpuriousCause};
pub use machine_sim::{MachineProfile, SchedPath};
pub use ruby_vm::VmConfig;
pub use workloads::Workload;
