//! Run a Ruby-subset source file in the VM, in any runtime mode.
//!
//! ```sh
//! echo 'puts("hello, " + "world")' > /tmp/hello.rb
//! cargo run --release --example run_ruby -- /tmp/hello.rb
//! cargo run --release --example run_ruby -- /tmp/hello.rb --mode htm-dynamic --stats
//! ```

use htm_gil::{ExecConfig, Executor, LengthPolicy, MachineProfile, RuntimeMode, VmConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: run_ruby <file.rb> [--mode gil|htm-1|htm-16|htm-256|htm-dynamic|fine|ideal] [--stats]");
        std::process::exit(2);
    };
    let mode = match args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("gil")
    {
        "gil" => RuntimeMode::Gil,
        "htm-1" => RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
        "htm-16" => RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
        "htm-256" => RuntimeMode::Htm { length: LengthPolicy::Fixed(256) },
        "htm-dynamic" => RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        "fine" => RuntimeMode::FineGrained,
        "ideal" => RuntimeMode::Ideal,
        other => {
            eprintln!("unknown mode {other}");
            std::process::exit(2);
        }
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let profile = MachineProfile::generic(8);
    let cfg = ExecConfig::new(mode, &profile);
    let mut ex = match Executor::new(&source, VmConfig::default(), profile, cfg) {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    match ex.run() {
        Ok(r) => {
            if !r.stdout.is_empty() {
                println!("{}", r.stdout);
            }
            if args.iter().any(|a| a == "--stats") {
                eprintln!("--- {} on {} ---", r.mode_label, r.machine);
                eprintln!("cycles: {}", r.elapsed_cycles);
                eprintln!("committed insns: {}", r.committed_insns);
                eprintln!(
                    "transactions: {} begun / {} committed / {} aborted",
                    r.htm.begins,
                    r.htm.commits,
                    r.htm.total_aborts()
                );
                eprintln!("GIL acquisitions: {}", r.gil_acquisitions);
                eprintln!("allocations: {}, GC runs: {}", r.allocations, r.gc_runs);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
