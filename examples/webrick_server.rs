//! WEBrick server scenario: the paper's §5.5 experiment — throughput vs
//! number of concurrent clients, GIL vs HTM elision.
//!
//! ```sh
//! cargo run --release --example webrick_server -- --requests 400 --clients 1,2,4,6
//! ```

use htm_gil::{ExecConfig, Executor, LengthPolicy, MachineProfile, RuntimeMode, VmConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let requests: usize = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(240);
    let clients: Vec<usize> = args
        .iter()
        .position(|a| a == "--clients")
        .and_then(|i| args.get(i + 1).cloned())
        .map(|s| s.split(',').filter_map(|p| p.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 6]);
    let profile = MachineProfile::xeon_e3_1275_v3();

    println!("WEBrick model on {}: {requests} requests for a 46-byte page\n", profile.name);
    println!("{:<14} {:>8} {:>16} {:>10}", "mode", "clients", "req/Mcycle", "abort%");
    let mut base: Option<f64> = None;
    for mode in [
        RuntimeMode::Gil,
        RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
        RuntimeMode::Htm { length: LengthPolicy::Dynamic },
    ] {
        for &c in &clients {
            let w = htm_gil::bench_workloads::webrick::webrick(c, requests);
            let vm_config = VmConfig { max_threads: c + 2, ..VmConfig::default() };
            let cfg = ExecConfig::new(mode, &profile);
            let mut ex = Executor::new(&w.source, vm_config, profile.clone(), cfg).expect("boot");
            let r = ex.run().expect("run");
            let tput = requests as f64 / (r.elapsed_cycles as f64 / 1e6);
            if base.is_none() {
                base = Some(tput);
            }
            println!(
                "{:<14} {:>8} {:>16.2} {:>9.1}%   normalized {:.2}x   [{}]",
                r.mode_label,
                c,
                tput,
                r.abort_ratio_pct(),
                tput / base.unwrap(),
                r.stdout.trim()
            );
        }
    }
    println!(
        "\npaper shape: the GIL itself gains from I/O overlap; HTM-1 and \
         HTM-dynamic add ~1.6x over the GIL's best."
    );
}
