//! Dynamic transaction-length adjustment, visualized: run a
//! conflict-prone workload under HTM-dynamic and show how the
//! per-yield-point lengths distribute after the run (paper §4.3/§5.5 —
//! "40 % of the frequently executed yield points had the transaction
//! length of 1").
//!
//! ```sh
//! cargo run --release --example dynamic_tuning
//! ```

use htm_gil::{ExecConfig, Executor, LengthPolicy, MachineProfile, RuntimeMode, VmConfig};

const PROGRAM: &str = r#"
# Two kinds of work in one program:
#  - a conflict-heavy phase: all threads increment the same array cell,
#    so transactions starting near that site must shrink;
#  - a conflict-free phase: thread-private sums, where long transactions
#    are fine.
shared = Array.new(2, 0)
priv = Array.new(4, 0)
threads = []
4.times do |t|
  threads << Thread.new(t) do |tid|
    j = 0
    while j < 400
      shared[0] = shared[0] + 1
      j += 1
    end
    s = 0
    j = 0
    while j < 4000
      s += j
      j += 1
    end
    priv[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts(shared[0].to_s + " " + priv[0].to_s)
"#;

fn main() {
    let profile = MachineProfile::zec12();
    let vm_config = VmConfig { max_threads: 8, ..VmConfig::default() };
    let cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
    let constants = cfg.tle;
    let mut ex = Executor::new(PROGRAM, vm_config, profile, cfg).expect("boot");
    let r = ex.run().expect("run");

    println!("output: {}", r.stdout);
    println!(
        "transactions: {} begun, {} committed, {} aborted ({:.1}% abort ratio)",
        r.htm.begins,
        r.htm.commits,
        r.htm.total_aborts(),
        r.abort_ratio_pct()
    );
    println!("length shrink events: {}", r.length_adjustments);
    println!(
        "share of active yield points at length 1: {:.0}% (paper: ~40% on \
         12-thread zEC12 NPB)",
        100.0 * r.share_length_one
    );
    println!(
        "\nadjustment constants: initial {}, profiling period {}, threshold {} \
         ({}% target abort ratio), attenuation {}",
        constants.initial_transaction_length,
        constants.profiling_period,
        constants.adjustment_threshold,
        100 * constants.adjustment_threshold / constants.profiling_period,
        constants.attenuation_rate
    );
    // Histogram of final lengths straight from the executor's tables —
    // accessible through the report only in aggregate, so re-derive the
    // distribution from the conflict statistics we expose.
    println!("\ncycle breakdown:");
    for (label, share) in r.breakdown.shares_pct() {
        if share > 0.05 {
            println!("  {label:<14} {share:5.1}%");
        }
    }
}
