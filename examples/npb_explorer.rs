//! NPB explorer: run one NAS Parallel Benchmark kernel across runtime
//! modes and thread counts, on either machine profile.
//!
//! ```sh
//! cargo run --release --example npb_explorer -- CG --machine xeon --threads 1,2,4
//! cargo run --release --example npb_explorer -- FT
//! ```

use htm_gil::{ExecConfig, Executor, LengthPolicy, MachineProfile, RuntimeMode, VmConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args.get(1).cloned().unwrap_or_else(|| "CG".to_string());
    let machine = args
        .iter()
        .position(|a| a == "--machine")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "zec12".into());
    let threads: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1).cloned())
        .map(|s| s.split(',').filter_map(|p| p.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4]);

    let profile = if machine.contains("xeon") {
        MachineProfile::xeon_e3_1275_v3()
    } else {
        MachineProfile::zec12()
    };
    let build = |n: usize| -> htm_gil::Workload {
        match kernel.to_uppercase().as_str() {
            "BT" => htm_gil::bench_workloads::npb::bt(n, 1),
            "CG" => htm_gil::bench_workloads::npb::cg(n, 1),
            "FT" => htm_gil::bench_workloads::npb::ft(n, 1),
            "IS" => htm_gil::bench_workloads::npb::is(n, 1),
            "LU" => htm_gil::bench_workloads::npb::lu(n, 1),
            "MG" => htm_gil::bench_workloads::npb::mg(n, 1),
            "SP" => htm_gil::bench_workloads::npb::sp(n, 1),
            other => {
                eprintln!("unknown kernel {other}; use BT/CG/FT/IS/LU/MG/SP");
                std::process::exit(1);
            }
        }
    };

    println!("kernel {kernel} on {}\n", profile.name);
    println!(
        "{:<14} {:>8} {:>14} {:>9} {:>9} {:>8}",
        "mode", "threads", "cycles", "begins", "aborts", "abort%"
    );
    let mut base: Option<u64> = None;
    for mode in [
        RuntimeMode::Gil,
        RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
        RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
        RuntimeMode::Htm { length: LengthPolicy::Fixed(256) },
        RuntimeMode::Htm { length: LengthPolicy::Dynamic },
    ] {
        for &n in &threads {
            let w = build(n);
            let vm_config = VmConfig { max_threads: n + 2, ..VmConfig::default() };
            let cfg = ExecConfig::new(mode, &profile);
            let mut ex = Executor::new(&w.source, vm_config, profile.clone(), cfg).expect("boot");
            let r = ex.run().expect("run");
            if mode == RuntimeMode::Gil && n == threads[0] {
                base = Some(r.elapsed_cycles);
            }
            let speedup = base.map(|b| b as f64 / r.elapsed_cycles as f64).unwrap_or(1.0);
            println!(
                "{:<14} {:>8} {:>14} {:>9} {:>9} {:>7.1}%   speedup {:.2}x   [{}]",
                r.mode_label,
                n,
                r.elapsed_cycles,
                r.htm.begins,
                r.htm.total_aborts(),
                r.abort_ratio_pct(),
                speedup,
                r.stdout.trim()
            );
        }
    }
}
