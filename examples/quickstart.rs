//! Quickstart: run one multi-threaded Ruby program under the original GIL
//! and under HTM-dynamic GIL elision, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use htm_gil::{ExecConfig, Executor, LengthPolicy, MachineProfile, RuntimeMode, VmConfig};

const PROGRAM: &str = r#"
# Four threads summing independently — the paper's "embarrassingly
# parallel" case where the GIL serializes everything and HTM should not.
results = Array.new(4, 0)
threads = []
4.times do |t|
  threads << Thread.new(t) do |tid|
    s = 0
    i = 1
    while i <= 5000
      s += i
      i += 1
    end
    results[tid] = s
  end
end
threads.each do |t|
  t.join()
end
total = 0
results.each do |r|
  total += r
end
puts("total = " + total.to_s)
"#;

fn main() {
    // A 12-core machine modelled on the paper's zEC12 partition.
    let profile = MachineProfile::zec12();
    let vm_config = VmConfig { max_threads: 8, ..VmConfig::default() };

    let run = |mode: RuntimeMode| {
        let cfg = ExecConfig::new(mode, &profile);
        let mut ex = Executor::new(PROGRAM, vm_config.clone(), profile.clone(), cfg).expect("boot");
        let r = ex.run().expect("run");
        println!(
            "{:<12}  {:>12} cycles   output: {:?}   (tx: {} begun, {} aborted)",
            r.mode_label,
            r.elapsed_cycles,
            r.stdout,
            r.htm.begins,
            r.htm.total_aborts()
        );
        r.elapsed_cycles
    };

    println!("machine: {} ({} hardware threads)\n", profile.name, profile.hw_threads());
    let gil = run(RuntimeMode::Gil);
    let htm = run(RuntimeMode::Htm { length: LengthPolicy::Dynamic });
    println!(
        "\nHTM-dynamic speedup over the GIL: {:.2}x (paper Fig. 4: ~10x at 12 threads \
         for pure compute; here 4 threads → ideal 4x)",
        gil as f64 / htm as f64
    );
}
