//! Property tests for the discrete-event scheduler.

use machine_sim::{Scheduler, ThreadState};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Advance(usize, u64),
    SleepFor(usize, u64),
    Park(usize),
    Unpark(usize, u64),
    Finish(usize),
}

fn ops(nthreads: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nthreads, 1u64..10_000).prop_map(|(t, c)| Op::Advance(t, c)),
        (0..nthreads, 1u64..50_000).prop_map(|(t, c)| Op::SleepFor(t, c)),
        (0..nthreads).prop_map(Op::Park),
        (0..nthreads, 0u64..100_000).prop_map(|(t, a)| Op::Unpark(t, a)),
        (0..nthreads).prop_map(Op::Finish),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Core liveness/selection invariants under arbitrary state churn:
    /// `next()` only returns non-finished threads, clocks never move
    /// backwards, and the returned thread has the minimum ready time among
    /// runnable threads.
    #[test]
    fn scheduler_invariants(
        cores in 1usize..5,
        smt in 1usize..3,
        script in proptest::collection::vec(ops(4), 1..120),
    ) {
        let mut s = Scheduler::new(cores, smt, 500);
        for _ in 0..4 {
            s.spawn(0);
        }
        let mut last_clock = [0u64; 4];
        for op in script {
            match op {
                Op::Advance(t, c) => {
                    if s.state(t) != ThreadState::Finished {
                        s.advance(t, c);
                    }
                }
                Op::SleepFor(t, c) => {
                    if matches!(s.state(t), ThreadState::Runnable) {
                        let until = s.clock(t) + c;
                        s.sleep_until(t, until);
                    }
                }
                Op::Park(t) => {
                    if matches!(s.state(t), ThreadState::Runnable) {
                        s.park(t);
                    }
                }
                Op::Unpark(t, a) => {
                    if matches!(s.state(t), ThreadState::Parked | ThreadState::Sleeping { .. }) {
                        s.unpark(t, a);
                    }
                }
                Op::Finish(t) => {
                    if s.state(t) != ThreadState::Finished {
                        s.finish(t);
                    }
                }
            }
            for (t, last) in last_clock.iter_mut().enumerate() {
                prop_assert!(s.clock(t) >= *last, "clock of t{t} went backwards");
                *last = s.clock(t);
            }
            if let Some(t) = s.next() {
                prop_assert_ne!(s.state(t), ThreadState::Finished);
                // After `next` the chosen thread is runnable.
                prop_assert_eq!(s.state(t), ThreadState::Runnable);
            } else {
                // No runnable/sleeping thread may remain.
                for t in 0..4 {
                    prop_assert!(matches!(
                        s.state(t),
                        ThreadState::Parked | ThreadState::Finished
                    ));
                }
            }
        }
    }

    /// Busy time is conserved: the sum of advances equals the sum of busy
    /// counters (modulo context-switch surcharges, which only occur under
    /// oversubscription — excluded here by using enough cores).
    #[test]
    fn busy_time_conserved(
        advances in proptest::collection::vec((0usize..3, 1u64..1_000), 1..80),
    ) {
        let mut s = Scheduler::new(4, 1, 500);
        for _ in 0..3 {
            s.spawn(0);
        }
        // Claim slots first (3 threads on 4 cores: never oversubscribed).
        for _ in 0..3 {
            let t = s.next().unwrap();
            s.advance(t, 0);
        }
        let mut expect = [0u64; 3];
        for (t, c) in advances {
            s.advance(t, c);
            expect[t] += c;
        }
        for (t, &e) in expect.iter().enumerate() {
            prop_assert_eq!(s.busy(t), e);
            prop_assert_eq!(s.clock(t), e);
        }
    }
}
