//! # machine-sim
//!
//! Discrete-event simulation substrate for the HTM-GIL reproduction.
//!
//! The paper ran on two real machines — a 12-core IBM zEC12 and a 4-core ×
//! 2-SMT Intel Xeon E3-1275 v3. Neither machine (nor working HTM silicon of
//! any kind) is available, so every experiment in this repository runs on a
//! *simulated* multicore: virtual threads carry their own cycle clocks, a
//! deterministic scheduler always advances the runnable thread with the
//! smallest clock, and all costs (bytecode dispatch, memory references,
//! `TBEGIN`/`TEND`, aborts, GIL operations, blocking I/O) are taken from a
//! per-machine [`CostModel`].
//!
//! Throughput is *committed work per simulated cycle*, so speedup curves are
//! a function of the cost model plus the HTM conflict/overflow dynamics —
//! not of host parallelism. Everything is deterministic: the same inputs
//! always produce the same figure.
//!
//! The crate has six parts:
//!
//! * [`conn`] — the deterministic connection/accept latency model used by
//!   the task-server scenario on top of the blocking-I/O layer;
//! * [`explore`] — the schedule-space exploration encoding: a compact
//!   byte-per-branch path ([`explore::SchedPath`]) replayed exactly by
//!   the scheduler's decision-point hooks;
//! * [`interrupt`] — the deterministic per-thread timer-interrupt model
//!   (paper §5.6: interrupts abort in-flight transactions);
//! * [`profile`] — machine descriptions ([`MachineProfile::zec12`],
//!   [`MachineProfile::xeon_e3_1275_v3`]) including cache geometry and HTM
//!   capacity budgets;
//! * [`sched`] — the discrete-event scheduler and core/SMT topology;
//! * [`profile::CostModel`] — cycle costs used by the interpreter and the
//!   TLE runtime.

pub mod conn;
pub mod explore;
pub mod interrupt;
pub mod profile;
pub mod sched;

pub use conn::{ConnEvent, ConnModel};
pub use explore::{DecisionKind, ExploreCtl, SchedPath};
pub use interrupt::InterruptTimer;
pub use profile::{CacheGeometry, CostModel, HtmCharacteristics, MachineProfile};
pub use sched::{Scheduler, ThreadId, ThreadState};

/// Simulated time, in CPU cycles.
pub type Cycles = u64;

/// Number of bytes per machine word in the simulated address space.
///
/// All shared interpreter state lives in a word-addressed memory; cache-line
/// and footprint arithmetic converts through this constant.
pub const WORD_BYTES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_size_is_eight_bytes() {
        // The capacity arithmetic in htm-sim depends on this.
        assert_eq!(WORD_BYTES, 8);
    }
}
