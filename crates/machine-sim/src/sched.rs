//! Deterministic discrete-event thread scheduler.
//!
//! Each virtual thread carries its own cycle clock. The executor repeatedly
//! asks [`Scheduler::next`] for the runnable thread with the *smallest*
//! clock, executes one unit of work for it (one bytecode, one runtime
//! operation, …), and charges the cost via [`Scheduler::advance`]. Because
//! the thread with the least-advanced clock always runs next, concurrent
//! threads interleave exactly as they would on real silicon with the given
//! cost model — but fully deterministically (ties break by thread id).
//!
//! Hardware topology matters in two ways:
//!
//! * **SMT capacity sharing** — a thread whose SMT sibling slot is occupied
//!   has half the HTM footprint budget (paper §5.4: "a pair of threads on
//!   the same core share the same caches, thus halving the maximum read-
//!   and write-set sizes"). [`Scheduler::smt_sibling_busy`] exposes this to
//!   the HTM layer.
//! * **Oversubscription** — when more threads are runnable than hardware
//!   threads exist, slots rotate on a quantum with a context-switch charge,
//!   like an OS scheduler.

use crate::explore::{DecisionKind, ExploreCtl};
use crate::Cycles;

/// Identifier of a virtual thread (dense, starting at 0).
pub type ThreadId = usize;

/// Lifecycle state of a virtual thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to execute as soon as it has the smallest clock.
    Runnable,
    /// Asleep until a known simulated time (blocking I/O with a latency).
    Sleeping { until: Cycles },
    /// Waiting for an external wake-up (GIL queue, `Thread#join`, `Mutex`,
    /// barrier). Cannot run until [`Scheduler::unpark`].
    Parked,
    /// Terminated; never runs again.
    Finished,
}

/// Scheduling quantum used only under oversubscription (more runnable
/// threads than hardware threads): a slot holder is preempted after this
/// many cycles if someone is waiting for a slot.
const OVERSUB_QUANTUM: Cycles = 50_000;

#[derive(Debug, Clone)]
struct ThreadSched {
    clock: Cycles,
    state: ThreadState,
    /// Hardware-thread slot currently held, if any.
    slot: Option<usize>,
    /// Cycles consumed on the current slot since acquiring it (for quantum
    /// preemption under oversubscription).
    slot_usage: Cycles,
    /// Total busy cycles charged to this thread (for utilization stats).
    busy: Cycles,
}

/// Sentinel in the ready array: the thread cannot run without an external
/// wake (parked or finished). Simulated clocks never reach this value.
const NEVER_READY: Cycles = Cycles::MAX;

/// Deterministic discrete-event scheduler over a fixed core/SMT topology.
#[derive(Debug, Clone)]
pub struct Scheduler {
    threads: Vec<ThreadSched>,
    cores: usize,
    smt_per_core: usize,
    /// `slots[s] = Some(tid)` when hardware-thread slot `s` is held.
    /// Slot `s` maps to core `s % cores`, SMT lane `s / cores`, so threads
    /// fill distinct cores before doubling up on SMT lanes.
    slots: Vec<Option<ThreadId>>,
    /// Cost of a context switch, charged on quantum preemption.
    context_switch: Cycles,
    /// Cached per-thread ready time: `clock` when runnable,
    /// `max(clock, until)` when sleeping, [`NEVER_READY`] otherwise.
    /// Maintained at every state/clock transition so [`Scheduler::next`]
    /// is a branch-free min-scan instead of a per-thread state match.
    ready: Vec<Cycles>,
    /// Threads not yet finished (O(1) `other_live_threads`).
    unfinished: usize,
    /// Schedule-exploration controller; `None` (the default) leaves every
    /// decision-point hook a no-op and the schedule byte-identical to the
    /// pre-exploration scheduler.
    explore: Option<ExploreCtl>,
    /// Thread pinned by a forced preemption: [`Scheduler::next`] keeps
    /// selecting it while it stays runnable, until it reaches its own
    /// next decision point (or parks/sleeps/finishes).
    pinned: Option<ThreadId>,
}

/// Alternate runnable threads offered per preemption decision (plus
/// choice 0 = natural schedule). Caps decision arity at 4 so the branch
/// factor stays bounded on wide machines.
const MAX_ALTERNATES: usize = 3;

impl Scheduler {
    /// Create a scheduler for `cores` cores with `smt_per_core` hardware
    /// threads each. `context_switch` is the preemption cost under
    /// oversubscription.
    pub fn new(cores: usize, smt_per_core: usize, context_switch: Cycles) -> Self {
        assert!(cores > 0 && smt_per_core > 0);
        Scheduler {
            threads: Vec::new(),
            cores,
            smt_per_core,
            slots: vec![None; cores * smt_per_core],
            context_switch,
            ready: Vec::new(),
            unfinished: 0,
            explore: None,
            pinned: None,
        }
    }

    /// Number of hardware-thread slots.
    pub fn hw_threads(&self) -> usize {
        self.slots.len()
    }

    /// Register a new virtual thread, runnable, with its clock starting at
    /// `start` (usually the spawner's current clock).
    pub fn spawn(&mut self, start: Cycles) -> ThreadId {
        let tid = self.threads.len();
        self.threads.push(ThreadSched {
            clock: start,
            state: ThreadState::Runnable,
            slot: None,
            slot_usage: 0,
            busy: 0,
        });
        self.ready.push(start);
        self.unfinished += 1;
        tid
    }

    /// Current clock of thread `t`.
    pub fn clock(&self, t: ThreadId) -> Cycles {
        self.threads[t].clock
    }

    /// Total busy cycles charged to `t` so far.
    pub fn busy(&self, t: ThreadId) -> Cycles {
        self.threads[t].busy
    }

    /// Current state of thread `t`.
    pub fn state(&self, t: ThreadId) -> ThreadState {
        self.threads[t].state
    }

    /// Number of registered threads (any state).
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// True when no threads are registered.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Charge `cycles` of execution to thread `t`.
    pub fn advance(&mut self, t: ThreadId, cycles: Cycles) {
        let th = &mut self.threads[t];
        th.clock += cycles;
        th.busy += cycles;
        th.slot_usage += cycles;
        self.refresh_ready(t);
    }

    /// Move `t`'s clock forward to at least `to` without counting the gap
    /// as busy time (used when a thread discovers an event that happened
    /// after its own clock, e.g. a GIL release).
    pub fn skip_to(&mut self, t: ThreadId, to: Cycles) {
        let th = &mut self.threads[t];
        if th.clock < to {
            th.clock = to;
            self.refresh_ready(t);
        }
    }

    /// Recompute the cached ready time of `t` after a clock change. A
    /// sleeping thread whose clock is advanced past its wake deadline
    /// becomes ready at the (later) clock, not the deadline.
    fn refresh_ready(&mut self, t: ThreadId) {
        let th = &self.threads[t];
        self.ready[t] = match th.state {
            ThreadState::Runnable => th.clock,
            ThreadState::Sleeping { until } => th.clock.max(until),
            ThreadState::Parked | ThreadState::Finished => NEVER_READY,
        };
    }

    /// Put `t` to sleep until simulated time `until` (blocking I/O).
    /// Releases its hardware slot.
    pub fn sleep_until(&mut self, t: ThreadId, until: Cycles) {
        self.unpin(t);
        self.release_slot(t);
        let th = &mut self.threads[t];
        th.state = ThreadState::Sleeping { until: until.max(th.clock) };
        self.ready[t] = until.max(th.clock);
    }

    /// Park `t` until an explicit [`Scheduler::unpark`]. Releases its slot.
    pub fn park(&mut self, t: ThreadId) {
        self.unpin(t);
        self.release_slot(t);
        self.threads[t].state = ThreadState::Parked;
        self.ready[t] = NEVER_READY;
    }

    /// Wake a parked or sleeping thread; it becomes runnable no earlier
    /// than `at`.
    pub fn unpark(&mut self, t: ThreadId, at: Cycles) {
        let th = &mut self.threads[t];
        match th.state {
            ThreadState::Parked | ThreadState::Sleeping { .. } => {
                th.clock = th.clock.max(at);
                th.state = ThreadState::Runnable;
                self.ready[t] = th.clock;
            }
            ThreadState::Runnable => {
                // Spurious wake-up: harmless.
            }
            ThreadState::Finished => panic!("unpark of finished thread {t}"),
        }
    }

    /// Mark `t` terminated and release its slot.
    pub fn finish(&mut self, t: ThreadId) {
        self.unpin(t);
        self.release_slot(t);
        if self.threads[t].state != ThreadState::Finished {
            self.unfinished -= 1;
        }
        self.threads[t].state = ThreadState::Finished;
        self.ready[t] = NEVER_READY;
    }

    /// True when every registered thread has finished.
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Finished)
    }

    /// Number of threads currently runnable or sleeping (i.e. that will run
    /// again without an external wake).
    pub fn live_count(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Runnable | ThreadState::Sleeping { .. }))
            .count()
    }

    /// Threads other than `t` that are not finished (the paper's "other
    /// live thread" test deciding whether concurrency is worthwhile at all,
    /// Fig. 1 line 2 / Fig. 2 line 9).
    pub fn other_live_threads(&self, t: ThreadId) -> usize {
        let n = self.unfinished - usize::from(self.threads[t].state != ThreadState::Finished);
        debug_assert_eq!(
            n,
            self.threads
                .iter()
                .enumerate()
                .filter(|&(i, th)| i != t && th.state != ThreadState::Finished)
                .count(),
            "unfinished counter out of sync"
        );
        n
    }

    /// True when the SMT sibling lane of `t`'s hardware slot is held by
    /// another thread — halves HTM capacity budgets on the Xeon profile.
    pub fn smt_sibling_busy(&self, t: ThreadId) -> bool {
        if self.smt_per_core < 2 {
            return false;
        }
        let Some(slot) = self.threads[t].slot else {
            return false;
        };
        let core = slot % self.cores;
        (0..self.smt_per_core).any(|lane| {
            let s = lane * self.cores + core;
            s != slot && self.slots[s].is_some()
        })
    }

    /// Select the next thread to execute: the runnable (or due-to-wake
    /// sleeping) thread with the smallest clock that can hold a hardware
    /// slot. Returns `None` when no thread can make progress without an
    /// external wake (deadlock or completion).
    #[allow(clippy::should_implement_trait)] // scheduler step, not an Iterator
    pub fn next(&mut self) -> Option<ThreadId> {
        // Exploration pin: a forced preemption keeps its target running
        // (quantum handover suspended — the pin *is* the quantum) until
        // the target reaches its own next decision point or stops being
        // runnable.
        if let Some(p) = self.pinned {
            if self.threads[p].state == ThreadState::Runnable {
                self.acquire_slot(p);
                return Some(p);
            }
            self.pinned = None;
        }
        // Pass 1: find the best candidate by (ready_time, tid) — a plain
        // min-scan over the cached ready array (strict `<` keeps the
        // smallest tid on ties, matching the per-state scan it replaced).
        let mut ready = NEVER_READY;
        let mut tid = 0;
        for (i, &r) in self.ready.iter().enumerate() {
            if r < ready {
                ready = r;
                tid = i;
            }
        }
        if ready == NEVER_READY {
            return None;
        }
        debug_assert_eq!(
            Some((ready, tid)),
            self.threads
                .iter()
                .enumerate()
                .filter_map(|(i, th)| match th.state {
                    ThreadState::Runnable => Some((th.clock, i)),
                    ThreadState::Sleeping { until } => Some((th.clock.max(until), i)),
                    _ => None,
                })
                .min(),
            "ready cache out of sync with thread states"
        );
        // Wake if sleeping.
        {
            let th = &mut self.threads[tid];
            th.clock = ready;
            th.state = ThreadState::Runnable;
            self.ready[tid] = ready;
        }
        // Ensure it holds a hardware slot.
        self.acquire_slot(tid);
        // Quantum accounting: if others are waiting for slots and this
        // thread exhausted its quantum, hand the slot over instead.
        if self.threads[tid].slot_usage >= OVERSUB_QUANTUM {
            let waiter = self
                .threads
                .iter()
                .enumerate()
                .find(|&(i, th)| th.state == ThreadState::Runnable && th.slot.is_none() && i != tid)
                .map(|(i, _)| i);
            if let Some(w) = waiter {
                let slot = self.threads[tid].slot.take().expect("holder slot");
                self.threads[tid].slot_usage = 0;
                let switch_at = self.threads[tid].clock;
                self.slots[slot] = Some(w);
                let wt = &mut self.threads[w];
                wt.slot = Some(slot);
                wt.slot_usage = 0;
                wt.clock = wt.clock.max(switch_at) + self.context_switch;
                wt.busy += self.context_switch;
                self.ready[w] = wt.clock;
                // Re-select: the waiter may now be the best candidate.
                return self.next();
            }
        }
        Some(tid)
    }

    /// Give `t` a hardware slot if it lacks one: a free slot when
    /// available, otherwise preempt the holder that has used the most
    /// quantum (deterministic: max usage, then min tid) and charge `t`
    /// the context switch on top of the victim's clock.
    fn acquire_slot(&mut self, t: ThreadId) {
        if self.threads[t].slot.is_some() {
            return;
        }
        if let Some(free) = self.slots.iter().position(|s| s.is_none()) {
            self.slots[free] = Some(t);
            self.threads[t].slot = Some(free);
            self.threads[t].slot_usage = 0;
        } else {
            let victim = self
                .slots
                .iter()
                .filter_map(|s| *s)
                .max_by_key(|&v| (self.threads[v].slot_usage, usize::MAX - v))
                .expect("all slots held");
            // The waiter cannot run before the victim's clock: the OS
            // switches at the victim's quantum expiry.
            let switch_at = self.threads[victim].clock;
            let slot = self.threads[victim].slot.take().expect("victim slot");
            self.threads[victim].slot_usage = 0;
            self.slots[slot] = Some(t);
            let th = &mut self.threads[t];
            th.slot = Some(slot);
            th.slot_usage = 0;
            th.clock = th.clock.max(switch_at) + self.context_switch;
            th.busy += self.context_switch;
            self.ready[t] = th.clock;
        }
    }

    fn release_slot(&mut self, t: ThreadId) {
        if let Some(s) = self.threads[t].slot.take() {
            self.slots[s] = None;
            self.threads[t].slot_usage = 0;
        }
    }

    fn unpin(&mut self, t: ThreadId) {
        if self.pinned == Some(t) {
            self.pinned = None;
        }
    }

    // ---- schedule-space exploration hooks --------------------------------
    //
    // All hooks are no-ops (consuming no decisions) until a controller is
    // installed, so the unexplored scheduler is byte-identical to before.

    /// Install an exploration controller for the coming run.
    pub fn set_explore(&mut self, ctl: ExploreCtl) {
        self.explore = Some(ctl);
        self.pinned = None;
    }

    /// The installed controller, if any (trail/stats inspection).
    pub fn explore(&self) -> Option<&ExploreCtl> {
        self.explore.as_ref()
    }

    /// True when a controller is installed (cheap gate for callers that
    /// would otherwise do work just to reach a no-op hook).
    pub fn explore_active(&self) -> bool {
        self.explore.is_some()
    }

    /// Preemption decision at one of `t`'s yield points. Choice 0 (and
    /// no controller, and no alternate runnable thread — those consume
    /// no decision) continues `t` naturally; choice k pins the k-th
    /// alternate (other runnable threads by `(clock, tid)`, at most
    /// [`MAX_ALTERNATES`]) and returns it — the caller must then return
    /// to the scheduler *without* running `t`, and `t` re-decides at the
    /// same point when next selected (each consult consumes one path
    /// byte, so a finite path always drains back to choice 0).
    pub fn explore_preempt(&mut self, t: ThreadId) -> Option<ThreadId> {
        self.unpin(t); // t reached its own next decision point
        self.explore.as_ref()?;
        let mut cands: Vec<(Cycles, ThreadId)> = self
            .threads
            .iter()
            .enumerate()
            .filter(|&(i, th)| i != t && th.state == ThreadState::Runnable)
            .map(|(i, th)| (th.clock, i))
            .collect();
        if cands.is_empty() {
            return None;
        }
        cands.sort_unstable();
        cands.truncate(MAX_ALTERNATES);
        let arity = (1 + cands.len()) as u8;
        let ctl = self.explore.as_mut().expect("checked above");
        let choice = ctl.decide(DecisionKind::Sched, arity);
        if choice == 0 {
            return None;
        }
        let pin = cands[choice as usize - 1].1;
        self.pinned = Some(pin);
        Some(pin)
    }

    /// Interrupt-delivery decision at a yield point with an open
    /// transaction: true = kill it. Consumes a decision only when the
    /// controller has its interrupt windows enabled.
    pub fn explore_interrupt_kill(&mut self) -> bool {
        match self.explore.as_mut() {
            Some(ctl) if ctl.interrupts => ctl.decide(DecisionKind::Interrupt, 2) == 1,
            _ => false,
        }
    }

    /// Interrupt-delivery decision in the commit window: true = kill the
    /// transaction right before `TEND`.
    pub fn explore_commit_kill(&mut self) -> bool {
        match self.explore.as_mut() {
            Some(ctl) if ctl.interrupts => ctl.decide(DecisionKind::Commit, 2) == 1,
            _ => false,
        }
    }

    /// Wake-order decision over `n` waiters: the returned rotation is 0
    /// (exact legacy publish — also whenever no controller is installed
    /// or there is nothing to reorder) or 1..min(n,4).
    pub fn explore_wake_order(&mut self, n: usize) -> u8 {
        match self.explore.as_mut() {
            Some(ctl) if n >= 2 => ctl.decide(DecisionKind::Wake, n.min(4) as u8),
            _ => 0,
        }
    }

    /// Tail of the decision trail for failure dumps, if exploring.
    pub fn explore_trail(&self) -> Option<String> {
        self.explore.as_ref().map(|c| c.trail_tail(32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(cores: usize, smt: usize) -> Scheduler {
        Scheduler::new(cores, smt, 1_000)
    }

    #[test]
    fn min_clock_thread_runs_first() {
        let mut s = sched(4, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        assert_eq!(s.next(), Some(a)); // tie → smaller tid
        s.advance(a, 100);
        assert_eq!(s.next(), Some(b));
        s.advance(b, 50);
        assert_eq!(s.next(), Some(b)); // b still behind a
        s.advance(b, 100);
        assert_eq!(s.next(), Some(a));
    }

    #[test]
    fn sleeping_thread_wakes_at_deadline() {
        let mut s = sched(2, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        assert_eq!(s.next(), Some(a));
        s.sleep_until(a, 10_000);
        assert_eq!(s.next(), Some(b));
        s.advance(b, 20_000);
        // a wakes at 10_000 < b's 20_000.
        assert_eq!(s.next(), Some(a));
        assert_eq!(s.clock(a), 10_000);
    }

    #[test]
    fn parked_thread_needs_explicit_unpark() {
        let mut s = sched(1, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        s.park(a);
        assert_eq!(s.next(), Some(b));
        s.advance(b, 5);
        assert_eq!(s.next(), Some(b)); // a still parked
        s.unpark(a, 100);
        // b (clock 10) still precedes a (woken at 100).
        assert_eq!(s.next(), Some(b));
        s.advance(b, 200);
        assert_eq!(s.next(), Some(a));
        // On this 1-core machine a also pays for taking over b's slot, so
        // it resumes no earlier than its unpark time.
        assert!(s.clock(a) >= 100);
    }

    #[test]
    fn finished_threads_never_run() {
        let mut s = sched(1, 1);
        let a = s.spawn(0);
        s.finish(a);
        assert!(s.all_finished());
        assert_eq!(s.next(), None);
    }

    #[test]
    fn smt_siblings_fill_cores_first() {
        let mut s = sched(4, 2);
        let tids: Vec<_> = (0..8).map(|_| s.spawn(0)).collect();
        // Run each once so they claim slots in order.
        for _ in 0..8 {
            let t = s.next().unwrap();
            s.advance(t, 1);
        }
        // First four threads landed on distinct cores: no sibling busy
        // among them if only they existed. With all eight active, every
        // thread has a busy sibling.
        for &t in &tids {
            assert!(s.smt_sibling_busy(t), "thread {t} should share a core");
        }
    }

    #[test]
    fn four_threads_on_xeon_have_no_smt_sharing() {
        let mut s = sched(4, 2);
        let tids: Vec<_> = (0..4).map(|_| s.spawn(0)).collect();
        for _ in 0..4 {
            let t = s.next().unwrap();
            s.advance(t, 1);
        }
        for &t in &tids {
            assert!(!s.smt_sibling_busy(t), "thread {t} should be alone on its core");
        }
    }

    #[test]
    fn oversubscription_rotates_slots() {
        let mut s = sched(1, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        // a runs a long quantum, then b must eventually get the core.
        assert_eq!(s.next(), Some(a));
        s.advance(a, OVERSUB_QUANTUM + 1);
        let t = s.next().unwrap();
        assert_eq!(t, b, "b must be scheduled after a's quantum expires");
        // b paid a context switch and cannot start before a's clock.
        assert!(s.clock(b) >= OVERSUB_QUANTUM);
    }

    #[test]
    fn other_live_threads_counts_unfinished_peers() {
        let mut s = sched(2, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        let c = s.spawn(0);
        assert_eq!(s.other_live_threads(a), 2);
        s.park(b);
        assert_eq!(s.other_live_threads(a), 2); // parked is still live
        s.finish(c);
        assert_eq!(s.other_live_threads(a), 1);
        s.finish(b);
        assert_eq!(s.other_live_threads(a), 0);
    }

    #[test]
    fn skip_to_does_not_count_busy() {
        let mut s = sched(1, 1);
        let a = s.spawn(0);
        s.skip_to(a, 500);
        assert_eq!(s.clock(a), 500);
        assert_eq!(s.busy(a), 0);
        s.skip_to(a, 100); // never moves backwards
        assert_eq!(s.clock(a), 500);
    }

    #[test]
    fn quantum_handover_charges_context_switch_to_the_waiter() {
        let mut s = sched(1, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        assert_eq!(s.next(), Some(a));
        s.advance(a, OVERSUB_QUANTUM);
        // a's quantum is exactly exhausted; the handover happens inside
        // next(), which must re-select and return b with the switch cost
        // charged as busy time and its clock held back to the switch point.
        assert_eq!(s.next(), Some(b));
        assert_eq!(s.clock(b), OVERSUB_QUANTUM + 1_000);
        assert_eq!(s.busy(b), 1_000);
        assert!(s.threads[a].slot.is_none(), "a must have handed its slot over");
        assert_eq!(s.threads[a].slot_usage, 0, "usage resets on handover");
    }

    #[test]
    fn preemption_victim_is_the_max_usage_holder() {
        let mut s = sched(2, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        let c = s.spawn(0);
        assert_eq!(s.next(), Some(a));
        s.advance(a, 300);
        assert_eq!(s.next(), Some(b));
        s.advance(b, 100);
        // c has no slot and none is free: the holder with the most quantum
        // used (a, 300 > 100) is preempted, and c pays the context switch
        // on top of the victim's clock (the OS switches at expiry).
        assert_eq!(s.next(), Some(c));
        assert!(s.threads[a].slot.is_none(), "max-usage holder a is the victim");
        assert!(s.threads[b].slot.is_some(), "lighter holder b keeps its slot");
        assert_eq!(s.clock(c), 300 + 1_000);
        assert_eq!(s.busy(c), 1_000);
    }

    #[test]
    fn preemption_tie_on_usage_breaks_to_min_tid_not_min_clock() {
        let mut s = sched(2, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        let c = s.spawn(0);
        assert_eq!(s.next(), Some(a));
        s.advance(a, 200);
        assert_eq!(s.next(), Some(b));
        s.advance(b, 200);
        // Equal slot usage; skip a's clock ahead (no busy charge) so the
        // tie-break is observable: it must go by tid, not clock.
        s.skip_to(a, 400);
        assert_eq!(s.next(), Some(c));
        assert!(s.threads[a].slot.is_none(), "usage tie must evict the smaller tid");
        assert!(s.threads[b].slot.is_some());
        assert_eq!(s.clock(c), 400 + 1_000, "waiter resumes after the victim's clock");
    }

    #[test]
    fn equal_ready_time_tie_breaks_to_min_tid_even_when_sleeping() {
        let mut s = sched(2, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        assert_eq!(s.next(), Some(a));
        s.sleep_until(a, 100);
        s.skip_to(b, 100);
        // Both become ready at exactly 100; the sleeping thread still wins
        // the tie because its tid is smaller.
        assert_eq!(s.next(), Some(a));
        assert_eq!(s.clock(a), 100);
    }

    #[test]
    fn smt_budget_halving_ends_when_the_sibling_parks_or_sleeps() {
        let mut s = sched(1, 2);
        let a = s.spawn(0);
        let b = s.spawn(0);
        assert_eq!(s.next(), Some(a));
        s.advance(a, 1);
        assert_eq!(s.next(), Some(b));
        s.advance(b, 1);
        assert!(s.smt_sibling_busy(a), "both lanes of the core are held");
        // Parking releases the lane: a gets its full capacity back.
        s.park(b);
        assert!(!s.smt_sibling_busy(a));
        s.advance(a, 100);
        s.unpark(b, 10);
        // b (ready at 10) now precedes a (clock 101) and retakes a lane.
        assert_eq!(s.next(), Some(b));
        assert!(s.smt_sibling_busy(a), "rejoining sibling halves the budget again");
        // Blocking I/O releases the lane just like parking.
        s.sleep_until(b, 1_000_000);
        assert!(!s.smt_sibling_busy(a));
    }

    #[test]
    fn smt_sibling_on_another_core_does_not_halve_budgets() {
        let mut s = sched(2, 2);
        let a = s.spawn(0);
        let b = s.spawn(0);
        let c = s.spawn(0);
        for _ in 0..3 {
            let t = s.next().unwrap();
            s.advance(t, 1);
        }
        // Slots fill cores first: a → core 0, b → core 1, c → core 0's
        // second lane. Only the core-0 pair shares capacity.
        assert!(s.smt_sibling_busy(a));
        assert!(!s.smt_sibling_busy(b), "b is alone on core 1");
        assert!(s.smt_sibling_busy(c));
    }

    #[test]
    fn no_smt_lanes_means_no_halving_even_oversubscribed() {
        let mut s = sched(1, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        assert_eq!(s.next(), Some(a));
        s.advance(a, 1);
        // b is waiting for the only slot, but it is a whole-core wait, not
        // SMT sharing: capacity budgets stay full.
        assert!(!s.smt_sibling_busy(a));
        assert!(!s.smt_sibling_busy(b), "slotless thread has no sibling");
    }

    #[test]
    fn pinned_thread_runs_until_its_own_decision_point() {
        use crate::explore::SchedPath;
        let mut s = sched(2, 1);
        let a = s.spawn(0);
        let b = s.spawn(10);
        s.set_explore(ExploreCtl::new(SchedPath::new(vec![1]), false));
        assert_eq!(s.next(), Some(a));
        // Decision point on a: byte 1 pins b, the only alternate.
        assert_eq!(s.explore_preempt(a), Some(b));
        assert_eq!(s.next(), Some(b));
        s.advance(b, 5);
        assert_eq!(s.next(), Some(b), "pin holds while b stays runnable");
        // b reaches its own decision point: pin clears; the path is
        // exhausted, so the decision is natural (choice 0).
        assert_eq!(s.explore_preempt(b), None);
        assert_eq!(s.next(), Some(a), "min-clock scheduling resumes");
        assert_eq!(s.explore().unwrap().decisions(), 2);
        assert_eq!(s.explore().unwrap().preemptions(), 1);
    }

    #[test]
    fn empty_path_consults_but_never_deviates() {
        use crate::explore::SchedPath;
        let run = |explore: bool| {
            let mut s = sched(2, 1);
            let a = s.spawn(0);
            let _b = s.spawn(3);
            if explore {
                s.set_explore(ExploreCtl::new(SchedPath::empty(), false));
            }
            let mut order = Vec::new();
            for i in 0..40 {
                let t = s.next().unwrap();
                if explore {
                    assert_eq!(s.explore_preempt(t), None);
                    assert!(!s.explore_interrupt_kill(), "interrupts off consume nothing");
                }
                order.push(t);
                s.advance(t, 7 + (i % 5) as Cycles);
            }
            let _ = a;
            order
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn preempt_without_alternates_consumes_no_decision() {
        use crate::explore::SchedPath;
        let mut s = sched(2, 1);
        let a = s.spawn(0);
        let b = s.spawn(0);
        s.set_explore(ExploreCtl::new(SchedPath::new(vec![1, 1]), false));
        s.park(b);
        assert_eq!(s.next(), Some(a));
        assert_eq!(s.explore_preempt(a), None, "no runnable alternate");
        assert_eq!(s.explore().unwrap().decisions(), 0);
        // Parking the pinned thread clears the pin.
        s.unpark(b, 0);
        assert_eq!(s.explore_preempt(a), Some(b));
        s.park(b);
        assert_eq!(s.next(), Some(a), "pin on a parked thread dissolves");
    }

    #[test]
    fn determinism_same_sequence() {
        let run = || {
            let mut s = sched(2, 1);
            let _a = s.spawn(0);
            let _b = s.spawn(3);
            let _c = s.spawn(1);
            let mut order = Vec::new();
            for i in 0..50 {
                let t = s.next().unwrap();
                order.push(t);
                s.advance(t, 7 + (i % 5) as Cycles);
            }
            order
        };
        assert_eq!(run(), run());
    }
}
