//! Per-hardware-thread timer-interrupt model.
//!
//! Paper §5.6: OS timer interrupts (and the TLB shootdowns / page faults
//! they stand in for) abort any transaction that is in flight on the
//! interrupted hardware thread — a best-effort HTM never survives a
//! privilege-level change. The executor polls [`InterruptTimer::due`]
//! before running a thread and kills its open transaction when the
//! thread's deadline has passed.
//!
//! Each simulated thread carries its own cycle clock, so deadlines are
//! tracked per thread: thread `t` takes an interrupt every `interval`
//! cycles of *its own* simulated time. The model is deterministic — the
//! same run always interrupts at the same points.

use crate::{Cycles, ThreadId};

/// Deterministic per-thread interrupt clock. An `interval` of 0 disables
/// the model entirely (`due` never fires).
#[derive(Debug, Clone)]
pub struct InterruptTimer {
    interval: Cycles,
    /// Next deadline per thread, grown lazily as threads spawn.
    next: Vec<Cycles>,
}

impl InterruptTimer {
    pub fn new(interval: Cycles) -> Self {
        InterruptTimer { interval, next: Vec::new() }
    }

    /// A disabled timer (interval 0) never fires.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    pub fn is_enabled(&self) -> bool {
        self.interval != 0
    }

    pub fn interval(&self) -> Cycles {
        self.interval
    }

    /// Has thread `t` crossed its interrupt deadline at local time `now`?
    /// On true, the deadline advances past `now` (one interrupt is
    /// delivered no matter how far the clock jumped — coalescing, like a
    /// real one-shot timer re-armed by its handler).
    pub fn due(&mut self, t: ThreadId, now: Cycles) -> bool {
        if self.interval == 0 {
            return false;
        }
        if self.next.len() <= t {
            // First sighting of this thread: arm its timer one interval
            // after its current clock (spawn time).
            self.next.resize(t + 1, 0);
        }
        if self.next[t] == 0 {
            self.next[t] = now + self.interval;
            return false;
        }
        if now < self.next[t] {
            return false;
        }
        let periods = (now - self.next[t]) / self.interval + 1;
        self.next[t] += periods * self.interval;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_never_fires() {
        let mut it = InterruptTimer::disabled();
        assert!(!it.is_enabled());
        for now in [0, 1, 1_000_000, u64::MAX] {
            assert!(!it.due(0, now));
        }
    }

    #[test]
    fn fires_once_per_interval() {
        let mut it = InterruptTimer::new(100);
        assert!(it.is_enabled());
        assert!(!it.due(0, 5), "first call arms the timer");
        assert!(!it.due(0, 50));
        assert!(it.due(0, 105), "deadline 105 crossed");
        assert!(!it.due(0, 110), "re-armed to 205");
        assert!(it.due(0, 205));
    }

    #[test]
    fn coalesces_large_clock_jumps() {
        let mut it = InterruptTimer::new(100);
        assert!(!it.due(0, 0)); // armed at 100
                                // The thread slept for many intervals: exactly one interrupt is
                                // delivered, and the deadline lands past `now`.
        assert!(it.due(0, 950));
        assert!(!it.due(0, 999), "next deadline must be 1000");
        assert!(it.due(0, 1000));
    }

    #[test]
    fn threads_have_independent_deadlines() {
        let mut it = InterruptTimer::new(100);
        assert!(!it.due(0, 0)); // t0 armed at 100
        assert!(!it.due(3, 500)); // t3 armed lazily at 600
        assert!(it.due(0, 150));
        assert!(!it.due(3, 599));
        assert!(it.due(3, 600));
    }
}
