//! Schedule-space exploration: branch encoding and replay control.
//!
//! The deterministic scheduler runs exactly one interleaving per
//! configuration. This module turns every *scheduler decision point* —
//! a yield-point preemption choice, an interrupt/commit kill slot, a
//! wake-order pick — into a branch in a decision tree, encoded as a
//! compact **path**: one byte per branch, consumed in decision order.
//! Replaying the same path replays the same interleaving, byte for
//! byte; flipping a byte diverges the execution at exactly that branch
//! and nowhere earlier (the prefix consults the same decisions in the
//! same order).
//!
//! The encoding is deliberately forgiving, loom/syncbox-style:
//!
//! * a byte beyond the end of the path reads as `0` — choice 0 is
//!   always "do what the unexplored scheduler would have done", so an
//!   empty path reproduces the natural schedule exactly;
//! * a byte is reduced modulo the decision's arity, so random byte
//!   strings are always valid paths and shrinking can lower bytes
//!   freely.
//!
//! [`ExploreCtl`] lives inside the [`crate::Scheduler`] and records the
//! *trail* (taken choice, arity, kind per decision) so searches can
//! enumerate siblings and failure dumps can show the last branches.

/// What kind of scheduler decision a branch was (trail diagnostics and
/// search heuristics; the path encoding itself is kind-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Yield-point preemption: choice 0 runs the natural schedule,
    /// choice k pins the k-th alternate runnable thread.
    Sched,
    /// Interrupt delivery at a yield point: choice 1 kills the open
    /// transaction (§5.6 timer-interrupt model, exploration-steered).
    Interrupt,
    /// Interrupt delivery in the commit window: choice 1 kills the
    /// transaction right before `TEND`.
    Commit,
    /// Wake order: choice k rotates the waiter list by k and staggers
    /// the unpark times; choice 0 is the exact legacy publish.
    Wake,
}

impl DecisionKind {
    /// One-character tag used in trails: `S`, `I`, `C`, `W`.
    pub fn tag(self) -> char {
        match self {
            DecisionKind::Sched => 'S',
            DecisionKind::Interrupt => 'I',
            DecisionKind::Commit => 'C',
            DecisionKind::Wake => 'W',
        }
    }
}

/// A compact schedule path: one choice byte per decision point, in the
/// order the execution consults them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SchedPath {
    bytes: Vec<u8>,
}

impl SchedPath {
    /// The empty path: every decision takes choice 0 (the natural
    /// schedule).
    pub fn empty() -> SchedPath {
        SchedPath { bytes: Vec::new() }
    }

    pub fn new(bytes: Vec<u8>) -> SchedPath {
        SchedPath { bytes }
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of non-zero choice bytes — the forced-deviation count the
    /// preemption bound limits (every `0` is the natural schedule).
    pub fn deviations(&self) -> usize {
        self.bytes.iter().filter(|&&b| b != 0).count()
    }

    /// Copy with trailing zero bytes removed: trailing naturals are
    /// implied by the beyond-the-end rule, so the trimmed path replays
    /// identically.
    pub fn trimmed(&self) -> SchedPath {
        let end = self.bytes.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        SchedPath { bytes: self.bytes[..end].to_vec() }
    }

    /// The child path whose first `at` decisions replay this path's
    /// prefix and whose decision `at` takes `choice`.
    pub fn child(&self, at: usize, choice: u8) -> SchedPath {
        let mut bytes: Vec<u8> = self.bytes.iter().copied().take(at).collect();
        bytes.resize(at, 0);
        bytes.push(choice);
        SchedPath { bytes }
    }

    /// Hex encoding (two lowercase digits per byte; empty path → "").
    pub fn to_hex(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(self.bytes.len() * 2);
        for b in &self.bytes {
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parse the [`SchedPath::to_hex`] encoding.
    pub fn from_hex(hex: &str) -> Result<SchedPath, String> {
        let hex = hex.trim();
        if !hex.len().is_multiple_of(2) {
            return Err(format!("odd-length hex path ({} digits)", hex.len()));
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let pair = &hex[i..i + 2];
            bytes.push(
                u8::from_str_radix(pair, 16).map_err(|e| format!("bad hex pair {pair:?}: {e}"))?,
            );
        }
        Ok(SchedPath { bytes })
    }
}

/// Replay controller installed into the [`crate::Scheduler`]: serves the
/// path's choice bytes at each decision point and records the trail.
#[derive(Debug, Clone)]
pub struct ExploreCtl {
    path: SchedPath,
    cursor: usize,
    /// Enables the [`DecisionKind::Interrupt`] / [`DecisionKind::Commit`]
    /// kill decisions (off, those windows consume no path bytes).
    pub interrupts: bool,
    taken: Vec<u8>,
    arities: Vec<u8>,
    kinds: Vec<DecisionKind>,
    preemptions: u64,
}

impl ExploreCtl {
    pub fn new(path: SchedPath, interrupts: bool) -> ExploreCtl {
        ExploreCtl {
            path,
            cursor: 0,
            interrupts,
            taken: Vec::new(),
            arities: Vec::new(),
            kinds: Vec::new(),
            preemptions: 0,
        }
    }

    /// Consume one decision of the given arity (≥ 1) and return the
    /// choice in `0..arity`. Bytes beyond the path read as 0; the byte
    /// is reduced modulo the arity, so any byte string is a valid path.
    pub fn decide(&mut self, kind: DecisionKind, arity: u8) -> u8 {
        debug_assert!(arity >= 1, "decision with no choices");
        let byte = self.path.as_bytes().get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        let choice = byte % arity.max(1);
        self.taken.push(choice);
        self.arities.push(arity);
        self.kinds.push(kind);
        if choice != 0 {
            self.preemptions += 1;
        }
        choice
    }

    /// Decisions consulted so far.
    pub fn decisions(&self) -> usize {
        self.taken.len()
    }

    /// Choices actually taken (bytes already reduced modulo arity).
    pub fn taken(&self) -> &[u8] {
        &self.taken
    }

    /// Arity of each consulted decision, in consult order.
    pub fn arities(&self) -> &[u8] {
        &self.arities
    }

    /// Kind of each consulted decision, in consult order.
    pub fn kinds(&self) -> &[DecisionKind] {
        &self.kinds
    }

    /// Non-zero choices taken — forced schedule deviations.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// The trail as a [`SchedPath`] (replaying it reproduces this
    /// execution: every consult reads its own taken choice).
    pub fn taken_path(&self) -> SchedPath {
        SchedPath::new(self.taken.clone())
    }

    /// Human-readable tail of the decision trail, e.g. `S0 S2 I1 W0`
    /// (last `n` decisions) — livelock dumps append this so a stuck
    /// explored run is diagnosable without a rerun.
    pub fn trail_tail(&self, n: usize) -> String {
        let start = self.taken.len().saturating_sub(n);
        let mut out = String::new();
        for i in start..self.taken.len() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push(self.kinds[i].tag());
            out.push_str(&self.taken[i].to_string());
        }
        if start > 0 {
            format!("… {out} ({} total)", self.taken.len())
        } else {
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrips() {
        let p = SchedPath::new(vec![0, 1, 255, 16]);
        assert_eq!(p.to_hex(), "0001ff10");
        assert_eq!(SchedPath::from_hex("0001ff10").unwrap(), p);
        assert_eq!(SchedPath::from_hex("").unwrap(), SchedPath::empty());
        assert!(SchedPath::from_hex("abc").is_err());
        assert!(SchedPath::from_hex("zz").is_err());
    }

    #[test]
    fn trimming_drops_trailing_naturals_only() {
        assert_eq!(SchedPath::new(vec![0, 2, 0, 0]).trimmed(), SchedPath::new(vec![0, 2]));
        assert_eq!(SchedPath::new(vec![0, 0]).trimmed(), SchedPath::empty());
        assert_eq!(SchedPath::new(vec![1]).trimmed(), SchedPath::new(vec![1]));
    }

    #[test]
    fn child_extends_the_executed_prefix() {
        let p = SchedPath::new(vec![1, 0, 2]);
        assert_eq!(p.child(3, 1), SchedPath::new(vec![1, 0, 2, 1]));
        // Children past the path's own length pad with naturals.
        assert_eq!(p.child(5, 3), SchedPath::new(vec![1, 0, 2, 0, 0, 3]));
        // Children inside the prefix replace the tail entirely.
        assert_eq!(p.child(1, 2), SchedPath::new(vec![1, 2]));
    }

    #[test]
    fn decide_clamps_and_records() {
        let mut c = ExploreCtl::new(SchedPath::new(vec![5, 1, 0]), true);
        assert_eq!(c.decide(DecisionKind::Sched, 4), 1); // 5 % 4
        assert_eq!(c.decide(DecisionKind::Interrupt, 2), 1);
        assert_eq!(c.decide(DecisionKind::Wake, 3), 0);
        assert_eq!(c.decide(DecisionKind::Commit, 2), 0); // beyond end
        assert_eq!(c.taken(), &[1, 1, 0, 0]);
        assert_eq!(c.arities(), &[4, 2, 3, 2]);
        assert_eq!(c.preemptions(), 2);
        assert_eq!(c.trail_tail(8), "S1 I1 W0 C0");
        assert_eq!(c.trail_tail(2), "… W0 C0 (4 total)");
    }

    #[test]
    fn deviations_count_nonzero_bytes() {
        assert_eq!(SchedPath::empty().deviations(), 0);
        assert_eq!(SchedPath::new(vec![0, 3, 0, 1]).deviations(), 2);
    }
}
