//! Simulated client connections on the blocking-I/O layer.
//!
//! The task-server scenario models N clients submitting work over
//! persistent connections. Real connections have variable service times
//! (kernel accept queues, NIC interrupts, TCP windows); here each
//! accept/request/response event costs a deterministic number of I/O
//! units drawn from a hash of `(seed, connection, sequence, event)`.
//! The model is a **pure function** — no mutable state — for two
//! reasons:
//!
//! * transaction aborts re-execute the blocking builtin on the GIL
//!   fallback path, and a re-execution must observe the identical
//!   latency (stateful models would double-advance);
//! * the latency a client sees must be independent of the runtime mode
//!   under test, so mode comparisons measure queueing and elision
//!   effects, not divergent input schedules.
//!
//! The executor multiplies the returned units by the machine profile's
//! `io_latency`, exactly like `Kernel#io_wait`.

/// Connection event classes with distinct latency shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnEvent {
    /// Accepting a new connection (slowest: handshake).
    Accept,
    /// Reading one request off an established connection.
    Request,
    /// Writing one response back.
    Response,
}

impl ConnEvent {
    /// (base units, jitter span in units) per event class.
    fn shape(self) -> (u32, u32) {
        match self {
            ConnEvent::Accept => (3, 4),
            ConnEvent::Request => (1, 3),
            ConnEvent::Response => (1, 2),
        }
    }

    fn salt(self) -> u64 {
        match self {
            ConnEvent::Accept => 0x11,
            ConnEvent::Request => 0x22,
            ConnEvent::Response => 0x33,
        }
    }
}

/// Deterministic per-connection latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnModel {
    /// Stream seed: distinct seeds give distinct (but reproducible)
    /// latency schedules.
    pub seed: u64,
}

/// SplitMix64 finalizer — a full-avalanche mix of the packed event key.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ConnModel {
    pub fn new(seed: u64) -> Self {
        ConnModel { seed }
    }

    /// I/O units charged for `event` number `seq` on connection
    /// `conn`. Always at least 1: a connection interaction is never
    /// free. Pure: the same arguments always give the same answer.
    pub fn latency_units(&self, conn: u64, seq: u64, event: ConnEvent) -> u32 {
        let (base, jitter) = event.shape();
        let h = mix(self.seed ^ conn.rotate_left(17) ^ seq.rotate_left(41) ^ event.salt());
        (base + (h % u64::from(jitter + 1)) as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_deterministic_and_positive() {
        let m = ConnModel::new(0xBEEF);
        for conn in 0..8 {
            for seq in 0..64 {
                for ev in [ConnEvent::Accept, ConnEvent::Request, ConnEvent::Response] {
                    let a = m.latency_units(conn, seq, ev);
                    let b = m.latency_units(conn, seq, ev);
                    assert_eq!(a, b, "pure function");
                    assert!(a >= 1);
                    let (base, jitter) = ev.shape();
                    assert!(a >= base.max(1) && a <= base + jitter, "unit out of shape: {a}");
                }
            }
        }
    }

    #[test]
    fn streams_vary_by_connection_sequence_and_seed() {
        let m = ConnModel::new(1);
        let stream = |conn: u64| -> Vec<u32> {
            (0..32).map(|s| m.latency_units(conn, s, ConnEvent::Request)).collect()
        };
        assert_ne!(stream(0), stream(1), "connections must differ");
        let m2 = ConnModel::new(2);
        let other: Vec<u32> = (0..32).map(|s| m2.latency_units(0, s, ConnEvent::Request)).collect();
        assert_ne!(stream(0), other, "seeds must differ");
        // And the jitter actually jitters within one stream.
        let s = stream(0);
        assert!(s.iter().any(|&u| u != s[0]), "no variation in {s:?}");
    }
}
