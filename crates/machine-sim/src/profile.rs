//! Machine profiles: topology, cache geometry, HTM capacities, cycle costs.
//!
//! The two concrete profiles mirror the machines of the paper's §2.2 /
//! §5.2. Absolute cycle numbers are a scaled model (the authors' testbeds
//! are unavailable); what matters for reproducing the figures is the
//! *relative* cost structure — e.g. that beginning a transaction costs a few
//! dozen cycles, that a GIL handoff is far more expensive than that, and
//! that blocking I/O dwarfs both.

use crate::Cycles;

/// Cache geometry relevant to best-effort HTM: line size and the effective
/// read-/write-set capacity budgets.
///
/// Paper §2.2: on zEC12 the read set is bounded by the 1 MB L2 and the write
/// set by the 8 KB gathering store cache; on the Xeon E3-1275 v3 the
/// measured maxima were ≈6 MB (read) and ≈19 KB (write). SMT siblings share
/// the L1, halving both budgets when the sibling hardware thread is busy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Cache-line size in bytes (256 on zEC12, 64 on the Xeon).
    pub line_bytes: usize,
    /// Maximum bytes of distinct lines a transaction may read.
    pub read_set_bytes: usize,
    /// Maximum bytes of distinct lines a transaction may write.
    pub write_set_bytes: usize,
}

impl CacheGeometry {
    /// Number of simulated words per cache line.
    pub fn line_words(&self) -> usize {
        self.line_bytes / crate::WORD_BYTES
    }

    /// `log2(line_words())` — all profile line sizes are powers of two, so
    /// address→line is a shift by this amount (as in the memory's
    /// ownership directory).
    pub fn line_shift(&self) -> u32 {
        debug_assert!(self.line_words().is_power_of_two());
        self.line_words().trailing_zeros()
    }

    /// Read-set budget expressed in whole cache lines.
    pub fn read_set_lines(&self) -> usize {
        self.read_set_bytes / self.line_bytes
    }

    /// Write-set budget expressed in whole cache lines.
    pub fn write_set_lines(&self) -> usize {
        self.write_set_bytes / self.line_bytes
    }
}

/// Behavioural quirks of a machine's HTM implementation beyond raw capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct HtmCharacteristics {
    /// Intel's undocumented "learning" behaviour (paper §5.4, Fig. 6a): the
    /// CPU eagerly aborts transactions that recently overflowed, and its
    /// confidence decays only gradually, so success ratios recover slowly
    /// after the working set shrinks.
    pub learning_predictor: bool,
    /// How many failed attempts the predictor needs to forget an overflow
    /// (controls the ~5000-iteration recovery ramp of Fig. 6a).
    pub predictor_memory: u32,
    /// Target abort ratio for dynamic transaction-length adjustment, in
    /// percent (paper §5.1: 1 % on zEC12, 6 % on the Xeon — a property of
    /// the HTM implementation's abort cost, not of the application).
    pub target_abort_ratio_pct: f64,
    /// `ADJUSTMENT_THRESHOLD` of the paper's Fig. 3 — aborts tolerated per
    /// `PROFILING_PERIOD` transactions (3 on zEC12, 18 on the Xeon; both
    /// equal `target_abort_ratio_pct` × `PROFILING_PERIOD`).
    pub adjustment_threshold: u32,
}

/// Cycle costs of the primitive operations the interpreter and the TLE
/// runtime execute. One simulated cycle ≈ one CPU cycle at the machine's
/// nominal clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of decoding + dispatching one bytecode instruction.
    pub dispatch: Cycles,
    /// Cost of one simulated-memory word reference (read or write).
    pub mem_ref: Cycles,
    /// `TBEGIN`/`XBEGIN` plus the surrounding bookkeeping of Fig. 1.
    pub tbegin: Cycles,
    /// `TEND`/`XEND`.
    pub tend: Cycles,
    /// Hardware cost of an abort (discard + restore), *excluding* the wasted
    /// work inside the transaction, which the simulator accounts separately.
    pub abort_penalty: Cycles,
    /// Successful compare-and-swap acquiring the GIL.
    pub gil_acquire: Cycles,
    /// Releasing the GIL (store + possible waiter wake-up).
    pub gil_release: Cycles,
    /// One iteration of the spin-wait loop of Fig. 1's
    /// `spin_and_gil_acquire`.
    pub spin_iter: Cycles,
    /// Bound on spinning before a waiter re-checks its retry budget.
    pub spin_bound: Cycles,
    /// `sched_yield()` system call (GIL-mode yield points only).
    pub sched_yield: Cycles,
    /// OS context switch when threads are multiplexed over cores.
    pub context_switch: Cycles,
    /// Blocked GIL waiter park/unpark round trip (futex-style).
    pub gil_wait_wakeup: Cycles,
    /// Default latency of a blocking I/O operation (socket read/write in the
    /// WEBrick/Rails models).
    pub io_latency: Cycles,
    /// Interval of CRuby's 250 ms timer thread, scaled to simulated cycles.
    /// Under the GIL a running thread only yields when the timer flag is
    /// set (paper §3.2).
    pub timer_interval: Cycles,
    /// Cost of a native (C-level) helper invocation, e.g. entering the
    /// regex engine or the mini relational store.
    pub native_call: Cycles,
}

/// A complete simulated machine: topology + caches + HTM behaviour + costs.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Human-readable name used in reports ("zEC12", "Xeon E3-1275 v3").
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads per core (1 on zEC12, 2 on the Xeon).
    pub smt_per_core: usize,
    /// Cache/HTM capacity geometry.
    pub cache: CacheGeometry,
    /// HTM behavioural model.
    pub htm: HtmCharacteristics,
    /// Cycle cost table.
    pub cost: CostModel,
}

impl MachineProfile {
    /// Total hardware threads (cores × SMT).
    pub fn hw_threads(&self) -> usize {
        self.cores * self.smt_per_core
    }

    /// IBM zEnterprise EC12 LPAR as configured in the paper: 12 dedicated
    /// cores, no SMT, 256-byte lines, ≈8 KB write-set / ≈1 MB read-set HTM
    /// budgets, no learning predictor, 1 % target abort ratio.
    pub fn zec12() -> Self {
        MachineProfile {
            name: "zEC12",
            cores: 12,
            smt_per_core: 1,
            cache: CacheGeometry {
                line_bytes: 256,
                // Scaled capacity model: the real machine allows ~1 MB of
                // read set; the simulated heap is itself scaled down by
                // roughly the same factor as the workloads, so the budget
                // keeps the same *ratio* to per-transaction footprints.
                read_set_bytes: 128 * 1024,
                write_set_bytes: 8 * 1024,
            },
            htm: HtmCharacteristics {
                learning_predictor: false,
                predictor_memory: 0,
                target_abort_ratio_pct: 1.0,
                adjustment_threshold: 3,
            },
            cost: CostModel::default_5ghz_class(),
        }
    }

    /// Intel Xeon E3-1275 v3 (4th Generation Core, Haswell): 4 cores × 2
    /// SMT, 64-byte lines, ≈19 KB write-set / ≈6 MB read-set budgets, the
    /// learning abort predictor of Fig. 6a, 6 % target abort ratio.
    pub fn xeon_e3_1275_v3() -> Self {
        MachineProfile {
            name: "Xeon E3-1275 v3",
            cores: 4,
            smt_per_core: 2,
            cache: CacheGeometry {
                line_bytes: 64,
                read_set_bytes: 768 * 1024,
                write_set_bytes: 19 * 1024,
            },
            htm: HtmCharacteristics {
                learning_predictor: true,
                predictor_memory: 5_000,
                target_abort_ratio_pct: 6.0,
                adjustment_threshold: 18,
            },
            cost: CostModel::default_3ghz_class(),
        }
    }

    /// A zEC12-derived machine with FORTH-style *tiny* HTM capacities
    /// (arXiv 2510.15888 studies designs this constrained): 8 read-set
    /// lines and 4 write-set lines. Footprints that commit effortlessly on
    /// the real machines overflow here constantly, so this profile is the
    /// capacity-abort stress axis of the ablation and chaos sweeps —
    /// everything else (topology, line size, cost table, no learning
    /// predictor) matches [`MachineProfile::zec12`].
    pub fn constrained() -> Self {
        MachineProfile {
            name: "constrained",
            cache: CacheGeometry {
                line_bytes: 256,
                read_set_bytes: 2 * 1024, // 8 lines
                write_set_bytes: 1024,    // 4 lines
            },
            ..MachineProfile::zec12()
        }
    }

    /// A generic machine for unit tests and examples: `cores` single-SMT
    /// cores, 64-byte lines, small capacities so tests can trigger overflow
    /// cheaply.
    pub fn generic(cores: usize) -> Self {
        MachineProfile {
            name: "generic",
            cores,
            smt_per_core: 1,
            cache: CacheGeometry {
                line_bytes: 64,
                read_set_bytes: 16 * 1024,
                write_set_bytes: 2 * 1024,
            },
            htm: HtmCharacteristics {
                learning_predictor: false,
                predictor_memory: 0,
                target_abort_ratio_pct: 2.0,
                adjustment_threshold: 6,
            },
            cost: CostModel::default_3ghz_class(),
        }
    }
}

impl CostModel {
    /// Cost table modelled on a 5.5 GHz-class mainframe core (zEC12).
    /// zEC12's `TBEGIN` is comparatively expensive, and z/OS GIL handoffs
    /// (Pthread mutex + condvar under USS) are slow — the paper leans on
    /// both facts.
    pub fn default_5ghz_class() -> Self {
        CostModel {
            dispatch: 12,
            mem_ref: 2,
            tbegin: 80,
            tend: 40,
            abort_penalty: 250,
            gil_acquire: 200,
            gil_release: 150,
            spin_iter: 12,
            spin_bound: 3_000,
            sched_yield: 1_500,
            context_switch: 4_000,
            gil_wait_wakeup: 4_000,
            io_latency: 8_000,
            timer_interval: 600_000,
            native_call: 60,
        }
    }

    /// Cost table modelled on a 3.5 GHz Haswell core. `XBEGIN`/`XEND` are
    /// cheaper than zEC12's `TBEGIN`/`TEND`; aborts cost roughly a cache
    /// miss plus pipeline restart.
    pub fn default_3ghz_class() -> Self {
        CostModel {
            dispatch: 10,
            mem_ref: 2,
            tbegin: 45,
            tend: 25,
            abort_penalty: 180,
            gil_acquire: 150,
            gil_release: 100,
            spin_iter: 10,
            spin_bound: 2_500,
            sched_yield: 1_200,
            context_switch: 3_000,
            gil_wait_wakeup: 3_000,
            io_latency: 8_000,
            timer_interval: 500_000,
            native_call: 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zec12_matches_paper_geometry() {
        let m = MachineProfile::zec12();
        assert_eq!(m.cores, 12);
        assert_eq!(m.smt_per_core, 1);
        assert_eq!(m.hw_threads(), 12);
        assert_eq!(m.cache.line_bytes, 256);
        assert_eq!(m.cache.write_set_bytes, 8 * 1024);
        assert!(!m.htm.learning_predictor);
        // 3 aborts / 300 transactions = 1 %.
        assert_eq!(m.htm.adjustment_threshold, 3);
        assert!((m.htm.target_abort_ratio_pct - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn xeon_matches_paper_geometry() {
        let m = MachineProfile::xeon_e3_1275_v3();
        assert_eq!(m.cores, 4);
        assert_eq!(m.smt_per_core, 2);
        assert_eq!(m.hw_threads(), 8);
        assert_eq!(m.cache.line_bytes, 64);
        assert_eq!(m.cache.write_set_bytes, 19 * 1024);
        assert!(m.htm.learning_predictor);
        // 18 aborts / 300 transactions = 6 %.
        assert_eq!(m.htm.adjustment_threshold, 18);
        assert!((m.htm.target_abort_ratio_pct - 6.0).abs() < f64::EPSILON);
    }

    #[test]
    fn line_arithmetic() {
        let g = CacheGeometry { line_bytes: 64, read_set_bytes: 1024, write_set_bytes: 256 };
        assert_eq!(g.line_words(), 8);
        assert_eq!(g.line_shift(), 3);
        assert_eq!(g.read_set_lines(), 16);
        assert_eq!(g.write_set_lines(), 4);
        assert_eq!(MachineProfile::zec12().cache.line_shift(), 5); // 256 B / 8 B words
    }

    #[test]
    fn constrained_profile_is_zec12_with_tiny_capacities() {
        let c = MachineProfile::constrained();
        let z = MachineProfile::zec12();
        assert_eq!(c.name, "constrained");
        assert_eq!(c.cache.read_set_lines(), 8);
        assert_eq!(c.cache.write_set_lines(), 4);
        assert_eq!(c.cache.line_bytes, z.cache.line_bytes, "same line size as zEC12");
        assert_eq!((c.cores, c.smt_per_core), (z.cores, z.smt_per_core));
        assert_eq!(c.cost, z.cost, "cost table must match zEC12 — capacity is the only axis");
        assert_eq!(c.htm, z.htm);
    }

    #[test]
    fn zec12_write_budget_smaller_than_read_budget() {
        // The defining asymmetry the paper exploits: store overflows, not
        // load overflows, dominate, so write budgets must be far smaller.
        for m in [MachineProfile::zec12(), MachineProfile::xeon_e3_1275_v3()] {
            assert!(m.cache.write_set_bytes * 4 <= m.cache.read_set_bytes);
        }
    }

    #[test]
    fn io_dwarfs_gil_ops_which_dwarf_tbegin() {
        for m in [MachineProfile::zec12(), MachineProfile::xeon_e3_1275_v3()] {
            assert!(m.cost.tbegin < m.cost.gil_acquire);
            assert!(m.cost.gil_acquire < m.cost.sched_yield);
            assert!(m.cost.sched_yield < m.cost.io_latency);
        }
    }
}
