//! Quick ASCII line charts so figure shapes are inspectable in a terminal.

use crate::series::SeriesSet;

/// Render a panel as a small ASCII chart (`width`×`height` plot area).
/// Each series is drawn with its own marker character; later series
/// overwrite earlier ones at collisions.
pub fn ascii_chart(set: &SeriesSet, width: usize, height: usize) -> String {
    const MARKS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&'];
    let (mut xmin, mut xmax) = (f64::MAX, f64::MIN);
    let (mut ymin, mut ymax) = (0.0f64, f64::MIN);
    for s in &set.series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if xmin > xmax || ymax == f64::MIN {
        return format!("{} (no data)\n", set.title);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in set.series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{} [{}]\n", set.title, set.y_label));
    for (r, row) in grid.iter().enumerate() {
        let yv = ymax - (ymax - ymin) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{yv:7.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:7} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:8}{:<10.1}{:>width$.1}  ({})\n",
        "",
        xmin,
        xmax,
        set.x_label,
        width = width - 10
    ));
    // Legend.
    for (si, s) in set.series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Series, SeriesSet};

    #[test]
    fn renders_marks_and_legend() {
        let mut set = SeriesSet::new("FT", "threads", "speedup");
        let mut a = Series::new("GIL");
        a.push(1.0, 1.0);
        a.push(12.0, 1.0);
        let mut b = Series::new("HTM-dynamic");
        b.push(1.0, 0.8);
        b.push(12.0, 4.4);
        set.add(a);
        set.add(b);
        let c = ascii_chart(&set, 40, 10);
        assert!(c.contains('o'), "first series marker");
        assert!(c.contains('+'), "second series marker");
        assert!(c.contains("GIL"));
        assert!(c.contains("HTM-dynamic"));
        assert!(c.lines().count() > 10);
    }

    #[test]
    fn empty_set_is_graceful() {
        let set = SeriesSet::new("empty", "x", "y");
        let c = ascii_chart(&set, 10, 5);
        assert!(c.contains("no data"));
    }
}
