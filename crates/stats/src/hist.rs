//! Log-bucketed latency histogram (HdrHistogram-style).
//!
//! The task-server scenario records one enqueue→complete and one
//! enqueue→dequeue latency per task — millions of samples per sweep
//! point — so storing raw samples is out. Instead samples land in
//! power-of-two octaves subdivided into [`SUB_BUCKETS`] linear
//! sub-buckets: values below [`SUB_BUCKETS`] are exact, larger values
//! are bounded by a relative error of `1/SUB_BUCKETS` (~3 %). Quantiles
//! report the *upper* bound of the bucket holding the target rank, so a
//! reported p99 is never below the true p99.
//!
//! Everything is plain counter arithmetic: `merge` is associative and
//! commutative, and recording order never changes the stored state —
//! the properties the pool-determinism contract needs from any artifact
//! assembled out of per-point histograms
//! (`crates/stats/tests/hist_proptest.rs` pins both).

/// log2 of the linear sub-bucket count per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave (also the exact-value range).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Octave groups: group 0 is the exact range, the rest cover the
/// remaining 64-bit magnitudes.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1;
/// Total bucket count.
const BUCKETS: usize = GROUPS * SUB_BUCKETS as usize;

/// A fixed-size log-bucketed histogram over `u64` values (cycles).
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    /// Exact running extremes and sum (the buckets only bound them).
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index of `v`: identity below [`SUB_BUCKETS`], then
/// `SUB_BUCKETS` linear sub-buckets per power-of-two octave.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // 2^e <= v < 2^(e+1), e >= SUB_BITS
    let group = (e - SUB_BITS + 1) as usize;
    let within = ((v >> (e - SUB_BITS)) - SUB_BUCKETS) as usize;
    group * SUB_BUCKETS as usize + within
}

/// Largest value mapping to bucket `idx` (what quantiles report).
fn bucket_upper_bound(idx: usize) -> u64 {
    let group = idx / SUB_BUCKETS as usize;
    let within = (idx % SUB_BUCKETS as usize) as u64;
    if group == 0 {
        return within;
    }
    let shift = (group - 1) as u32;
    let low = (SUB_BUCKETS + within) << shift;
    low + ((1u64 << shift) - 1)
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram { counts: Box::new([0; BUCKETS]), total: 0, min: u64::MAX, max: 0, sum: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.total += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += u128::from(v) * u128::from(n);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound of the bucket holding rank `ceil(q·count)`, clamped
    /// to the exact max; 0 when empty. `q` is clamped into [0, 1], and
    /// `quantile(0)` reports the minimum's bucket. The result never
    /// underestimates the true quantile and is monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram's samples into this one. Associative and
    /// commutative: any merge tree over the same histograms yields the
    /// same state.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.total == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose upper bound is >= it and
        // within the relative-error contract.
        for e in 0..63u32 {
            for v in [1u64 << e, (1u64 << e) + 1, (1u64 << e).wrapping_mul(2).wrapping_sub(1)] {
                if v == 0 {
                    continue;
                }
                let ub = bucket_upper_bound(bucket_index(v));
                assert!(ub >= v, "upper bound {ub} < value {v}");
                assert!(
                    ub - v <= v / SUB_BUCKETS + 1,
                    "relative error too large: value {v}, bound {ub}"
                );
            }
        }
        // Upper bounds strictly increase across bucket indices.
        let mut prev = bucket_upper_bound(0);
        for idx in 1..BUCKETS {
            let ub = bucket_upper_bound(idx);
            assert!(ub > prev, "bounds not increasing at {idx}");
            prev = ub;
        }
    }

    #[test]
    fn quantiles_never_underestimate() {
        let mut h = LatencyHistogram::new();
        let mut values: Vec<u64> = (0..1000).map(|i| i * i * 37 + 5).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for &(q, rank) in &[(0.5, 499), (0.9, 899), (0.99, 989)] {
            let exact = values[rank];
            let est = h.quantile(q);
            assert!(est >= exact, "q{q}: {est} < exact {exact}");
            assert!(
                est <= exact + exact / (SUB_BUCKETS - 2) + 1,
                "q{q}: {est} too far above {exact}"
            );
        }
        assert_eq!(h.quantile(1.0), *values.last().unwrap());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 13 % 4096;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.mean(), both.mean());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
