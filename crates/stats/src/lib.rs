//! # htm-gil-stats
//!
//! Result handling for the experiment harness: labelled series (one per
//! figure line), summary statistics, fixed-width tables, quick ASCII line
//! charts for terminal inspection, and CSV emission so the figures can be
//! re-plotted with external tools.

pub mod chart;
pub mod hist;
pub mod series;
pub mod table;

pub use chart::ascii_chart;
pub use hist::LatencyHistogram;
pub use series::{geomean, mean, Series, SeriesSet};
pub use table::Table;
