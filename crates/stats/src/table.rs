//! Fixed-width text tables for harness output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format helper: fixed 2-decimal float.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format helper: percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["bench", "GIL", "HTM-dynamic"]);
        t.row(&["BT".into(), "1.00".into(), "3.10".into()]);
        t.row(&["FT".into(), "1.00".into(), "4.40".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "GIL" column starts at the same offset everywhere.
        let off = lines[0].find("GIL").unwrap();
        assert_eq!(&lines[2][off..off + 4], "1.00");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f2(3.141_25), "3.14");
        assert_eq!(pct(12.345), "12.3%");
    }
}
