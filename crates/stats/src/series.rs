//! Labelled data series and summary statistics.

/// One line of a figure: y values over shared x values.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| (px - x).abs() < 1e-9).map(|&(_, y)| y)
    }

    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max)
    }

    pub fn min_y(&self) -> f64 {
        self.points.iter().map(|&(_, y)| y).fold(f64::MAX, f64::min)
    }

    /// Normalize every y by the series' own value at `x0` (the paper's
    /// "1 = 1-thread GIL" style normalization uses another series' base —
    /// see [`SeriesSet::normalize_to`]).
    pub fn normalized_to(&self, base: f64) -> Series {
        Series {
            label: self.label.clone(),
            points: self.points.iter().map(|&(x, y)| (x, y / base)).collect(),
        }
    }
}

/// A whole figure panel: several series over the same x axis.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl SeriesSet {
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        SeriesSet {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    pub fn add(&mut self, s: Series) {
        self.series.push(s);
    }

    pub fn get(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Normalize every series to `base_label`'s value at `base_x`
    /// (e.g. GIL at 1 thread → "Throughput (1 = 1 thread GIL)").
    pub fn normalize_to(&self, base_label: &str, base_x: f64) -> SeriesSet {
        let base = self.get(base_label).and_then(|s| s.y_at(base_x)).unwrap_or(1.0);
        SeriesSet {
            title: self.title.clone(),
            x_label: self.x_label.clone(),
            y_label: self.y_label.clone(),
            series: self.series.iter().map(|s| s.normalized_to(base)).collect(),
        }
    }

    /// CSV rendering: header `x,label1,label2,…`, one row per x value.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> =
            self.series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x)).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut out = String::from("x");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!("{y:.6}")),
                    None => out.push_str(""),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean (0 for empty input; requires positive values).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup_and_extrema() {
        let mut s = Series::new("GIL");
        s.push(1.0, 1.0);
        s.push(2.0, 0.9);
        s.push(4.0, 1.1);
        assert_eq!(s.y_at(2.0), Some(0.9));
        assert_eq!(s.y_at(3.0), None);
        assert!((s.max_y() - 1.1).abs() < 1e-12);
        assert!((s.min_y() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn normalization_to_one_thread_gil() {
        let mut set = SeriesSet::new("BT", "threads", "throughput");
        let mut gil = Series::new("GIL");
        gil.push(1.0, 200.0);
        gil.push(12.0, 190.0);
        let mut htm = Series::new("HTM-dynamic");
        htm.push(1.0, 160.0);
        htm.push(12.0, 700.0);
        set.add(gil);
        set.add(htm);
        let n = set.normalize_to("GIL", 1.0);
        assert!((n.get("GIL").unwrap().y_at(1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((n.get("HTM-dynamic").unwrap().y_at(12.0).unwrap() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn csv_shape() {
        let mut set = SeriesSet::new("t", "x", "y");
        let mut a = Series::new("A");
        a.push(1.0, 2.0);
        a.push(2.0, 3.0);
        set.add(a);
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,A");
        assert!(lines[1].starts_with("1,2.0"));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.6]) - 3.6).abs() < 1e-12);
    }
}
