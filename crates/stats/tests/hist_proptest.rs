//! Property tests for the log-bucketed latency histogram: the two
//! algebraic contracts the report pipeline leans on.
//!
//! * **Quantile monotonicity** — for any recorded sample set, `quantile`
//!   is non-decreasing in `q`, bracketed by the exact min/max, and never
//!   underestimates the true order statistic (bucket upper bounds).
//! * **Merge associativity/commutativity** — per-point histograms are
//!   merged in whatever grouping the sweep produces; any merge tree over
//!   the same parts must yield byte-identical state, or `--jobs` could
//!   leak into artifact bytes.

use htm_gil_stats::LatencyHistogram;
use proptest::prelude::*;

fn from_samples(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_are_monotone_and_bracketed(
        samples in proptest::collection::vec(0u64..2_000_000_000, 1..400),
        qs in proptest::collection::vec(0u32..1001, 2..24),
    ) {
        let h = from_samples(&samples);
        let mut qs: Vec<f64> = qs.into_iter().map(|q| q as f64 / 1000.0).collect();
        qs.sort_by(f64::total_cmp);
        let mut prev = 0u64;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prev = v;
        }
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        prop_assert!(h.quantile(0.0) >= lo);
        prop_assert_eq!(h.quantile(1.0), hi);
        // Never underestimate the exact order statistic.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &q in &qs {
            let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            prop_assert!(
                h.quantile(q) >= sorted[target - 1],
                "quantile({q}) underestimates rank {target}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (from_samples(&a), from_samples(&b), from_samples(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.clone(), right, "merge grouping changed state");
        // c ⊕ b ⊕ a (commutativity)
        let mut rev = hc.clone();
        rev.merge(&hb);
        rev.merge(&ha);
        prop_assert_eq!(left.clone(), rev, "merge order changed state");
        // And both equal recording everything into one histogram.
        let mut all: Vec<u64> = a;
        all.extend(b);
        all.extend(c);
        prop_assert_eq!(left, from_samples(&all));
    }
}
