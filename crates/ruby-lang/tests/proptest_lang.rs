//! Property tests for the front-end: the lexer/parser must never panic on
//! arbitrary input (errors are `Err`, not crashes), and valid constructs
//! round-trip structurally.

use proptest::prelude::*;
use ruby_lang::{parse_program, Lexer, Node};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: must lex to Ok or Err, never panic.
    #[test]
    fn lexer_never_panics(src in "\\PC*") {
        let _ = Lexer::new(&src).tokenize();
    }

    /// Arbitrary token-ish soup: parser must never panic.
    #[test]
    fn parser_never_panics(src in "[a-z0-9+\\-*/%=<>!&|(){}\\[\\].,:;#\"'\\n @$?]*") {
        let _ = parse_program(&src);
    }

    /// Integer literals round-trip through the parser.
    #[test]
    fn integer_literals_roundtrip(n in -1_000_000i64..1_000_000) {
        let src = format!("{n}");
        match parse_program(&src) {
            Ok(Node::Int(v)) => prop_assert_eq!(v, n),
            other => prop_assert!(false, "parsed {:?}", other),
        }
    }

    /// Binary arithmetic over literals parses into the expected tree shape
    /// regardless of spacing.
    #[test]
    fn arithmetic_parses_with_random_spacing(
        a in 0i64..1000,
        b in 1i64..1000,
        s1 in " {0,3}",
        s2 in " {0,3}",
    ) {
        let src = format!("{a}{s1}+{s2}{b}");
        match parse_program(&src) {
            Ok(Node::BinExpr { .. }) => {}
            other => prop_assert!(false, "parsed {:?} from {:?}", other, src),
        }
    }

    /// Identifier-shaped names parse as lvars/self-calls, never crash the
    /// keyword gluing logic.
    #[test]
    fn identifiers_with_predicate_suffix(name in "v[a-z0-9_]{0,10}") {
        let _ = parse_program(&name);
        let _ = parse_program(&format!("x.{name}?"));
        let _ = parse_program(&format!("{name} = 1\n{name} += 2"));
    }

    /// While loops with random small bodies parse (variable names are
    /// prefixed so the generator cannot produce a keyword).
    #[test]
    fn while_loops_parse(iters in 1u32..100, var in "v[a-z]{0,3}") {
        let src = format!("{var} = 0\nwhile {var} < {iters}\n  {var} += 1\nend\n{var}");
        prop_assert!(parse_program(&src).is_ok(), "{:?}", src);
    }

    /// Method definitions with random parameter lists parse and keep their
    /// parameter count.
    #[test]
    fn defs_keep_param_count(nparams in 0usize..6) {
        let params: Vec<String> = (0..nparams).map(|i| format!("p{i}")).collect();
        let src = format!("def m({})\n  1\nend", params.join(", "));
        match parse_program(&src) {
            Ok(Node::MethodDef { params: got, .. }) => prop_assert_eq!(got.len(), nparams),
            other => prop_assert!(false, "parsed {:?}", other),
        }
    }

    /// Deeply nested parentheses neither crash nor mis-parse.
    #[test]
    fn nested_parens(depth in 1usize..40) {
        let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        match parse_program(&src) {
            Ok(Node::Int(1)) => {}
            other => prop_assert!(false, "parsed {:?}", other),
        }
    }
}
