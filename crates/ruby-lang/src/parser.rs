//! Recursive-descent parser producing [`crate::ast::Node`] trees.
//!
//! Precedence follows Ruby's operator table. `if`/`while`/`until` are
//! expressions (as in Ruby); `X if Y` / `X unless Y` statement modifiers
//! are supported. `begin/rescue` and `case/when` are outside the subset and
//! produce a clear error.

use crate::ast::{BinOp, BlockDef, Node, UnOp};
use crate::lexer::Lexer;
use crate::token::{Token, TokenKind};

/// Parse failure with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub line: u32,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete program.
pub fn parse_program(src: &str) -> Result<Node, ParseError> {
    let tokens = Lexer::new(src).tokenize().map_err(|e| ParseError { msg: e.msg, line: e.line })?;
    let mut p = Parser { toks: tokens, pos: 0, no_do_block: false };
    let body = p.parse_stmts(&[TokenKind::Eof])?;
    p.expect(&TokenKind::Eof)?;
    Ok(body)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Set while parsing a `while`/`until` condition so a trailing `do`
    /// terminates the condition instead of opening a block.
    no_do_block: bool,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        self.toks.get(self.pos + n).map(|t| &t.kind).unwrap_or(&TokenKind::Eof)
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: &TokenKind) -> Result<(), ParseError> {
        if self.eat(k) {
            Ok(())
        } else {
            self.err(format!("expected {:?}, found {:?}", k, self.peek()))
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { msg: msg.into(), line: self.line() })
    }

    fn skip_terms(&mut self) {
        while matches!(self.peek(), TokenKind::Newline | TokenKind::Semi) {
            self.bump();
        }
    }

    /// Parse statements until one of `stops` (not consumed).
    fn parse_stmts(&mut self, stops: &[TokenKind]) -> Result<Node, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_terms();
            if stops.iter().any(|s| self.peek() == s) {
                break;
            }
            let stmt = self.parse_stmt()?;
            out.push(stmt);
            // A statement must be followed by a terminator or a stop token.
            if !matches!(self.peek(), TokenKind::Newline | TokenKind::Semi)
                && !stops.iter().any(|s| self.peek() == s)
            {
                return self.err(format!("expected end of statement, found {:?}", self.peek()));
            }
        }
        if out.is_empty() {
            Ok(Node::Nil)
        } else {
            Ok(Node::seq(out))
        }
    }

    fn parse_stmt(&mut self) -> Result<Node, ParseError> {
        let node = match self.peek().clone() {
            TokenKind::KwDef => self.parse_def()?,
            TokenKind::KwClass => self.parse_class()?,
            TokenKind::KwModule => return self.err("modules are outside the subset; use classes"),
            TokenKind::KwBeginK | TokenKind::KwRescue | TokenKind::KwEnsure => {
                return self.err("begin/rescue is outside the subset")
            }
            TokenKind::KwCase | TokenKind::KwWhen => {
                return self.err("case/when is outside the subset; use if/elsif")
            }
            TokenKind::KwReturn => {
                self.bump();
                let value =
                    if self.stmt_ends_here() { None } else { Some(Box::new(self.parse_expr()?)) };
                Node::Return(value)
            }
            TokenKind::KwBreak => {
                self.bump();
                Node::Break
            }
            TokenKind::KwNext => {
                self.bump();
                Node::Next
            }
            _ => self.parse_expr()?,
        };
        // Statement modifiers: `expr if cond`, `expr unless cond`.
        match self.peek() {
            TokenKind::KwIf => {
                self.bump();
                let cond = self.parse_expr()?;
                Ok(Node::If { cond: Box::new(cond), then: Box::new(node), els: None })
            }
            TokenKind::KwUnless => {
                self.bump();
                let cond = self.parse_expr()?;
                Ok(Node::If {
                    cond: Box::new(Node::UnExpr { op: UnOp::Not, e: Box::new(cond) }),
                    then: Box::new(node),
                    els: None,
                })
            }
            _ => Ok(node),
        }
    }

    fn stmt_ends_here(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Newline
                | TokenKind::Semi
                | TokenKind::KwEnd
                | TokenKind::Eof
                | TokenKind::KwIf
                | TokenKind::KwUnless
        )
    }

    fn parse_def(&mut self) -> Result<Node, ParseError> {
        self.expect(&TokenKind::KwDef)?;
        let mut on_self = false;
        if self.peek() == &TokenKind::KwSelf && self.peek_at(1) == &TokenKind::Dot {
            self.bump();
            self.bump();
            on_self = true;
        }
        let name = self.method_name()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            while self.peek() != &TokenKind::RParen {
                match self.bump() {
                    TokenKind::Ident(n) => params.push(n),
                    other => return self.err(format!("expected parameter name, found {other:?}")),
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        } else if let TokenKind::Ident(_) = self.peek() {
            // `def foo a, b` (paren-less parameter list)
            loop {
                match self.bump() {
                    TokenKind::Ident(n) => params.push(n),
                    other => return self.err(format!("expected parameter name, found {other:?}")),
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_stmts(&[TokenKind::KwEnd])?;
        self.expect(&TokenKind::KwEnd)?;
        Ok(Node::MethodDef { name, params, body: Box::new(body), on_self })
    }

    fn method_name(&mut self) -> Result<String, ParseError> {
        // Operator method definitions (`def ==(o)`) plus normal names.
        let name = match self.bump() {
            TokenKind::Ident(n) => {
                // `def x=(v)` attribute-writer definitions.
                if self.peek() == &TokenKind::Assign && self.peek_at(1) == &TokenKind::LParen {
                    self.bump();
                    format!("{n}=")
                } else {
                    n
                }
            }
            TokenKind::IdentQ(n) => n,
            TokenKind::Const(n) => n,
            // Keywords are legal method names after a dot (`r.begin`,
            // `r.end`, `x.class`).
            TokenKind::KwBeginK => "begin".into(),
            TokenKind::KwEnd => "end".into(),
            TokenKind::KwClass => "class".into(),
            TokenKind::LBracket => {
                self.expect(&TokenKind::RBracket)?;
                if self.eat(&TokenKind::Assign) {
                    "[]=".to_string()
                } else {
                    "[]".to_string()
                }
            }
            TokenKind::Plus => "+".into(),
            TokenKind::Minus => "-".into(),
            TokenKind::Star => "*".into(),
            TokenKind::Slash => "/".into(),
            TokenKind::Percent => "%".into(),
            TokenKind::Eq => "==".into(),
            TokenKind::Cmp => "<=>".into(),
            TokenKind::Lt => "<".into(),
            TokenKind::Le => "<=".into(),
            TokenKind::Gt => ">".into(),
            TokenKind::Ge => ">=".into(),
            TokenKind::Shl => "<<".into(),
            other => return self.err(format!("expected method name, found {other:?}")),
        };
        Ok(name)
    }

    fn parse_class(&mut self) -> Result<Node, ParseError> {
        self.expect(&TokenKind::KwClass)?;
        let name = match self.bump() {
            TokenKind::Const(n) => n,
            other => return self.err(format!("expected class name, found {other:?}")),
        };
        let superclass = if self.eat(&TokenKind::Lt) {
            match self.bump() {
                TokenKind::Const(n) => Some(n),
                other => return self.err(format!("expected superclass name, found {other:?}")),
            }
        } else {
            None
        };
        let body = self.parse_stmts(&[TokenKind::KwEnd])?;
        self.expect(&TokenKind::KwEnd)?;
        Ok(Node::ClassDef { name, superclass, body: Box::new(body) })
    }

    // ---- expressions ----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Node, ParseError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Node, ParseError> {
        let lhs = self.parse_keyword_logic()?;
        let op = match self.peek() {
            TokenKind::Assign => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Mod),
            TokenKind::ShlEq => Some(BinOp::Shl),
            TokenKind::OrOrEq => {
                self.bump();
                let value = self.parse_assignment()?;
                return self.make_logic_assign(lhs, value, false);
            }
            TokenKind::AndAndEq => {
                self.bump();
                let value = self.parse_assignment()?;
                return self.make_logic_assign(lhs, value, true);
            }
            _ => return Ok(lhs),
        };
        if !lhs.is_lvalue() {
            return self.err("left-hand side is not assignable");
        }
        self.bump();
        let value = self.parse_assignment()?; // right-associative
        match op {
            None => Ok(Node::Assign { target: Box::new(lhs), value: Box::new(value) }),
            Some(op) => Ok(Node::OpAssign { target: Box::new(lhs), op, value: Box::new(value) }),
        }
    }

    fn make_logic_assign(&self, lhs: Node, value: Node, is_and: bool) -> Result<Node, ParseError> {
        if !lhs.is_lvalue() {
            return self.err("left-hand side is not assignable");
        }
        Ok(Node::OrAssign { target: Box::new(lhs), value: Box::new(value), is_and })
    }

    /// Lowest precedence: `and` / `or` / `not` keywords.
    fn parse_keyword_logic(&mut self) -> Result<Node, ParseError> {
        if self.eat(&TokenKind::KwNot) {
            let e = self.parse_keyword_logic()?;
            return Ok(Node::UnExpr { op: UnOp::Not, e: Box::new(e) });
        }
        let mut l = self.parse_ternary()?;
        loop {
            let is_and = match self.peek() {
                TokenKind::KwAnd => true,
                TokenKind::KwOr => false,
                _ => break,
            };
            self.bump();
            let r = self.parse_ternary()?;
            l = Node::Logical { is_and, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_ternary(&mut self) -> Result<Node, ParseError> {
        let cond = self.parse_range()?;
        if self.eat(&TokenKind::Question) {
            let then = self.parse_ternary()?;
            self.expect(&TokenKind::Colon)?;
            let els = self.parse_ternary()?;
            return Ok(Node::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            });
        }
        Ok(cond)
    }

    fn parse_range(&mut self) -> Result<Node, ParseError> {
        let lo = self.parse_oror()?;
        let excl = match self.peek() {
            TokenKind::DotDot => false,
            TokenKind::DotDotDot => true,
            _ => return Ok(lo),
        };
        self.bump();
        let hi = self.parse_oror()?;
        Ok(Node::Range { lo: Box::new(lo), hi: Box::new(hi), excl })
    }

    fn parse_oror(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_andand()?;
        while self.eat(&TokenKind::OrOr) {
            let r = self.parse_andand()?;
            l = Node::Logical { is_and: false, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_andand(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let r = self.parse_equality()?;
            l = Node::Logical { is_and: true, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_equality(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_comparison()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Cmp => BinOp::Cmp,
                _ => break,
            };
            self.bump();
            let r = self.parse_comparison()?;
            l = Node::BinExpr { op, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_comparison(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_bitor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.parse_bitor()?;
            l = Node::BinExpr { op, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_bitor(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_bitand()?;
        loop {
            let op = match self.peek() {
                TokenKind::Pipe => BinOp::BitOr,
                TokenKind::Caret => BinOp::BitXor,
                _ => break,
            };
            self.bump();
            let r = self.parse_bitand()?;
            l = Node::BinExpr { op, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_bitand(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_shift()?;
        while self.peek() == &TokenKind::Amp {
            self.bump();
            let r = self.parse_shift()?;
            l = Node::BinExpr { op: BinOp::BitAnd, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_shift(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let r = self.parse_additive()?;
            l = Node::BinExpr { op, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_additive(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.parse_multiplicative()?;
            l = Node::BinExpr { op, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_multiplicative(&mut self) -> Result<Node, ParseError> {
        let mut l = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.parse_unary()?;
            l = Node::BinExpr { op, l: Box::new(l), r: Box::new(r) };
        }
        Ok(l)
    }

    fn parse_unary(&mut self) -> Result<Node, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                // A minus directly before a numeric literal folds into the
                // literal *before* postfix methods apply (Ruby: `-3.abs`
                // is `(-3).abs == 3`).
                match self.peek().clone() {
                    TokenKind::Int(i) => {
                        self.bump();
                        return self.parse_postfix_from(Node::Int(-i));
                    }
                    TokenKind::Float(f) => {
                        self.bump();
                        return self.parse_postfix_from(Node::Float(-f));
                    }
                    _ => {}
                }
                match self.parse_unary()? {
                    Node::Int(i) => Ok(Node::Int(-i)),
                    Node::Float(f) => Ok(Node::Float(-f)),
                    e => Ok(Node::UnExpr { op: UnOp::Neg, e: Box::new(e) }),
                }
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Node::UnExpr { op: UnOp::Not, e: Box::new(e) })
            }
            TokenKind::Tilde => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Node::UnExpr { op: UnOp::BitNot, e: Box::new(e) })
            }
            _ => self.parse_power(),
        }
    }

    fn parse_power(&mut self) -> Result<Node, ParseError> {
        let base = self.parse_postfix()?;
        if self.eat(&TokenKind::Pow) {
            let exp = self.parse_unary()?; // right-associative
            return Ok(Node::BinExpr { op: BinOp::Pow, l: Box::new(base), r: Box::new(exp) });
        }
        Ok(base)
    }

    fn parse_postfix(&mut self) -> Result<Node, ParseError> {
        let e = self.parse_primary()?;
        self.parse_postfix_from(e)
    }

    /// Postfix continuation (`.m`, `[...]`) applied to an already-parsed
    /// base expression.
    fn parse_postfix_from(&mut self, e: Node) -> Result<Node, ParseError> {
        let mut e = e;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let name = self.method_name()?;
                    let args = if self.peek() == &TokenKind::LParen {
                        self.bump();
                        let args = self.parse_args(&TokenKind::RParen)?;
                        self.expect(&TokenKind::RParen)?;
                        args
                    } else {
                        Vec::new()
                    };
                    let block = self.maybe_block()?;
                    e = Node::Call { recv: Some(Box::new(e)), name, args, block };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let args = self.parse_args(&TokenKind::RBracket)?;
                    self.expect(&TokenKind::RBracket)?;
                    e = Node::Index { recv: Box::new(e), args };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_args(&mut self, stop: &TokenKind) -> Result<Vec<Node>, ParseError> {
        let mut args = Vec::new();
        self.skip_terms();
        while self.peek() != stop {
            args.push(self.parse_expr()?);
            self.skip_terms();
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            self.skip_terms();
        }
        Ok(args)
    }

    fn maybe_block(&mut self) -> Result<Option<BlockDef>, ParseError> {
        if self.peek() == &TokenKind::LBrace {
            self.bump();
            let params = self.block_params()?;
            let body = self.parse_stmts(&[TokenKind::RBrace])?;
            self.expect(&TokenKind::RBrace)?;
            return Ok(Some(BlockDef { params, body: Box::new(body) }));
        }
        if self.peek() == &TokenKind::KwDo && !self.no_do_block {
            self.bump();
            let params = self.block_params()?;
            let body = self.parse_stmts(&[TokenKind::KwEnd])?;
            self.expect(&TokenKind::KwEnd)?;
            return Ok(Some(BlockDef { params, body: Box::new(body) }));
        }
        Ok(None)
    }

    fn block_params(&mut self) -> Result<Vec<String>, ParseError> {
        self.skip_terms();
        let mut params = Vec::new();
        if self.eat(&TokenKind::Pipe) {
            while self.peek() != &TokenKind::Pipe {
                match self.bump() {
                    TokenKind::Ident(n) => params.push(n),
                    other => return self.err(format!("expected block parameter, found {other:?}")),
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Pipe)?;
        }
        Ok(params)
    }

    fn parse_primary(&mut self) -> Result<Node, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Node::Int(i))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Node::Float(f))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Node::Str(s))
            }
            TokenKind::Sym(s) => {
                self.bump();
                Ok(Node::Sym(s))
            }
            TokenKind::KwNil => {
                self.bump();
                Ok(Node::Nil)
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Node::True)
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Node::False)
            }
            TokenKind::KwSelf => {
                self.bump();
                Ok(Node::SelfExpr)
            }
            TokenKind::KwYield => {
                self.bump();
                let args = if self.eat(&TokenKind::LParen) {
                    let a = self.parse_args(&TokenKind::RParen)?;
                    self.expect(&TokenKind::RParen)?;
                    a
                } else {
                    Vec::new()
                };
                Ok(Node::Yield(args))
            }
            TokenKind::LParen => {
                self.bump();
                self.skip_terms();
                let e = self.parse_expr()?;
                self.skip_terms();
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                let elems = self.parse_args(&TokenKind::RBracket)?;
                self.expect(&TokenKind::RBracket)?;
                Ok(Node::ArrayLit(elems))
            }
            TokenKind::LBrace => {
                self.bump();
                self.skip_terms();
                let mut pairs = Vec::new();
                while self.peek() != &TokenKind::RBrace {
                    let k = self.parse_expr()?;
                    self.expect(&TokenKind::Arrow)?;
                    let v = self.parse_expr()?;
                    pairs.push((k, v));
                    self.skip_terms();
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                    self.skip_terms();
                }
                self.expect(&TokenKind::RBrace)?;
                Ok(Node::HashLit(pairs))
            }
            TokenKind::Ident(name) | TokenKind::IdentQ(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let args = self.parse_args(&TokenKind::RParen)?;
                    self.expect(&TokenKind::RParen)?;
                    let block = self.maybe_block()?;
                    return Ok(Node::Call { recv: None, name, args, block });
                }
                // `foo { … }` / `foo do … end`: zero-arg call with block.
                if self.peek() == &TokenKind::LBrace
                    || (self.peek() == &TokenKind::KwDo && !self.no_do_block)
                {
                    let block = self.maybe_block()?;
                    return Ok(Node::Call { recv: None, name, args: Vec::new(), block });
                }
                // Bare identifier: local variable or zero-arg self-call —
                // the compiler resolves which, from its scope table.
                Ok(Node::LVar(name))
            }
            TokenKind::Const(name) => {
                self.bump();
                Ok(Node::Const(name))
            }
            TokenKind::IVar(name) => {
                self.bump();
                Ok(Node::IVar(name))
            }
            TokenKind::CVar(name) => {
                self.bump();
                Ok(Node::CVar(name))
            }
            TokenKind::GVar(name) => {
                self.bump();
                Ok(Node::GVar(name))
            }
            TokenKind::KwIf => self.parse_if(false),
            TokenKind::KwUnless => self.parse_if(true),
            TokenKind::KwWhile => self.parse_while(false),
            TokenKind::KwUntil => self.parse_while(true),
            other => self.err(format!("unexpected token {other:?}")),
        }
    }

    fn parse_if(&mut self, negate: bool) -> Result<Node, ParseError> {
        self.bump(); // if / unless
        let cond = self.parse_expr()?;
        let _ = self.eat(&TokenKind::KwThen);
        let then = self.parse_stmts(&[TokenKind::KwElsif, TokenKind::KwElse, TokenKind::KwEnd])?;
        let els = match self.peek() {
            TokenKind::KwElsif => Some(Box::new(self.parse_if(false)?)),
            TokenKind::KwElse => {
                self.bump();
                let e = self.parse_stmts(&[TokenKind::KwEnd])?;
                self.expect(&TokenKind::KwEnd)?;
                Some(Box::new(e))
            }
            TokenKind::KwEnd => {
                self.bump();
                None
            }
            other => return self.err(format!("expected elsif/else/end, found {other:?}")),
        };
        let cond = if negate { Node::UnExpr { op: UnOp::Not, e: Box::new(cond) } } else { cond };
        Ok(Node::If { cond: Box::new(cond), then: Box::new(then), els })
    }

    fn parse_while(&mut self, negate: bool) -> Result<Node, ParseError> {
        self.bump(); // while / until
        let saved = self.no_do_block;
        self.no_do_block = true;
        let cond = self.parse_expr();
        self.no_do_block = saved;
        let cond = cond?;
        let _ = self.eat(&TokenKind::KwDo);
        let body = self.parse_stmts(&[TokenKind::KwEnd])?;
        self.expect(&TokenKind::KwEnd)?;
        let cond = if negate { Node::UnExpr { op: UnOp::Not, e: Box::new(cond) } } else { cond };
        Ok(Node::While { cond: Box::new(cond), body: Box::new(body) })
    }
}

// parse_if consumes its own `end` in the elsif-chain case; `parse_if(false)`
// recursion treats the chain's final `end` uniformly because the nested call
// consumes it.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Node as N;

    fn parse(src: &str) -> Node {
        parse_program(src).unwrap_or_else(|e| panic!("{e} in {src:?}"))
    }

    #[test]
    fn literals() {
        assert_eq!(parse("42"), N::Int(42));
        assert_eq!(parse("4.5"), N::Float(4.5));
        assert_eq!(parse("\"hi\""), N::Str("hi".into()));
        assert_eq!(parse(":sym"), N::Sym("sym".into()));
        assert_eq!(parse("nil"), N::Nil);
    }

    #[test]
    fn precedence_add_mul() {
        // 1 + 2 * 3 == 1 + (2 * 3)
        let n = parse("1 + 2 * 3");
        match n {
            N::BinExpr { op: BinOp::Add, l, r } => {
                assert_eq!(*l, N::Int(1));
                assert!(matches!(*r, N::BinExpr { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_folds_literals() {
        assert_eq!(parse("-5"), N::Int(-5));
        assert_eq!(parse("-2.5"), N::Float(-2.5));
    }

    #[test]
    fn assignment_chain() {
        let n = parse("x = y = 1");
        match n {
            N::Assign { target, value } => {
                assert_eq!(*target, N::LVar("x".into()));
                assert!(matches!(*value, N::Assign { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn op_assign() {
        let n = parse("x += 2");
        assert!(matches!(n, N::OpAssign { op: BinOp::Add, .. }));
    }

    #[test]
    fn index_assignment() {
        let n = parse("a[i] = 3");
        match n {
            N::Assign { target, .. } => assert!(matches!(*target, N::Index { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_assignment() {
        let n = parse("o.x = 3");
        match n {
            N::Assign { target, .. } => {
                assert!(matches!(*target, N::Call { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn method_call_with_block() {
        let n = parse("(1..3).each do |i|\n  x += i\nend");
        match n {
            N::Call { recv, name, block, .. } => {
                assert!(matches!(*recv.unwrap(), N::Range { .. }));
                assert_eq!(name, "each");
                let b = block.unwrap();
                assert_eq!(b.params, vec!["i".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn brace_block_vs_hash() {
        // Block after call:
        let n = parse("f { |a| a }");
        assert!(matches!(n, N::Call { block: Some(_), .. }));
        // Hash literal in expression position:
        let n = parse("h = { 1 => 2 }");
        match n {
            N::Assign { value, .. } => assert!(matches!(*value, N::HashLit(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_loop_with_condition_call() {
        let n = parse("while i <= n\n  i += 1\nend");
        assert!(matches!(n, N::While { .. }));
    }

    #[test]
    fn until_negates() {
        let n = parse("until done\n  x()\nend");
        match n {
            N::While { cond, .. } => assert!(matches!(*cond, N::UnExpr { op: UnOp::Not, .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_elsif_else() {
        let n = parse("if a\n1\nelsif b\n2\nelse\n3\nend");
        match n {
            N::If { els: Some(els), .. } => {
                assert!(matches!(*els, N::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn statement_modifier_if() {
        let n = parse("x = 1 if y");
        assert!(matches!(n, N::If { .. }));
    }

    #[test]
    fn def_with_params_and_body() {
        let n = parse("def add(a, b)\n  a + b\nend");
        match n {
            N::MethodDef { name, params, on_self, .. } => {
                assert_eq!(name, "add");
                assert_eq!(params, vec!["a".to_string(), "b".to_string()]);
                assert!(!on_self);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn def_self_and_operator_methods() {
        assert!(matches!(parse("def self.make()\n  1\nend"), N::MethodDef { on_self: true, .. }));
        assert!(matches!(parse("def ==(o)\n  true\nend"), N::MethodDef { .. }));
        match parse("def [](i)\n  i\nend") {
            N::MethodDef { name, .. } => assert_eq!(name, "[]"),
            other => panic!("{other:?}"),
        }
        match parse("def []=(i, v)\n  v\nend") {
            N::MethodDef { name, .. } => assert_eq!(name, "[]="),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_with_superclass() {
        let n = parse("class Foo < Bar\n  def m()\n    1\n  end\nend");
        match n {
            N::ClassDef { name, superclass, .. } => {
                assert_eq!(name, "Foo");
                assert_eq!(superclass, Some("Bar".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn yield_with_args() {
        let n = parse("def each2()\n  yield(1)\n  yield(2)\nend");
        assert!(matches!(n, N::MethodDef { .. }));
    }

    #[test]
    fn ternary() {
        let n = parse("a ? 1 : 2");
        assert!(matches!(n, N::Ternary { .. }));
    }

    #[test]
    fn logical_keywords_low_precedence() {
        // `a = 1 and b` parses as `(a = 1) and b` in Ruby; our statement
        // parser applies and/or above assignment inside one expression —
        // we accept the simpler `a and b` form.
        let n = parse("a and b or c");
        assert!(matches!(n, N::Logical { is_and: false, .. }));
    }

    #[test]
    fn range_literals() {
        assert!(matches!(parse("1..10"), N::Range { excl: false, .. }));
        assert!(matches!(parse("1...10"), N::Range { excl: true, .. }));
    }

    #[test]
    fn multiline_program() {
        let src = "def workload(n)\n  x = 0\n  i = 1\n  while i <= n\n    x += i\n    i += 1\n  end\n  x\nend\nworkload(10)";
        let n = parse(src);
        match n {
            N::Seq(stmts) => {
                assert_eq!(stmts.len(), 2);
                assert!(matches!(stmts[0], N::MethodDef { .. }));
                assert!(matches!(stmts[1], N::Call { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_have_lines() {
        let e = parse_program("x = \n )").unwrap_err();
        assert!(e.line >= 1);
        let e = parse_program("case x\nwhen 1\nend").unwrap_err();
        assert!(e.msg.contains("case"));
    }

    #[test]
    fn chained_calls_and_index() {
        let n = parse("a.b().c[1].d(2)");
        assert!(matches!(n, N::Call { .. }));
    }

    #[test]
    fn predicate_calls() {
        let n = parse("s.empty?");
        match n {
            N::Call { name, .. } => assert_eq!(name, "empty?"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paren_less_zero_arg_self_call_is_lvar_node() {
        // The parser cannot distinguish `foo` (local) from `foo` (call);
        // it emits LVar and the compiler resolves it.
        assert_eq!(parse("foo"), N::LVar("foo".into()));
    }
}
