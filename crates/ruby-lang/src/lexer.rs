//! Hand-written lexer for the Ruby subset.
//!
//! Newlines are significant (statement terminators) and are emitted as
//! tokens; the parser decides where they may be skipped. Comments run from
//! `#` to end of line. A trailing binary operator or comma suppresses the
//! following newline so expressions may wrap lines.

use crate::token::{Token, TokenKind};

/// Lexing failure with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub msg: String,
    pub line: u32,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Streaming lexer over source text.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    /// Lex the entire input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out: Vec<Token> = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            // Collapse runs of newlines; suppress a newline that follows a
            // continuation token (operator, comma, opening bracket…).
            if t.kind == TokenKind::Newline {
                match out.last().map(|p| &p.kind) {
                    None | Some(TokenKind::Newline) => continue,
                    Some(k) if continues_line(k) => continue,
                    _ => {}
                }
            }
            out.push(t);
            if eof {
                break;
            }
        }
        Ok(out)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LexError> {
        Err(LexError { msg: msg.into(), line: self.line })
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn tok(&self, kind: TokenKind, line: u32) -> Token {
        Token { kind, line }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        // Skip horizontal whitespace, comments and escaped newlines.
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'#' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'\\' if self.peek2() == b'\n' => {
                    self.bump();
                    self.bump();
                }
                _ => break,
            }
        }
        let line = self.line;
        let c = self.peek();
        if c == 0 {
            return Ok(self.tok(TokenKind::Eof, line));
        }
        if c == b'\n' {
            self.bump();
            return Ok(self.tok(TokenKind::Newline, line));
        }
        if c.is_ascii_digit() {
            return self.number(line);
        }
        if c == b'"' {
            return self.string(line);
        }
        if c == b':' && (self.peek2().is_ascii_alphabetic() || self.peek2() == b'_') {
            self.bump();
            let name = self.ident_chars();
            return Ok(self.tok(TokenKind::Sym(name), line));
        }
        if c == b'@' {
            self.bump();
            if self.peek() == b'@' {
                self.bump();
                let name = self.ident_chars();
                if name.is_empty() {
                    return self.err("expected class-variable name after @@");
                }
                return Ok(self.tok(TokenKind::CVar(name), line));
            }
            let name = self.ident_chars();
            if name.is_empty() {
                return self.err("expected instance-variable name after @");
            }
            return Ok(self.tok(TokenKind::IVar(name), line));
        }
        if c == b'$' {
            self.bump();
            let name = self.ident_chars();
            if name.is_empty() {
                return self.err("expected global-variable name after $");
            }
            return Ok(self.tok(TokenKind::GVar(name), line));
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let name = self.ident_chars();
            // Keyword check happens *after* the ?/! gluing below so that
            // `nil?`, `end_with?`-style names built on keywords still lex
            // as method names.
            let glued_kw = TokenKind::keyword(&name);
            if let Some(kw) = glued_kw.clone() {
                if self.peek() != b'?' && self.peek() != b'!' {
                    return Ok(self.tok(kw, line));
                }
            }
            if let Some(kw) = glued_kw {
                // Keyword followed directly by ? or ! — only glue when the
                // suffix is adjacent and not part of `!=`.
                let nxt = self.peek2();
                let is_ne = self.peek() == b'!' && nxt == b'=';
                if !is_ne && nxt != b' ' {
                    let q = self.bump();
                    let mut n = name.clone();
                    n.push(q as char);
                    return Ok(self.tok(TokenKind::IdentQ(n), line));
                }
                return Ok(self.tok(kw, line));
            }
            // Method names may end in ? or !
            if self.peek() == b'?' || self.peek() == b'!' {
                // `x ? a : b` ternary ambiguity: treat `ident?` as a method
                // name only when not followed by whitespace-expression. We
                // take the simple rule: `?`/`!` gluing only when followed
                // by `(`, `.`, `,`, `)`, newline, or space-then-lowercase…
                // In practice our subset only uses `empty?`-style calls in
                // postfix position, so gluing is always correct except for
                // the ternary, which the bundled sources write with spaces
                // around `?`. Glue when the previous char is directly
                // adjacent.
                let nxt = self.peek2();
                if self.peek() == b'!' && nxt == b'=' {
                    // `x != y` — do not glue.
                } else if nxt != b' ' || self.peek() == b'?' {
                    // Glue `foo?` / `foo!` when directly adjacent and not
                    // part of `!=`. For `foo? ` we still glue: ternaries in
                    // the subset put a space *before* `?`.
                    if nxt != b' ' {
                        let q = self.bump();
                        let mut n = name.clone();
                        n.push(q as char);
                        return Ok(self.tok(TokenKind::IdentQ(n), line));
                    }
                }
                if self.peek() == b'?' && nxt == b'(' {
                    let q = self.bump();
                    let mut n = name.clone();
                    n.push(q as char);
                    return Ok(self.tok(TokenKind::IdentQ(n), line));
                }
            }
            let first = name.as_bytes()[0];
            if first.is_ascii_uppercase() {
                return Ok(self.tok(TokenKind::Const(name), line));
            }
            return Ok(self.tok(TokenKind::Ident(name), line));
        }
        // Operators
        self.bump();
        let kind = match c {
            b'+' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::PlusEq
                } else {
                    TokenKind::Plus
                }
            }
            b'-' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::MinusEq
                } else {
                    TokenKind::Minus
                }
            }
            b'*' => {
                if self.peek() == b'*' {
                    self.bump();
                    TokenKind::Pow
                } else if self.peek() == b'=' {
                    self.bump();
                    TokenKind::StarEq
                } else {
                    TokenKind::Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::SlashEq
                } else {
                    TokenKind::Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::PercentEq
                } else {
                    TokenKind::Percent
                }
            }
            b'=' => match self.peek() {
                b'=' => {
                    self.bump();
                    TokenKind::Eq
                }
                b'>' => {
                    self.bump();
                    TokenKind::Arrow
                }
                _ => TokenKind::Assign,
            },
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::Ne
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => match self.peek() {
                b'=' => {
                    self.bump();
                    if self.peek() == b'>' {
                        self.bump();
                        TokenKind::Cmp
                    } else {
                        TokenKind::Le
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::ShlEq
                    } else {
                        TokenKind::Shl
                    }
                }
                _ => TokenKind::Lt,
            },
            b'>' => match self.peek() {
                b'=' => {
                    self.bump();
                    TokenKind::Ge
                }
                b'>' => {
                    self.bump();
                    TokenKind::Shr
                }
                _ => TokenKind::Gt,
            },
            b'&' => match self.peek() {
                b'&' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::AndAndEq
                    } else {
                        TokenKind::AndAnd
                    }
                }
                _ => TokenKind::Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::OrOrEq
                    } else {
                        TokenKind::OrOr
                    }
                }
                _ => TokenKind::Pipe,
            },
            b'^' => TokenKind::Caret,
            b'~' => TokenKind::Tilde,
            b'.' => {
                if self.peek() == b'.' {
                    self.bump();
                    if self.peek() == b'.' {
                        self.bump();
                        TokenKind::DotDotDot
                    } else {
                        TokenKind::DotDot
                    }
                } else {
                    TokenKind::Dot
                }
            }
            b',' => TokenKind::Comma,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b';' => TokenKind::Semi,
            b'?' => TokenKind::Question,
            b':' => {
                if self.peek() == b':' {
                    self.bump();
                    TokenKind::ColonColon
                } else {
                    TokenKind::Colon
                }
            }
            other => return self.err(format!("unexpected character {:?}", other as char)),
        };
        Ok(self.tok(kind, line))
    }

    fn ident_chars(&mut self) -> String {
        let start = self.pos;
        while {
            let c = self.peek();
            c.is_ascii_alphanumeric() || c == b'_'
        } {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn number(&mut self, line: u32) -> Result<Token, LexError> {
        let start = self.pos;
        while self.peek().is_ascii_digit() || self.peek() == b'_' {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = self.pos;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text: String = String::from_utf8_lossy(&self.src[start..self.pos])
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if is_float {
            match text.parse::<f64>() {
                Ok(f) => Ok(self.tok(TokenKind::Float(f), line)),
                Err(_) => self.err(format!("bad float literal {text:?}")),
            }
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(self.tok(TokenKind::Int(i), line)),
                Err(_) => self.err(format!("integer literal out of range {text:?}")),
            }
        }
    }

    fn string(&mut self, line: u32) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                0 => return self.err("unterminated string literal"),
                b'"' => break,
                b'\\' => {
                    let e = self.bump();
                    s.push(match e {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'0' => '\0',
                        b'\\' => '\\',
                        b'"' => '"',
                        b'e' => '\x1b',
                        b's' => ' ',
                        other => other as char,
                    });
                }
                c => s.push(c as char),
            }
        }
        Ok(self.tok(TokenKind::Str(s), line))
    }
}

/// Tokens after which a newline does not terminate the statement.
fn continues_line(k: &TokenKind) -> bool {
    use TokenKind::*;
    matches!(
        k,
        Plus | Minus
            | Star
            | Slash
            | Percent
            | Pow
            | Eq
            | Ne
            | Lt
            | Le
            | Gt
            | Ge
            | Cmp
            | AndAnd
            | OrOr
            | Assign
            | PlusEq
            | MinusEq
            | StarEq
            | SlashEq
            | PercentEq
            | OrOrEq
            | AndAndEq
            | ShlEq
            | Shl
            | Shr
            | Amp
            | Pipe
            | Caret
            | Dot
            | Comma
            | LParen
            | LBracket
            | Arrow
            | Question
            | Colon
            | KwAnd
            | KwOr
            | KwNot
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 23 4.5 1_000 2e3"),
            vec![T::Int(1), T::Int(23), T::Float(4.5), T::Int(1000), T::Float(2000.0), T::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb" "c\"d""#),
            vec![T::Str("a\nb".into()), T::Str("c\"d".into()), T::Eof]
        );
    }

    #[test]
    fn identifiers_and_keywords() {
        assert_eq!(
            kinds("def foo_1 end Bar @iv @@cv $gv :sym"),
            vec![
                T::KwDef,
                T::Ident("foo_1".into()),
                T::KwEnd,
                T::Const("Bar".into()),
                T::IVar("iv".into()),
                T::CVar("cv".into()),
                T::GVar("gv".into()),
                T::Sym("sym".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("+ - * / % ** == != < <= > >= <=> && || << >> .. ..."),
            vec![
                T::Plus,
                T::Minus,
                T::Star,
                T::Slash,
                T::Percent,
                T::Pow,
                T::Eq,
                T::Ne,
                T::Lt,
                T::Le,
                T::Gt,
                T::Ge,
                T::Cmp,
                T::AndAnd,
                T::OrOr,
                T::Shl,
                T::Shr,
                T::DotDot,
                T::DotDotDot,
                T::Eof
            ]
        );
    }

    #[test]
    fn op_assign() {
        assert_eq!(
            kinds("x += 1; y ||= 2"),
            vec![
                T::Ident("x".into()),
                T::PlusEq,
                T::Int(1),
                T::Semi,
                T::Ident("y".into()),
                T::OrOrEq,
                T::Int(2),
                T::Eof
            ]
        );
    }

    #[test]
    fn comments_and_newlines() {
        assert_eq!(
            kinds("a # comment\nb"),
            vec![T::Ident("a".into()), T::Newline, T::Ident("b".into()), T::Eof]
        );
    }

    #[test]
    fn newline_collapsing_and_continuation() {
        // Leading newlines dropped; newline after `+` suppressed.
        assert_eq!(
            kinds("\n\na +\nb\n\nc"),
            vec![
                T::Ident("a".into()),
                T::Plus,
                T::Ident("b".into()),
                T::Newline,
                T::Ident("c".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn predicate_method_names() {
        assert_eq!(
            kinds("x.empty?\ny.key?(1)"),
            vec![
                T::Ident("x".into()),
                T::Dot,
                T::IdentQ("empty?".into()),
                T::Newline,
                T::Ident("y".into()),
                T::Dot,
                T::IdentQ("key?".into()),
                T::LParen,
                T::Int(1),
                T::RParen,
                T::Eof
            ]
        );
    }

    #[test]
    fn ternary_with_spaces_is_not_glued() {
        assert_eq!(
            kinds("a ? b : c"),
            vec![
                T::Ident("a".into()),
                T::Question,
                T::Ident("b".into()),
                T::Colon,
                T::Ident("c".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = Lexer::new("a\nb\nc").tokenize().unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn bang_ident_glued_but_not_ne() {
        assert_eq!(
            kinds("a != b"),
            vec![T::Ident("a".into()), T::Ne, T::Ident("b".into()), T::Eof]
        );
        assert_eq!(kinds("sort!()"), vec![T::IdentQ("sort!".into()), T::LParen, T::RParen, T::Eof]);
    }
}
