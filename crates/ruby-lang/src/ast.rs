//! Abstract syntax tree for the Ruby subset.

/// Binary operators (all compile to `opt_*` bytecodes or generic sends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Cmp,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
}

impl BinOp {
    /// Ruby method name the operator dispatches to when the receiver is
    /// not a specialized type.
    pub fn method_name(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Cmp => "<=>",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// A block literal (`do |params| body end` / `{ |params| body }`).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDef {
    pub params: Vec<String>,
    pub body: Box<Node>,
}

/// AST node. Statement sequences are [`Node::Seq`]; every node is an
/// expression (Ruby semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Nil,
    True,
    False,
    SelfExpr,
    Int(i64),
    Float(f64),
    Str(String),
    Sym(String),
    /// `[a, b, c]`
    ArrayLit(Vec<Node>),
    /// `{ k => v, … }`
    HashLit(Vec<(Node, Node)>),
    /// `lo..hi` (`excl` for `...`)
    Range {
        lo: Box<Node>,
        hi: Box<Node>,
        excl: bool,
    },
    LVar(String),
    IVar(String),
    CVar(String),
    GVar(String),
    Const(String),
    /// Assignment to a local/ivar/cvar/gvar/const, an index (`a[i] = v`),
    /// or an attribute (`o.x = v`).
    Assign {
        target: Box<Node>,
        value: Box<Node>,
    },
    /// `target op= value`, desugared by the compiler into read-op-write.
    OpAssign {
        target: Box<Node>,
        op: BinOp,
        value: Box<Node>,
    },
    /// `target ||= value` / `target &&= value`.
    OrAssign {
        target: Box<Node>,
        value: Box<Node>,
        is_and: bool,
    },
    BinExpr {
        op: BinOp,
        l: Box<Node>,
        r: Box<Node>,
    },
    UnExpr {
        op: UnOp,
        e: Box<Node>,
    },
    /// Short-circuit `&&` / `||` (also `and` / `or`).
    Logical {
        is_and: bool,
        l: Box<Node>,
        r: Box<Node>,
    },
    /// `a[i]`, `a[i, j]`
    Index {
        recv: Box<Node>,
        args: Vec<Node>,
    },
    /// Method call. `recv == None` means a self-call (or local function).
    Call {
        recv: Option<Box<Node>>,
        name: String,
        args: Vec<Node>,
        block: Option<BlockDef>,
    },
    Yield(Vec<Node>),
    If {
        cond: Box<Node>,
        then: Box<Node>,
        els: Option<Box<Node>>,
    },
    /// `while` / `until` (cond negated by the parser for `until`).
    While {
        cond: Box<Node>,
        body: Box<Node>,
    },
    Ternary {
        cond: Box<Node>,
        then: Box<Node>,
        els: Box<Node>,
    },
    Return(Option<Box<Node>>),
    Break,
    Next,
    /// Statement sequence; value is the last statement's value.
    Seq(Vec<Node>),
    MethodDef {
        name: String,
        params: Vec<String>,
        body: Box<Node>,
        /// `def self.name` — defined on the singleton (class-level).
        on_self: bool,
    },
    ClassDef {
        name: String,
        superclass: Option<String>,
        body: Box<Node>,
    },
}

impl Node {
    /// Convenience: wrap a list of statements, collapsing singletons.
    pub fn seq(mut stmts: Vec<Node>) -> Node {
        if stmts.len() == 1 {
            stmts.pop().unwrap()
        } else {
            Node::Seq(stmts)
        }
    }

    /// True for nodes that are valid assignment targets.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self,
            Node::LVar(_)
                | Node::IVar(_)
                | Node::CVar(_)
                | Node::GVar(_)
                | Node::Const(_)
                | Node::Index { .. }
        ) || matches!(self, Node::Call { recv: Some(_), args, block: None, .. } if args.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_collapses_singleton() {
        assert_eq!(Node::seq(vec![Node::Nil]), Node::Nil);
        assert_eq!(Node::seq(vec![Node::Nil, Node::True]), Node::Seq(vec![Node::Nil, Node::True]));
    }

    #[test]
    fn lvalue_classification() {
        assert!(Node::LVar("x".into()).is_lvalue());
        assert!(Node::IVar("x".into()).is_lvalue());
        assert!(Node::Index { recv: Box::new(Node::LVar("a".into())), args: vec![Node::Int(0)] }
            .is_lvalue());
        assert!(!Node::Int(1).is_lvalue());
        // Attribute write target: `o.x`
        assert!(Node::Call {
            recv: Some(Box::new(Node::LVar("o".into()))),
            name: "x".into(),
            args: vec![],
            block: None
        }
        .is_lvalue());
    }

    #[test]
    fn binop_method_names() {
        assert_eq!(BinOp::Add.method_name(), "+");
        assert_eq!(BinOp::Cmp.method_name(), "<=>");
        assert_eq!(BinOp::Shl.method_name(), "<<");
    }
}
