//! Token definitions shared by the lexer and parser.

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// All token kinds of the Ruby subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    Int(i64),
    Float(f64),
    Str(String),
    Sym(String),

    // Identifier classes
    /// Lowercase/underscore identifier (local variable or method name).
    Ident(String),
    /// Identifier ending in `?` or `!` (method name only).
    IdentQ(String),
    /// Capitalized identifier (constant / class name).
    Const(String),
    /// `@name`
    IVar(String),
    /// `@@name`
    CVar(String),
    /// `$name`
    GVar(String),

    // Keywords
    KwDef,
    KwEnd,
    KwIf,
    KwElsif,
    KwElse,
    KwUnless,
    KwWhile,
    KwUntil,
    KwDo,
    KwReturn,
    KwBreak,
    KwNext,
    KwNil,
    KwTrue,
    KwFalse,
    KwClass,
    KwSelf,
    KwThen,
    KwYield,
    KwAnd,
    KwOr,
    KwNot,
    KwBeginK,
    KwRescue,
    KwEnsure,
    KwCase,
    KwWhen,
    KwModule,

    // Operators and punctuation
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Pow, // **
    Eq,  // ==
    Ne,  // !=
    Lt,
    Le,
    Gt,
    Ge,
    Cmp,    // <=>
    AndAnd, // &&
    OrOr,   // ||
    Bang,   // !
    Assign, // =
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    OrOrEq,   // ||=
    AndAndEq, // &&=
    ShlEq,    // <<=
    Shl,      // <<
    Shr,      // >>
    Amp,      // &
    Pipe,     // |
    Caret,    // ^
    Tilde,    // ~
    Dot,
    DotDot,    // ..
    DotDotDot, // ...
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Newline,
    Question,
    Colon,
    ColonColon,
    Arrow, // =>
    Eof,
}

impl TokenKind {
    /// Keyword lookup for identifier-shaped lexemes.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "def" => TokenKind::KwDef,
            "end" => TokenKind::KwEnd,
            "if" => TokenKind::KwIf,
            "elsif" => TokenKind::KwElsif,
            "else" => TokenKind::KwElse,
            "unless" => TokenKind::KwUnless,
            "while" => TokenKind::KwWhile,
            "until" => TokenKind::KwUntil,
            "do" => TokenKind::KwDo,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "next" => TokenKind::KwNext,
            "nil" => TokenKind::KwNil,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            "class" => TokenKind::KwClass,
            "self" => TokenKind::KwSelf,
            "then" => TokenKind::KwThen,
            "yield" => TokenKind::KwYield,
            "and" => TokenKind::KwAnd,
            "or" => TokenKind::KwOr,
            "not" => TokenKind::KwNot,
            "begin" => TokenKind::KwBeginK,
            "rescue" => TokenKind::KwRescue,
            "ensure" => TokenKind::KwEnsure,
            "case" => TokenKind::KwCase,
            "when" => TokenKind::KwWhen,
            "module" => TokenKind::KwModule,
            _ => return None,
        })
    }

    /// True for tokens that terminate a statement.
    pub fn is_terminator(&self) -> bool {
        matches!(self, TokenKind::Newline | TokenKind::Semi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("def"), Some(TokenKind::KwDef));
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
    }

    #[test]
    fn terminators() {
        assert!(TokenKind::Newline.is_terminator());
        assert!(TokenKind::Semi.is_terminator());
        assert!(!TokenKind::Comma.is_terminator());
    }
}
