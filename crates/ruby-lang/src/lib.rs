//! # ruby-lang
//!
//! Front-end for the Ruby subset interpreted by `ruby-vm`: a hand-written
//! lexer, an AST, and a recursive-descent parser.
//!
//! The subset covers what CRuby 1.9.3 needs to run the paper's workloads —
//! the NAS Parallel Benchmarks port, the WEBrick model, the Rails model and
//! the micro-benchmarks of Fig. 4:
//!
//! * literals: integers, floats, double-quoted strings (with escapes),
//!   symbols, `nil`/`true`/`false`, array/hash literals, ranges;
//! * variables: locals, `@ivars`, `@@cvars`, `$globals`, `CONSTANTS`;
//! * full operator set with Ruby precedence, `op=` assignments, ternary;
//! * control flow: `if`/`elsif`/`else`/`unless`, `while`/`until`,
//!   `break`/`next`/`return`;
//! * methods (`def`, `def self.`), classes with single inheritance and
//!   `attr_accessor`-family declarations;
//! * blocks (`do |x| … end` and `{ |x| … }`) and `yield` — the machinery
//!   behind the paper's Iterator micro-benchmark;
//! * method calls require parentheses except for zero-argument calls
//!   (a deliberate simplification; the bundled workloads comply).
//!
//! Parsing produces a [`ast::Node`] tree; compilation to YARV-like
//! bytecode lives in `ruby-vm`.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{BinOp, BlockDef, Node, UnOp};
pub use lexer::{LexError, Lexer};
pub use parser::{parse_program, ParseError};
pub use token::{Token, TokenKind};
