//! Runtime modes and tuning constants.

/// How transaction lengths are chosen (paper Fig. 3, lines 2–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthPolicy {
    /// `TRANSACTION_LENGTH` is a constant (the paper's HTM-1, HTM-16,
    /// HTM-256 configurations).
    Fixed(u32),
    /// Per-yield-point dynamic adjustment (the paper's HTM-dynamic).
    Dynamic,
}

/// The execution strategies the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMode {
    /// Original CRuby: the Giant VM Lock plus a 250 ms timer thread that
    /// forces occasional yields (paper §3.2).
    Gil,
    /// GIL elision through HTM (paper §4).
    Htm { length: LengthPolicy },
    /// JRuby-like fine-grained locking: no GIL, but shared VM services
    /// (chiefly allocation) serialize through locks (paper §5.7 / Fig. 9).
    FineGrained,
    /// "Ideal VM": no VM-internal sharing at all — measures each
    /// application's inherent scalability, like the Java NPB baseline.
    Ideal,
}

impl RuntimeMode {
    pub fn is_htm(&self) -> bool {
        matches!(self, RuntimeMode::Htm { .. })
    }

    /// Display label used in reports ("GIL", "HTM-16", "HTM-dynamic", …).
    pub fn label(&self) -> String {
        match self {
            RuntimeMode::Gil => "GIL".into(),
            RuntimeMode::Htm { length: LengthPolicy::Fixed(n) } => format!("HTM-{n}"),
            RuntimeMode::Htm { length: LengthPolicy::Dynamic } => "HTM-dynamic".into(),
            RuntimeMode::FineGrained => "FineGrained".into(),
            RuntimeMode::Ideal => "Ideal".into(),
        }
    }
}

/// Which bytecodes are yield points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldPolicy {
    /// CRuby's original points: loop back-edges + method/block exits.
    Original,
    /// The paper's §4.2 extension (default for HTM modes).
    Extended,
}

/// The retry/adjustment constants of paper §5.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TleConstants {
    /// Retries of a transiently-aborted transaction before the GIL
    /// fallback (paper: 3).
    pub transient_retry_max: u32,
    /// Aborts caused by a held GIL tolerated before forcibly acquiring it
    /// (paper: 16 — "a thread should wait more patiently for the GIL").
    pub gil_retry_max: u32,
    /// Initial per-yield-point transaction length (paper: 255).
    pub initial_transaction_length: u32,
    /// Transactions per profiling window (paper: 300).
    pub profiling_period: u32,
    /// Aborts tolerated per window before shortening; machine-specific
    /// (paper: 3 on zEC12 = 1 %, 18 on the Xeon = 6 %).
    pub adjustment_threshold: u32,
    /// Geometric shrink factor (paper: 0.75).
    pub attenuation_rate: f64,
}

impl TleConstants {
    /// Paper defaults, with the machine-specific threshold taken from the
    /// profile.
    pub fn for_profile(profile: &machine_sim::MachineProfile) -> Self {
        TleConstants {
            transient_retry_max: 3,
            gil_retry_max: 16,
            initial_transaction_length: 255,
            profiling_period: 300,
            adjustment_threshold: profile.htm.adjustment_threshold,
            attenuation_rate: 0.75,
        }
    }
}

/// Livelock/starvation watchdog tuning (forward-progress guarantee #1).
///
/// The Fig. 1 retry budgets already bound each *attempt sequence*, but a
/// thread can still burn `tbegin + abort_penalty` over and over when every
/// transaction it starts dies (e.g. under heavy fault injection). The
/// watchdog counts consecutive aborted transactions *across* attempt
/// sequences and, past the threshold, escalates: the thread skips
/// speculation entirely for a cooldown of GIL tenures, doubling the
/// cooldown on every consecutive escalation so 100 % abort rates converge
/// to plain GIL throughput instead of paying per-attempt HTM overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConstants {
    /// Consecutive aborts (no commit in between) before escalating;
    /// 0 disables the watchdog.
    pub escalation_threshold: u32,
    /// GIL tenures per escalation before speculation is retried.
    pub cooldown_base: u32,
    /// Cap on the exponentially-backed-off cooldown.
    pub cooldown_max: u32,
}

impl WatchdogConstants {
    /// Watchdog off — the seed repo's exact behaviour.
    pub fn disabled() -> Self {
        WatchdogConstants { escalation_threshold: 0, cooldown_base: 0, cooldown_max: 0 }
    }

    /// Defaults used by the chaos suite: escalate after 12 consecutive
    /// aborts, start with 8 GIL tenures, back off up to 512.
    pub fn enabled() -> Self {
        WatchdogConstants { escalation_threshold: 12, cooldown_base: 8, cooldown_max: 512 }
    }

    pub fn is_enabled(&self) -> bool {
        self.escalation_threshold > 0
    }
}

/// Full executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    pub mode: RuntimeMode,
    /// Yield-point set; `None` = mode default (Extended for HTM, Original
    /// for GIL; irrelevant for FineGrained/Ideal).
    pub yield_policy: Option<YieldPolicy>,
    pub tle: TleConstants,
    /// §4.4 #1: keep the running-thread pointer in TLS instead of a global
    /// (`false` reproduces "the most severe conflicts").
    pub tls_running_thread: bool,
    /// Hard safety cap on simulated cycles (0 = none).
    pub max_cycles: u64,
    /// Seed for the HTM predictor RNG (determinism).
    pub seed: u64,
    /// Capacity of the structured transaction-event trace ring buffer;
    /// 0 (the default) disables tracing entirely — no sink is installed
    /// and event sites in the HTM simulator reduce to a discriminant
    /// test.
    pub trace_capacity: usize,
    /// Fault-injection plan installed into the transactional memory at
    /// boot (`None` — the default — injects nothing and leaves the memory
    /// fast paths untouched).
    pub fault_plan: Option<htm_sim::FaultPlan>,
    /// Interval of the §5.6 timer-interrupt model in per-thread simulated
    /// cycles: each thread's in-flight transaction is spuriously aborted
    /// every `interrupt_interval` cycles of its own clock. 0 (the
    /// default) disables the model.
    pub interrupt_interval: u64,
    /// Livelock watchdog; disabled by default (seed-identical behaviour).
    pub watchdog: WatchdogConstants,
    /// Run-level forward-progress invariant: fail the run with
    /// [`crate::RunError::NoProgress`] when this many consecutive
    /// scheduler steps retire without a single committed instruction.
    /// 0 disables the check. The default bound is far beyond anything a
    /// healthy run approaches (the longest transactions escrow a few
    /// hundred instructions; the GIL timer forces handoffs every ~10⁵
    /// cycles), so it only trips on genuine livelock.
    pub progress_bound_steps: u64,
    /// Schedule-exploration path replayed by this run (`None` — the
    /// default — installs no controller and leaves every decision-point
    /// hook a no-op). An installed *empty* path also reproduces the
    /// natural schedule exactly; see `machine_sim::explore`.
    pub explore_path: Option<machine_sim::SchedPath>,
    /// Enable the exploration's interrupt-delivery decisions (kill an
    /// open transaction at a yield point or in the commit window). Off,
    /// those windows consume no path bytes.
    pub explore_interrupts: bool,
    /// Test-only injected serializability bug: the transactional
    /// memory's *read* path skips the requester-wins doom of a remote
    /// writer, so reads observe speculative (possibly torn) state. Used
    /// to prove the exploration driver actually finds real violations;
    /// never enabled outside explore tests.
    pub bug_dirty_read: bool,
    /// When HTM transactions subscribe to the GIL word (DESIGN.md §15).
    /// `Eager` (the default) is the paper's Fig. 1; `Lazy` is observably
    /// unsafe by design; `LazyGuarded` models the hardware commit guard.
    pub subscription: crate::tle::SubscriptionPolicy,
}

impl ExecConfig {
    pub fn new(mode: RuntimeMode, profile: &machine_sim::MachineProfile) -> Self {
        ExecConfig {
            mode,
            yield_policy: None,
            tle: TleConstants::for_profile(profile),
            tls_running_thread: true,
            max_cycles: 0,
            seed: 0xA5A5_5A5A,
            trace_capacity: 0,
            fault_plan: None,
            interrupt_interval: 0,
            watchdog: WatchdogConstants::disabled(),
            progress_bound_steps: 5_000_000,
            explore_path: None,
            explore_interrupts: false,
            bug_dirty_read: false,
            subscription: crate::tle::SubscriptionPolicy::Eager,
        }
    }

    /// Effective yield policy for this mode.
    pub fn effective_yield_policy(&self) -> YieldPolicy {
        self.yield_policy.unwrap_or(match self.mode {
            RuntimeMode::Gil => YieldPolicy::Original,
            RuntimeMode::Htm { .. } => YieldPolicy::Extended,
            // No GIL/transactions — yield points are irrelevant.
            RuntimeMode::FineGrained | RuntimeMode::Ideal => YieldPolicy::Original,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_sim::MachineProfile;

    #[test]
    fn labels() {
        assert_eq!(RuntimeMode::Gil.label(), "GIL");
        assert_eq!(RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }.label(), "HTM-16");
        assert_eq!(RuntimeMode::Htm { length: LengthPolicy::Dynamic }.label(), "HTM-dynamic");
    }

    #[test]
    fn constants_match_paper() {
        let z = TleConstants::for_profile(&MachineProfile::zec12());
        assert_eq!(z.transient_retry_max, 3);
        assert_eq!(z.gil_retry_max, 16);
        assert_eq!(z.initial_transaction_length, 255);
        assert_eq!(z.profiling_period, 300);
        assert_eq!(z.adjustment_threshold, 3);
        assert!((z.attenuation_rate - 0.75).abs() < 1e-12);
        let x = TleConstants::for_profile(&MachineProfile::xeon_e3_1275_v3());
        assert_eq!(x.adjustment_threshold, 18);
    }

    #[test]
    fn robustness_knobs_default_to_seed_behaviour() {
        let p = MachineProfile::generic(2);
        let cfg = ExecConfig::new(RuntimeMode::Gil, &p);
        assert!(cfg.fault_plan.is_none(), "no injection unless asked");
        assert_eq!(cfg.interrupt_interval, 0, "interrupt model off by default");
        assert!(!cfg.watchdog.is_enabled(), "watchdog off by default");
        assert!(cfg.progress_bound_steps > 0, "progress invariant on by default");
        assert!(cfg.explore_path.is_none(), "no exploration controller by default");
        assert!(!cfg.explore_interrupts && !cfg.bug_dirty_read);
        assert_eq!(
            cfg.subscription,
            crate::tle::SubscriptionPolicy::Eager,
            "eager GIL subscription (the paper's Fig. 1) is the default"
        );
        assert_eq!(crate::tle::SubscriptionPolicy::default().label(), "eager");
        assert!(WatchdogConstants::enabled().is_enabled());
    }

    #[test]
    fn default_yield_policies() {
        let p = MachineProfile::zec12();
        let gil = ExecConfig::new(RuntimeMode::Gil, &p);
        assert_eq!(gil.effective_yield_policy(), YieldPolicy::Original);
        let htm = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &p);
        assert_eq!(htm.effective_yield_policy(), YieldPolicy::Extended);
        let mut ab = htm.clone();
        ab.yield_policy = Some(YieldPolicy::Original);
        assert_eq!(ab.effective_yield_policy(), YieldPolicy::Original);
    }
}
