//! Oracle-checked schedule replay: run one explored interleaving and
//! judge it against the pristine-GIL expectation.
//!
//! The encoding and the decision-point hooks live in
//! `machine_sim::explore`; this module is the correctness side. For a
//! *target* (a workload source + runtime mode + machine), the expected
//! observable behaviour is computed **once** from a pristine GIL run
//! (no controller, no injection — the PR 4 oracle): the complete stdout
//! plus the address-free heap digest. Every explored path then replays
//! under the target's real mode with a controller installed, and any of
//!
//! * a run failure (deadlock, livelock, cycle-limit),
//! * diverging stdout, or
//! * a diverging heap digest
//!
//! is a serializability violation. A built-in shrinker minimizes a
//! violating path — truncate, zero bytes right-to-left, lower byte
//! values — while the violation keeps reproducing, yielding the pinned
//! counterexamples committed to `tests/schedule_regressions.rs`.

use machine_sim::{MachineProfile, SchedPath};
use ruby_vm::VmConfig;

use crate::config::{ExecConfig, RuntimeMode};
use crate::exec::Executor;
use crate::oracle::heap_digest;
use crate::report::RunReport;

/// One explorable configuration: a workload under a mode on a machine.
#[derive(Debug, Clone)]
pub struct ExploreTarget {
    /// Stable identifier used in stats and repro artifacts.
    pub id: String,
    /// Fully instantiated Ruby source.
    pub source: String,
    /// Worker-thread count baked into the source (VM sizing).
    pub threads: usize,
    pub mode: RuntimeMode,
    pub profile: MachineProfile,
    /// GIL-subscription policy for HTM modes (the DESIGN.md §15 knob the
    /// lazy-subscription violation targets). The GIL oracle run ignores
    /// it — the expectation is policy-independent by construction.
    pub subscription: crate::tle::SubscriptionPolicy,
    /// Enable the interrupt-delivery decisions (yield-point and
    /// commit-window transaction kills).
    pub interrupts: bool,
    /// Arm the test-only dirty-read bug (violation-demo targets only).
    pub bug_dirty_read: bool,
    /// Safety cap on simulated cycles per execution (0 = none). Explored
    /// schedules can livelock where the natural one does not; the cap
    /// turns that into a reported violation instead of a hung search.
    pub max_cycles: u64,
    /// Force word-granular access tracking in the VM (disables the lease
    /// fast path). Used by the `--differential` re-run, which replays the
    /// same path under both layouts and diffs the reports.
    pub force_word_access: bool,
}

impl ExploreTarget {
    /// Executor configuration replaying `path` under the target's mode.
    pub fn config(&self, path: &SchedPath) -> ExecConfig {
        let mut cfg = ExecConfig::new(self.mode, &self.profile);
        cfg.max_cycles = self.max_cycles;
        cfg.explore_path = Some(path.clone());
        cfg.explore_interrupts = self.interrupts;
        cfg.bug_dirty_read = self.bug_dirty_read;
        cfg.subscription = self.subscription;
        cfg
    }

    fn vm_config(&self) -> VmConfig {
        VmConfig {
            max_threads: self.threads + 2,
            force_word_access: self.force_word_access,
            ..VmConfig::default()
        }
    }
}

/// Expected observable behaviour, from the pristine GIL oracle run.
#[derive(Debug, Clone)]
pub struct Expected {
    pub stdout: String,
    pub heap: String,
}

/// Compute the target's expectation: one pristine GIL run of the same
/// source (no controller, no bug, no injection). Panics on boot/run
/// failure — a target whose oracle run fails is a harness bug, not a
/// schedule-dependent finding.
pub fn gil_expected(target: &ExploreTarget) -> Expected {
    let mut cfg = ExecConfig::new(RuntimeMode::Gil, &target.profile);
    cfg.max_cycles = target.max_cycles;
    let mut ex = Executor::new(&target.source, target.vm_config(), target.profile.clone(), cfg)
        .unwrap_or_else(|e| panic!("{}: oracle boot failed: {e}", target.id));
    let report = ex.run().unwrap_or_else(|e| panic!("{}: oracle GIL run failed: {e}", target.id));
    Expected { stdout: report.stdout, heap: heap_digest(&ex.vm) }
}

/// Everything one explored execution produced.
#[derive(Debug)]
pub struct PathRun {
    /// The run report; `None` when the run failed (see `error`).
    pub report: Option<RunReport>,
    /// Run failure text (deadlock/livelock/cycle-limit), if any.
    pub error: Option<String>,
    pub stdout: String,
    pub heap: String,
    /// Decision-trail facts recorded by the controller.
    pub decisions: usize,
    pub taken: Vec<u8>,
    pub arities: Vec<u8>,
    /// Decision kinds as tag characters, e.g. `"SSIW"`.
    pub kind_tags: String,
    /// Forced deviations actually injected (non-zero choices taken).
    pub preemptions: u64,
}

/// Replay `path` on the target and collect the outcome. Panics only on
/// boot failure (workload/harness bug); run failures are captured.
pub fn run_path(target: &ExploreTarget, path: &SchedPath) -> PathRun {
    let cfg = target.config(path);
    let mut ex = Executor::new(&target.source, target.vm_config(), target.profile.clone(), cfg)
        .unwrap_or_else(|e| panic!("{}: boot failed: {e}", target.id));
    let (report, error) = match ex.run() {
        Ok(r) => (Some(r), None),
        Err(e) => (None, Some(e.to_string())),
    };
    let stdout = report.as_ref().map_or_else(|| ex.vm.stdout_text(), |r| r.stdout.clone());
    let heap = heap_digest(&ex.vm);
    let ctl = ex.sched.explore().expect("explore controller installed by config");
    PathRun {
        report,
        error,
        stdout,
        heap,
        decisions: ctl.decisions(),
        taken: ctl.taken().to_vec(),
        arities: ctl.arities().to_vec(),
        kind_tags: ctl.kinds().iter().map(|k| k.tag()).collect(),
        preemptions: ctl.preemptions(),
    }
}

/// The violation verdict for one explored execution: `None` when the
/// run is observationally equivalent to the GIL oracle, else a
/// human-readable description of the divergence.
pub fn mismatch_of(expected: &Expected, run: &PathRun) -> Option<String> {
    if let Some(err) = &run.error {
        return Some(format!("run failed under this schedule: {err}"));
    }
    if run.stdout != expected.stdout {
        return Some(format!(
            "stdout diverged from the GIL oracle\n  expected: {:?}\n  actual:   {:?}",
            expected.stdout, run.stdout
        ));
    }
    if run.heap != expected.heap {
        return Some(format!(
            "final heap diverged from the GIL oracle\n  expected: {}\n  actual:   {}",
            expected.heap, run.heap
        ));
    }
    None
}

/// Replay and judge in one step.
pub fn check_path(
    target: &ExploreTarget,
    expected: &Expected,
    path: &SchedPath,
) -> (PathRun, Option<String>) {
    let run = run_path(target, path);
    let mismatch = mismatch_of(expected, &run);
    (run, mismatch)
}

/// Outcome of shrinking one violating path.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimized path (still violating, trailing zeros trimmed).
    pub path: SchedPath,
    /// Replays spent shrinking.
    pub executions: u64,
}

/// Greedy deterministic shrinker: repeatedly try (a) truncating to a
/// prefix (binary, then linear off the tail), (b) zeroing non-zero
/// bytes right-to-left, (c) lowering byte values to 1 — keeping every
/// candidate that still violates — until a fixpoint or `max_runs`
/// replays. The input path must violate (callers check first).
pub fn shrink(
    target: &ExploreTarget,
    expected: &Expected,
    path: &SchedPath,
    max_runs: u64,
) -> ShrinkResult {
    let mut runs = 0u64;
    let mut current = path.trimmed();
    let still_violates = |candidate: &SchedPath, runs: &mut u64| -> bool {
        *runs += 1;
        let (_, mismatch) = check_path(target, expected, candidate);
        mismatch.is_some()
    };
    loop {
        let before = current.clone();
        // (a) Truncation: halve while the prefix still violates, then
        // peel single bytes off the tail.
        while runs < max_runs && !current.is_empty() {
            let half = SchedPath::new(current.as_bytes()[..current.len() / 2].to_vec()).trimmed();
            if half.len() < current.len() && still_violates(&half, &mut runs) {
                current = half;
            } else {
                break;
            }
        }
        while runs < max_runs && !current.is_empty() {
            let shorter =
                SchedPath::new(current.as_bytes()[..current.len() - 1].to_vec()).trimmed();
            if still_violates(&shorter, &mut runs) {
                current = shorter;
            } else {
                break;
            }
        }
        // (b) Zero non-zero bytes right-to-left (fewer forced
        // deviations = simpler counterexample).
        for i in (0..current.len()).rev() {
            if runs >= max_runs {
                break;
            }
            if current.as_bytes()[i] == 0 {
                continue;
            }
            let mut bytes = current.as_bytes().to_vec();
            bytes[i] = 0;
            let candidate = SchedPath::new(bytes).trimmed();
            if still_violates(&candidate, &mut runs) {
                current = candidate;
            }
        }
        // (c) Lower remaining bytes to the smallest deviation.
        for i in 0..current.len() {
            if runs >= max_runs {
                break;
            }
            if current.as_bytes()[i] <= 1 {
                continue;
            }
            let mut bytes = current.as_bytes().to_vec();
            bytes[i] = 1;
            let candidate = SchedPath::new(bytes);
            if still_violates(&candidate, &mut runs) {
                current = candidate;
            }
        }
        if current == before || runs >= max_runs {
            break;
        }
    }
    ShrinkResult { path: current.trimmed(), executions: runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LengthPolicy;

    fn tiny_target(mode: RuntimeMode) -> ExploreTarget {
        ExploreTarget {
            id: "tiny-counter".into(),
            source: r#"
$sum = 0
m = Mutex.new()
threads = []
2.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    while j < 5
      m.synchronize do
        $sum += 1
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts($sum)
"#
            .into(),
            threads: 2,
            mode,
            profile: MachineProfile::generic(4),
            subscription: crate::tle::SubscriptionPolicy::Eager,
            interrupts: true,
            bug_dirty_read: false,
            max_cycles: 500_000_000,
            force_word_access: false,
        }
    }

    #[test]
    fn empty_path_matches_the_oracle_in_every_mode() {
        for mode in [
            RuntimeMode::Gil,
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        ] {
            let t = tiny_target(mode);
            let expected = gil_expected(&t);
            assert_eq!(expected.stdout, "10");
            let (run, mismatch) = check_path(&t, &expected, &SchedPath::empty());
            assert!(mismatch.is_none(), "{}: {}", t.mode.label(), mismatch.unwrap());
            assert!(run.error.is_none());
        }
    }

    #[test]
    fn forced_preemptions_still_match_the_oracle() {
        let t = tiny_target(RuntimeMode::Htm { length: LengthPolicy::Fixed(16) });
        let expected = gil_expected(&t);
        let (run, mismatch) = check_path(&t, &expected, &SchedPath::new(vec![1; 16]));
        assert!(mismatch.is_none(), "{}", mismatch.unwrap());
        assert!(run.preemptions > 0, "flips must actually deviate the schedule");
        assert_eq!(run.taken.len(), run.arities.len());
        assert_eq!(run.decisions, run.taken.len());
    }

    #[test]
    fn same_path_replays_byte_identically() {
        let t = tiny_target(RuntimeMode::Htm { length: LengthPolicy::Dynamic });
        let path = SchedPath::new(vec![0, 2, 1, 0, 3, 1]);
        let a = run_path(&t, &path);
        let b = run_path(&t, &path);
        assert_eq!(a.stdout, b.stdout);
        assert_eq!(a.heap, b.heap);
        assert_eq!(a.taken, b.taken);
        let (ar, br) = (a.report.unwrap(), b.report.unwrap());
        assert_eq!(ar.to_json().to_compact(), br.to_json().to_compact());
    }
}
