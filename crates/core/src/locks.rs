//! Lock-contention model for the fine-grained (JRuby-like) mode.
//!
//! JRuby removes the GIL but protects shared VM services with
//! `synchronized` blocks and concurrent data structures; the paper notes
//! (§5.7/§6) that its remaining internal bottlenecks cap scalability
//! around 3.5× at 12 threads on the NPB. We model the dominant one —
//! allocation going through a shared young-generation region — as a global
//! lock taken once per TLAB-style refill, plus a small per-allocation
//! overhead. The lock serializes in simulated time: an acquire at time `x`
//! with the lock busy until `f` starts at `max(x, f)`.

use machine_sim::Cycles;

/// One serialization point in simulated time.
#[derive(Debug, Clone, Default)]
pub struct LockSim {
    free_at: Cycles,
    /// Total contention cycles inflicted (report statistic).
    pub total_wait: Cycles,
    pub acquisitions: u64,
}

impl LockSim {
    /// Acquire at local time `now`, holding for `hold` cycles. Returns the
    /// total cycles the calling thread spends (wait + hold).
    pub fn acquire(&mut self, now: Cycles, hold: Cycles) -> Cycles {
        let start = now.max(self.free_at);
        let wait = start - now;
        self.free_at = start + hold;
        self.total_wait += wait;
        self.acquisitions += 1;
        wait + hold
    }
}

/// The fine-grained mode's contention points and coefficients.
#[derive(Debug, Clone)]
pub struct FineGrainedModel {
    /// Shared allocation-region lock, taken per refill.
    pub alloc_region: LockSim,
    /// Allocations per refill (TLAB-style batching).
    pub allocs_per_refill: u64,
    /// Hold time of a refill.
    pub refill_hold: Cycles,
    /// Uncontended per-allocation overhead (CAS + fences).
    pub per_alloc_overhead: Cycles,
    /// Allocations seen so far (drives the refill cadence).
    allocs: u64,
}

impl Default for FineGrainedModel {
    fn default() -> Self {
        FineGrainedModel {
            alloc_region: LockSim::default(),
            allocs_per_refill: 16,
            refill_hold: 1_500,
            per_alloc_overhead: 20,
            allocs: 0,
        }
    }
}

impl FineGrainedModel {
    /// Charge `n` allocations happening at local time `now`; returns extra
    /// cycles for the calling thread.
    pub fn on_allocations(&mut self, now: Cycles, n: u64) -> Cycles {
        let mut extra = n * self.per_alloc_overhead;
        let before = self.allocs / self.allocs_per_refill;
        self.allocs += n;
        let after = self.allocs / self.allocs_per_refill;
        for _ in before..after {
            extra += self.alloc_region.acquire(now + extra, self.refill_hold);
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_just_holds() {
        let mut l = LockSim::default();
        assert_eq!(l.acquire(100, 50), 50);
        assert_eq!(l.total_wait, 0);
        // Next acquire after the hold window: still uncontended.
        assert_eq!(l.acquire(1_000, 50), 50);
        assert_eq!(l.total_wait, 0);
    }

    #[test]
    fn contended_lock_serializes() {
        let mut l = LockSim::default();
        assert_eq!(l.acquire(0, 100), 100); // holds [0,100)
                                            // A second thread arriving at 30 waits 70 then holds 100.
        assert_eq!(l.acquire(30, 100), 170);
        assert_eq!(l.total_wait, 70);
        assert_eq!(l.acquisitions, 2);
    }

    #[test]
    fn refills_happen_on_cadence() {
        let mut m = FineGrainedModel::default();
        // 15 allocations: no refill yet, only per-alloc overhead.
        let e = m.on_allocations(0, 15);
        assert_eq!(e, 15 * m.per_alloc_overhead);
        assert_eq!(m.alloc_region.acquisitions, 0);
        // The 64th triggers a refill.
        let e = m.on_allocations(1_000, 1);
        assert!(e >= m.refill_hold);
        assert_eq!(m.alloc_region.acquisitions, 1);
    }

    #[test]
    fn heavy_allocation_from_many_threads_contends() {
        let mut m = FineGrainedModel::default();
        // Two "threads" interleaving big allocation bursts at the same
        // simulated time must serialize their refills.
        let a = m.on_allocations(0, 640);
        let b = m.on_allocations(0, 640);
        assert!(b > a / 2, "second burst must feel the first's refills");
        assert!(m.alloc_region.total_wait > 0);
    }
}
