//! The deterministic executor: drives the Ruby VM one bytecode at a time
//! over the discrete-event scheduler, implementing the paper's Figures 1–3
//! as a per-thread state machine.
//!
//! State per thread (HTM modes): exactly one of
//! * *in transaction* — registers snapshotted at begin; aborts roll the
//!   memory back via the undo log and the registers via the snapshot;
//! * *holding the GIL* — the fallback (or single-thread) path;
//! * *neither* — about to run `transaction_begin` at its current pc;
//! * *parked* — on the GIL queue, a mutex/barrier/join, or sleeping on
//!   simulated I/O.
//!
//! Cycle accounting follows the paper's Fig. 8 categories; work done
//! inside a transaction is held in escrow and lands in `tx_success` or
//! `aborted` at commit/abort time.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use htm_sim::abort::abort_codes;
use htm_sim::trace::{RingBufferSink, TraceEvent};
use htm_sim::{AbortReason, Budgets, OverflowPredictor, SpuriousCause};
use machine_sim::{Cycles, InterruptTimer, MachineProfile, Scheduler, ThreadId};
use ruby_vm::{BlockOn, StepOk, Vm, VmAbort, VmConfig, Word};

use crate::config::{ExecConfig, LengthPolicy, RuntimeMode, YieldPolicy};
use crate::gil::{GilState, GilWait};
use crate::locks::FineGrainedModel;
use crate::report::{ConflictSite, CycleBreakdown, RunReport};
use crate::tle::{LengthTables, SubscriptionPolicy};

/// Fatal run failure.
#[derive(Debug)]
pub enum RunError {
    Boot(String),
    Vm(String),
    Deadlock(String),
    /// The configured simulated-cycle budget ran out. Carries the same
    /// thread-state dump as [`RunError::Deadlock`] — a cycle-limit hit is
    /// usually an application-level livelock, and the dump shows where
    /// every thread was spinning.
    CycleLimit {
        limit: u64,
        dump: String,
    },
    /// Forward-progress invariant violation: the scheduler kept running
    /// threads, but no instruction committed for `steps` consecutive
    /// scheduling steps — a livelock the retry machinery failed to break.
    NoProgress {
        steps: u64,
        dump: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Boot(m) => write!(f, "boot error: {m}"),
            RunError::Vm(m) => write!(f, "vm error: {m}"),
            RunError::Deadlock(m) => write!(f, "deadlock: {m}"),
            RunError::CycleLimit { limit, dump } => {
                write!(f, "cycle limit {limit} exceeded\n{dump}")
            }
            RunError::NoProgress { steps, dump } => {
                write!(f, "no committed instruction in {steps} scheduler steps (livelock)\n{dump}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Active-transaction bookkeeping.
#[derive(Debug, Clone)]
struct TxInfo {
    /// Global pc of the yield point the transaction started at.
    start_pc: u32,
    snapshot: ruby_vm::vm::RegSnapshot,
    /// Work cycles accumulated inside the transaction (escrow).
    work: Cycles,
    /// Instructions retired inside the transaction (escrow).
    insns: u64,
    /// `srv_mark` lifecycle events emitted inside the transaction
    /// (escrow): recorded with the commit-time clock on commit, dropped
    /// on abort — an aborted slice leaves no phantom latency events.
    marks: Vec<(u8, i64)>,
    /// Wake keys produced inside the transaction (a transactional
    /// `Mutex#unlock`'s owner-word write is invisible until commit, so
    /// its wake must be too). Published at commit, dropped on abort — a
    /// phantom wake from an uncommitted unlock revives the whole waiter
    /// herd against a still-locked mutex, and each woken thread's
    /// GIL fallback then dooms the unlocking transaction before it can
    /// commit: a self-sustaining livelock at high thread counts.
    wakes: Vec<ruby_vm::vm::WakeKey>,
}

/// Per-thread TLE controller state (paper Fig. 1's local variables).
#[derive(Debug, Clone)]
struct TleThread {
    tx: Option<TxInfo>,
    holds_gil: bool,
    transient_retries: u32,
    gil_retries: u32,
    first_retry: bool,
    /// Pending begin at this global pc (after an abort or a yield).
    resume_pc: Option<u32>,
    /// Committed to acquiring the GIL (paper Fig. 1 `gil_acquire()` blocks
    /// until ownership): survives parking, so a woken thread completes the
    /// acquisition instead of attempting another transaction.
    want_gil: bool,
    /// The context (transaction or GIL) was just established at the
    /// current pc: the instruction there must execute before the next
    /// yield-point decision, matching Fig. 1's retry loop, which re-enters
    /// the critical section without re-running `transaction_yield`.
    fresh: bool,
    /// The next `transaction_begin` is a *retry* of the same attempt
    /// sequence (Fig. 1's `goto transaction_retry`): keep the retry
    /// counters and do not re-run `set_transaction_length`.
    retrying: bool,
    /// Aborted transactions since this thread's last commit, *across*
    /// attempt sequences (the Fig. 1 budgets reset per sequence; this
    /// counter does not). Feeds the livelock watchdog.
    consecutive_aborts: u32,
    /// Remaining forced-GIL tenures before speculation is retried
    /// (watchdog escalation in effect while > 0).
    cooldown: u32,
    /// Cooldown length for the *next* escalation — doubled on each
    /// escalation, reset to `cooldown_base` by a commit.
    backoff: u32,
}

impl TleThread {
    fn new() -> Self {
        TleThread {
            tx: None,
            holds_gil: false,
            transient_retries: 0,
            gil_retries: 0,
            first_retry: true,
            resume_pc: None,
            want_gil: false,
            fresh: false,
            retrying: false,
            consecutive_aborts: 0,
            cooldown: 0,
            backoff: 0,
        }
    }

    fn reset_retries(&mut self, c: &crate::config::TleConstants) {
        self.transient_retries = c.transient_retry_max;
        self.gil_retries = c.gil_retry_max;
        self.first_retry = true;
    }
}

/// What a thread parked on (beyond the GIL queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ParkKey {
    Mutex(usize),
    Barrier(usize),
    Join(ThreadId),
}

/// The executor.
pub struct Executor {
    pub vm: Vm,
    pub sched: Scheduler,
    pub profile: MachineProfile,
    pub cfg: ExecConfig,
    gil: GilState,
    tle: Vec<TleThread>,
    /// Full (non-SMT-halved) footprint budgets, fixed by the machine
    /// profile — computed once at boot so the per-begin path avoids the
    /// byte→line divisions.
    base_budgets: Budgets,
    tables: LengthTables,
    fine: FineGrainedModel,
    /// Parked threads by key.
    parked: HashMap<ParkKey, Vec<ThreadId>>,
    /// Committed/wasted instruction counts.
    committed_insns: u64,
    wasted_insns: u64,
    breakdown: CycleBreakdown,
    conflict_sites: HashMap<ConflictSite, u64>,
    /// Allocation count at the previous step (per-step delta source).
    last_allocs: u64,
    /// §5.6 timer-interrupt model (disabled unless the config arms it).
    interrupts: InterruptTimer,
    /// Watchdog escalations performed (report statistic).
    watchdog_escalations: u64,
    /// Task-latency accounting fed by committed `srv_mark` events.
    latency: crate::latency::LatencyRecorder,
    /// `committed_insns` at the last scheduler step that made progress.
    progress_watermark: u64,
    /// Scheduler steps since `committed_insns` last advanced.
    stalled_steps: u64,
    /// Shared handle on the trace ring buffer when
    /// `ExecConfig::trace_capacity > 0`; the other clone lives inside the
    /// transactional memory as its sink.
    trace: Option<Arc<Mutex<RingBufferSink>>>,
    /// Pre-decoded flag bit identifying yield points under the effective
    /// yield policy (`decode::YP_ORIG` or `decode::YP_EXT`): the per-step
    /// yield test is one flags load and a mask instead of an instruction
    /// fetch plus a kind classification.
    yp_bit: u8,
    /// Superinstruction-fusion bit for the effective yield policy, handed
    /// to the VM only when fusion is trace-transparent (no other live
    /// thread, no open transaction, no trace sink) — see `raw_step`.
    fuse_bit: u8,
}

impl Executor {
    /// Boot a VM for `source` and prepare a run.
    pub fn new(
        source: &str,
        vm_config: VmConfig,
        profile: MachineProfile,
        cfg: ExecConfig,
    ) -> Result<Executor, RunError> {
        let mut vm =
            Vm::boot(source, vm_config, &profile).map_err(|e| RunError::Boot(e.to_string()))?;
        // Install the Intel learning predictor per hardware thread.
        if profile.htm.learning_predictor {
            for t in 0..vm.config.max_threads {
                vm.mem.set_predictor(
                    t,
                    OverflowPredictor::intel(profile.htm.predictor_memory, cfg.seed ^ t as u64),
                );
            }
        }
        let mut sched =
            Scheduler::new(profile.cores, profile.smt_per_core, profile.cost.context_switch);
        if let Some(path) = cfg.explore_path.clone() {
            sched.set_explore(machine_sim::ExploreCtl::new(path, cfg.explore_interrupts));
        }
        if cfg.bug_dirty_read {
            vm.mem.set_bug_dirty_read(true);
        }
        let t0 = sched.spawn(0);
        debug_assert_eq!(t0, 0);
        let total_pcs = vm.program.total_insns();
        let length_policy = match cfg.mode {
            RuntimeMode::Htm { length } => length,
            _ => LengthPolicy::Fixed(1),
        };
        let tables = LengthTables::new(total_pcs, length_policy, cfg.tle);
        let base_budgets = Budgets {
            read_lines: profile.cache.read_set_lines(),
            write_lines: profile.cache.write_set_lines(),
        };
        let first_timer = profile.cost.timer_interval;
        let trace = if cfg.trace_capacity > 0 {
            let sink = RingBufferSink::shared(cfg.trace_capacity);
            vm.mem.set_trace_sink(Box::new(Arc::clone(&sink)));
            Some(sink)
        } else {
            None
        };
        if let Some(plan) = cfg.fault_plan {
            vm.mem.set_fault_plan(plan);
        }
        let interrupts = InterruptTimer::new(cfg.interrupt_interval);
        let (yp_bit, fuse_bit) = match cfg.effective_yield_policy() {
            YieldPolicy::Original => (ruby_vm::decode::YP_ORIG, ruby_vm::decode::FUSE_ORIG),
            YieldPolicy::Extended => (ruby_vm::decode::YP_EXT, ruby_vm::decode::FUSE_EXT),
        };
        Ok(Executor {
            vm,
            sched,
            profile,
            cfg,
            gil: GilState::new(first_timer),
            tle: vec![TleThread::new()],
            base_budgets,
            tables,
            fine: FineGrainedModel::default(),
            parked: HashMap::new(),
            committed_insns: 0,
            wasted_insns: 0,
            breakdown: CycleBreakdown::default(),
            conflict_sites: HashMap::new(),
            last_allocs: 0,
            interrupts,
            watchdog_escalations: 0,
            latency: crate::latency::LatencyRecorder::new(),
            progress_watermark: 0,
            stalled_steps: 0,
            trace,
            yp_bit,
            fuse_bit,
        })
    }

    /// Snapshot of the retained trace events (empty when tracing is off).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.as_ref().map_or_else(Vec::new, |t| {
            t.lock().expect("trace sink poisoned").events().copied().collect()
        })
    }

    /// Run the program to completion and report.
    pub fn run(&mut self) -> Result<RunReport, RunError> {
        loop {
            let Some(t) = self.sched.next() else {
                if self.sched.all_finished() {
                    break;
                }
                return Err(RunError::Deadlock(self.deadlock_dump()));
            };
            if self.cfg.max_cycles != 0 && self.sched.clock(t) > self.cfg.max_cycles {
                return Err(RunError::CycleLimit {
                    limit: self.cfg.max_cycles,
                    dump: self.deadlock_dump(),
                });
            }
            if self.vm.threads[t].finished {
                self.sched.finish(t);
                continue;
            }
            // Stamp trace events with this thread's simulated clock.
            if self.trace.is_some() {
                self.vm.mem.set_now(self.sched.clock(t));
            }
            // GIL-mode timer thread: wake up every interval and flag the
            // running (GIL-holding) thread (paper §3.2).
            if self.cfg.mode == RuntimeMode::Gil {
                let now = self.sched.clock(t);
                while now >= self.gil.next_timer {
                    self.gil.next_timer += self.profile.cost.timer_interval;
                    if let Some(h) = self.gil.holder {
                        let flag = self.vm.layout.thread_struct(h) + ruby_vm::layout::ts::INTERRUPT;
                        self.vm.wr_untimed(h, flag, Word::Int(1)).map_err(|r| {
                            RunError::Vm(format!("timer flag write aborted unexpectedly: {r:?}"))
                        })?;
                    }
                }
            }
            // §5.6 interrupt model: a timer interrupt on `t`'s hardware
            // thread kills its in-flight transaction before it runs.
            if self.interrupts.is_enabled()
                && self.interrupts.due(t, self.sched.clock(t))
                && self.tle.get(t).is_some_and(|x| x.tx.is_some())
            {
                // A remote doom may already have rolled the transaction
                // back; consume it as the abort reason in that case.
                let reason = match self.vm.mem.poll_doomed(t) {
                    Some(r) => r,
                    None => self.vm.mem.abort_spurious(t, SpuriousCause::TimerInterrupt),
                };
                self.on_tx_abort(t, reason)?;
                continue;
            }
            match self.cfg.mode {
                RuntimeMode::Gil => self.step_gil(t)?,
                RuntimeMode::Htm { .. } => self.step_htm(t)?,
                RuntimeMode::FineGrained | RuntimeMode::Ideal => self.step_free(t)?,
            }
            // Wakes produced by the VM (mutex unlock, barrier release).
            self.drain_wakes(t);
            // Forward-progress invariant: the retry/watchdog machinery
            // must keep instructions committing; a long stall is livelock.
            if self.cfg.progress_bound_steps != 0 {
                if self.committed_insns != self.progress_watermark {
                    self.progress_watermark = self.committed_insns;
                    self.stalled_steps = 0;
                } else {
                    self.stalled_steps += 1;
                    if self.stalled_steps >= self.cfg.progress_bound_steps {
                        return Err(RunError::NoProgress {
                            steps: self.stalled_steps,
                            dump: self.deadlock_dump(),
                        });
                    }
                }
            }
        }
        // Leased accesses batch their stats deltas; fold them in so the
        // report sees the same totals the per-word path would have.
        self.vm.mem.flush_lease_stats();
        Ok(self.report())
    }

    /// Diagnostic snapshot for deadlock errors.
    fn deadlock_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("no runnable thread; {} live\n", self.sched.live_count());
        for t in 0..self.sched.len() {
            let c = &self.vm.threads[t];
            let _ = writeln!(
                out,
                "  t{t}: sched={:?} fin={} gil={} tx={} want_gil={} resume={:?} at {}:{}",
                self.sched.state(t),
                c.finished,
                self.tle.get(t).is_some_and(|x| x.holds_gil),
                self.tle.get(t).is_some_and(|x| x.tx.is_some()),
                self.tle.get(t).is_some_and(|x| x.want_gil),
                self.tle.get(t).and_then(|x| x.resume_pc),
                self.vm.program.iseq(c.iseq).name,
                c.pc,
            );
        }
        let _ = writeln!(
            out,
            "  gil holder={:?} waiters={:?} parked_keys={:?}",
            self.gil.holder,
            self.gil.waiters,
            self.parked.keys().collect::<Vec<_>>()
        );
        // Under exploration, append the trailing scheduler decision trail
        // so a stuck explored run is diagnosable without a rerun.
        if let Some(trail) = self.sched.explore_trail() {
            let _ = writeln!(out, "  sched decisions (tail): {trail}");
        }
        out
    }

    fn report(&self) -> RunReport {
        let elapsed = (0..self.sched.len()).map(|t| self.sched.clock(t)).max().unwrap_or(0);
        let (trace_recorded, trace_dropped) = self.trace.as_ref().map_or((0, 0), |t| {
            let sink = t.lock().expect("trace sink poisoned");
            (sink.len() as u64 + sink.dropped(), sink.dropped())
        });
        RunReport {
            mode_label: self.cfg.mode.label(),
            subscription: self.cfg.subscription,
            machine: self.profile.name,
            threads_used: self.sched.len(),
            elapsed_cycles: elapsed,
            committed_insns: self.committed_insns,
            wasted_insns: self.wasted_insns,
            breakdown: self.breakdown.clone(),
            htm: self.vm.mem.stats().clone(),
            gil_acquisitions: self.gil.acquisitions,
            conflict_sites: self.conflict_sites.clone(),
            share_length_one: self.tables.share_of_length_one(),
            length_adjustments: self.tables.total_adjustments,
            yield_point_profiles: self.tables.profiles(),
            trace_events_recorded: trace_recorded,
            trace_events_dropped: trace_dropped,
            watchdog_escalations: self.watchdog_escalations,
            allocations: self.vm.allocations,
            gc_runs: self.vm.gc_runs,
            stdout: self.vm.stdout_text(),
            task_latency: self.latency.summary(),
        }
    }

    // ---- common helpers ------------------------------------------------------

    /// Current instruction's global pc for thread `t`.
    fn global_pc(&self, t: ThreadId) -> u32 {
        let c = &self.vm.threads[t];
        self.vm.program.global_pc(c.iseq, c.pc)
    }

    /// Is the instruction `t` is about to execute a yield point under the
    /// effective policy? One load from the decoded stream's flag lane.
    #[inline]
    fn at_yield_point(&self, t: ThreadId) -> bool {
        self.vm.insn_flags(t) & self.yp_bit != 0
    }

    /// HTM footprint budgets for `t` right now (SMT halving, §5.4).
    fn budgets(&self, t: ThreadId) -> Budgets {
        if self.sched.smt_sibling_busy(t) {
            self.base_budgets.halved()
        } else {
            self.base_budgets
        }
    }

    /// Execute one VM step and charge its cycles to `t`. Returns the VM
    /// outcome and the charged work cycles. A step retires one bytecode —
    /// or two when superinstruction fusion is permitted, which it is only
    /// when the interleaving cannot matter (no other live thread), no
    /// transaction's escrow could straddle the pair, and no trace sink
    /// observes per-access ordering. The charge is per retired bytecode
    /// (`dispatch × step_insns` plus the accumulated memory/native costs),
    /// so a fused pair lands on the simulated clock exactly where the two
    /// separate steps would have.
    fn raw_step(&mut self, t: ThreadId) -> (Result<StepOk, VmAbort>, Cycles) {
        self.vm.fuse_allowed = if self.trace.is_none()
            && self.tle[t].tx.is_none()
            && self.sched.other_live_threads(t) == 0
        {
            self.fuse_bit
        } else {
            0
        };
        self.vm.reset_step_counters();
        let r = self.vm.step(t);
        let cost = self.profile.cost.dispatch * Cycles::from(self.vm.step_insns)
            + Cycles::from(self.vm.step_mem_refs) * self.profile.cost.mem_ref
            + self.vm.step_native_cost;
        self.sched.advance(t, cost);
        (r, cost)
    }

    /// Drain the marks the last step emitted. Outside any transaction
    /// they are externally visible now; inside one they go to escrow and
    /// surface (or vanish) with the transaction.
    fn drain_marks(&mut self, t: ThreadId) {
        if self.vm.pending_marks.is_empty() {
            return;
        }
        let marks = std::mem::take(&mut self.vm.pending_marks);
        if let Some(tx) = self.tle.get_mut(t).and_then(|x| x.tx.as_mut()) {
            tx.marks.extend(marks);
        } else {
            let now = self.sched.clock(t);
            for (kind, id) in marks {
                self.latency.on_mark(kind, id, now);
            }
        }
    }

    /// Classify a conflicting line into a VM region, consulting the
    /// line→owner map the VM registered at layout time (and extends on
    /// heap growth, so grown slot ranges and grown malloc arenas resolve
    /// to their actual owners).
    fn classify_line(&self, line: usize) -> ConflictSite {
        self.vm.attribution.owner_of_line(line)
    }

    fn record_conflict(&mut self, reason: AbortReason) {
        if let AbortReason::ConflictRead { line, .. } | AbortReason::ConflictWrite { line, .. } =
            reason
        {
            let site = self.classify_line(line);
            *self.conflict_sites.entry(site).or_insert(0) += 1;
        }
    }

    /// Handle StepOk common to all modes. Returns true when the thread
    /// can continue normally.
    fn handle_outcome(&mut self, t: ThreadId, ok: StepOk) -> Result<(), RunError> {
        match ok {
            StepOk::Normal => Ok(()),
            StepOk::Finished => {
                self.on_thread_finished(t);
                Ok(())
            }
            StepOk::Spawned { tid } => {
                let s = self.sched.spawn(self.sched.clock(t));
                debug_assert_eq!(s, tid, "scheduler/vm thread ids must stay in lockstep");
                self.tle.push(TleThread::new());
                Ok(())
            }
            StepOk::Block(on) => {
                self.park_on(t, on);
                Ok(())
            }
        }
    }

    /// Publish thread completion: thread-object state, scheduler, joiners.
    fn on_thread_finished(&mut self, t: ThreadId) {
        let (obj, result) = {
            let c = &self.vm.threads[t];
            (c.thread_obj, c.result.clone())
        };
        if obj != 0 {
            // Non-transactional state publication; dooms stale readers.
            self.vm.mem.write(t, obj + 2, Word::Int(1)).expect("state");
            self.vm.mem.write(t, obj + 3, result).expect("result");
        }
        self.sched.finish(t);
        let now = self.sched.clock(t);
        if let Some(waiters) = self.parked.remove(&ParkKey::Join(t)) {
            for w in waiters {
                self.sched.unpark(w, now);
            }
        }
    }

    fn park_on(&mut self, t: ThreadId, on: BlockOn) {
        let now = self.sched.clock(t);
        match on {
            BlockOn::Io(units) => {
                let until = now + u64::from(units) * self.profile.cost.io_latency;
                self.breakdown.io_wait += until - now;
                self.sched.sleep_until(t, until);
            }
            BlockOn::Mutex(addr) => {
                self.parked.entry(ParkKey::Mutex(addr)).or_default().push(t);
                self.sched.park(t);
            }
            BlockOn::Barrier(addr) => {
                self.parked.entry(ParkKey::Barrier(addr)).or_default().push(t);
                self.sched.park(t);
            }
            BlockOn::Join(target) => {
                if self.vm.threads[target].finished {
                    // Raced with completion: retry immediately.
                    return;
                }
                self.parked.entry(ParkKey::Join(target)).or_default().push(t);
                self.sched.park(t);
            }
        }
    }

    fn drain_wakes(&mut self, t: ThreadId) {
        if self.vm.pending_wakes.is_empty() {
            return;
        }
        let wakes = std::mem::take(&mut self.vm.pending_wakes);
        if let Some(tx) = self.tle.get_mut(t).and_then(|x| x.tx.as_mut()) {
            // The writes that justify these wakes are uncommitted:
            // escrow them with the transaction (see `TxInfo::wakes`).
            tx.wakes.extend(wakes);
        } else {
            self.publish_wakes(t, wakes);
        }
    }

    /// Unpark every thread waiting on the given keys, at `t`'s clock.
    ///
    /// Under exploration, a wake-order decision may rotate the waiter
    /// list and stagger the unpark times by one cycle each, so the
    /// rotation actually changes the downstream ready-time tie-breaks;
    /// choice 0 (and no controller) is the exact legacy publish.
    fn publish_wakes(&mut self, t: ThreadId, wakes: Vec<ruby_vm::vm::WakeKey>) {
        let now = self.sched.clock(t);
        for key in wakes {
            let pk = match key {
                ruby_vm::vm::WakeKey::Mutex(a) => ParkKey::Mutex(a),
                ruby_vm::vm::WakeKey::Barrier(a) => ParkKey::Barrier(a),
            };
            if let Some(mut waiters) = self.parked.remove(&pk) {
                let rot = self.sched.explore_wake_order(waiters.len()) as usize;
                if rot == 0 {
                    for w in waiters {
                        self.sched.unpark(w, now);
                    }
                } else {
                    let n = waiters.len().max(1);
                    waiters.rotate_left(rot % n);
                    for (i, w) in waiters.into_iter().enumerate() {
                        self.sched.unpark(w, now + i as Cycles);
                    }
                }
            }
        }
    }

    /// Release the GIL held by `t` and wake its waiter queue.
    fn gil_release(&mut self, t: ThreadId) {
        let now = self.sched.clock(t);
        self.sched.advance(t, self.profile.cost.gil_release);
        let woken = self.gil.release(&mut self.vm, t);
        for (w, _intent) in woken {
            self.sched.unpark(w, now + self.profile.cost.gil_wait_wakeup);
        }
    }

    // ---- GIL mode ---------------------------------------------------------------

    fn step_gil(&mut self, t: ThreadId) -> Result<(), RunError> {
        // Must hold the GIL to run.
        if !self.gil.held_by(t) {
            if self.gil.is_held() {
                self.gil.push_waiter(t, GilWait::Acquire);
                self.sched.park(t);
                return Ok(());
            }
            self.sched.advance(t, self.profile.cost.gil_acquire);
            self.breakdown.gil_wait += self.profile.cost.gil_acquire;
            self.gil.acquire(&mut self.vm, t, self.cfg.tls_running_thread);
        }
        // Yield points: yield only when the timer flagged us and another
        // live thread exists (paper §3.2).
        if self.at_yield_point(t) && self.sched.other_live_threads(t) > 0 {
            // Schedule-exploration decision point: a forced preemption
            // hands control to the pinned thread without running t.
            if self.sched.explore_active() && self.sched.explore_preempt(t).is_some() {
                return Ok(());
            }
            // Yield points are where stats become externally observable;
            // settle any batched lease deltas before deciding to switch.
            self.vm.mem.flush_lease_stats();
            let flag_addr = self.vm.layout.thread_struct(t) + ruby_vm::layout::ts::INTERRUPT;
            // GIL mode runs no transactions, so these plain accesses can
            // only fail if the memory invariants are broken — surface
            // that as a run error instead of tearing down the process.
            let flag = self.vm.rd_untimed(t, flag_addr).map_err(|r| {
                RunError::Vm(format!("interrupt flag read aborted outside any transaction: {r:?}"))
            })?;
            self.sched.advance(t, 2 * self.profile.cost.mem_ref);
            self.breakdown.gil_held += 2 * self.profile.cost.mem_ref;
            if flag == Word::Int(1) {
                self.vm.wr_untimed(t, flag_addr, Word::Int(0)).map_err(|r| {
                    RunError::Vm(format!(
                        "interrupt flag clear aborted outside any transaction: {r:?}"
                    ))
                })?;
                self.gil_release(t);
                self.sched.advance(t, self.profile.cost.sched_yield);
                self.breakdown.gil_wait += self.profile.cost.sched_yield;
                // Re-acquire on the next scheduling round (others, woken
                // with earlier clocks, get the lock first).
                return Ok(());
            }
        }
        let (r, cost) = self.raw_step(t);
        self.breakdown.gil_held += cost;
        self.drain_marks(t);
        match r {
            Ok(ok) => {
                self.committed_insns += u64::from(self.vm.step_insns);
                self.vm.publish_method_bumps();
                let was_block = matches!(ok, StepOk::Block(_));
                let finished = matches!(ok, StepOk::Finished);
                if was_block || finished {
                    // Blocking region / exit: release the GIL first.
                    self.gil_release(t);
                }
                self.handle_outcome(t, ok)
            }
            Err(VmAbort::Err(e)) => Err(RunError::Vm(e.to_string())),
            Err(VmAbort::Tx(r)) => {
                Err(RunError::Vm(format!("transaction abort in GIL mode: {r:?}")))
            }
        }
    }

    // ---- free modes (FineGrained / Ideal) ------------------------------------------

    fn step_free(&mut self, t: ThreadId) -> Result<(), RunError> {
        let (r, cost) = self.raw_step(t);
        self.breakdown.tx_success += cost;
        self.drain_marks(t);
        // JRuby-like allocation serialization.
        if self.cfg.mode == RuntimeMode::FineGrained {
            let allocs = self.vm.allocations;
            let delta = allocs - self.last_allocs;
            self.last_allocs = allocs;
            if delta > 0 {
                let extra = self.fine.on_allocations(self.sched.clock(t), delta);
                self.sched.advance(t, extra);
                self.breakdown.other += extra;
            }
        }
        match r {
            Ok(ok) => {
                self.committed_insns += u64::from(self.vm.step_insns);
                self.vm.publish_method_bumps();
                self.handle_outcome(t, ok)
            }
            Err(VmAbort::Err(e)) => Err(RunError::Vm(e.to_string())),
            Err(VmAbort::Tx(r)) => {
                Err(RunError::Vm(format!("transaction abort without transactions: {r:?}")))
            }
        }
    }

    // ---- HTM (TLE) mode --------------------------------------------------------------

    fn step_htm(&mut self, t: ThreadId) -> Result<(), RunError> {
        // 1. Ensure an execution context: transaction or GIL.
        if self.tle[t].tx.is_none() && !self.tle[t].holds_gil {
            if self.tle[t].want_gil {
                // A forcible acquisition is in progress (Fig. 1 line 27 /
                // persistent-abort fallback): finish it before anything
                // else.
                if !self.gil_acquire_or_park(t) {
                    return Ok(());
                }
            } else if !self.transaction_begin(t)? {
                return Ok(()); // parked waiting for the GIL
            }
        }
        // 2. transaction_yield (paper Fig. 2): at yield points, decrement
        //    the counter; on zero, end + begin. Skipped when the context
        //    was just (re-)established at this pc — the instruction here
        //    belongs to the new transaction/GIL tenure.
        let fresh = std::mem::take(&mut self.tle[t].fresh);
        if !fresh && self.at_yield_point(t) && self.sched.other_live_threads(t) > 0 {
            // Schedule-exploration decision point (no-op unless a
            // controller is installed — see `machine_sim::explore`).
            if self.sched.explore_active() {
                if self.sched.explore_preempt(t).is_some() {
                    // Forced preemption: t executes nothing this step and
                    // re-decides at this same yield point when the pinned
                    // thread reaches its own next decision point.
                    return Ok(());
                }
                if self.tle[t].tx.is_some() && self.sched.explore_interrupt_kill() {
                    // Explored interrupt slot: kill the open transaction
                    // exactly like the §5.6 timer model would.
                    let reason = match self.vm.mem.poll_doomed(t) {
                        Some(r) => r,
                        None => self.vm.mem.abort_spurious(t, SpuriousCause::TimerInterrupt),
                    };
                    return self.on_tx_abort(t, reason);
                }
            }
            // Settle batched lease deltas at the yield point, mirroring the
            // GIL path, so mid-run stats observations are path-independent.
            self.vm.mem.flush_lease_stats();
            let counter_addr = self.vm.layout.thread_struct(t) + ruby_vm::layout::ts::YIELD_COUNTER;
            let c = match self.vm.rd_untimed(t, counter_addr) {
                Ok(Word::Int(c)) => c,
                Ok(_) => 0,
                Err(reason) => {
                    // The counter read itself hit a doomed transaction
                    // (false sharing on unpadded thread structs!).
                    self.sched.advance(t, self.profile.cost.mem_ref);
                    return self.on_tx_abort(t, reason);
                }
            };
            self.sched.advance(t, 2 * self.profile.cost.mem_ref);
            if let Some(tx) = self.tle[t].tx.as_mut() {
                tx.work += 2 * self.profile.cost.mem_ref;
            } else {
                self.breakdown.gil_held += 2 * self.profile.cost.mem_ref;
            }
            if c <= 1 {
                // End here; begin at this pc.
                if !self.transaction_end_and_restart(t)? {
                    return Ok(()); // aborted at commit or parked
                }
            } else if let Err(reason) = self.vm.wr_untimed(t, counter_addr, Word::Int(c - 1)) {
                return self.on_tx_abort(t, reason);
            }
        }
        // 3. Execute the instruction.
        let (r, cost) = self.raw_step(t);
        if let Some(tx) = self.tle[t].tx.as_mut() {
            tx.work += cost;
            tx.insns += u64::from(self.vm.step_insns);
        } else {
            self.breakdown.gil_held += cost;
            self.committed_insns += u64::from(self.vm.step_insns);
            // A method defined under the GIL is externally visible now:
            // its version bump publishes with it.
            self.vm.publish_method_bumps();
        }
        // Marks from a step that aborted (`r` is `Err(Tx)`) land in the
        // still-open transaction's escrow here and are dropped with it in
        // `on_tx_abort` below.
        self.drain_marks(t);
        match r {
            Ok(ok) => {
                let finished = matches!(ok, StepOk::Finished);
                let was_block = matches!(ok, StepOk::Block(_));
                if finished || was_block {
                    // Commit any open transaction before leaving/parking.
                    if self.tle[t].tx.is_some() {
                        match self.commit_tx(t) {
                            Ok(()) => {}
                            Err(reason) => return self.on_tx_abort(t, reason),
                        }
                    }
                    if self.tle[t].holds_gil {
                        self.tle[t].holds_gil = false;
                        self.gil_release(t);
                    }
                }
                self.handle_outcome(t, ok)
            }
            Err(VmAbort::Err(e)) => Err(RunError::Vm(e.to_string())),
            Err(VmAbort::Tx(reason)) => self.on_tx_abort(t, reason),
        }
    }

    /// Commit `t`'s transaction, moving escrowed work to `tx_success`.
    fn commit_tx(&mut self, t: ThreadId) -> Result<(), AbortReason> {
        // Explored interrupt slot in the commit window: kill the
        // transaction right before TEND. The tx stays in `self.tle` so
        // the caller's `on_tx_abort` runs the normal rollback/retry path.
        if self.sched.explore_commit_kill() {
            let reason = match self.vm.mem.poll_doomed(t) {
                Some(r) => r,
                None => self.vm.mem.abort_spurious(t, SpuriousCause::TimerInterrupt),
            };
            return Err(reason);
        }
        let info = self.tle[t].tx.take().expect("commit without tx");
        self.sched.advance(t, self.profile.cost.tend);
        self.breakdown.tx_begin_end += self.profile.cost.tend;
        match self.vm.mem.commit(t) {
            Ok(()) => {
                self.breakdown.tx_success += info.work;
                self.committed_insns += info.insns;
                // Escrowed method-version bumps become visible with the
                // writes that earned them (exactly like marks and wakes).
                self.vm.publish_method_bumps();
                // Escrowed lifecycle marks become externally visible at
                // the commit, so they carry the commit-time clock.
                let now = self.sched.clock(t);
                for (kind, id) in info.marks {
                    self.latency.on_mark(kind, id, now);
                }
                // Escrowed wakes: the unlocks behind them just became
                // visible, so the waiters can be revived.
                if !info.wakes.is_empty() {
                    self.publish_wakes(t, info.wakes);
                }
                // A commit is forward progress: stand the watchdog down.
                self.tle[t].consecutive_aborts = 0;
                self.tle[t].backoff = self.cfg.watchdog.cooldown_base;
                Ok(())
            }
            Err(reason) => {
                // Already rolled back; restore registers and report.
                self.vm.restore(t, info.snapshot);
                self.vm.drop_method_bumps();
                self.breakdown.aborted += info.work;
                self.wasted_insns += info.insns;
                self.tle[t].resume_pc = Some(info.start_pc);
                Err(reason)
            }
        }
    }

    /// Paper Fig. 2 lines 11–13: end the current context and begin a new
    /// transaction at the current pc. Returns false if the thread parked
    /// or aborted (caller returns to the scheduler).
    fn transaction_end_and_restart(&mut self, t: ThreadId) -> Result<bool, RunError> {
        if self.tle[t].holds_gil {
            // GIL path of transaction_end (Fig. 2 line 2).
            self.tle[t].holds_gil = false;
            self.gil_release(t);
        } else if self.tle[t].tx.is_some() {
            if let Err(reason) = self.commit_tx(t) {
                self.on_tx_abort(t, reason)?;
                return Ok(false);
            }
        }
        self.transaction_begin(t)
    }

    /// Paper Fig. 1. Returns false when the thread parked (GIL busy).
    fn transaction_begin(&mut self, t: ThreadId) -> Result<bool, RunError> {
        // Line 2: single-thread fast path — just take the GIL.
        if self.sched.other_live_threads(t) == 0 {
            return Ok(self.gil_acquire_or_park(t));
        }
        // Watchdog cooldown: speculation has been failing persistently on
        // this thread — go straight to the GIL for the remaining tenures
        // instead of paying tbegin + abort_penalty per doomed attempt.
        if self.tle[t].cooldown > 0 {
            self.tle[t].cooldown -= 1;
            self.tle[t].retrying = false;
            return Ok(self.gil_acquire_or_park(t));
        }
        let pc = self.tle[t].resume_pc.take().unwrap_or_else(|| self.global_pc(t));
        // Fig. 1 lines 5 and 9-11: a *fresh* begin consults the length
        // table (counting the transaction for the site's profiling window)
        // and re-arms the retry budgets; a retry re-enters below both.
        let retry = std::mem::take(&mut self.tle[t].retrying);
        let len = if retry {
            self.tables.peek_length(pc)
        } else {
            self.tle[t].reset_retries(&self.cfg.tle);
            self.tables.set_transaction_length(pc)
        };
        let counter_addr = self.vm.layout.thread_struct(t) + ruby_vm::layout::ts::YIELD_COUNTER;
        // Lines 6-8: wait for a held GIL before even trying (optimization).
        if self.gil.is_held() {
            self.breakdown.gil_wait += self.profile.cost.spin_bound;
            self.sched.advance(t, self.profile.cost.spin_bound);
            self.gil.push_waiter(t, GilWait::RetryTx);
            self.tle[t].resume_pc = Some(pc);
            // Keep the sequence identity across the park: a retry that
            // waits here must not have its budgets re-armed on wake.
            self.tle[t].retrying = retry;
            self.sched.park(t);
            return Ok(false);
        }
        // TBEGIN + surrounding bookkeeping.
        self.tables.record_attempt(pc);
        self.sched.advance(t, self.profile.cost.tbegin);
        self.breakdown.tx_begin_end += self.profile.cost.tbegin;
        let snapshot = self.vm.snapshot(t);
        if let Err(reason) = self.vm.mem.begin(t, self.budgets(t)) {
            // Predictor kill (EagerPredicted): take the abort path.
            self.sched.advance(t, self.profile.cost.abort_penalty);
            self.breakdown.aborted += self.profile.cost.abort_penalty;
            self.tle[t].resume_pc = Some(pc);
            self.abort_path(t, pc, reason)?;
            return Ok(self.tle[t].tx.is_some() || self.tle[t].holds_gil);
        }
        // Subscribe to the GIL (DESIGN.md §15). `Eager` is Fig. 1 lines
        // 14-15: read the lock word inside the transaction so it joins the
        // read set; TABORT if held (cannot happen here — we checked above
        // and nothing ran in between in discrete-event time — but keep the
        // faithful sequence). `LazyGuarded` arms the hardware lock monitor
        // instead: same access cost and abort branches, but the line
        // occupies no read-set capacity (the acquisition side dooms us via
        // `doom_all_active`). `Lazy` skips the subscription entirely —
        // that is the whole (unsafe) performance win: the commit-time
        // check reduces to the value sampled before TBEGIN (the hoisted
        // subscription load of arXiv 1407.6968), which lines 6-8 already
        // proved free, so nothing guards the transaction's window.
        // (A fresh transaction cannot be *doomed* yet, but fault injection
        // may spuriously abort it on this very first read.)
        if self.cfg.subscription != SubscriptionPolicy::Lazy {
            let gil_probe = if self.cfg.subscription == SubscriptionPolicy::Eager {
                self.vm.mem.read(t, self.vm.layout.gil)
            } else {
                self.vm.mem.arm_lock_monitor(t, self.vm.layout.gil)
            };
            let gil_word = match gil_probe {
                Ok(w) => w,
                Err(reason) => {
                    self.sched.advance(t, self.profile.cost.abort_penalty);
                    self.breakdown.aborted += self.profile.cost.abort_penalty;
                    self.tle[t].resume_pc = Some(pc);
                    self.abort_path(t, pc, reason)?;
                    return Ok(self.tle[t].tx.is_some() || self.tle[t].holds_gil);
                }
            };
            self.sched.advance(t, self.profile.cost.mem_ref);
            if gil_word == Word::Int(1) {
                let reason = self.vm.mem.tabort(t, abort_codes::GIL_LOCKED);
                self.tle[t].resume_pc = Some(pc);
                self.abort_path(t, pc, reason)?;
                return Ok(self.tle[t].tx.is_some() || self.tle[t].holds_gil);
            }
        }
        // §4.4 #1 ablation: write the running-thread global inside the
        // transaction — every thread, every transaction, same line.
        if !self.cfg.tls_running_thread {
            if let Err(reason) =
                self.vm.mem.write(t, self.vm.layout.running_thread, Word::Int(t as i64))
            {
                self.tle[t].resume_pc = Some(pc);
                self.abort_path(t, pc, reason)?;
                return Ok(self.tle[t].tx.is_some() || self.tle[t].holds_gil);
            }
            self.sched.advance(t, self.profile.cost.mem_ref);
        }
        // Install the yield-point counter (Fig. 3's yield_point_counter).
        // Leased install: seeds the write lease on the thread-struct line
        // that the per-yield-point decrements then hit for the rest of the
        // transaction.
        if let Err(reason) = self.vm.wr_untimed(t, counter_addr, Word::Int(i64::from(len))) {
            self.tle[t].resume_pc = Some(pc);
            self.abort_path(t, pc, reason)?;
            return Ok(self.tle[t].tx.is_some() || self.tle[t].holds_gil);
        }
        self.tle[t].tx = Some(TxInfo {
            start_pc: pc,
            snapshot,
            work: 0,
            insns: 0,
            marks: Vec::new(),
            wakes: Vec::new(),
        });
        self.tle[t].fresh = true;
        Ok(true)
    }

    /// A transaction abort surfaced while stepping (the VM already rolled
    /// the memory back). Restore registers and run the Fig. 1 abort path.
    fn on_tx_abort(&mut self, t: ThreadId, reason: AbortReason) -> Result<(), RunError> {
        let Some(info) = self.tle[t].tx.take() else {
            return Err(RunError::Vm(format!("abort {reason:?} outside any transaction")));
        };
        // Marks, wakes, and method-version bumps from the aborted slice
        // vanish with it: the escrow in `info` is dropped, and anything
        // the aborting step pushed but never drained is discarded too.
        self.vm.pending_marks.clear();
        self.vm.pending_wakes.clear();
        self.vm.drop_method_bumps();
        self.vm.restore(t, info.snapshot);
        self.sched.advance(t, self.profile.cost.abort_penalty);
        self.breakdown.aborted += info.work + self.profile.cost.abort_penalty;
        self.wasted_insns += info.insns;
        self.tle[t].resume_pc = Some(info.start_pc);
        self.abort_path(t, info.start_pc, reason)
    }

    /// Paper Fig. 1 lines 16-37. May retry (arming `resume_pc`), park on
    /// the GIL, or acquire the GIL.
    fn abort_path(&mut self, t: ThreadId, pc: u32, reason: AbortReason) -> Result<(), RunError> {
        #[cfg(debug_assertions)]
        if std::env::var_os("HTMGIL_TRACE").is_some() {
            eprintln!(
                "[{}] t{t} abort pc={pc} {reason:?} tr={} gr={} gil={:?}",
                self.sched.clock(t),
                self.tle[t].transient_retries,
                self.tle[t].gil_retries,
                self.gil.holder
            );
        }
        self.record_conflict(reason);
        self.tables.record_abort(pc, reason);
        // Livelock watchdog: aborts accumulate across attempt sequences;
        // past the threshold the thread stops speculating for a cooldown
        // of GIL tenures (doubling per consecutive escalation).
        if self.cfg.watchdog.is_enabled() {
            self.tle[t].consecutive_aborts += 1;
            if self.tle[t].consecutive_aborts >= self.cfg.watchdog.escalation_threshold {
                let w = self.cfg.watchdog;
                self.watchdog_escalations += 1;
                self.tle[t].consecutive_aborts = 0;
                let backoff = self.tle[t].backoff.max(w.cooldown_base).max(1);
                self.tle[t].cooldown = backoff;
                self.tle[t].backoff = backoff.saturating_mul(2).min(w.cooldown_max.max(1));
                self.gil_acquire_or_park(t);
                return Ok(());
            }
        }
        // Lines 17-20: first abort of this transaction adjusts the length.
        if self.tle[t].first_retry {
            self.tle[t].first_retry = false;
            self.tables.adjust_transaction_length(pc);
        }
        // Lines 21-27: conflict at the GIL.
        let gil_locked = matches!(reason, AbortReason::Explicit(c) if c == abort_codes::GIL_LOCKED)
            || (reason.is_conflict() && self.gil.is_held());
        if gil_locked {
            self.tle[t].gil_retries = self.tle[t].gil_retries.saturating_sub(1);
            if self.tle[t].gil_retries > 0 {
                self.tle[t].retrying = true;
                // spin_and_gil_acquire: wait for release, then retry.
                if self.gil.is_held() {
                    self.breakdown.gil_wait += self.profile.cost.spin_bound;
                    self.sched.advance(t, self.profile.cost.spin_bound);
                    self.gil.push_waiter(t, GilWait::RetryTx);
                    self.sched.park(t);
                }
                return Ok(());
            }
            // Line 27: forcibly acquire.
            self.gil_acquire_or_park(t);
            return Ok(());
        }
        // Lines 28-29: persistent → GIL.
        if reason.is_persistent() {
            self.gil_acquire_or_park(t);
            return Ok(());
        }
        // Lines 31-35: transient retry.
        self.tle[t].transient_retries = self.tle[t].transient_retries.saturating_sub(1);
        if self.tle[t].transient_retries == 0 {
            self.gil_acquire_or_park(t);
        } else {
            self.tle[t].retrying = true;
        }
        // Otherwise: resume_pc is armed; the next scheduling of `t`
        // re-runs transaction_begin at the same yield point.
        Ok(())
    }

    /// `gil_acquire()` with parking. Returns true when the GIL was taken.
    fn gil_acquire_or_park(&mut self, t: ThreadId) -> bool {
        #[cfg(debug_assertions)]
        if std::env::var_os("HTMGIL_TRACE").is_some() {
            eprintln!(
                "[{}] t{t} gil_acquire_or_park held_by={:?}",
                self.sched.clock(t),
                self.gil.holder
            );
        }
        if self.gil.is_held() {
            self.tle[t].want_gil = true;
            self.gil.push_waiter(t, GilWait::Acquire);
            self.sched.park(t);
            return false;
        }
        self.tle[t].want_gil = false;
        self.sched.advance(t, self.profile.cost.gil_acquire);
        self.breakdown.gil_wait += self.profile.cost.gil_acquire;
        self.gil.acquire(&mut self.vm, t, self.cfg.tls_running_thread);
        if self.cfg.subscription == SubscriptionPolicy::LazyGuarded {
            // The lock monitor fires on the store to the lock word: every
            // in-flight transaction armed on the GIL line is doomed here,
            // exactly where Eager's read-set subscription would have caught
            // the same store (DESIGN.md §15).
            self.vm.mem.doom_all_active(t, self.vm.layout.gil);
        }
        self.tle[t].holds_gil = true;
        self.tle[t].reset_retries(&self.cfg.tle);
        // Fig. 3 note: the transaction length is consumed even under the
        // GIL — install the counter so the GIL is released at the same
        // yield point a transaction would have ended at.
        let pc = self.tle[t].resume_pc.take().unwrap_or_else(|| self.global_pc(t));
        let len = self.tables.set_transaction_length(pc);
        let counter_addr = self.vm.layout.thread_struct(t) + ruby_vm::layout::ts::YIELD_COUNTER;
        self.vm
            .mem
            .write(t, counter_addr, Word::Int(i64::from(len)))
            .expect("counter write outside transaction");
        self.tle[t].fresh = true;
        true
    }
}

// When a thread holding the GIL parks (blocking builtin), `step_htm`
// releases it first; when it finishes, likewise — see the
// finished/was_block branch in `step_htm`.

#[cfg(test)]
mod tests {
    use super::*;

    fn run_mode(src: &str, mode: RuntimeMode, profile: MachineProfile) -> RunReport {
        let cfg = ExecConfig::new(mode, &profile);
        let mut ex = Executor::new(src, VmConfig::default(), profile, cfg).unwrap();
        ex.run().unwrap_or_else(|e| panic!("{e}"))
    }

    const COUNT_SRC: &str = "x = 0\ni = 1\nwhile i <= 500\n  x += i\n  i += 1\nend\nputs(x)";

    #[test]
    fn gil_mode_runs_single_thread() {
        let r = run_mode(COUNT_SRC, RuntimeMode::Gil, MachineProfile::generic(4));
        assert_eq!(r.stdout, "125250");
        assert!(r.committed_insns > 500);
        assert!(r.elapsed_cycles > 0);
        assert_eq!(r.htm.begins, 0, "no transactions in GIL mode");
    }

    #[test]
    fn htm_mode_single_thread_uses_gil_fast_path() {
        let r = run_mode(
            COUNT_SRC,
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
            MachineProfile::generic(4),
        );
        assert_eq!(r.stdout, "125250");
        // Fig. 1 line 2: with no other live thread, no transactions begin.
        assert_eq!(r.htm.begins, 0);
        assert!(r.gil_acquisitions >= 1);
    }

    #[test]
    fn all_modes_agree_on_output() {
        let src = r#"
results = Array.new(3, 0)
threads = []
3.times do |i|
  threads << Thread.new(i) do |tid|
    s = 0
    j = 1
    while j <= 200
      s += j * (tid + 1)
      j += 1
    end
    results[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts(results.join(","))
"#;
        let expected = "20100,40200,60300";
        for mode in [
            RuntimeMode::Gil,
            RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            RuntimeMode::Htm { length: LengthPolicy::Fixed(256) },
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
            RuntimeMode::FineGrained,
            RuntimeMode::Ideal,
        ] {
            let r = run_mode(src, mode, MachineProfile::generic(4));
            assert_eq!(r.stdout, expected, "mode {}", mode.label());
        }
    }

    #[test]
    fn htm_multithreaded_actually_uses_transactions() {
        let src = r#"
results = Array.new(2, 0)
threads = []
2.times do |i|
  threads << Thread.new(i) do |tid|
    s = 0
    j = 1
    while j <= 300
      s += j
      j += 1
    end
    results[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts(results[0] + results[1])
"#;
        let r = run_mode(
            src,
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            MachineProfile::generic(4),
        );
        assert_eq!(r.stdout, "90300");
        assert!(r.htm.begins > 10, "worker threads must run transactionally");
        assert!(r.htm.commits > 10);
        assert!(r.breakdown.tx_success > 0);
    }

    /// One thread repeatedly falls back on the GIL (`print` is restricted)
    /// while the other mutates a shared global transactionally, so GIL
    /// tenures overlap open transaction windows.
    const GIL_OVERLAP_SRC: &str = r#"
$sum = 0
threads = []
2.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    while j < 40
      $sum = $sum + 1
      if tid == 0
        print("")
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts($sum)
"#;

    fn run_subscription(sub: SubscriptionPolicy) -> RunReport {
        run_subscription_on(sub, MachineProfile::generic(4))
    }

    fn run_subscription_on(sub: SubscriptionPolicy, profile: MachineProfile) -> RunReport {
        let mut cfg =
            ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Fixed(4) }, &profile);
        cfg.subscription = sub;
        let mut ex = Executor::new(GIL_OVERLAP_SRC, VmConfig::default(), profile, cfg).unwrap();
        ex.run().unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn lazy_guarded_dooms_transactions_overlapping_a_gil_acquisition() {
        let r = run_subscription(SubscriptionPolicy::LazyGuarded);
        // `print("")` leaves one open (empty) line ahead of the final puts.
        assert_eq!(r.stdout, "\n80");
        assert!(r.htm.begins > 0, "the non-printing thread must run transactionally");
        assert!(r.gil_acquisitions > 0, "the printing thread must take the GIL");
        assert!(
            r.htm.conflicts_read > 0,
            "a GIL acquisition overlapping an armed transaction must doom it \
             through the lock monitor (got stats {:?})",
            r.htm
        );
    }

    #[test]
    fn lazy_guarded_matches_eager_exactly_on_gil_overlap() {
        // The commit guard is modelled to be *observably identical* to the
        // eager read-set subscription: same victims, same abort reasons,
        // same cycle costs — the only difference is read-set capacity, so
        // run on a budget this footprint never exhausts (on overflow-prone
        // budgets the dying transaction gets exactly one extra access out
        // of the slot Eager spends on the subscription).
        let mut profile = MachineProfile::generic(4);
        profile.cache.read_set_bytes = 1 << 20;
        let eager = run_subscription_on(SubscriptionPolicy::Eager, profile.clone());
        let lg = run_subscription_on(SubscriptionPolicy::LazyGuarded, profile);
        assert_eq!(eager.stdout, lg.stdout);
        assert_eq!(eager.htm.overflow_read, 0, "parity workload must not overflow");
        assert_eq!(eager.htm, lg.htm, "hardware event stream must be identical");
        assert_eq!(eager.elapsed_cycles, lg.elapsed_cycles);
        assert_eq!(eager.gil_acquisitions, lg.gil_acquisitions);
    }

    #[test]
    fn lazy_skips_the_subscription_read() {
        // Lazy performs no in-transaction GIL access at all: strictly
        // fewer counted reads than Eager on the same program. (Whether its
        // output is *correct* depends on the schedule — the explore suite
        // pins a counterexample; the default round-robin here is not it.)
        let eager = run_subscription(SubscriptionPolicy::Eager);
        let lazy = run_subscription(SubscriptionPolicy::Lazy);
        assert!(lazy.htm.begins > 0);
        assert!(
            lazy.htm.reads < eager.htm.reads,
            "lazy must skip the per-transaction GIL-word read ({} vs {})",
            lazy.htm.reads,
            eager.htm.reads
        );
    }

    #[test]
    fn htm_scales_versus_gil_on_parallel_work() {
        // The core claim, in miniature: with 4 independent compute
        // threads, HTM elision beats the GIL.
        let src = r#"
results = Array.new(4, 0)
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    s = 0
    j = 1
    while j <= 400
      s += j
      j += 1
    end
    results[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts(results.join(","))
"#;
        let gil = run_mode(src, RuntimeMode::Gil, MachineProfile::generic(4));
        let htm = run_mode(
            src,
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            MachineProfile::generic(4),
        );
        assert_eq!(gil.stdout, htm.stdout);
        let speedup = gil.elapsed_cycles as f64 / htm.elapsed_cycles as f64;
        assert!(
            speedup > 1.5,
            "HTM-16 must beat the GIL on embarrassingly parallel work; got {speedup:.2}×"
        );
    }

    #[test]
    fn mutex_workload_is_serializable_under_htm() {
        let src = r#"
m = Mutex.new()
count = 0
threads = []
3.times do |i|
  threads << Thread.new() do
    j = 0
    while j < 30
      m.synchronize do
        count += 1
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts(count)
"#;
        for mode in [
            RuntimeMode::Gil,
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        ] {
            let r = run_mode(src, mode, MachineProfile::generic(4));
            assert_eq!(r.stdout, "90", "mode {}", mode.label());
        }
    }

    #[test]
    fn dynamic_adjustment_reacts_to_aborts() {
        // Two threads hammering the same array line: conflicts force the
        // dynamic policy to shorten lengths somewhere.
        let src = r#"
shared = Array.new(4, 0)
threads = []
2.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    while j < 1500
      shared[tid] = shared[tid] + 1
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts(shared[0] + shared[1])
"#;
        let r = run_mode(
            src,
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
            MachineProfile::generic(4),
        );
        assert_eq!(r.stdout, "3000");
        assert!(r.length_adjustments > 0, "conflict-heavy run must shrink some lengths");
        assert!(r.htm.total_aborts() > 0);
    }

    #[test]
    fn conflicts_are_attributed_to_regions() {
        let src = r#"
shared = Array.new(2, 0)
threads = []
2.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    while j < 800
      shared[tid] = shared[tid] + 1
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts(shared[0] + shared[1])
"#;
        let r = run_mode(
            src,
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            MachineProfile::generic(4),
        );
        assert_eq!(r.stdout, "1600");
        let total: u64 = r.conflict_sites.values().sum();
        assert!(total > 0, "conflicting run must attribute conflicts");
    }

    #[test]
    fn io_workload_overlaps_under_gil() {
        // GIL released during I/O: two I/O-bound threads overlap.
        let src = r#"
threads = []
2.times do |i|
  threads << Thread.new() do
    j = 0
    while j < 5
      io_wait(1)
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts("done")
"#;
        let r = run_mode(src, RuntimeMode::Gil, MachineProfile::generic(4));
        assert_eq!(r.stdout, "done");
        // 10 sequential I/Os would cost 10×io_latency; overlap must beat
        // ~8×.
        let seq = 10 * MachineProfile::generic(4).cost.io_latency;
        assert!(
            r.elapsed_cycles < seq * 9 / 10,
            "I/O must overlap: {} vs sequential {}",
            r.elapsed_cycles,
            seq
        );
        assert!(r.breakdown.io_wait > 0);
    }

    #[test]
    fn trace_captures_transaction_lifecycle_with_ordered_cycles() {
        let src = r#"
counters = Array.new(4, 0)
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    j = 1
    while j <= 150
      counters[tid] = counters[tid] + j
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts(counters.join(","))
"#;
        let profile = MachineProfile::generic(4);
        let mut cfg =
            ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }, &profile);
        cfg.trace_capacity = 1 << 16;
        let mut ex = Executor::new(src, VmConfig::default(), profile, cfg).unwrap();
        let r = ex.run().unwrap();
        let events = ex.trace_events();
        assert!(!events.is_empty(), "HTM run with tracing must emit events");
        assert_eq!(r.trace_events_recorded, events.len() as u64 + r.trace_events_dropped);
        // Per thread: cycle stamps never go backwards, every Commit/Abort
        // follows an open Begin, and no Begin nests inside another.
        let mut last_cycle: HashMap<usize, u64> = HashMap::new();
        let mut open: HashMap<usize, bool> = HashMap::new();
        let (mut commits, mut aborts) = (0u64, 0u64);
        for e in &events {
            let t = e.thread();
            let prev = last_cycle.insert(t, e.cycle());
            assert!(prev.unwrap_or(0) <= e.cycle(), "cycle went backwards on thread {t}");
            let was_open = open.entry(t).or_insert(false);
            match e {
                htm_sim::TraceEvent::Begin { .. } => {
                    assert!(!*was_open, "nested Begin on thread {t}");
                    *was_open = true;
                }
                htm_sim::TraceEvent::Commit { read_lines, .. } => {
                    assert!(*was_open, "Commit without Begin on thread {t}");
                    assert!(*read_lines > 0, "committed tx must have a read set");
                    *was_open = false;
                    commits += 1;
                }
                htm_sim::TraceEvent::Abort { .. } => {
                    // Eager-predicted aborts fail at TBEGIN, before any
                    // Begin event — an abort may arrive with no open tx.
                    *was_open = false;
                    aborts += 1;
                }
            }
        }
        assert!(commits > 0, "expected committed transactions in the trace");
        // The trace totals must be consistent with the HTM statistics
        // (ring large enough that nothing was dropped here).
        assert_eq!(r.trace_events_dropped, 0);
        assert_eq!(commits, r.htm.commits);
        // Dooms of non-transactional threads emit no Abort event (there is
        // no transaction to abort), so the trace matches total_aborts
        // exactly.
        assert_eq!(aborts, r.htm.total_aborts());
    }

    #[test]
    fn tracing_off_keeps_report_counters_zero() {
        let r = run_mode(
            COUNT_SRC,
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            MachineProfile::generic(4),
        );
        assert_eq!(r.trace_events_recorded, 0);
        assert_eq!(r.trace_events_dropped, 0);
    }
}

#[cfg(test)]
mod livelock_regressions {
    //! Regression tests for two livelocks found during bring-up:
    //! 1. a thread that committed to `gil_acquire()` lost that intent when
    //!    parked (the requester-wins conflict dance with a mutex owner
    //!    then ping-ponged forever) — fixed by `TleThread::want_gil`;
    //! 2. with length-1 transactions, a persistent abort's GIL fallback
    //!    re-ran the yield-point decision at the same pc, releasing the
    //!    GIL before executing the restricted instruction — fixed by
    //!    `TleThread::fresh`.

    use super::*;

    fn run_capped(src: &str, mode: RuntimeMode) -> RunReport {
        let profile = MachineProfile::generic(4);
        let mut cfg = ExecConfig::new(mode, &profile);
        cfg.max_cycles = 500_000_000;
        let mut ex = Executor::new(src, VmConfig::default(), profile, cfg).unwrap();
        ex.run().unwrap_or_else(|e| panic!("{} livelocked: {e}", mode.label()))
    }

    #[test]
    fn mutex_contention_does_not_livelock() {
        let src = r#"
m = Mutex.new()
count = 0
threads = []
3.times do |i|
  threads << Thread.new() do
    j = 0
    while j < 30
      m.synchronize do
        count += 1
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts(count)
"#;
        for mode in [
            RuntimeMode::Htm { length: LengthPolicy::Fixed(1) },
            RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
            RuntimeMode::Htm { length: LengthPolicy::Fixed(256) },
            RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        ] {
            let r = run_capped(src, mode);
            assert_eq!(r.stdout, "90", "{}", mode.label());
        }
    }

    #[test]
    fn htm1_mutex_handoff_does_not_livelock() {
        // Minimal trigger found by the cross-stack proptest: under HTM-1
        // the unlocker's one-instruction commit window races the woken
        // waiter's lock-read, which dooms it (requester wins). Progress
        // relies on the retry budgets surviving the lines-6-8 GIL park —
        // losing the `retrying` flag there re-armed the budgets forever.
        let src = r#"
m = Mutex.new()
count = Array.new(1, 0)
threads = []
3.times do |t|
  threads << Thread.new(t) do |tid|
    j = 0
    while j < 3
      m.synchronize do
        count[0] = count[0] + 1
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts(count[0])
"#;
        let r = run_capped(src, RuntimeMode::Htm { length: LengthPolicy::Fixed(1) });
        assert_eq!(r.stdout, "9");
    }

    #[test]
    fn htm1_thread_spawn_does_not_livelock() {
        // Thread.new is a restricted op: under HTM-1 every spawn goes
        // through the persistent-abort → GIL path at a yield point.
        let src = r#"
results = Array.new(3, 0)
threads = []
3.times do |i|
  threads << Thread.new(i) do |tid|
    s = 0
    j = 1
    while j <= 200
      s += j * (tid + 1)
      j += 1
    end
    results[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts(results.join(","))
"#;
        let r = run_capped(src, RuntimeMode::Htm { length: LengthPolicy::Fixed(1) });
        assert_eq!(r.stdout, "20100,40200,60300");
    }
}
