//! Run results: throughput, cycle breakdowns, abort attribution.

use std::collections::HashMap;

use htm_sim::HtmStats;
use machine_sim::Cycles;

use crate::json::Json;

/// Where in the VM address space a conflicting line lives — used for the
/// paper's §5.6 attribution ("more than 50 % of those read-set conflicts
/// occurred at the time of object allocation"). The classification now
/// comes from the VM's own line→owner registration
/// ([`ruby_vm::layout::AttributionMap`]) rather than a boundary
/// comparison in the executor; this alias keeps the historical name.
pub use ruby_vm::layout::LineOwner as ConflictSite;

/// Cycle breakdown in the categories of the paper's Fig. 8.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleBreakdown {
    /// `TBEGIN`/`TEND` and the surrounding begin/end bookkeeping.
    pub tx_begin_end: Cycles,
    /// Work inside transactions that committed.
    pub tx_success: Cycles,
    /// Work executed while holding the GIL (fallback or GIL mode).
    pub gil_held: Cycles,
    /// Work discarded by aborts, plus the hardware abort penalty.
    pub aborted: Cycles,
    /// Spinning/parked time waiting for the GIL to be released.
    pub gil_wait: Cycles,
    /// Blocked on simulated I/O.
    pub io_wait: Cycles,
    /// Everything else (scheduler overhead, blocked on app sync).
    pub other: Cycles,
}

impl CycleBreakdown {
    pub fn total(&self) -> Cycles {
        self.tx_begin_end
            + self.tx_success
            + self.gil_held
            + self.aborted
            + self.gil_wait
            + self.io_wait
            + self.other
    }

    /// Category shares in percent, in Fig. 8 order.
    pub fn shares_pct(&self) -> [(&'static str, f64); 7] {
        let t = self.total().max(1) as f64;
        [
            ("tx-begin/end", 100.0 * self.tx_begin_end as f64 / t),
            ("successful-tx", 100.0 * self.tx_success as f64 / t),
            ("gil-held", 100.0 * self.gil_held as f64 / t),
            ("aborted-tx", 100.0 * self.aborted as f64 / t),
            ("gil-wait", 100.0 * self.gil_wait as f64 / t),
            ("io-wait", 100.0 * self.io_wait as f64 / t),
            ("other", 100.0 * self.other as f64 / t),
        ]
    }
}

/// Everything a figure harness needs from one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub mode_label: String,
    /// GIL-subscription policy the run executed under (DESIGN.md §15).
    /// Surfaced in the JSON only when it deviates from `Eager`, keeping
    /// default-policy reports byte-identical to the pre-knob schema.
    pub subscription: crate::tle::SubscriptionPolicy,
    pub machine: &'static str,
    pub threads_used: usize,
    /// Wall-clock of the run: max thread clock.
    pub elapsed_cycles: Cycles,
    /// Bytecodes whose effects committed (work metric).
    pub committed_insns: u64,
    /// Bytecodes rolled back with aborted transactions.
    pub wasted_insns: u64,
    pub breakdown: CycleBreakdown,
    pub htm: HtmStats,
    pub gil_acquisitions: u64,
    /// Read-set conflicts attributed to VM regions (line classification).
    pub conflict_sites: HashMap<ConflictSite, u64>,
    /// Dynamic-adjustment outcome: share of active yield points that ended
    /// at length 1, and total shrink events.
    pub share_length_one: f64,
    pub length_adjustments: u64,
    /// Livelock-watchdog escalations: times a thread's consecutive-abort
    /// streak forced it onto the GIL for a cooldown.
    pub watchdog_escalations: u64,
    /// Per-yield-point observability profiles (attempts, aborts by
    /// reason, current length), pc-ordered; empty outside HTM modes.
    pub yield_point_profiles: Vec<crate::tle::SiteProfile>,
    /// Structured-trace accounting: events seen and events evicted from
    /// the ring buffer. Both 0 when tracing was off.
    pub trace_events_recorded: u64,
    pub trace_events_dropped: u64,
    /// From the VM: allocation count and GC runs.
    pub allocations: u64,
    pub gc_runs: u64,
    /// Program output (correctness oracle across modes).
    pub stdout: String,
    /// Task-latency section — present only when the program emitted
    /// `srv_mark` lifecycle events (the taskserver scenario).
    pub task_latency: Option<crate::latency::TaskLatencyReport>,
}

impl RunReport {
    /// Work per cycle — the throughput measure normalized by the figure
    /// harnesses. For fixed-work workloads, relative speedup equals the
    /// inverse ratio of `elapsed_cycles`.
    pub fn throughput(&self) -> f64 {
        self.committed_insns as f64 / self.elapsed_cycles.max(1) as f64
    }

    /// Abort ratio in percent (aborts / begins).
    pub fn abort_ratio_pct(&self) -> f64 {
        self.htm.abort_ratio_pct()
    }

    /// Structured JSON view of the full report (hand-rolled serializer —
    /// see [`crate::json`]); the payload behind every bench binary's
    /// `--report-json` flag.
    pub fn to_json(&self) -> Json {
        let breakdown = Json::obj()
            .field("tx_begin_end", self.breakdown.tx_begin_end)
            .field("tx_success", self.breakdown.tx_success)
            .field("gil_held", self.breakdown.gil_held)
            .field("aborted", self.breakdown.aborted)
            .field("gil_wait", self.breakdown.gil_wait)
            .field("io_wait", self.breakdown.io_wait)
            .field("other", self.breakdown.other)
            .field("total", self.breakdown.total());
        // Derived from the canonical AbortReason table, so a new variant
        // shows up here without this file changing.
        let aborts = self
            .htm
            .abort_breakdown()
            .into_iter()
            .fold(Json::obj(), |acc, (label, n)| acc.field(label, n))
            .field("total", self.htm.total_aborts());
        let htm = Json::obj()
            .field("begins", self.htm.begins)
            .field("commits", self.htm.commits)
            .field("aborts", aborts)
            .field("abort_ratio_pct", self.htm.abort_ratio_pct())
            .field("read_conflict_share_pct", self.htm.read_conflict_share_pct())
            .field("nontx_dooms", self.htm.nontx_dooms)
            .field("mem_reads", self.htm.reads)
            .field("mem_writes", self.htm.writes)
            .field("lease_hits", self.htm.lease_hits)
            .field("lease_misses", self.htm.lease_misses)
            .field("epoch_bumps", self.htm.epoch_bumps);
        // Conflict attribution, in address-map order (ConflictSite: Ord).
        let mut sites: Vec<(ConflictSite, u64)> =
            self.conflict_sites.iter().map(|(&s, &n)| (s, n)).collect();
        sites.sort();
        let conflict_sites =
            sites.into_iter().fold(Json::obj(), |acc, (site, n)| acc.field(site.label(), n));
        let profiles = self
            .yield_point_profiles
            .iter()
            .map(|p| {
                let aborts = p
                    .abort_breakdown()
                    .into_iter()
                    .fold(Json::obj(), |acc, (label, n)| acc.field(label, n));
                Json::obj()
                    .field("pc", p.pc)
                    .field("attempts", p.attempts)
                    .field("aborts", aborts)
                    .field("total_aborts", p.total_aborts())
                    .field("length", p.length)
            })
            .collect::<Vec<Json>>();
        let report = Json::obj()
            .field("schema", "htm-gil-run-report/v1")
            .field("mode", self.mode_label.as_str());
        let report = if self.subscription == crate::tle::SubscriptionPolicy::Eager {
            report
        } else {
            report.field("subscription", self.subscription.label())
        };
        let report = report
            .field("machine", self.machine)
            .field("threads", self.threads_used)
            .field("elapsed_cycles", self.elapsed_cycles)
            .field("committed_insns", self.committed_insns)
            .field("wasted_insns", self.wasted_insns)
            .field("throughput", self.throughput())
            .field("breakdown", breakdown)
            .field("htm", htm)
            .field("gil_acquisitions", self.gil_acquisitions)
            .field("conflict_sites", conflict_sites)
            .field("allocator_conflict_share_pct", self.allocator_conflict_share_pct())
            .field("share_length_one", self.share_length_one)
            .field("length_adjustments", self.length_adjustments)
            .field("watchdog_escalations", self.watchdog_escalations)
            .field("yield_point_profiles", Json::Arr(profiles))
            .field(
                "trace",
                Json::obj()
                    .field("recorded", self.trace_events_recorded)
                    .field("dropped", self.trace_events_dropped),
            )
            .field("allocations", self.allocations)
            .field("gc_runs", self.gc_runs);
        // Emitted only when present, so reports from non-server runs are
        // byte-identical to the pre-taskserver schema.
        match &self.task_latency {
            Some(tl) => report.field("task_latency", tl.to_json()),
            None => report,
        }
    }

    /// Share of read-set conflicts that hit the allocator (paper §5.6).
    pub fn allocator_conflict_share_pct(&self) -> f64 {
        let total: u64 = self.conflict_sites.values().sum();
        if total == 0 {
            return 0.0;
        }
        let alloc = self.conflict_sites.get(&ConflictSite::Allocator).copied().unwrap_or(0)
            + self.conflict_sites.get(&ConflictSite::HeapSlots).copied().unwrap_or(0);
        100.0 * alloc as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shares_sum_to_100() {
        let b = CycleBreakdown {
            tx_begin_end: 10,
            tx_success: 40,
            gil_held: 20,
            aborted: 10,
            gil_wait: 10,
            io_wait: 5,
            other: 5,
        };
        let sum: f64 = b.shares_pct().iter().map(|(_, v)| v).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn throughput_is_work_per_cycle() {
        let r = RunReport {
            mode_label: "HTM-16".into(),
            subscription: crate::tle::SubscriptionPolicy::Eager,
            machine: "zEC12",
            threads_used: 4,
            elapsed_cycles: 1_000,
            committed_insns: 500,
            wasted_insns: 50,
            breakdown: CycleBreakdown::default(),
            htm: HtmStats::default(),
            gil_acquisitions: 0,
            conflict_sites: HashMap::new(),
            share_length_one: 0.0,
            length_adjustments: 0,
            watchdog_escalations: 0,
            yield_point_profiles: Vec::new(),
            trace_events_recorded: 0,
            trace_events_dropped: 0,
            allocations: 0,
            gc_runs: 0,
            stdout: String::new(),
            task_latency: None,
        };
        assert!((r.throughput() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn to_json_roundtrips_and_exposes_breakdowns() {
        let mut sites = HashMap::new();
        sites.insert(ConflictSite::Allocator, 7);
        sites.insert(ConflictSite::Gil, 2);
        let htm = HtmStats {
            begins: 100,
            commits: 90,
            conflicts_read: 8,
            conflicts_write: 2,
            lease_hits: 4_000,
            lease_misses: 250,
            epoch_bumps: 310,
            ..HtmStats::default()
        };
        let r = RunReport {
            mode_label: "HTM-dynamic".into(),
            subscription: crate::tle::SubscriptionPolicy::Eager,
            machine: "zEC12",
            threads_used: 4,
            elapsed_cycles: 10_000,
            committed_insns: 5_000,
            wasted_insns: 120,
            breakdown: CycleBreakdown { tx_success: 9_000, aborted: 1_000, ..Default::default() },
            htm,
            gil_acquisitions: 3,
            conflict_sites: sites,
            share_length_one: 0.25,
            length_adjustments: 12,
            watchdog_escalations: 2,
            yield_point_profiles: vec![{
                let mut p = crate::tle::SiteProfile {
                    pc: 42,
                    attempts: 50,
                    length: 191,
                    ..Default::default()
                };
                p.aborts[htm_sim::AbortReason::ConflictRead { with: 0, line: 0 }.kind_index()] = 5;
                p
            }],
            trace_events_recorded: 1_000,
            trace_events_dropped: 10,
            allocations: 77,
            gc_runs: 1,
            stdout: String::new(),
            task_latency: None,
        };
        let j = r.to_json();
        let parsed = crate::json::Json::parse(&j.to_pretty()).unwrap();
        assert_eq!(parsed.get("mode").unwrap().as_str(), Some("HTM-dynamic"));
        assert_eq!(
            parsed
                .get("htm")
                .unwrap()
                .get("aborts")
                .unwrap()
                .get("conflict-read")
                .unwrap()
                .as_u64(),
            Some(8)
        );
        assert_eq!(
            parsed.get("conflict_sites").unwrap().get("allocator").unwrap().as_u64(),
            Some(7)
        );
        let profiles = parsed.get("yield_point_profiles").unwrap().as_array().unwrap();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].get("pc").unwrap().as_u64(), Some(42));
        assert_eq!(profiles[0].get("length").unwrap().as_u64(), Some(191));
        assert_eq!(
            profiles[0].get("aborts").unwrap().get("conflict-read").unwrap().as_u64(),
            Some(5)
        );
        assert_eq!(
            profiles[0].get("aborts").unwrap().get("spurious").unwrap().as_u64(),
            Some(0),
            "new reason kinds flow into profile JSON automatically"
        );
        assert_eq!(
            parsed.get("htm").unwrap().get("aborts").unwrap().get("spurious").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(parsed.get("watchdog_escalations").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("trace").unwrap().get("dropped").unwrap().as_u64(), Some(10));
        let htm_json = parsed.get("htm").unwrap();
        assert_eq!(htm_json.get("lease_hits").unwrap().as_u64(), Some(4_000));
        assert_eq!(htm_json.get("lease_misses").unwrap().as_u64(), Some(250));
        assert_eq!(htm_json.get("epoch_bumps").unwrap().as_u64(), Some(310));
        assert!(parsed.get("subscription").is_none(), "eager runs keep the pre-knob schema");
        let mut lazy = r.clone();
        lazy.subscription = crate::tle::SubscriptionPolicy::Lazy;
        let lp = crate::json::Json::parse(&lazy.to_json().to_pretty()).unwrap();
        assert_eq!(lp.get("subscription").unwrap().as_str(), Some("lazy"));
    }

    #[test]
    fn allocator_share_combines_metadata_and_slots() {
        let mut sites = HashMap::new();
        sites.insert(ConflictSite::Allocator, 30);
        sites.insert(ConflictSite::HeapSlots, 30);
        sites.insert(ConflictSite::InlineCache, 40);
        let r = RunReport {
            mode_label: String::new(),
            subscription: crate::tle::SubscriptionPolicy::Eager,
            machine: "x",
            threads_used: 1,
            elapsed_cycles: 1,
            committed_insns: 0,
            wasted_insns: 0,
            breakdown: CycleBreakdown::default(),
            htm: HtmStats::default(),
            gil_acquisitions: 0,
            conflict_sites: sites,
            share_length_one: 0.0,
            length_adjustments: 0,
            watchdog_escalations: 0,
            yield_point_profiles: Vec::new(),
            trace_events_recorded: 0,
            trace_events_dropped: 0,
            allocations: 0,
            gc_runs: 0,
            stdout: String::new(),
            task_latency: None,
        };
        assert!((r.allocator_conflict_share_pct() - 60.0).abs() < 1e-9);
    }
}
