//! Run results: throughput, cycle breakdowns, abort attribution.

use std::collections::HashMap;

use htm_sim::HtmStats;
use machine_sim::Cycles;

/// Where in the VM address space a conflicting line lives — used for the
/// paper's §5.6 attribution ("more than 50 % of those read-set conflicts
/// occurred at the time of object allocation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConflictSite {
    /// The GIL word itself.
    Gil,
    /// The running-thread global (§4.4 #1).
    RunningThread,
    /// Heap metadata: free-list head, sweep cursor, malloc bump/class
    /// heads — the allocator (§4.4 #2 / §5.6).
    Allocator,
    /// Global variables / constants.
    Globals,
    /// Inline-cache words (§4.4 #4).
    InlineCache,
    /// Thread structs — false sharing when unpadded (§4.4 #5).
    ThreadStruct,
    /// Object slots (shared application data, lazy-sweep links).
    HeapSlots,
    /// Malloc'd buffers (array/ivar/string data).
    MallocArea,
    /// Another thread's stack (escaped environments).
    Stack,
}

/// Cycle breakdown in the categories of the paper's Fig. 8.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleBreakdown {
    /// `TBEGIN`/`TEND` and the surrounding begin/end bookkeeping.
    pub tx_begin_end: Cycles,
    /// Work inside transactions that committed.
    pub tx_success: Cycles,
    /// Work executed while holding the GIL (fallback or GIL mode).
    pub gil_held: Cycles,
    /// Work discarded by aborts, plus the hardware abort penalty.
    pub aborted: Cycles,
    /// Spinning/parked time waiting for the GIL to be released.
    pub gil_wait: Cycles,
    /// Blocked on simulated I/O.
    pub io_wait: Cycles,
    /// Everything else (scheduler overhead, blocked on app sync).
    pub other: Cycles,
}

impl CycleBreakdown {
    pub fn total(&self) -> Cycles {
        self.tx_begin_end
            + self.tx_success
            + self.gil_held
            + self.aborted
            + self.gil_wait
            + self.io_wait
            + self.other
    }

    /// Category shares in percent, in Fig. 8 order.
    pub fn shares_pct(&self) -> [(&'static str, f64); 7] {
        let t = self.total().max(1) as f64;
        [
            ("tx-begin/end", 100.0 * self.tx_begin_end as f64 / t),
            ("successful-tx", 100.0 * self.tx_success as f64 / t),
            ("gil-held", 100.0 * self.gil_held as f64 / t),
            ("aborted-tx", 100.0 * self.aborted as f64 / t),
            ("gil-wait", 100.0 * self.gil_wait as f64 / t),
            ("io-wait", 100.0 * self.io_wait as f64 / t),
            ("other", 100.0 * self.other as f64 / t),
        ]
    }
}

/// Everything a figure harness needs from one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub mode_label: String,
    pub machine: &'static str,
    pub threads_used: usize,
    /// Wall-clock of the run: max thread clock.
    pub elapsed_cycles: Cycles,
    /// Bytecodes whose effects committed (work metric).
    pub committed_insns: u64,
    /// Bytecodes rolled back with aborted transactions.
    pub wasted_insns: u64,
    pub breakdown: CycleBreakdown,
    pub htm: HtmStats,
    pub gil_acquisitions: u64,
    /// Read-set conflicts attributed to VM regions (line classification).
    pub conflict_sites: HashMap<ConflictSite, u64>,
    /// Dynamic-adjustment outcome: share of active yield points that ended
    /// at length 1, and total shrink events.
    pub share_length_one: f64,
    pub length_adjustments: u64,
    /// From the VM: allocation count and GC runs.
    pub allocations: u64,
    pub gc_runs: u64,
    /// Program output (correctness oracle across modes).
    pub stdout: String,
}

impl RunReport {
    /// Work per cycle — the throughput measure normalized by the figure
    /// harnesses. For fixed-work workloads, relative speedup equals the
    /// inverse ratio of `elapsed_cycles`.
    pub fn throughput(&self) -> f64 {
        self.committed_insns as f64 / self.elapsed_cycles.max(1) as f64
    }

    /// Abort ratio in percent (aborts / begins).
    pub fn abort_ratio_pct(&self) -> f64 {
        self.htm.abort_ratio_pct()
    }

    /// Share of read-set conflicts that hit the allocator (paper §5.6).
    pub fn allocator_conflict_share_pct(&self) -> f64 {
        let total: u64 = self.conflict_sites.values().sum();
        if total == 0 {
            return 0.0;
        }
        let alloc = self
            .conflict_sites
            .get(&ConflictSite::Allocator)
            .copied()
            .unwrap_or(0)
            + self
                .conflict_sites
                .get(&ConflictSite::HeapSlots)
                .copied()
                .unwrap_or(0);
        100.0 * alloc as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shares_sum_to_100() {
        let b = CycleBreakdown {
            tx_begin_end: 10,
            tx_success: 40,
            gil_held: 20,
            aborted: 10,
            gil_wait: 10,
            io_wait: 5,
            other: 5,
        };
        let sum: f64 = b.shares_pct().iter().map(|(_, v)| v).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn throughput_is_work_per_cycle() {
        let r = RunReport {
            mode_label: "HTM-16".into(),
            machine: "zEC12",
            threads_used: 4,
            elapsed_cycles: 1_000,
            committed_insns: 500,
            wasted_insns: 50,
            breakdown: CycleBreakdown::default(),
            htm: HtmStats::default(),
            gil_acquisitions: 0,
            conflict_sites: HashMap::new(),
            share_length_one: 0.0,
            length_adjustments: 0,
            allocations: 0,
            gc_runs: 0,
            stdout: String::new(),
        };
        assert!((r.throughput() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn allocator_share_combines_metadata_and_slots() {
        let mut sites = HashMap::new();
        sites.insert(ConflictSite::Allocator, 30);
        sites.insert(ConflictSite::HeapSlots, 30);
        sites.insert(ConflictSite::InlineCache, 40);
        let r = RunReport {
            mode_label: String::new(),
            machine: "x",
            threads_used: 1,
            elapsed_cycles: 1,
            committed_insns: 0,
            wasted_insns: 0,
            breakdown: CycleBreakdown::default(),
            htm: HtmStats::default(),
            gil_acquisitions: 0,
            conflict_sites: sites,
            share_length_one: 0.0,
            length_adjustments: 0,
            allocations: 0,
            gc_runs: 0,
            stdout: String::new(),
        };
        assert!((r.allocator_conflict_share_pct() - 60.0).abs() < 1e-9);
    }
}
