//! Task-latency accounting for server scenarios.
//!
//! The `workloads::taskserver` scenario emits lifecycle marks from the
//! Ruby program via the non-restricted `Kernel#srv_mark(kind, id)`
//! builtin. The executor forwards each mark here stamped with the
//! simulated clock of the *moment it became externally visible*: marks
//! emitted inside a hardware transaction are held in escrow and arrive
//! with the commit-time clock; marks from an aborted transaction never
//! arrive at all. Latencies therefore measure what a client of the
//! simulated server would observe, not speculative work that was rolled
//! back.
//!
//! Mark kinds (the Ruby side and this module must agree):
//!
//! | kind | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | task enqueued by a client                 |
//! | 1    | task dequeued by a worker                 |
//! | 2    | task completed (result published)         |
//! | 3    | task shed: rejected by a full bounded queue |
//!
//! Two latency distributions are kept as log-bucketed histograms
//! ([`htm_gil_stats::LatencyHistogram`]): end-to-end (enqueue →
//! complete) and queue wait (enqueue → dequeue). Queue depth and shed
//! counts are tracked as a windowed time series whose resolution
//! coarsens adaptively, so the report stays bounded no matter how long
//! the run is while remaining a pure function of the (deterministic)
//! mark stream.

use std::collections::HashMap;

use htm_gil_stats::LatencyHistogram;
use machine_sim::Cycles;

use crate::json::Json;

/// Mark kinds — keep in sync with the taskserver Ruby template.
pub mod mark {
    pub const ENQUEUE: u8 = 0;
    pub const DEQUEUE: u8 = 1;
    pub const COMPLETE: u8 = 2;
    pub const SHED: u8 = 3;
}

/// Initial time-series window width (cycles): 2^16.
const INITIAL_WINDOW_BITS: u32 = 16;
/// Coarsen (double the window) when the series exceeds this many windows.
const MAX_WINDOWS: usize = 512;

/// Per-window aggregate for the queue time series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WindowAgg {
    max_depth: u64,
    sheds: u64,
}

/// Accumulates task lifecycle marks into latency histograms and a
/// bounded queue-depth/shed time series.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    /// Open tasks: id → (enqueue clock, dequeue clock if seen).
    pending: HashMap<i64, (Cycles, Option<Cycles>)>,
    e2e: LatencyHistogram,
    queue_wait: LatencyHistogram,
    enqueued: u64,
    completed: u64,
    shed: u64,
    /// Current queue depth (enqueues not yet dequeued).
    depth: u64,
    window_bits: u32,
    series: HashMap<u64, WindowAgg>,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        LatencyRecorder { window_bits: INITIAL_WINDOW_BITS, ..Default::default() }
    }

    /// True when no mark has ever been recorded (the report omits the
    /// whole section in that case).
    pub fn is_empty(&self) -> bool {
        self.enqueued == 0 && self.shed == 0 && self.completed == 0
    }

    /// Record one committed lifecycle mark at simulated time `now`.
    ///
    /// Unknown kinds and marks for unknown task ids are ignored rather
    /// than panicking: the Ruby program is the source of the stream and
    /// a scenario bug should surface in its own assertions, not tear
    /// down the executor.
    pub fn on_mark(&mut self, kind: u8, id: i64, now: Cycles) {
        match kind {
            mark::ENQUEUE => {
                self.enqueued += 1;
                self.depth += 1;
                self.pending.insert(id, (now, None));
                self.touch_depth(now);
            }
            mark::DEQUEUE => {
                if let Some(p) = self.pending.get_mut(&id) {
                    if p.1.is_none() {
                        p.1 = Some(now);
                        self.queue_wait.record(now.saturating_sub(p.0));
                        self.depth = self.depth.saturating_sub(1);
                        self.touch_depth(now);
                    }
                }
            }
            mark::COMPLETE => {
                if let Some((enq, _)) = self.pending.remove(&id) {
                    self.completed += 1;
                    self.e2e.record(now.saturating_sub(enq));
                }
            }
            mark::SHED => {
                self.shed += 1;
                self.window_entry(now).sheds += 1;
                self.coarsen_if_needed();
            }
            _ => {}
        }
    }

    fn touch_depth(&mut self, now: Cycles) {
        let depth = self.depth;
        let w = self.window_entry(now);
        w.max_depth = w.max_depth.max(depth);
        self.coarsen_if_needed();
    }

    fn window_entry(&mut self, now: Cycles) -> &mut WindowAgg {
        let idx = now >> self.window_bits;
        self.series.entry(idx).or_default()
    }

    /// Halve the series resolution until it fits the bound again. The
    /// merge is max/sum per pair of adjacent windows, so the final
    /// series depends only on the mark stream, not on when coarsening
    /// happened to trigger.
    fn coarsen_if_needed(&mut self) {
        while self.series.len() > MAX_WINDOWS {
            self.window_bits += 1;
            let mut merged: HashMap<u64, WindowAgg> = HashMap::with_capacity(self.series.len() / 2);
            for (idx, agg) in self.series.drain() {
                let m = merged.entry(idx >> 1).or_default();
                m.max_depth = m.max_depth.max(agg.max_depth);
                m.sheds += agg.sheds;
            }
            self.series = merged;
        }
    }

    /// Summarize into the report form; `None` when nothing was recorded.
    pub fn summary(&self) -> Option<TaskLatencyReport> {
        if self.is_empty() {
            return None;
        }
        let mut series: Vec<QueueWindow> = self
            .series
            .iter()
            .map(|(&idx, agg)| QueueWindow {
                start_cycle: idx << self.window_bits,
                max_depth: agg.max_depth,
                sheds: agg.sheds,
            })
            .collect();
        series.sort_by_key(|w| w.start_cycle);
        Some(TaskLatencyReport {
            enqueued: self.enqueued,
            completed: self.completed,
            shed: self.shed,
            e2e: LatencyStats::of(&self.e2e),
            queue_wait: LatencyStats::of(&self.queue_wait),
            window_cycles: 1u64 << self.window_bits,
            queue_series: series,
        })
    }
}

/// Percentile summary of one latency histogram, in simulated cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    pub count: u64,
    pub min: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
}

impl LatencyStats {
    fn of(h: &LatencyHistogram) -> LatencyStats {
        LatencyStats {
            count: h.count(),
            min: h.min(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field("count", self.count)
            .field("min", self.min)
            .field("mean", self.mean)
            .field("p50", self.p50)
            .field("p90", self.p90)
            .field("p99", self.p99)
            .field("p999", self.p999)
            .field("max", self.max)
    }
}

/// One window of the queue time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueWindow {
    pub start_cycle: Cycles,
    pub max_depth: u64,
    pub sheds: u64,
}

/// The `task_latency` section of a [`crate::report::RunReport`]. Present
/// only for runs whose program emitted `srv_mark` lifecycle events.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskLatencyReport {
    pub enqueued: u64,
    pub completed: u64,
    pub shed: u64,
    /// Enqueue → complete.
    pub e2e: LatencyStats,
    /// Enqueue → dequeue.
    pub queue_wait: LatencyStats,
    /// Width of each time-series window, in cycles.
    pub window_cycles: Cycles,
    /// Sparse, start-cycle-ordered queue-depth/shed series.
    pub queue_series: Vec<QueueWindow>,
}

impl TaskLatencyReport {
    pub fn to_json(&self) -> Json {
        let series = self
            .queue_series
            .iter()
            .map(|w| {
                Json::obj()
                    .field("start_cycle", w.start_cycle)
                    .field("max_depth", w.max_depth)
                    .field("sheds", w.sheds)
            })
            .collect::<Vec<Json>>();
        Json::obj()
            .field("enqueued", self.enqueued)
            .field("completed", self.completed)
            .field("shed", self.shed)
            .field("e2e", self.e2e.to_json())
            .field("queue_wait", self.queue_wait.to_json())
            .field("window_cycles", self.window_cycles)
            .field("queue_series", Json::Arr(series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_produces_both_latencies() {
        let mut r = LatencyRecorder::new();
        r.on_mark(mark::ENQUEUE, 7, 100);
        r.on_mark(mark::DEQUEUE, 7, 250);
        r.on_mark(mark::COMPLETE, 7, 900);
        let s = r.summary().expect("non-empty");
        assert_eq!(s.enqueued, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.shed, 0);
        assert_eq!(s.queue_wait.count, 1);
        assert_eq!(s.queue_wait.max, 150);
        assert_eq!(s.e2e.count, 1);
        assert_eq!(s.e2e.max, 800);
        // Single sample: every quantile is that sample.
        assert_eq!(s.e2e.p50, 800);
        assert_eq!(s.e2e.p999, 800);
    }

    #[test]
    fn shed_counts_without_touching_depth() {
        let mut r = LatencyRecorder::new();
        r.on_mark(mark::ENQUEUE, 1, 10);
        r.on_mark(mark::SHED, 2, 20);
        r.on_mark(mark::SHED, 3, 30);
        let s = r.summary().unwrap();
        assert_eq!(s.shed, 2);
        assert_eq!(s.enqueued, 1);
        let total_sheds: u64 = s.queue_series.iter().map(|w| w.sheds).sum();
        assert_eq!(total_sheds, 2);
        assert_eq!(s.queue_series.iter().map(|w| w.max_depth).max(), Some(1));
    }

    #[test]
    fn depth_tracks_enqueue_dequeue_balance() {
        let mut r = LatencyRecorder::new();
        for id in 0..5 {
            r.on_mark(mark::ENQUEUE, id, 10 + id as u64);
        }
        for id in 0..3 {
            r.on_mark(mark::DEQUEUE, id, 100 + id as u64);
        }
        let s = r.summary().unwrap();
        assert_eq!(s.queue_series.iter().map(|w| w.max_depth).max(), Some(5));
        assert_eq!(s.queue_wait.count, 3);
    }

    #[test]
    fn duplicate_dequeue_is_ignored() {
        let mut r = LatencyRecorder::new();
        r.on_mark(mark::ENQUEUE, 1, 10);
        r.on_mark(mark::DEQUEUE, 1, 20);
        r.on_mark(mark::DEQUEUE, 1, 30);
        let s = r.summary().unwrap();
        assert_eq!(s.queue_wait.count, 1, "second dequeue of the same task must not count");
    }

    #[test]
    fn series_coarsens_but_preserves_totals() {
        let mut r = LatencyRecorder::new();
        // Spread sheds over enough distinct windows to force coarsening.
        let span = (MAX_WINDOWS as u64 + 100) << INITIAL_WINDOW_BITS;
        let step = span / 2000;
        for i in 0..2000u64 {
            r.on_mark(mark::SHED, i as i64, i * step);
        }
        let s = r.summary().unwrap();
        assert!(s.queue_series.len() <= MAX_WINDOWS);
        assert!(s.window_cycles > 1 << INITIAL_WINDOW_BITS, "must have coarsened");
        let total: u64 = s.queue_series.iter().map(|w| w.sheds).sum();
        assert_eq!(total, 2000, "coarsening must not lose sheds");
    }

    #[test]
    fn empty_recorder_reports_nothing() {
        assert!(LatencyRecorder::new().summary().is_none());
    }
}
