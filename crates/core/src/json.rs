//! Hand-rolled JSON: a value type, a serializer, and a small parser.
//!
//! The repo builds without network access, so run reports cannot pull in
//! `serde`/`serde_json`. This module implements exactly what the
//! observability layer needs: serialization of [`Json`] trees built by
//! [`crate::report::RunReport::to_json`], and enough of a parser for the
//! integration tests (and downstream tooling) to read the emitted files
//! back. Objects preserve insertion order; numbers are `f64` but
//! integers within `f64`'s exact range serialize without a fractional
//! part.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder seed; chain with [`Json::field`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects — builder use
    /// only).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }

    /// Parse a JSON document (the subset this module emits: no exponent
    /// shorthand is required but is accepted; no duplicate-key handling).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (UTF-8 passes through).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_compact_output() {
        let j = Json::obj()
            .field("mode", "HTM-16")
            .field("threads", 4u64)
            .field("ratio", 1.5)
            .field("ok", true)
            .field("items", Json::Arr(vec![Json::from(1u64), Json::Null]));
        assert_eq!(
            j.to_compact(),
            r#"{"mode":"HTM-16","threads":4,"ratio":1.5,"ok":true,"items":[1,null]}"#
        );
    }

    #[test]
    fn integers_serialize_without_fraction() {
        let mut s = String::new();
        write_number(&mut s, 1_000_000_007.0);
        assert_eq!(s, "1000000007");
    }

    #[test]
    fn string_escaping() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn roundtrip_through_parser() {
        let j = Json::obj()
            .field("label", "conflict \"read\"\n")
            .field("count", 123_456_789u64)
            .field("share", 0.8125)
            .field("neg", -42i64)
            .field(
                "nested",
                Json::obj().field("empty_arr", Json::Arr(vec![])).field("null", Json::Null),
            );
        for text in [j.to_compact(), j.to_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, j);
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5 , \"λ→🚀\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("λ→🚀"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let j = Json::obj().field("a", Json::Arr(vec![Json::from(1u64)]));
        assert_eq!(j.to_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
