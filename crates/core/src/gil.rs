//! The Giant VM Lock itself.
//!
//! The GIL state is one word of simulated memory (`layout.gil`): writing
//! it non-transactionally on acquisition dooms every active transaction —
//! that is the TLE subscription mechanism keeping the fallback safe (every
//! transaction reads the GIL word right after `TBEGIN`, paper Fig. 1
//! line 15). The waiter queue and timer bookkeeping are executor-side
//! metadata, like CRuby's `gvl` struct.

use machine_sim::{Cycles, ThreadId};
use ruby_vm::{Vm, Word};

/// Why a parked thread is waiting on the GIL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GilWait {
    /// Wants to own the GIL (GIL mode, or HTM fallback after retries).
    Acquire,
    /// Waiting only for release, then retries its transaction
    /// (`spin_and_gil_acquire` returning "released", Fig. 1 lines 40–44).
    RetryTx,
}

/// GIL runtime state.
#[derive(Debug, Clone)]
pub struct GilState {
    pub holder: Option<ThreadId>,
    /// Parked waiters with their intent.
    pub waiters: Vec<(ThreadId, GilWait)>,
    /// Total acquisitions (report statistic).
    pub acquisitions: u64,
    /// Next 250 ms-timer deadline (GIL mode only).
    pub next_timer: Cycles,
}

impl GilState {
    pub fn new(first_timer: Cycles) -> Self {
        GilState { holder: None, waiters: Vec::new(), acquisitions: 0, next_timer: first_timer }
    }

    /// Acquire the GIL for `t`. Caller must have checked it is free.
    /// The memory write dooms all subscribed transactions.
    pub fn acquire(&mut self, vm: &mut Vm, t: ThreadId, tls_running_thread: bool) {
        debug_assert!(self.holder.is_none(), "GIL already held");
        self.holder = Some(t);
        self.acquisitions += 1;
        let gil = vm.layout.gil;
        vm.mem
            .write(t, gil, Word::Int(1))
            .expect("GIL word write cannot fail outside a transaction");
        if !tls_running_thread {
            // §4.4 #1 ablation: the running-thread global gets rewritten on
            // every acquisition — "the most severe conflicts".
            let rt = vm.layout.running_thread;
            vm.mem.write(t, rt, Word::Int(t as i64)).expect("running-thread write");
        }
    }

    /// Release the GIL held by `t`. Returns the waiters to wake.
    pub fn release(&mut self, vm: &mut Vm, t: ThreadId) -> Vec<(ThreadId, GilWait)> {
        debug_assert_eq!(self.holder, Some(t), "release by non-holder");
        self.holder = None;
        let gil = vm.layout.gil;
        vm.mem
            .write(t, gil, Word::Int(0))
            .expect("GIL word write cannot fail outside a transaction");
        std::mem::take(&mut self.waiters)
    }

    pub fn is_held(&self) -> bool {
        self.holder.is_some()
    }

    pub fn held_by(&self, t: ThreadId) -> bool {
        self.holder == Some(t)
    }

    /// Park `t` in the waiter queue.
    pub fn push_waiter(&mut self, t: ThreadId, wait: GilWait) {
        debug_assert!(self.waiters.iter().all(|&(w, _)| w != t));
        self.waiters.push((t, wait));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_sim::MachineProfile;
    use ruby_vm::VmConfig;

    fn vm() -> Vm {
        Vm::boot("nil", VmConfig::default(), &MachineProfile::generic(2)).unwrap()
    }

    #[test]
    fn acquire_release_cycle() {
        let mut vm = vm();
        let mut g = GilState::new(1000);
        assert!(!g.is_held());
        g.acquire(&mut vm, 0, true);
        assert!(g.held_by(0));
        assert_eq!(*vm.mem.peek(vm.layout.gil), Word::Int(1));
        g.push_waiter(1, GilWait::Acquire);
        let woken = g.release(&mut vm, 0);
        assert!(!g.is_held());
        assert_eq!(*vm.mem.peek(vm.layout.gil), Word::Int(0));
        assert_eq!(woken, vec![(1, GilWait::Acquire)]);
        assert_eq!(g.acquisitions, 1);
    }

    #[test]
    fn acquisition_dooms_subscribed_transactions() {
        let mut vm = vm();
        let mut g = GilState::new(0);
        let budgets = htm_sim::Budgets { read_lines: 1 << 20, write_lines: 1 << 20 };
        vm.mem.begin(1, budgets).unwrap();
        // Thread 1 subscribes to the GIL word, as TLE requires.
        let gil = vm.layout.gil;
        let _ = vm.mem.read(1, gil).unwrap();
        g.acquire(&mut vm, 0, true);
        assert!(vm.mem.poll_doomed(1).is_some(), "subscriber must be doomed");
    }

    #[test]
    fn waiter_queue_is_fifo() {
        // CRuby's gvl queue is FIFO; release must return waiters in
        // arrival order so the executor wakes them with that ordering.
        let mut vm = vm();
        let mut g = GilState::new(0);
        g.acquire(&mut vm, 0, true);
        g.push_waiter(3, GilWait::Acquire);
        g.push_waiter(1, GilWait::RetryTx);
        g.push_waiter(2, GilWait::Acquire);
        let woken = g.release(&mut vm, 0);
        assert_eq!(
            woken,
            vec![(3, GilWait::Acquire), (1, GilWait::RetryTx), (2, GilWait::Acquire)]
        );
        assert!(g.waiters.is_empty(), "queue drained on release");
    }

    #[test]
    fn timer_tick_forces_handoff_between_compute_threads() {
        // Two pure-compute threads under the GIL: neither ever blocks, so
        // the *only* way the second thread runs is the timer thread
        // flagging the holder at a yield point (paper §3.2). More
        // acquisitions than threads proves the handoff path fired.
        use crate::config::{ExecConfig, RuntimeMode};
        use crate::exec::Executor;
        use machine_sim::MachineProfile;
        use ruby_vm::VmConfig;
        let src = r#"
results = Array.new(2, 0)
threads = []
2.times do |i|
  threads << Thread.new(i) do |tid|
    s = 0
    j = 1
    while j <= 40000
      s += j
      j += 1
    end
    results[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts(results[0] + results[1])
"#;
        let profile = MachineProfile::generic(4);
        let cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
        let mut ex = Executor::new(src, VmConfig::default(), profile, cfg).unwrap();
        let r = ex.run().unwrap();
        assert_eq!(r.stdout, "1600040000");
        assert!(
            r.gil_acquisitions > 3,
            "timer must force handoffs: only {} acquisitions",
            r.gil_acquisitions
        );
    }

    #[test]
    fn parked_holder_releases_gil_before_blocking() {
        // The holder-parked edge case: a thread blocking on I/O while
        // holding the GIL must release it first, or the compute thread
        // deadlocks behind it. Completion of this program (with I/O
        // overlap actually observed) is the proof.
        use crate::config::{ExecConfig, RuntimeMode};
        use crate::exec::Executor;
        use machine_sim::MachineProfile;
        use ruby_vm::VmConfig;
        let src = r#"
done = Array.new(2, 0)
threads = []
threads << Thread.new() do
  j = 0
  while j < 8
    io_wait(1)
    j += 1
  end
  done[0] = 1
end
threads << Thread.new() do
  s = 0
  j = 1
  while j <= 5000
    s += j
    j += 1
  end
  done[1] = s
end
threads.each do |t|
  t.join()
end
puts(done.join(","))
"#;
        let profile = MachineProfile::generic(4);
        let cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
        let mut ex = Executor::new(src, VmConfig::default(), profile, cfg).unwrap();
        let r = ex.run().unwrap();
        assert_eq!(r.stdout, "1,12502500");
        assert!(r.breakdown.io_wait > 0, "I/O thread must actually block");
        assert!(r.gil_acquisitions >= 3, "GIL must change hands around the I/O parks");
    }

    #[test]
    fn running_thread_global_written_when_not_tls() {
        let mut vm = vm();
        let mut g = GilState::new(0);
        g.acquire(&mut vm, 0, false);
        assert_eq!(*vm.mem.peek(vm.layout.running_thread), Word::Int(0));
        let _ = g.release(&mut vm, 0);
        let mut g2 = GilState::new(0);
        g2.acquire(&mut vm, 1, true);
        // TLS mode: the global is untouched (still 0 from before).
        assert_eq!(*vm.mem.peek(vm.layout.running_thread), Word::Int(0));
    }
}
