//! Dynamic per-yield-point transaction-length tables (paper Fig. 3).
//!
//! Transactions "start" at the yield point where the previous one ended;
//! the tables are keyed by that yield point's global pc. The length of a
//! transaction is the number of yield points it passes through plus one
//! (§4.3). The two figure-3 operations are:
//!
//! * `set_transaction_length` — consulted at every `transaction_begin`;
//!   initializes unseen sites to `INITIAL_TRANSACTION_LENGTH` and counts
//!   the site's transactions up to `PROFILING_PERIOD`;
//! * `adjust_transaction_length` — called on a transaction's *first* abort
//!   (Fig. 1 lines 17–20); when the site accumulates more than
//!   `ADJUSTMENT_THRESHOLD` aborts within a profiling window, its length
//!   is attenuated by `ATTENUATION_RATE` and the window restarts.

use htm_sim::AbortReason;

use crate::config::{LengthPolicy, TleConstants};

/// When a transaction subscribes to the GIL word (Fig. 1 line 10 reads it
/// inside the transaction, *eagerly*, right after `TBEGIN`).
///
/// Dice, Harris, Kogan & Lev ("Pitfalls of lazy subscription", arXiv
/// 1407.6968) observe that deferring the subscription to just before
/// commit removes the GIL line from the read set for the transaction's
/// whole lifetime — a real capacity and conflict win — but is **unsafe**
/// on commodity HTM: the transaction runs unsubscribed, so it can read
/// state a lock holder is mutating mid-critical-section and still commit
/// (the compiler/CPU may even hoist the late lock load to where its value
/// predates the holder). The three policies model that design space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SubscriptionPolicy {
    /// Paper Fig. 1: read the GIL word immediately after `TBEGIN`, adding
    /// it to the read set so any later acquisition dooms the transaction.
    /// The default, and the only policy the paper ships.
    #[default]
    Eager,
    /// Subscribe only at `TEND` — modeled as the hoisted-load pitfall: the
    /// checked value is the one sampled at begin (always "free", because
    /// Fig. 1 lines 6–8 spin before `TBEGIN`), so the commit-time check is
    /// vacuous and the transaction commits regardless of the lock. A
    /// transaction can therefore overlap a GIL holder's critical section
    /// and still commit — observably unsafe; the schedule explorer pins a
    /// minimized interleaving where this loses a GIL holder's update.
    Lazy,
    /// Lazy subscription with a hardware commit guard (the fix sketched in
    /// arXiv 1407.6968 §5): a lock-monitor register armed at `TBEGIN`
    /// watches the GIL word without occupying read-set capacity, and any
    /// acquisition during the transaction's window dooms it — same safety
    /// and same abort pattern as `Eager`, minus the read-set line.
    LazyGuarded,
}

impl SubscriptionPolicy {
    /// Display label used in reports and bench CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            SubscriptionPolicy::Eager => "eager",
            SubscriptionPolicy::Lazy => "lazy",
            SubscriptionPolicy::LazyGuarded => "lazy-guarded",
        }
    }
}

/// Observability profile of one yield point: transaction attempts, aborts
/// broken down by reason, and the site's current transaction length.
/// Collected alongside the Fig. 3 adjustment state and exported in
/// [`crate::report::RunReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteProfile {
    /// Global pc of the yield point.
    pub pc: u32,
    /// `TBEGIN`s issued for transactions starting here (fresh + retries).
    pub attempts: u64,
    /// Aborts by kind, indexed by [`AbortReason::kind_index`] (canonical
    /// [`AbortReason::ALL_LABELS`] order). Sized by the enum itself, so a
    /// new variant grows the profile automatically.
    pub aborts: [u64; AbortReason::NUM_KINDS],
    /// Current transaction length at the site (the fixed constant under a
    /// fixed policy).
    pub length: u32,
}

impl SiteProfile {
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Count for one abort reason's kind.
    pub fn aborts_of(&self, reason: AbortReason) -> u64 {
        self.aborts[reason.kind_index()]
    }

    /// `(label, count)` pairs for the abort breakdown, in the canonical
    /// [`AbortReason::ALL_LABELS`] order.
    pub fn abort_breakdown(&self) -> [(&'static str, u64); AbortReason::NUM_KINDS] {
        let mut out = [("", 0u64); AbortReason::NUM_KINDS];
        for (i, &label) in AbortReason::ALL_LABELS.iter().enumerate() {
            out[i] = (label, self.aborts[i]);
        }
        out
    }
}

/// Per-yield-point adjustment state (dense over global pcs).
#[derive(Debug, Clone)]
pub struct LengthTables {
    consts: TleConstants,
    policy: LengthPolicy,
    /// `transaction_length[pc]`; 0 = not yet initialized.
    length: Vec<u32>,
    /// `transaction_counter[pc]` (transactions begun in this window).
    tx_counter: Vec<u32>,
    /// `abort_counter[pc]` (first-aborts in this window).
    abort_counter: Vec<u32>,
    /// Lifetime statistics (not part of the algorithm; for reports).
    pub total_adjustments: u64,
    /// Lifetime `TBEGIN` attempts per site (observability, not Fig. 3).
    attempts: Vec<u64>,
    /// Lifetime aborts per site by reason kind (observability).
    abort_kinds: Vec<[u64; AbortReason::NUM_KINDS]>,
}

impl LengthTables {
    pub fn new(total_pcs: u32, policy: LengthPolicy, consts: TleConstants) -> Self {
        LengthTables {
            consts,
            policy,
            length: vec![0; total_pcs as usize],
            tx_counter: vec![0; total_pcs as usize],
            abort_counter: vec![0; total_pcs as usize],
            total_adjustments: 0,
            attempts: vec![0; total_pcs as usize],
            abort_kinds: vec![[0; AbortReason::NUM_KINDS]; total_pcs as usize],
        }
    }

    /// Count one `TBEGIN` for a transaction starting at `pc` (fresh or
    /// retried — both issue a hardware begin).
    pub fn record_attempt(&mut self, pc: u32) {
        self.attempts[pc as usize] += 1;
    }

    /// Count one abort of a transaction that started at `pc`.
    pub fn record_abort(&mut self, pc: u32, reason: AbortReason) {
        self.abort_kinds[pc as usize][reason.kind_index()] += 1;
    }

    /// Profiles of every site that attempted at least one transaction,
    /// in pc order.
    pub fn profiles(&self) -> Vec<SiteProfile> {
        self.attempts
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a > 0)
            .map(|(pc, &attempts)| SiteProfile {
                pc: pc as u32,
                attempts,
                aborts: self.abort_kinds[pc],
                length: match self.policy {
                    LengthPolicy::Fixed(n) => n.max(1),
                    LengthPolicy::Dynamic => self.length[pc],
                },
            })
            .collect()
    }

    /// Paper Fig. 3, `set_transaction_length`: the yield-point budget the
    /// transaction starting at `pc` gets (assigned to the thread's
    /// `yield_point_counter`).
    pub fn set_transaction_length(&mut self, pc: u32) -> u32 {
        match self.policy {
            LengthPolicy::Fixed(n) => n.max(1),
            LengthPolicy::Dynamic => {
                let i = pc as usize;
                if self.length[i] == 0 {
                    self.length[i] = self.consts.initial_transaction_length;
                }
                if self.tx_counter[i] < self.consts.profiling_period {
                    self.tx_counter[i] += 1;
                }
                self.length[i]
            }
        }
    }

    /// Paper Fig. 3, `adjust_transaction_length`: called on the first
    /// abort of a transaction that started at `pc`.
    pub fn adjust_transaction_length(&mut self, pc: u32) {
        if self.policy != LengthPolicy::Dynamic {
            return;
        }
        let i = pc as usize;
        // Freeze once the profiling window completed without a shrink:
        // §4.3's "to avoid the overhead of monitoring the abort ratio
        // after the program reaches a steady state". (Fig. 3's literal
        // `<=` guard combined with the capped counter would keep the
        // window open forever and slowly decay every site to length 1;
        // the text's steady-state freeze is clearly the intent.)
        if self.length[i] <= 1 || self.tx_counter[i] >= self.consts.profiling_period {
            return;
        }
        let num_aborts = self.abort_counter[i];
        if num_aborts <= self.consts.adjustment_threshold {
            self.abort_counter[i] = num_aborts + 1;
        } else {
            let shortened =
                (f64::from(self.length[i]) * self.consts.attenuation_rate).floor() as u32;
            self.length[i] = shortened.max(1);
            self.tx_counter[i] = 0;
            self.abort_counter[i] = 0;
            self.total_adjustments += 1;
        }
    }

    /// Current length of a site (for reports; 0 = never begun there).
    pub fn length_at(&self, pc: u32) -> u32 {
        self.length[pc as usize]
    }

    /// Length for a *retry* of a transaction from `pc`: no window
    /// counting (Fig. 1's `goto transaction_retry` re-enters after line
    /// 5).
    pub fn peek_length(&mut self, pc: u32) -> u32 {
        match self.policy {
            LengthPolicy::Fixed(n) => n.max(1),
            LengthPolicy::Dynamic => {
                let l = self.length[pc as usize];
                if l == 0 {
                    self.consts.initial_transaction_length
                } else {
                    l
                }
            }
        }
    }

    /// Sites that ever began a transaction, with their final lengths.
    pub fn active_sites(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.length.iter().enumerate().filter(|&(_, &l)| l != 0).map(|(pc, &l)| (pc as u32, l))
    }

    /// Share (0–1) of active sites whose final length is exactly 1
    /// (paper §5.5: "40 % of the frequently executed yield points had the
    /// transaction length of 1" on 12-thread zEC12).
    pub fn share_of_length_one(&self) -> f64 {
        let mut active = 0usize;
        let mut ones = 0usize;
        for &l in &self.length {
            if l != 0 {
                active += 1;
                if l == 1 {
                    ones += 1;
                }
            }
        }
        if active == 0 {
            0.0
        } else {
            ones as f64 / active as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine_sim::MachineProfile;

    fn consts() -> TleConstants {
        TleConstants::for_profile(&MachineProfile::zec12())
    }

    #[test]
    fn fixed_policy_is_constant() {
        let mut t = LengthTables::new(10, LengthPolicy::Fixed(16), consts());
        assert_eq!(t.set_transaction_length(3), 16);
        for _ in 0..100 {
            t.adjust_transaction_length(3);
        }
        assert_eq!(t.set_transaction_length(3), 16);
    }

    #[test]
    fn dynamic_initializes_to_255() {
        let mut t = LengthTables::new(10, LengthPolicy::Dynamic, consts());
        assert_eq!(t.set_transaction_length(7), 255);
        assert_eq!(t.length_at(7), 255);
        assert_eq!(t.length_at(6), 0, "other sites untouched");
    }

    #[test]
    fn shortening_requires_threshold_exceeded() {
        let mut t = LengthTables::new(4, LengthPolicy::Dynamic, consts());
        t.set_transaction_length(0);
        // threshold = 3 on zEC12: the first 4 calls only count (0→1→2→3,
        // then 3 > 3 is false on the 4th? — num_aborts <= threshold grows
        // the counter; the shrink happens on the call that *sees* the
        // counter above the threshold).
        for _ in 0..4 {
            t.adjust_transaction_length(0);
            assert_eq!(t.length_at(0), 255);
        }
        t.adjust_transaction_length(0);
        assert_eq!(t.length_at(0), (255.0_f64 * 0.75).floor() as u32);
    }

    #[test]
    fn geometric_shrink_reaches_one_and_stops() {
        let mut t = LengthTables::new(1, LengthPolicy::Dynamic, consts());
        t.set_transaction_length(0);
        let mut lengths = vec![t.length_at(0)];
        for _ in 0..400 {
            t.adjust_transaction_length(0);
            let l = t.length_at(0);
            if *lengths.last().unwrap() != l {
                lengths.push(l);
            }
        }
        assert_eq!(*lengths.last().unwrap(), 1, "must bottom out at 1");
        // Monotone non-increasing with ratio 0.75.
        for w in lengths.windows(2) {
            assert!(w[1] < w[0]);
            assert_eq!(w[1], ((f64::from(w[0]) * 0.75).floor() as u32).max(1));
        }
    }

    #[test]
    fn steady_state_freezes_adjustment() {
        // After PROFILING_PERIOD transactions with few aborts, the length
        // must stop changing (Fig. 3 line 14 guard).
        let mut t = LengthTables::new(1, LengthPolicy::Dynamic, consts());
        for _ in 0..=300 {
            t.set_transaction_length(0);
        }
        let before = t.length_at(0);
        for _ in 0..100 {
            t.adjust_transaction_length(0);
        }
        assert_eq!(t.length_at(0), before, "profiling period over: frozen");
    }

    #[test]
    fn window_resets_after_shrink() {
        let mut t = LengthTables::new(1, LengthPolicy::Dynamic, consts());
        t.set_transaction_length(0);
        for _ in 0..5 {
            t.adjust_transaction_length(0);
        }
        assert_eq!(t.length_at(0), 191);
        // Window reset: the next shrink again needs threshold+2 calls.
        for _ in 0..4 {
            t.adjust_transaction_length(0);
            assert_eq!(t.length_at(0), 191);
        }
        t.adjust_transaction_length(0);
        assert_eq!(t.length_at(0), 143);
        assert_eq!(t.total_adjustments, 2);
    }

    #[test]
    fn profiles_track_attempts_and_abort_kinds() {
        let mut t = LengthTables::new(8, LengthPolicy::Dynamic, consts());
        t.set_transaction_length(2);
        t.record_attempt(2);
        t.record_attempt(2);
        t.record_abort(2, AbortReason::ConflictRead { with: 1, line: 9 });
        t.record_abort(2, AbortReason::ConflictRead { with: 0, line: 3 });
        t.record_abort(2, AbortReason::WriteOverflow);
        t.record_attempt(5);
        let profiles = t.profiles();
        assert_eq!(profiles.len(), 2, "only sites with attempts appear");
        let p2 = &profiles[0];
        assert_eq!(p2.pc, 2);
        assert_eq!(p2.attempts, 2);
        assert_eq!(p2.aborts_of(AbortReason::ConflictRead { with: 0, line: 0 }), 2);
        assert_eq!(p2.aborts_of(AbortReason::WriteOverflow), 1);
        assert_eq!(p2.total_aborts(), 3);
        assert_eq!(p2.length, 255);
        let p5 = &profiles[1];
        assert_eq!((p5.pc, p5.attempts, p5.total_aborts()), (5, 1, 0));
        assert_eq!(p5.length, 0, "site 5 never ran set_transaction_length");
    }

    #[test]
    fn profile_breakdown_follows_the_canonical_reason_table() {
        let mut t = LengthTables::new(2, LengthPolicy::Dynamic, consts());
        t.record_attempt(0);
        let spurious = AbortReason::Spurious { cause: htm_sim::SpuriousCause::TimerInterrupt };
        t.record_abort(0, spurious);
        t.record_abort(0, AbortReason::Restricted);
        let p = t.profiles()[0];
        assert_eq!(p.total_aborts(), 2);
        assert_eq!(p.aborts_of(spurious), 1);
        let bd = p.abort_breakdown();
        assert_eq!(bd.len(), AbortReason::NUM_KINDS);
        for (i, &(label, _)) in bd.iter().enumerate() {
            assert_eq!(label, AbortReason::ALL_LABELS[i]);
        }
        assert_eq!(bd[spurious.kind_index()], ("spurious", 1));
    }

    #[test]
    fn profiles_report_fixed_length_under_fixed_policy() {
        let mut t = LengthTables::new(4, LengthPolicy::Fixed(16), consts());
        t.record_attempt(1);
        let p = t.profiles();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].length, 16);
    }

    #[test]
    fn share_of_length_one() {
        let mut t = LengthTables::new(4, LengthPolicy::Dynamic, consts());
        t.set_transaction_length(0);
        t.set_transaction_length(1);
        // Shrink site 0 to 1 by hammering it.
        for _ in 0..2_000 {
            t.adjust_transaction_length(0);
        }
        assert_eq!(t.length_at(0), 1);
        assert!((t.share_of_length_one() - 0.5).abs() < 1e-9);
    }
}
