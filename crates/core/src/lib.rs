//! # htm-gil-core
//!
//! The paper's primary contribution, implemented over the `ruby-vm` +
//! `htm-sim` + `machine-sim` substrates:
//!
//! * **Transactional Lock Elision of the GIL** (paper §4.1, Figs. 1–2):
//!   interpreter slices between yield points run as hardware transactions
//!   that subscribe to the GIL word; aborted transactions retry and then
//!   fall back on the real GIL, which remains the safety net for GC,
//!   blocking operations and persistent aborts.
//! * **Dynamic per-yield-point transaction-length adjustment** (§4.3,
//!   Fig. 3): each yield point learns how many subsequent yield points its
//!   transactions may skip; lengths shrink geometrically (×0.75) while the
//!   site's abort ratio exceeds the machine's target (1 % on zEC12, 6 % on
//!   the Xeon) during a profiling period of 300 transactions.
//! * **Extended yield points** (§4.2): in HTM modes, `getlocal`,
//!   `getinstancevariable`, `getclassvariable`, `send`, `opt_plus`,
//!   `opt_minus`, `opt_mult` and `opt_aref` are yield points in addition
//!   to CRuby's loop back-edges and method/block exits.
//! * **Execution modes** for every baseline the paper compares against:
//!   the original GIL with its 250 ms timer thread, fixed transaction
//!   lengths (HTM-1/-16/-256), HTM-dynamic, a JRuby-like fine-grained
//!   locking VM, and an "ideal VM" (Java-NPB-like) with no VM-internal
//!   sharing.
//!
//! The [`exec::Executor`] drives everything deterministically over the
//! discrete-event scheduler and produces a [`report::RunReport`] with the
//! cycle breakdowns, abort statistics and throughput numbers each figure
//! of the paper needs.

pub mod config;
pub mod exec;
pub mod explore;
pub mod gil;
pub mod json;
pub mod latency;
pub mod locks;
pub mod oracle;
pub mod report;
pub mod tle;

pub use config::{
    ExecConfig, LengthPolicy, RuntimeMode, TleConstants, WatchdogConstants, YieldPolicy,
};
pub use exec::{Executor, RunError};
pub use explore::{
    check_path, gil_expected, mismatch_of, run_path, shrink, Expected, ExploreTarget, PathRun,
    ShrinkResult,
};
pub use json::Json;
pub use latency::{LatencyRecorder, LatencyStats, QueueWindow, TaskLatencyReport};
pub use oracle::{check_against_gil, heap_digest, OracleVerdict};
pub use report::{ConflictSite, CycleBreakdown, RunReport};
pub use tle::{LengthTables, SiteProfile, SubscriptionPolicy};
