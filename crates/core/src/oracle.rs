//! GIL-oracle differential checking.
//!
//! The forward-progress story is only half of robustness: a run that
//! terminates under fault injection must also have computed the *right
//! thing*. The paper's correctness argument (§4.1) is that TLE with a
//! GIL fallback is observationally equivalent to the GIL itself — so the
//! plain GIL runtime is a perfect oracle. This module runs a subject
//! configuration (any mode, any fault plan, any interrupt interval) and
//! a pristine GIL configuration over the same source, then compares
//!
//! * the complete stdout, and
//! * a canonical digest of the final global heap state.
//!
//! The digest deliberately avoids raw addresses: allocation order (and
//! therefore every `Addr`) differs across schedules, so it walks the
//! object graph hanging off the *global variables*, sorted by variable
//! name, rendering each object structurally. Hash entries are sorted
//! (insertion order is schedule-dependent but the mapping itself must
//! agree); cycles render as `<cycle>`.

use std::collections::HashSet;
use std::fmt::Write as _;

use machine_sim::MachineProfile;
use ruby_vm::{ObjKind, Vm, VmConfig, Word};

use crate::config::{ExecConfig, RuntimeMode};
use crate::exec::{Executor, RunError};
use crate::report::RunReport;

/// Outcome of one subject-vs-oracle comparison.
#[derive(Debug)]
pub struct OracleVerdict {
    pub subject: RunReport,
    pub oracle: RunReport,
    pub subject_heap: String,
    pub oracle_heap: String,
    /// `None` when the subject is observationally equivalent to the GIL
    /// oracle; otherwise a human-readable description of the divergence.
    pub mismatch: Option<String>,
}

impl OracleVerdict {
    pub fn matches(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// Run `source` under `subject_cfg`, then under a pristine GIL
/// configuration (no fault plan, no interrupt model, no watchdog), and
/// compare stdout plus the final heap digest.
pub fn check_against_gil(
    source: &str,
    vm_config: VmConfig,
    profile: MachineProfile,
    subject_cfg: ExecConfig,
) -> Result<OracleVerdict, RunError> {
    let mut subj = Executor::new(source, vm_config.clone(), profile.clone(), subject_cfg)?;
    let subject = subj.run()?;
    let subject_heap = heap_digest(&subj.vm);
    let mut gil_cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
    gil_cfg.max_cycles = subj.cfg.max_cycles;
    let mut orac = Executor::new(source, vm_config, profile, gil_cfg)?;
    let oracle = orac.run()?;
    let oracle_heap = heap_digest(&orac.vm);
    let mismatch = if subject.stdout != oracle.stdout {
        Some(format!(
            "stdout diverged from the GIL oracle\n  subject ({}): {:?}\n  oracle  (GIL): {:?}",
            subject.mode_label, subject.stdout, oracle.stdout
        ))
    } else if subject_heap != oracle_heap {
        Some(format!(
            "final heap diverged from the GIL oracle\n  subject ({}): {}\n  oracle  (GIL): {}",
            subject.mode_label, subject_heap, oracle_heap
        ))
    } else {
        None
    };
    Ok(OracleVerdict { subject, oracle, subject_heap, oracle_heap, mismatch })
}

/// Canonical, address-free digest of the VM's global-variable graph.
///
/// Globals are listed sorted by name (the per-run index assignment order
/// is schedule-dependent), each followed by a structural rendering of its
/// value. Two runs of the same program that ended in semantically equal
/// global state produce identical digests regardless of allocation order.
pub fn heap_digest(vm: &Vm) -> String {
    let mut gvars: Vec<(&str, usize)> =
        vm.gvar_map.iter().map(|(sym, idx)| (vm.program.symbols.name(*sym), *idx)).collect();
    gvars.sort();
    let mut out = String::new();
    let mut seen = HashSet::new();
    for (name, idx) in gvars {
        let _ = write!(out, "${name}=");
        render(vm, vm.mem.peek(vm.layout.gvar(idx)), &mut out, &mut seen);
        out.push('\n');
        seen.clear();
    }
    out
}

fn render(vm: &Vm, w: &Word, out: &mut String, seen: &mut HashSet<usize>) {
    match w {
        Word::Uninit | Word::Nil => out.push_str("nil"),
        Word::True => out.push_str("true"),
        Word::False => out.push_str("false"),
        Word::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Word::F64(f) => {
            let _ = write!(out, "{f:?}");
        }
        Word::Sym(s) => {
            let _ = write!(out, ":{}", vm.program.symbols.name(*s));
        }
        Word::Str(s) => {
            let _ = write!(out, "{:?}", &**s);
        }
        Word::Hdr(_) => out.push_str("<header>"),
        Word::Obj(addr) => render_obj(vm, *addr, out, seen),
    }
}

fn peek_int(vm: &Vm, addr: usize) -> i64 {
    vm.mem.peek(addr).as_int().unwrap_or(0)
}

fn render_obj(vm: &Vm, addr: usize, out: &mut String, seen: &mut HashSet<usize>) {
    if !seen.insert(addr) {
        out.push_str("<cycle>");
        return;
    }
    let Word::Hdr(h) = vm.mem.peek(addr) else {
        out.push_str("<corrupt>");
        return;
    };
    match h.kind {
        ObjKind::Float | ObjKind::String | ObjKind::Regexp => {
            render(vm, vm.mem.peek(addr + 1), out, seen);
        }
        ObjKind::Array => {
            let len = peek_int(vm, addr + 1) as usize;
            let buf = peek_int(vm, addr + 3) as usize;
            out.push('[');
            for i in 0..len {
                if i > 0 {
                    out.push(',');
                }
                render(vm, vm.mem.peek(buf + i), out, seen);
            }
            out.push(']');
        }
        ObjKind::Hash => {
            // Entry order is insertion order, which legitimately varies
            // across schedules: sort the rendered pairs.
            let n = peek_int(vm, addr + 1) as usize;
            let buf = peek_int(vm, addr + 3) as usize;
            let mut pairs = Vec::with_capacity(n);
            for i in 0..n {
                let mut p = String::new();
                render(vm, vm.mem.peek(buf + 2 * i), &mut p, seen);
                p.push_str("=>");
                render(vm, vm.mem.peek(buf + 2 * i + 1), &mut p, seen);
                pairs.push(p);
            }
            pairs.sort();
            out.push('{');
            out.push_str(&pairs.join(","));
            out.push('}');
        }
        ObjKind::Object => {
            out.push_str("#<");
            render_class_name(vm, peek_int(vm, addr + 1) as usize, out);
            // Ivar *indices* are assigned lazily per run, so render the
            // values as a sorted multiset rather than in index order.
            let buf = peek_int(vm, addr + 2) as usize;
            let nivars = peek_int(vm, addr + 3) as usize;
            let mut ivars = Vec::with_capacity(nivars);
            for i in 0..nivars {
                let mut v = String::new();
                render(vm, vm.mem.peek(buf + i), &mut v, seen);
                ivars.push(v);
            }
            ivars.sort();
            if !ivars.is_empty() {
                out.push(' ');
                out.push_str(&ivars.join(","));
            }
            out.push('>');
        }
        ObjKind::Class => {
            out.push_str("class:");
            render_class_name(vm, addr, out);
        }
        ObjKind::Range => {
            render(vm, vm.mem.peek(addr + 1), out, seen);
            out.push_str(if peek_int(vm, addr + 3) != 0 { "..." } else { ".." });
            render(vm, vm.mem.peek(addr + 2), out, seen);
        }
        ObjKind::Thread => {
            out.push_str("thread(");
            render(vm, vm.mem.peek(addr + 3), out, seen);
            out.push(')');
        }
        ObjKind::MatchData => {
            out.push_str("match");
            render(vm, vm.mem.peek(addr + 1), out, seen);
        }
        ObjKind::Table => {
            out.push_str("table");
            render(vm, vm.mem.peek(addr + 1), out, seen);
        }
        // Synchronization primitives and code objects carry no
        // user-visible *value* state worth comparing (owners are
        // transient, captured frames are addresses).
        ObjKind::Mutex => out.push_str("mutex"),
        ObjKind::Barrier => out.push_str("barrier"),
        ObjKind::Proc => out.push_str("proc"),
        ObjKind::Free => out.push_str("<free>"),
    }
}

fn render_class_name(vm: &Vm, class_slot: usize, out: &mut String) {
    match vm.mem.peek(class_slot + 6) {
        Word::Sym(s) => out.push_str(vm.program.symbols.name(*s)),
        _ => out.push('?'),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LengthPolicy;

    const GLOBALS_SRC: &str = r#"
$list = Array.new(3, 0)
$sum = 0
threads = []
3.times do |i|
  threads << Thread.new(i) do |tid|
    j = 1
    acc = 0
    while j <= 50
      acc += j * (tid + 1)
      j += 1
    end
    $list[tid] = acc
  end
end
threads.each do |t|
  t.join()
end
$sum = $list[0] + $list[1] + $list[2]
puts($sum)
"#;

    #[test]
    fn digest_is_address_free_and_name_sorted() {
        let profile = MachineProfile::generic(4);
        let cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
        let mut ex = Executor::new(GLOBALS_SRC, VmConfig::default(), profile, cfg).unwrap();
        ex.run().unwrap();
        let d = heap_digest(&ex.vm);
        // $list sorts before $sum; values are structural, no addresses.
        assert_eq!(d, "$list=[1275,2550,3825]\n$sum=7650\n");
    }

    #[test]
    fn htm_subject_matches_gil_oracle() {
        let profile = MachineProfile::generic(4);
        let cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
        let v = check_against_gil(GLOBALS_SRC, VmConfig::default(), profile, cfg).unwrap();
        assert!(v.matches(), "{}", v.mismatch.unwrap());
        assert_eq!(v.subject.stdout, "7650");
        assert_eq!(v.subject_heap, v.oracle_heap);
    }

    #[test]
    fn divergence_is_reported() {
        // A program whose *stdout* depends on scheduling would be caught;
        // simulate that cheaply by comparing two different programs'
        // digests through the public pieces.
        let profile = MachineProfile::generic(2);
        let cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
        let mut a =
            Executor::new("$x = 1", VmConfig::default(), profile.clone(), cfg.clone()).unwrap();
        a.run().unwrap();
        let mut b = Executor::new("$x = 2", VmConfig::default(), profile, cfg).unwrap();
        b.run().unwrap();
        assert_ne!(heap_digest(&a.vm), heap_digest(&b.vm));
    }

    #[test]
    fn cyclic_graphs_digest_identically_across_modes() {
        // A self-referential array must not hang the walker, and the
        // rendered <cycle> form must agree between an HTM subject and the
        // GIL oracle (the cycle is reached at the same structural path
        // whatever the schedule or allocation order).
        let src = r#"
$a = Array.new(2, 0)
$a[0] = $a
$a[1] = 7
puts($a[1])
"#;
        let profile = MachineProfile::generic(4);
        let cfg = ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Dynamic }, &profile);
        let v = check_against_gil(src, VmConfig::default(), profile, cfg).unwrap();
        assert!(v.matches(), "{}", v.mismatch.unwrap());
        assert_eq!(v.subject_heap, "$a=[<cycle>,7]\n");
    }

    #[test]
    fn digest_ignores_allocation_addresses() {
        // Two heaps holding the same global values at different addresses
        // (a pile of garbage allocated before vs after the global) must
        // digest identically — the digest walks structure, not memory.
        let early_garbage = r#"
tmp = Array.new(24, 1)
tmp[0] = tmp[1]
$x = Array.new(2, 5)
$y = "done"
"#;
        let late_garbage = r#"
$x = Array.new(2, 5)
$y = "done"
tmp = Array.new(24, 1)
tmp[0] = tmp[1]
"#;
        let profile = MachineProfile::generic(2);
        let cfg = ExecConfig::new(RuntimeMode::Gil, &profile);
        let mut a = Executor::new(early_garbage, VmConfig::default(), profile.clone(), cfg.clone())
            .unwrap();
        a.run().unwrap();
        let mut b = Executor::new(late_garbage, VmConfig::default(), profile, cfg).unwrap();
        b.run().unwrap();
        assert_eq!(heap_digest(&a.vm), heap_digest(&b.vm));
        assert_eq!(heap_digest(&a.vm), "$x=[5,5]\n$y=\"done\"\n");
    }

    #[test]
    fn injected_run_still_matches_oracle() {
        let profile = MachineProfile::generic(4);
        let mut cfg =
            ExecConfig::new(RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }, &profile);
        cfg.fault_plan = Some(htm_sim::FaultPlan::spurious(0xC0FFEE, 0.2));
        cfg.watchdog = crate::config::WatchdogConstants::enabled();
        let v = check_against_gil(GLOBALS_SRC, VmConfig::default(), profile, cfg).unwrap();
        assert!(v.matches(), "{}", v.mismatch.unwrap());
        assert!(v.subject.htm.spurious > 0, "injection must actually fire");
    }
}
