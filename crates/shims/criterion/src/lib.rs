//! Offline stand-in for the `criterion` crate.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — enough to compile and run this workspace's benches without
//! crates.io access. Each benchmark is timed with `std::time::Instant`
//! over `sample_size` samples after a short warm-up; the median sample
//! is printed as `ns/iter`. No plots, baselines, or statistics.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Per-sample iteration driver handed to bench closures.
pub struct Bencher {
    /// Nanoseconds of the routine body measured by the last `iter` call.
    elapsed_ns: u128,
    /// Iterations per sample (fixed small count; simulator runs are slow).
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.id, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher { elapsed_ns: 0, iters: 1 };
    // Warm-up (also primes lazily-built inputs inside the closure).
    f(&mut b);
    let mut per_iter: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        per_iter.push(b.elapsed_ns / u128::from(b.iters));
    }
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "bench {label:<44} median {median:>12} ns/iter  (min {min}, max {max}, {samples} samples)"
    );
}

/// `criterion_group!(name, target1, target2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        // 1 warm-up + 3 samples, one iteration each.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        let mut g = c.benchmark_group("shim2");
        g.sample_size(2).bench_with_input(BenchmarkId::from_parameter("p"), &7u64, |b, &x| {
            b.iter(|| {
                seen = x;
            });
        });
        g.finish();
        assert_eq!(seen, 7);
    }
}
