//! String generation from the small regex subset the workspace's tests
//! use as strategies.
//!
//! Supported syntax: literal characters, escapes (`\n`, `\t`, `\r`,
//! `\\`, and `\<punct>`), the Unicode category shorthand `\PC`
//! ("not control": generated as printable characters), character classes
//! `[...]` with ranges and escapes, and the quantifiers `*`, `+`, `?`,
//! `{n}`, `{m,n}` (unbounded repetition is capped at 16).

use crate::test_runner::TestRng;

const UNBOUNDED_MAX: u32 = 16;

#[derive(Debug, Clone)]
enum CharGen {
    Literal(char),
    /// Inclusive ranges; pick uniformly over ranges then within.
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control character (mostly printable ASCII, with a
    /// sprinkle of multibyte characters to stress lexers).
    NotControl,
}

impl CharGen {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            CharGen::Literal(c) => *c,
            CharGen::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = (hi as u32) - (lo as u32) + 1;
                // Skip unassigned surrogate gaps by retrying from the span.
                for _ in 0..8 {
                    if let Some(c) = char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32) {
                        return c;
                    }
                }
                lo
            }
            CharGen::NotControl => {
                const EXOTIC: &[char] = &['é', 'ß', 'λ', '中', '→', '🚀'];
                if rng.below(10) == 0 {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap()
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Element {
    charset: CharGen,
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.
pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let elements = parse(pattern);
    let mut out = String::new();
    for el in &elements {
        let n = el.min + rng.below(u64::from(el.max - el.min + 1)) as u32;
        for _ in 0..n {
            out.push(el.charset.generate(rng));
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Element> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let charset = match chars[i] {
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| unsupported(pattern, "trailing \\"));
                i += 1;
                match c {
                    'n' => CharGen::Literal('\n'),
                    't' => CharGen::Literal('\t'),
                    'r' => CharGen::Literal('\r'),
                    'P' => {
                        // Only the `\PC` (non-control) category is used.
                        let cat =
                            *chars.get(i).unwrap_or_else(|| unsupported(pattern, "truncated \\P"));
                        i += 1;
                        if cat != 'C' {
                            unsupported(pattern, "only \\PC is supported")
                        }
                        CharGen::NotControl
                    }
                    other => CharGen::Literal(other),
                }
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let mut c = chars[i];
                    if c == '\\' {
                        i += 1;
                        c = match *chars
                            .get(i)
                            .unwrap_or_else(|| unsupported(pattern, "trailing \\ in class"))
                        {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        };
                    }
                    i += 1;
                    // A `-` between two class members forms a range.
                    if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
                        i += 1;
                        let mut hi = chars[i];
                        if hi == '\\' {
                            i += 1;
                            hi = chars[i];
                        }
                        i += 1;
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
                if i >= chars.len() {
                    unsupported(pattern, "unterminated character class")
                }
                i += 1; // consume ']'
                if ranges.is_empty() {
                    unsupported(pattern, "empty character class")
                }
                CharGen::Class(ranges)
            }
            c => {
                i += 1;
                CharGen::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_MAX)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                i += 1;
                let mut bounds = String::new();
                while i < chars.len() && chars[i] != '}' {
                    bounds.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    unsupported(pattern, "unterminated {m,n}")
                }
                i += 1; // consume '}'
                match bounds.split_once(',') {
                    Some((m, n)) => {
                        (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(UNBOUNDED_MAX))
                    }
                    None => {
                        let n = bounds.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        out.push(Element { charset, min, max });
    }
    out
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!("proptest-shim regex subset: {what} in pattern {pattern:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn literal_with_counted_class() {
        let mut r = rng();
        for _ in 0..500 {
            let s = generate_from_regex("v[a-z0-9_]{0,10}", &mut r);
            assert!(s.starts_with('v'));
            assert!(s.len() <= 11);
            assert!(s[1..]
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn bounded_spaces() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_regex(" {0,3}", &mut r);
            assert!(s.len() <= 3);
            assert!(s.chars().all(|c| c == ' '));
        }
    }

    #[test]
    fn not_control_star_is_printable() {
        let mut r = rng();
        for _ in 0..500 {
            let s = generate_from_regex("\\PC*", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn class_with_escapes_covers_newline() {
        let mut r = rng();
        let mut saw_newline = false;
        for _ in 0..2_000 {
            let s = generate_from_regex("[a-z0-9+\\-*/%=<>!&|(){}\\[\\].,:;#\"'\\n @$?]*", &mut r);
            saw_newline |= s.contains('\n');
            assert!(s.chars().all(|c| c == '\n' || !c.is_control()), "{s:?}");
        }
        assert!(saw_newline, "\\n inside a class must be generable");
    }

    #[test]
    fn exact_count_quantifier() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(generate_from_regex("x{4}", &mut r), "xxxx");
        }
    }
}
