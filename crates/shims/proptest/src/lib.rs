//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the subset this workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! integer ranges, tuples, regex-subset string strategies,
//! [`collection::vec`], [`prop_oneof!`], [`arbitrary::any`], and the
//! `prop_assert*` macros. Generation is deterministic per test (the RNG
//! is seeded from the test's module path and name), there is no
//! shrinking, and a failing case prints its generated inputs before
//! panicking.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The subset of `proptest::prelude` the workspace imports.
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `prop_assert!` — panics like `assert!` (no `TestCaseError` plumbing).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `prop_assert_eq!` — panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `prop_assert_ne!` — panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Union of heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// The `proptest! { ... }` test-family macro.
///
/// Supports an optional `#![proptest_config(...)]` header followed by any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items (doc
/// comments and extra attributes are carried through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __reporter = {
                    let mut desc = format!(
                        "proptest-shim: case {case} of {} failed with inputs:",
                        stringify!($name),
                    );
                    $(desc.push_str(&format!("\n  {} = {:?}", stringify!($arg), $arg));)+
                    $crate::test_runner::PanicReporter::new(desc)
                };
                $body
                drop(__reporter);
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
