//! The `Strategy` trait and combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of values. Object-safe (`generate` only); `prop_map` is
/// provided for sized implementors like the real crate.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy as a trait object (used by [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// `.prop_map(f)` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` expansion).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end) - u64::from(self.start);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

// (u64 handled separately to avoid the no-op u64::from lint.)
unsigned_range_strategy!(u8, u16, u32);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i64::from(self.end) - i64::from(self.start)) as u64;
                (i64::from(self.start) + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32);

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Regex-subset string strategies: `"v[a-z]{0,3}"` and friends.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_regex(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..5_000 {
            let v = (3usize..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let s = (-5i64..5).generate(&mut r);
            assert!((-5..5).contains(&s));
            let b = (1u8..40).generate(&mut r);
            assert!((1..40).contains(&b));
        }
    }

    #[test]
    fn ranges_cover_both_endpoints_eventually() {
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[(0usize..4).generate(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 must be reachable");
    }

    #[test]
    fn map_and_oneof_compose() {
        #[derive(Debug, PartialEq)]
        enum E {
            A(usize),
            B(u8),
        }
        let strat = crate::prop_oneof![(0usize..3).prop_map(E::A), (10u8..12).prop_map(E::B),];
        let mut r = rng();
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..200 {
            match strat.generate(&mut r) {
                E::A(v) => {
                    assert!(v < 3);
                    saw_a = true;
                }
                E::B(v) => {
                    assert!((10..12).contains(&v));
                    saw_b = true;
                }
            }
        }
        assert!(saw_a && saw_b);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0usize..2, 5u64..6, -1i64..0).generate(&mut r);
        assert!(a < 2);
        assert_eq!(b, 5);
        assert_eq!(c, -1);
    }

    #[test]
    fn just_yields_the_value() {
        let mut r = rng();
        assert_eq!(Just(42u32).generate(&mut r), 42);
    }
}
