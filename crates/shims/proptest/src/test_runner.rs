//! Deterministic RNG and per-test configuration.

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// xorshift64* generator seeded from the test's name: deterministic per
/// test, independent across tests.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction: unbiased enough for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Prints a failing case's inputs when dropped during a panic unwind.
pub struct PanicReporter {
    desc: String,
}

impl PanicReporter {
    pub fn new(desc: String) -> Self {
        PanicReporter { desc }
    }
}

impl Drop for PanicReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("{}", self.desc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("bound");
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
