//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a full-domain uniform generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::deterministic("any");
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
    }
}
