//! `proptest::collection::vec`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_element_bounds() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..500 {
            let v = vec(0usize..5, 1..7).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 7);
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
