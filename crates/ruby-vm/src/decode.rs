//! Pre-decoded threaded bytecode.
//!
//! [`crate::program::Program::finalize`] lowers every [`Insn`] into one
//! fixed-width (16-byte) [`DecodedInsn`] in a single flat array indexed by
//! global pc (`iseq_base[iseq] + pc`). The lowering is a pure
//! representation change — the decoded stream is 1:1 with the original
//! code, so per-instruction stepping, cycle charges, simulated memory
//! traffic and yield-point placement are exactly those of the undecoded
//! interpreter (asserted by the decode-differential CI step and the
//! yield-point proptest). What it buys the *host*:
//!
//! * dispatch is a dense `u8` opcode match over a `Copy` struct — no
//!   per-step `Insn` clone, no nested `Vec` indexing;
//! * operands are pre-unpacked: depth-0 locals carry their frame offset,
//!   branch targets are absolute, `Send` has name/argc/block/ic in fixed
//!   lanes, the `opt_*` operators carry their pre-resolved fallback
//!   selector;
//! * both yield-point policies are precomputed as flag bits, so the
//!   executor's per-step yield classification is a single load instead of
//!   an `Insn` fetch + `kind()` match;
//! * superinstruction pairs for the hot `opt_*` family are marked at
//!   decode time (`opt_arith`+`setlocal`, compare+forward-branch,
//!   `getlocal`+`opt_aref`). Fused execution is only legal where the
//!   missing scheduler boundary is unobservable — see
//!   [`crate::vm::Vm::fuse_allowed`] and DESIGN.md §12.

use crate::bytecode::{ISeq, Insn, InsnKind, RareBinOp};
use crate::interp::FRAME_WORDS;
use crate::symbols::SymbolTable;

/// Flag bit: original-policy yield point (backward branch / leave).
pub const YP_ORIG: u8 = 1 << 0;
/// Flag bit: extended-policy yield point (§4.2 fine-grained set).
pub const YP_EXT: u8 = 1 << 1;
/// Flag bit: starts a fusable pair when the original policy is active.
pub const FUSE_ORIG: u8 = 1 << 2;
/// Flag bit: starts a fusable pair when the extended policy is active.
pub const FUSE_EXT: u8 = 1 << 3;
/// Both fusion bits (contexts with no yield checks at all).
pub const FUSE_ANY: u8 = FUSE_ORIG | FUSE_EXT;

/// Sentinel in the selector lane of an `opt_*` instruction whose generic
/// fallback selector was not interned at decode time; the runtime resolves
/// it lazily exactly like the undecoded interpreter does.
pub const NO_SYM: u32 = u32::MAX;

/// Dense opcode of the decoded stream (one per [`Insn`] variant, with
/// depth-0 local accesses split out as their own hot opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    Nop,
    PutNil,
    PutTrue,
    PutFalse,
    PutSelf,
    /// `a` = the i64 literal (bit-cast).
    PutInt,
    /// `a` = literal-pool index.
    PutPooled,
    /// `a` = string-pool index.
    PutString,
    /// `a` = raw `SymId`.
    PutSym,
    Pop,
    Dup,
    /// `b` = n.
    DupN,
    /// Depth-0 local read: `a` = frame offset (`FRAME_WORDS + idx`).
    GetLocal0,
    /// Depth-0 local write: `a` = frame offset.
    SetLocal0,
    /// Outer-scope local read: `a` = idx, `b` = depth.
    GetLocalUp,
    /// Outer-scope local write: `a` = idx, `b` = depth.
    SetLocalUp,
    /// `a` = name, `c` = ic site.
    GetIvar,
    SetIvar,
    /// `a` = name.
    GetCvar,
    SetCvar,
    GetGlobal,
    SetGlobal,
    GetConst,
    SetConst,
    /// `b` = element count.
    NewArray,
    NewHash,
    /// `b` = 1 when exclusive.
    NewRange,
    /// `a` = name | (block_iseq+1) << 32, `b` = argc, `c` = ic site.
    Send,
    /// `b` = argc.
    InvokeBlock,
    /// Arithmetic/compare operators: `a` = pre-resolved fallback selector
    /// (or [`NO_SYM`]), `c` = ic site.
    OptPlus,
    OptMinus,
    OptMult,
    OptDiv,
    OptMod,
    OptEq,
    OptNeq,
    OptLt,
    OptLe,
    OptGt,
    OptGe,
    OptAref,
    OptAset,
    OptShl,
    OptNot,
    OptNeg,
    /// `b` = [`RareBinOp`] index.
    RareOp,
    /// `a` = absolute target pc (iseq-relative index).
    Jump,
    BranchIf,
    BranchUnless,
    Leave,
    /// `a` = name | iseq << 32, `b` = 1 when `on_self`.
    DefineMethod,
    /// `a` = name | body << 32, `c` = superclass sym + 1 (0 = none).
    DefineClass,
}

/// One pre-decoded instruction: 16 bytes, `Copy`, operands in fixed lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInsn {
    pub op: Op,
    pub flags: u8,
    pub b: u16,
    pub c: u32,
    pub a: u64,
}

impl DecodedInsn {
    /// The low selector lane (`SymId` raw / pool index / frame offset).
    #[inline]
    pub fn a_lo(&self) -> u32 {
        self.a as u32
    }

    /// The high lane of packed two-operand instructions.
    #[inline]
    pub fn a_hi(&self) -> u32 {
        (self.a >> 32) as u32
    }
}

pub(crate) fn rare_index(op: RareBinOp) -> u16 {
    match op {
        RareBinOp::BitAnd => 0,
        RareBinOp::BitOr => 1,
        RareBinOp::BitXor => 2,
        RareBinOp::Shr => 3,
        RareBinOp::Pow => 4,
        RareBinOp::Cmp => 5,
    }
}

pub(crate) fn rare_from_index(i: u16) -> RareBinOp {
    match i {
        0 => RareBinOp::BitAnd,
        1 => RareBinOp::BitOr,
        2 => RareBinOp::BitXor,
        3 => RareBinOp::Shr,
        4 => RareBinOp::Pow,
        5 => RareBinOp::Cmp,
        other => unreachable!("bad RareBinOp index {other}"),
    }
}

/// Lower one instruction (yield flags + operands; fusion bits are added in
/// a second pass over each iseq).
fn lower(insn: &Insn, pc: usize, symbols: &SymbolTable) -> DecodedInsn {
    let sym_or = |s: &str| symbols.lookup(s).map_or(NO_SYM, |id| id.0);
    let mut d = DecodedInsn { op: Op::Nop, flags: 0, b: 0, c: 0, a: 0 };
    let kind = insn.kind();
    if kind.is_original_yield_point() {
        d.flags |= YP_ORIG;
    }
    if kind.is_extended_yield_point() {
        d.flags |= YP_EXT;
    }
    match *insn {
        Insn::Nop => d.op = Op::Nop,
        Insn::PutNil => d.op = Op::PutNil,
        Insn::PutTrue => d.op = Op::PutTrue,
        Insn::PutFalse => d.op = Op::PutFalse,
        Insn::PutSelf => d.op = Op::PutSelf,
        Insn::PutInt(i) => {
            d.op = Op::PutInt;
            d.a = i as u64;
        }
        Insn::PutPooled(i) => {
            d.op = Op::PutPooled;
            d.a = u64::from(i);
        }
        Insn::PutString(i) => {
            d.op = Op::PutString;
            d.a = u64::from(i);
        }
        Insn::PutSym(s) => {
            d.op = Op::PutSym;
            d.a = u64::from(s.0);
        }
        Insn::Pop => d.op = Op::Pop,
        Insn::Dup => d.op = Op::Dup,
        Insn::DupN(n) => {
            d.op = Op::DupN;
            d.b = u16::from(n);
        }
        Insn::GetLocal { idx, depth } => {
            if depth == 0 {
                d.op = Op::GetLocal0;
                d.a = (FRAME_WORDS + idx as usize) as u64;
            } else {
                d.op = Op::GetLocalUp;
                d.a = u64::from(idx);
                d.b = u16::from(depth);
            }
        }
        Insn::SetLocal { idx, depth } => {
            if depth == 0 {
                d.op = Op::SetLocal0;
                d.a = (FRAME_WORDS + idx as usize) as u64;
            } else {
                d.op = Op::SetLocalUp;
                d.a = u64::from(idx);
                d.b = u16::from(depth);
            }
        }
        Insn::GetIvar { name, ic } => {
            d.op = Op::GetIvar;
            d.a = u64::from(name.0);
            d.c = ic;
        }
        Insn::SetIvar { name, ic } => {
            d.op = Op::SetIvar;
            d.a = u64::from(name.0);
            d.c = ic;
        }
        Insn::GetCvar { name } => {
            d.op = Op::GetCvar;
            d.a = u64::from(name.0);
        }
        Insn::SetCvar { name } => {
            d.op = Op::SetCvar;
            d.a = u64::from(name.0);
        }
        Insn::GetGlobal { name } => {
            d.op = Op::GetGlobal;
            d.a = u64::from(name.0);
        }
        Insn::SetGlobal { name } => {
            d.op = Op::SetGlobal;
            d.a = u64::from(name.0);
        }
        Insn::GetConst { name } => {
            d.op = Op::GetConst;
            d.a = u64::from(name.0);
        }
        Insn::SetConst { name } => {
            d.op = Op::SetConst;
            d.a = u64::from(name.0);
        }
        Insn::NewArray { n } => {
            d.op = Op::NewArray;
            d.b = n;
        }
        Insn::NewHash { n } => {
            d.op = Op::NewHash;
            d.b = n;
        }
        Insn::NewRange { excl } => {
            d.op = Op::NewRange;
            d.b = u16::from(excl);
        }
        Insn::Send { name, argc, block, ic } => {
            d.op = Op::Send;
            d.a = u64::from(name.0) | u64::from(block.map_or(0, |b| b.0 + 1)) << 32;
            d.b = u16::from(argc);
            d.c = ic;
        }
        Insn::InvokeBlock { argc } => {
            d.op = Op::InvokeBlock;
            d.b = u16::from(argc);
        }
        Insn::OptPlus { ic } => (d.op, d.a, d.c) = (Op::OptPlus, u64::from(sym_or("+")), ic),
        Insn::OptMinus { ic } => (d.op, d.a, d.c) = (Op::OptMinus, u64::from(sym_or("-")), ic),
        Insn::OptMult { ic } => (d.op, d.a, d.c) = (Op::OptMult, u64::from(sym_or("*")), ic),
        Insn::OptDiv { ic } => (d.op, d.a, d.c) = (Op::OptDiv, u64::from(sym_or("/")), ic),
        Insn::OptMod { ic } => (d.op, d.a, d.c) = (Op::OptMod, u64::from(sym_or("%")), ic),
        Insn::OptEq { ic } => (d.op, d.a, d.c) = (Op::OptEq, u64::from(sym_or("==")), ic),
        Insn::OptNeq { ic } => (d.op, d.a, d.c) = (Op::OptNeq, u64::from(sym_or("!=")), ic),
        Insn::OptLt { ic } => (d.op, d.a, d.c) = (Op::OptLt, u64::from(sym_or("<")), ic),
        Insn::OptLe { ic } => (d.op, d.a, d.c) = (Op::OptLe, u64::from(sym_or("<=")), ic),
        Insn::OptGt { ic } => (d.op, d.a, d.c) = (Op::OptGt, u64::from(sym_or(">")), ic),
        Insn::OptGe { ic } => (d.op, d.a, d.c) = (Op::OptGe, u64::from(sym_or(">=")), ic),
        Insn::OptAref { ic } => (d.op, d.a, d.c) = (Op::OptAref, u64::from(sym_or("[]")), ic),
        Insn::OptAset { ic } => (d.op, d.a, d.c) = (Op::OptAset, u64::from(sym_or("[]=")), ic),
        Insn::OptShl { ic } => (d.op, d.a, d.c) = (Op::OptShl, u64::from(sym_or("<<")), ic),
        Insn::OptNot => d.op = Op::OptNot,
        Insn::OptNeg => d.op = Op::OptNeg,
        Insn::RareOp(op) => {
            d.op = Op::RareOp;
            d.b = rare_index(op);
        }
        Insn::Jump(off) => {
            d.op = Op::Jump;
            d.a = (pc as i64 + i64::from(off)) as u64;
        }
        Insn::BranchIf(off) => {
            d.op = Op::BranchIf;
            d.a = (pc as i64 + i64::from(off)) as u64;
        }
        Insn::BranchUnless(off) => {
            d.op = Op::BranchUnless;
            d.a = (pc as i64 + i64::from(off)) as u64;
        }
        Insn::Leave => d.op = Op::Leave,
        Insn::DefineMethod { name, iseq, on_self } => {
            d.op = Op::DefineMethod;
            d.a = u64::from(name.0) | u64::from(iseq.0) << 32;
            d.b = u16::from(on_self);
        }
        Insn::DefineClass { name, superclass, body } => {
            d.op = Op::DefineClass;
            d.a = u64::from(name.0) | u64::from(body.0) << 32;
            d.c = superclass.map_or(0, |s| s.0 + 1);
        }
    }
    d
}

/// Fusion bits for the pair starting at `first` (followed by `second`).
///
/// A pair may only be marked when executing both halves in one `Vm::step`
/// is *unobservable* given that fused execution is additionally gated on
/// single-threaded no-transaction contexts (see DESIGN.md §12): the first
/// half must fall through to `pc + 1` on its fast path, and the second
/// half must not be a yield point under the policy the bit covers, so no
/// yield-counter or interrupt-flag access disappears from the trace.
fn fusion_bits(first: &Insn, second: &Insn) -> u8 {
    let fwd_branch = matches!(second, Insn::BranchIf(off) | Insn::BranchUnless(off) if *off >= 0);
    match first {
        // opt_plus/minus/mult + setlocal: SetLocal is a yield point under
        // neither policy.
        Insn::OptPlus { .. } | Insn::OptMinus { .. } | Insn::OptMult { .. }
            if matches!(second, Insn::SetLocal { .. }) =>
        {
            FUSE_ANY
        }
        // compare + forward branch: forward branches are never yield
        // points (only BranchBack is).
        Insn::OptEq { .. }
        | Insn::OptNeq { .. }
        | Insn::OptLt { .. }
        | Insn::OptLe { .. }
        | Insn::OptGt { .. }
        | Insn::OptGe { .. }
            if fwd_branch =>
        {
            FUSE_ANY
        }
        // getlocal + opt_aref: opt_aref is an *extended* yield point, so
        // the pair is only transparent under the original policy.
        Insn::GetLocal { .. } if matches!(second, Insn::OptAref { .. }) => FUSE_ORIG,
        _ => 0,
    }
}

/// Decode every iseq into the flat stream, 1:1 with
/// `Program::global_pc` indexing.
pub fn decode(iseqs: &[ISeq], symbols: &SymbolTable) -> Vec<DecodedInsn> {
    let total: usize = iseqs.iter().map(|i| i.code.len()).sum();
    let mut out = Vec::with_capacity(total);
    for iseq in iseqs {
        let base = out.len();
        for (pc, insn) in iseq.code.iter().enumerate() {
            out.push(lower(insn, pc, symbols));
        }
        for pc in 0..iseq.code.len().saturating_sub(1) {
            out[base + pc].flags |= fusion_bits(&iseq.code[pc], &iseq.code[pc + 1]);
        }
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// The yield-point flag bit for a policy-independent check against
/// [`InsnKind`] classification (used by tests).
pub fn yield_flags_of_kind(kind: InsnKind) -> u8 {
    let mut f = 0;
    if kind.is_original_yield_point() {
        f |= YP_ORIG;
    }
    if kind.is_extended_yield_point() {
        f |= YP_EXT;
    }
    f
}
