//! A compiled program: instruction sequences, symbols, literal pools and
//! the global yield-point ("pc") numbering used by the TLE runtime's
//! per-yield-point tables.

use crate::bytecode::{ISeq, Insn, IseqId};
use crate::decode::DecodedInsn;
use crate::symbols::{SymId, SymbolTable};

/// A literal destined for the constant-object pool (shared, frozen) or the
/// string pool (copied on every push).
#[derive(Debug, Clone, PartialEq)]
pub enum PoolLiteral {
    Float(f64),
    Str(String),
}

/// Everything the compiler produces; immutable at run time (CRuby iseqs
/// are shared read-only across threads too — code fetch is not modelled as
/// memory traffic).
#[derive(Debug, Default)]
pub struct Program {
    pub iseqs: Vec<ISeq>,
    pub symbols: SymbolTable,
    /// Shared frozen literal objects (float literals).
    pub pooled: Vec<PoolLiteral>,
    /// String literals, copied at each `PutString`.
    pub strings: Vec<String>,
    /// Total inline-cache sites allocated by the compiler.
    pub ic_count: u32,
    /// Prefix offsets of each iseq into the global pc numbering.
    iseq_base: Vec<u32>,
    /// Total instruction count across all iseqs.
    total_insns: u32,
    /// Per-iseq operand-stack bounds (computed by [`Program::finalize`]).
    max_stacks: Vec<usize>,
    /// Flat pre-decoded stream, indexed by global pc (see
    /// [`crate::decode`]; rebuilt by [`Program::finalize`]).
    decoded: Vec<DecodedInsn>,
}

impl Program {
    /// Recompute the global pc numbering after all iseqs are in place and
    /// lower every instruction into the flat decoded stream.
    pub fn finalize(&mut self) {
        self.iseq_base.clear();
        let mut base = 0u32;
        for iseq in &self.iseqs {
            self.iseq_base.push(base);
            base += iseq.code.len() as u32;
        }
        self.total_insns = base;
        self.max_stacks = self.iseqs.iter().map(|i| i.max_stack()).collect();
        self.decoded = crate::decode::decode(&self.iseqs, &self.symbols);
    }

    /// Global-pc base of an iseq in the decoded stream.
    #[inline]
    pub fn base(&self, iseq: IseqId) -> u32 {
        self.iseq_base[iseq.0 as usize]
    }

    /// Fetch a pre-decoded instruction by global pc.
    #[inline]
    pub fn decoded_at(&self, gpc: usize) -> DecodedInsn {
        self.decoded[gpc]
    }

    /// Flag byte of the decoded instruction at a global pc (the
    /// executor's one-load yield-point query).
    #[inline]
    pub fn decoded_flags(&self, gpc: usize) -> u8 {
        self.decoded[gpc].flags
    }

    /// The whole decoded stream (tests, differential checks).
    pub fn decoded(&self) -> &[DecodedInsn] {
        &self.decoded
    }

    /// Operand-stack bound of an iseq (frame sizing).
    #[inline]
    pub fn max_stack(&self, id: IseqId) -> usize {
        self.max_stacks
            .get(id.0 as usize)
            .copied()
            .unwrap_or_else(|| self.iseqs[id.0 as usize].max_stack())
    }

    /// Dense global id of the instruction at (`iseq`, `pc`) — the paper's
    /// per-yield-point table key.
    pub fn global_pc(&self, iseq: IseqId, pc: usize) -> u32 {
        self.iseq_base[iseq.0 as usize] + pc as u32
    }

    /// Total instructions across all iseqs (size of per-pc tables).
    pub fn total_insns(&self) -> u32 {
        self.total_insns
    }

    /// Fetch an instruction.
    #[inline]
    pub fn insn(&self, iseq: IseqId, pc: usize) -> &Insn {
        &self.iseqs[iseq.0 as usize].code[pc]
    }

    /// Fetch an iseq.
    #[inline]
    pub fn iseq(&self, id: IseqId) -> &ISeq {
        &self.iseqs[id.0 as usize]
    }

    /// Register an iseq, returning its id.
    pub fn push_iseq(&mut self, mut iseq: ISeq) -> IseqId {
        let id = IseqId(self.iseqs.len() as u32);
        iseq.id = id;
        self.iseqs.push(iseq);
        id
    }

    /// Intern a symbol.
    pub fn intern(&mut self, name: &str) -> SymId {
        self.symbols.intern(name)
    }

    /// Allocate a fresh inline-cache site.
    pub fn new_ic_site(&mut self) -> u32 {
        let s = self.ic_count;
        self.ic_count += 1;
        s
    }

    /// Add a pooled (shared) literal, deduplicating floats.
    pub fn pool_float(&mut self, f: f64) -> u32 {
        for (i, p) in self.pooled.iter().enumerate() {
            if let PoolLiteral::Float(g) = p {
                if g.to_bits() == f.to_bits() {
                    return i as u32;
                }
            }
        }
        self.pooled.push(PoolLiteral::Float(f));
        (self.pooled.len() - 1) as u32
    }

    /// Add a string literal (no dedup needed — each push copies anyway).
    pub fn pool_string(&mut self, s: String) -> u32 {
        for (i, existing) in self.strings.iter().enumerate() {
            if existing == &s {
                return i as u32;
            }
        }
        self.strings.push(s);
        (self.strings.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_iseq(n: usize) -> ISeq {
        ISeq {
            id: IseqId(0),
            name: "t".into(),
            nparams: 0,
            nlocals: 0,
            code: vec![Insn::Nop; n],
            is_block: false,
        }
    }

    #[test]
    fn global_pc_numbering() {
        let mut p = Program::default();
        let a = p.push_iseq(mk_iseq(3));
        let b = p.push_iseq(mk_iseq(5));
        p.finalize();
        assert_eq!(p.global_pc(a, 0), 0);
        assert_eq!(p.global_pc(a, 2), 2);
        assert_eq!(p.global_pc(b, 0), 3);
        assert_eq!(p.global_pc(b, 4), 7);
        assert_eq!(p.total_insns(), 8);
    }

    #[test]
    fn float_pool_dedups() {
        let mut p = Program::default();
        let a = p.pool_float(1.5);
        let b = p.pool_float(2.5);
        let c = p.pool_float(1.5);
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(p.pooled.len(), 2);
    }

    #[test]
    fn ic_sites_are_dense() {
        let mut p = Program::default();
        assert_eq!(p.new_ic_site(), 0);
        assert_eq!(p.new_ic_site(), 1);
        assert_eq!(p.ic_count, 2);
    }
}
