//! The Ruby-level prelude, compiled and executed at VM boot.
//!
//! CRuby implements iteration protocols (`Integer#times`, `Range#each`,
//! `Array#each`, …) partly in Ruby, partly in C. Implementing them here *in
//! the subset itself* matters for fidelity: every `each`/`times` iteration
//! then flows through real `send`/`invokeblock`/`opt_*` bytecodes — the
//! instructions the paper adds yield points to — instead of opaque native
//! loops. The Iterator micro-benchmark of Fig. 4 specifically measures this
//! path.

/// Prelude source (compiled before user code; defines no threads).
pub const PRELUDE: &str = r#"
class Integer
  def times
    i = 0
    while i < self
      yield(i)
      i += 1
    end
    self
  end
  def upto(limit)
    i = self
    while i <= limit
      yield(i)
      i += 1
    end
    self
  end
  def downto(limit)
    i = self
    while i >= limit
      yield(i)
      i -= 1
    end
    self
  end
  def step(limit, by)
    i = self
    while i <= limit
      yield(i)
      i += by
    end
    self
  end
  def even?()
    self % 2 == 0
  end
  def odd?()
    self % 2 == 1
  end
  def zero?()
    self == 0
  end
  def succ()
    self + 1
  end
end

class Range
  def each
    i = self.begin
    last = self.end
    if self.exclude_end?
      while i < last
        yield(i)
        i += 1
      end
    else
      while i <= last
        yield(i)
        i += 1
      end
    end
    self
  end
  def size()
    n = self.end - self.begin
    if self.exclude_end?
      n
    else
      n + 1
    end
  end
  def to_a
    a = []
    self.each do |x|
      a << x
    end
    a
  end
  def map
    a = []
    self.each do |x|
      a << yield(x)
    end
    a
  end
  def sum
    s = 0
    self.each do |x|
      s += x
    end
    s
  end
  def include?(v)
    if self.exclude_end?
      v >= self.begin && v < self.end
    else
      v >= self.begin && v <= self.end
    end
  end
end

class Array
  def each
    i = 0
    n = self.length
    while i < n
      yield(self[i])
      i += 1
    end
    self
  end
  def each_index
    i = 0
    n = self.length
    while i < n
      yield(i)
      i += 1
    end
    self
  end
  def each_with_index
    i = 0
    n = self.length
    while i < n
      yield(self[i], i)
      i += 1
    end
    self
  end
  def map
    a = []
    self.each do |x|
      a << yield(x)
    end
    a
  end
  def select
    a = []
    self.each do |x|
      if yield(x)
        a << x
      end
    end
    a
  end
  def reject
    a = []
    self.each do |x|
      unless yield(x)
        a << x
      end
    end
    a
  end
  def sum
    s = 0
    self.each do |x|
      s += x
    end
    s
  end
  def count
    self.length
  end
  def reverse
    a = []
    i = self.length - 1
    while i >= 0
      a << self[i]
      i -= 1
    end
    a
  end
  def all?()
    ok = true
    self.each do |x|
      unless yield(x)
        ok = false
      end
    end
    ok
  end
  def any?()
    ok = false
    self.each do |x|
      if yield(x)
        ok = true
      end
    end
    ok
  end
  def none?()
    ok = true
    self.each do |x|
      if yield(x)
        ok = false
      end
    end
    ok
  end
  def find
    found = nil
    hit = false
    self.each do |x|
      if hit == false
        if yield(x)
          found = x
          hit = true
        end
      end
    end
    found
  end
  def self.build(n)
    a = Array.new(n, nil)
    i = 0
    while i < n
      a[i] = yield(i)
      i += 1
    end
    a
  end
end

class Hash
  def each
    ks = self.keys()
    i = 0
    n = ks.length
    while i < n
      k = ks[i]
      yield(k, self[k])
      i += 1
    end
    self
  end
  def each_key
    ks = self.keys()
    i = 0
    n = ks.length
    while i < n
      yield(ks[i])
      i += 1
    end
    self
  end
end

class Mutex
  def synchronize
    self.lock()
    r = yield
    self.unlock()
    r
  end
end

class String
  def +(other)
    self.dup() << other
  end
end
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_parses() {
        ruby_lang::parse_program(PRELUDE).expect("prelude must parse");
    }

    #[test]
    fn prelude_compiles() {
        let mut p = crate::program::Program::default();
        crate::compile::compile_source(PRELUDE, &mut p).expect("prelude must compile");
    }
}
