//! Extensions implementing the paper's §5.6 "further optimization
//! opportunities" and the §7 future-work discussion, so they can be
//! measured rather than speculated about:
//!
//! * **Thread-local lazy sweeping** (§5.6: "When a thread-local free list
//!   becomes empty, the lazy sweeping should be done on a thread-local
//!   basis") — the slot heap is partitioned by thread id; each thread
//!   sweeps only its partition with a private cursor, so sweep writes
//!   never collide across threads. Enabled by
//!   [`crate::VmConfig::tl_lazy_sweep`].
//!
//! * **HTM-friendly (thread-local) inline caches** (§5.6: "HTM-friendly
//!   inline caches, such as thread-local caches, are required") — each
//!   thread gets its own copy of the inline-cache area, eliminating
//!   IC-fill conflicts and IC false sharing at the cost of per-thread
//!   warm-up misses. Enabled by
//!   [`crate::VmConfig::thread_local_ics`].
//!
//! * **Reference-counting writes** (§7: "the original Python
//!   implementation (CPython) uses reference counting GC, which will
//!   cause many conflicts") — every store of an object reference also
//!   writes the referent's reference-count word (INCREF) and the
//!   overwritten referent's (DECREF), as CPython's `Py_INCREF/DECREF`
//!   would. The counts are *not* used for reclamation (the tracing GC
//!   stays authoritative); the point is the memory traffic: shared
//!   objects' count words enter every transaction's write set. Enabled by
//!   [`crate::VmConfig::refcount_writes`]; the `extensions` bench shows
//!   HTM speedups collapsing under it, supporting the paper's argument
//!   that PyPy-style tracing GC suits GIL elision better than CPython's
//!   refcounting.
//!
//! The mechanisms live here; the flags default off so the baseline
//! reproduction is untouched.

use machine_sim::ThreadId;

use crate::layout::ts;
use crate::value::{Addr, ObjHeader, ObjKind, Word};
use crate::vm::{Vm, VmAbort};

/// Offset of the reference-count word inside a slot (the last payload
/// word; unused by every object kind's layout).
pub const RC_OFFSET: usize = 7;

impl Vm {
    /// Partition `[lo, hi)` of the slot index space owned by thread `t`
    /// for thread-local sweeping.
    pub fn sweep_partition(&self, t: ThreadId) -> (usize, usize) {
        // Frozen at the last mark phase — see `Vm::gc_sweep_total`.
        let total = self.gc_sweep_total;
        let n = self.config.max_threads;
        (total * t / n, total * (t + 1) / n)
    }

    /// Thread-local lazy sweep: scan up to `budget` slots of `t`'s own
    /// partition, freeing garbage onto `t`'s local list (safe: partitions
    /// are disjoint, so no other thread sweeps these slots). Returns a
    /// slot for immediate reuse if one was freed.
    pub(crate) fn tl_lazy_sweep(
        &mut self,
        t: ThreadId,
        budget: usize,
    ) -> Result<Option<Addr>, VmAbort> {
        let cursor_addr = self.layout.thread_struct(t) + ts::TL_SWEEP_CURSOR;
        let (lo, hi) = self.sweep_partition(t);
        let Word::Int(mut cursor) = self.rd(t, cursor_addr)? else {
            return Err(VmAbort::fatal("corrupt thread-local sweep cursor"));
        };
        if (cursor as usize) < lo {
            cursor = lo as i64;
        }
        let mut swept = 0usize;
        let mut found: Option<Addr> = None;
        while (cursor as usize) < hi && swept < budget {
            let slot = self.slot_addr(cursor as usize);
            let hdr = self.rd(t, slot)?;
            match hdr.as_header() {
                Some(h) if h.kind == ObjKind::Free => {}
                Some(h) if h.marked => {
                    self.wr(t, slot, Word::Hdr(ObjHeader { kind: h.kind, marked: false }))?;
                }
                Some(h) => {
                    #[cfg(debug_assertions)]
                    self.debug_assert_unreferenced(slot, h.kind);
                    self.free_object_buffers(t, slot, h.kind)?;
                    self.wr(t, slot, Word::Hdr(ObjHeader { kind: ObjKind::Free, marked: false }))?;
                    if found.is_none() {
                        found = Some(slot);
                        self.wr(t, slot + 1, Word::Int(0))?;
                    } else {
                        // Freed slots stay with the owning thread: the
                        // whole point of the extension is that these
                        // writes touch thread-private lines only.
                        let head_addr = self.layout.thread_struct(t) + ts::TL_FREE_HEAD;
                        let old = self.rd(t, head_addr)?;
                        self.wr(t, slot + 1, old)?;
                        self.wr(t, head_addr, Word::Int(slot as i64))?;
                    }
                }
                None => {
                    self.wr(t, slot, Word::Hdr(ObjHeader { kind: ObjKind::Free, marked: false }))?;
                    if found.is_none() {
                        found = Some(slot);
                        self.wr(t, slot + 1, Word::Int(0))?;
                    } else {
                        let head_addr = self.layout.thread_struct(t) + ts::TL_FREE_HEAD;
                        let old = self.rd(t, head_addr)?;
                        self.wr(t, slot + 1, old)?;
                        self.wr(t, head_addr, Word::Int(slot as i64))?;
                    }
                }
            }
            cursor += 1;
            swept += 1;
        }
        self.wr(t, cursor_addr, Word::Int(cursor))?;
        Ok(found)
    }

    /// Reset every thread's private sweep cursor to the start of its
    /// partition (called at the end of a mark phase).
    pub(crate) fn reset_tl_sweep_cursors(&mut self, t: ThreadId) -> Result<(), VmAbort> {
        for u in 0..self.config.max_threads {
            let (lo, _) = self.sweep_partition(u);
            let addr = self.layout.thread_struct(u) + ts::TL_SWEEP_CURSOR;
            self.wr(t, addr, Word::Int(lo as i64))?;
        }
        Ok(())
    }

    /// Debug aid: panic when a slot about to be swept is still referenced
    /// from any live thread stack or promoted environment.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_assert_unreferenced(&self, slot: Addr, kind: ObjKind) {
        for c in &self.threads {
            if c.finished {
                continue;
            }
            for a in c.stack_base..c.sp {
                if *self.mem.peek(a) == Word::Obj(slot) {
                    panic!(
                        "tl-sweep freeing live {kind:?} slot {slot}: referenced from t{} stack at {a} (fp={} sp={} pc={}:{})",
                        c.tid, c.fp, c.sp, self.program.iseq(c.iseq).name, c.pc
                    );
                }
            }
        }
        for &(region, total) in &self.promoted_envs {
            for i in 0..total {
                if *self.mem.peek(region + i) == Word::Obj(slot) {
                    panic!("tl-sweep freeing live {kind:?} slot {slot}: referenced from promoted env {region}+{i}");
                }
            }
        }
    }

    /// CPython-style reference-count maintenance for a store of `new`
    /// over `old`: INCREF the new referent, DECREF the old one. Count
    /// words live in the referents' slots, so shared objects' lines enter
    /// the writer's transaction write set — the conflict source the
    /// paper's §7 predicts for CPython.
    pub(crate) fn refcount_store(
        &mut self,
        t: ThreadId,
        old: &Word,
        new: &Word,
    ) -> Result<(), VmAbort> {
        if let Word::Obj(a) = new {
            let rc_addr = *a + RC_OFFSET;
            let rc = self.rd(t, rc_addr)?.as_int().unwrap_or(0);
            self.wr(t, rc_addr, Word::Int(rc + 1))?;
        }
        if let Word::Obj(a) = old {
            let rc_addr = *a + RC_OFFSET;
            let rc = self.rd(t, rc_addr)?.as_int().unwrap_or(1);
            self.wr(t, rc_addr, Word::Int(rc - 1))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use machine_sim::MachineProfile;

    fn vm_with(f: impl FnOnce(&mut VmConfig)) -> Vm {
        let mut cfg = VmConfig::default();
        f(&mut cfg);
        Vm::boot("nil", cfg, &MachineProfile::generic(4)).unwrap()
    }

    #[test]
    fn sweep_partitions_are_disjoint_and_cover() {
        let vm = vm_with(|c| {
            c.tl_lazy_sweep = true;
            c.max_threads = 4;
        });
        let total = vm.total_slots();
        let mut covered = 0;
        let mut prev_hi = 0;
        for t in 0..4 {
            let (lo, hi) = vm.sweep_partition(t);
            assert_eq!(lo, prev_hi, "partitions must tile");
            assert!(hi >= lo);
            covered += hi - lo;
            prev_hi = hi;
        }
        assert_eq!(covered, total);
    }

    #[test]
    fn tl_sweep_reclaims_own_partition_garbage() {
        let mut vm = vm_with(|c| {
            c.tl_lazy_sweep = true;
            c.max_threads = 2;
        });
        // Plant garbage inside thread 1's partition.
        let (lo, hi) = vm.sweep_partition(1);
        assert!(hi > lo + 4);
        let slot = vm.slot_addr(lo + 2);
        // Detach the slot from the free list structure by writing a live
        // header (it is "garbage" because nothing marks it).
        vm.mem.poke(slot, Word::Hdr(ObjHeader { kind: ObjKind::Float, marked: false }));
        vm.mem.poke(slot + 1, Word::F64(1.0));
        // Point the cursor at the partition and sweep.
        let cur = vm.layout.thread_struct(1) + ts::TL_SWEEP_CURSOR;
        vm.mem.poke(cur, Word::Int(lo as i64));
        let found = vm.tl_lazy_sweep(1, hi - lo).unwrap();
        assert_eq!(found, Some(slot), "garbage in own partition reclaimed");
    }

    #[test]
    fn refcount_store_writes_count_words() {
        let mut vm = vm_with(|c| c.refcount_writes = true);
        let a = vm.make_float(0, 1.0).unwrap();
        let b = vm.make_float(0, 2.0).unwrap();
        let (sa, sb) = (a.as_obj().unwrap(), b.as_obj().unwrap());
        vm.refcount_store(0, &Word::Nil, &a).unwrap();
        assert_eq!(*vm.mem.peek(sa + RC_OFFSET), Word::Int(1));
        vm.refcount_store(0, &a, &b).unwrap();
        assert_eq!(*vm.mem.peek(sa + RC_OFFSET), Word::Int(0), "DECREF old");
        assert_eq!(*vm.mem.peek(sb + RC_OFFSET), Word::Int(1), "INCREF new");
        // Immediates are ignored.
        vm.refcount_store(0, &Word::Int(5), &Word::True).unwrap();
    }

    #[test]
    fn thread_local_ics_give_each_thread_its_own_slots() {
        let vm = vm_with(|c| {
            c.thread_local_ics = true;
            c.max_threads = 3;
        });
        let a = vm.ic_addr(0, 7);
        let b = vm.ic_addr(1, 7);
        let c_ = vm.ic_addr(2, 7);
        assert_ne!(a, b);
        assert_ne!(b, c_);
        // Same spacing within each thread's area.
        assert_eq!(vm.ic_addr(1, 8) - vm.ic_addr(1, 7), 2);
        // Without the flag all threads share the site.
        let vm2 = vm_with(|_| {});
        assert_eq!(vm2.ic_addr(0, 7), vm2.ic_addr(2, 7));
    }
}
