//! YARV-like stack bytecode.
//!
//! Instruction names deliberately mirror CRuby 1.9's — the paper's extra
//! yield points are defined on bytecode *types* (`getlocal`,
//! `getinstancevariable`, `getclassvariable`, `send`, `opt_plus`,
//! `opt_minus`, `opt_mult`, `opt_aref`), so the runtime classifies
//! instructions the same way (see [`Insn::kind`] and
//! [`InsnKind::is_extended_yield_point`]).

use crate::symbols::SymId;

/// Index of an instruction sequence in the program's iseq table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IseqId(pub u32);

/// Inline-cache site index (into the VM's IC area in simulated memory).
pub type IcSite = u32;

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    Nop,
    // --- push/pop -------------------------------------------------------
    PutNil,
    PutTrue,
    PutFalse,
    PutSelf,
    PutInt(i64),
    /// Push a shared frozen literal object from the constant-object pool
    /// (CRuby float literals are shared objects — no allocation).
    PutPooled(u32),
    /// Push a *fresh copy* of a pooled string literal (CRuby's
    /// `putstring` / `rb_str_resurrect` allocates on every execution).
    PutString(u32),
    PutSym(SymId),
    Pop,
    Dup,
    /// Duplicate the top `n` words (used by `a[i] op= v` desugaring).
    DupN(u8),
    // --- variables ------------------------------------------------------
    /// Local read; `depth` block hops up the static chain.
    GetLocal {
        idx: u16,
        depth: u8,
    },
    SetLocal {
        idx: u16,
        depth: u8,
    },
    GetIvar {
        name: SymId,
        ic: IcSite,
    },
    SetIvar {
        name: SymId,
        ic: IcSite,
    },
    GetCvar {
        name: SymId,
    },
    SetCvar {
        name: SymId,
    },
    GetGlobal {
        name: SymId,
    },
    SetGlobal {
        name: SymId,
    },
    GetConst {
        name: SymId,
    },
    SetConst {
        name: SymId,
    },
    // --- aggregates -----------------------------------------------------
    NewArray {
        n: u16,
    },
    NewHash {
        n: u16,
    },
    NewRange {
        excl: bool,
    },
    // --- calls ----------------------------------------------------------
    /// Method dispatch: `recv arg1 … argN` on the stack.
    Send {
        name: SymId,
        argc: u8,
        block: Option<IseqId>,
        ic: IcSite,
    },
    /// `yield` — invoke the current frame's block.
    InvokeBlock {
        argc: u8,
    },
    // --- specialized operators (CRuby's opt_* family) ---------------------
    OptPlus {
        ic: IcSite,
    },
    OptMinus {
        ic: IcSite,
    },
    OptMult {
        ic: IcSite,
    },
    OptDiv {
        ic: IcSite,
    },
    OptMod {
        ic: IcSite,
    },
    OptEq {
        ic: IcSite,
    },
    OptNeq {
        ic: IcSite,
    },
    OptLt {
        ic: IcSite,
    },
    OptLe {
        ic: IcSite,
    },
    OptGt {
        ic: IcSite,
    },
    OptGe {
        ic: IcSite,
    },
    OptAref {
        ic: IcSite,
    },
    OptAset {
        ic: IcSite,
    },
    /// `<<` — Integer shift, Array push or String append.
    OptShl {
        ic: IcSite,
    },
    OptNot,
    OptNeg,
    /// Rare operators without inline caches (`&`, `|`, `^`, `>>`, `**`,
    /// `<=>`): direct on Fixnums, generic dispatch otherwise.
    RareOp(RareBinOp),
    // --- control flow ----------------------------------------------------
    Jump(i32),
    BranchIf(i32),
    BranchUnless(i32),
    /// Return from the current frame with the stack top as value.
    Leave,
    // --- definitions ------------------------------------------------------
    DefineMethod {
        name: SymId,
        iseq: IseqId,
        on_self: bool,
    },
    DefineClass {
        name: SymId,
        superclass: Option<SymId>,
        body: IseqId,
    },
}

/// Rare binary operators dispatched without inline caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RareBinOp {
    BitAnd,
    BitOr,
    BitXor,
    Shr,
    Pow,
    Cmp,
}

/// Coarse instruction classification used by the yield-point policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnKind {
    GetLocal,
    GetIvar,
    GetCvar,
    Send,
    OptPlus,
    OptMinus,
    OptMult,
    OptAref,
    /// Backward jumps: CRuby's original yield points sit on loop
    /// back-edges.
    BranchBack,
    /// Method/block exit — the other original yield-point class.
    Leave,
    Other,
}

impl Insn {
    /// Classify for yield-point policy decisions. `pc` is needed to decide
    /// whether a branch jumps backwards.
    pub fn kind(&self) -> InsnKind {
        match self {
            Insn::GetLocal { .. } => InsnKind::GetLocal,
            Insn::GetIvar { .. } => InsnKind::GetIvar,
            Insn::GetCvar { .. } => InsnKind::GetCvar,
            Insn::Send { .. } => InsnKind::Send,
            Insn::OptPlus { .. } => InsnKind::OptPlus,
            Insn::OptMinus { .. } => InsnKind::OptMinus,
            Insn::OptMult { .. } => InsnKind::OptMult,
            Insn::OptAref { .. } => InsnKind::OptAref,
            Insn::Leave => InsnKind::Leave,
            Insn::Jump(off) | Insn::BranchIf(off) | Insn::BranchUnless(off) if *off < 0 => {
                InsnKind::BranchBack
            }
            _ => InsnKind::Other,
        }
    }
}

impl InsnKind {
    /// CRuby's original yield points: loop back-edges and method/block
    /// exits (paper §3.2).
    pub fn is_original_yield_point(self) -> bool {
        matches!(self, InsnKind::BranchBack | InsnKind::Leave)
    }

    /// The paper's extended yield-point set (§4.2): the original points
    /// plus `getlocal`, `getinstancevariable`, `getclassvariable`, `send`,
    /// `opt_plus`, `opt_minus`, `opt_mult`, `opt_aref`.
    pub fn is_extended_yield_point(self) -> bool {
        self.is_original_yield_point()
            || matches!(
                self,
                InsnKind::GetLocal
                    | InsnKind::GetIvar
                    | InsnKind::GetCvar
                    | InsnKind::Send
                    | InsnKind::OptPlus
                    | InsnKind::OptMinus
                    | InsnKind::OptMult
                    | InsnKind::OptAref
            )
    }
}

/// A compiled instruction sequence (method, block, class body or
/// top-level).
#[derive(Debug, Clone)]
pub struct ISeq {
    pub id: IseqId,
    /// Human-readable name for diagnostics ("Object#workload", "block in
    /// each", "<main>").
    pub name: String,
    /// Number of declared parameters (leading locals).
    pub nparams: usize,
    /// Total local slots including parameters.
    pub nlocals: usize,
    pub code: Vec<Insn>,
    /// True for block iseqs (locals resolve up the static chain).
    pub is_block: bool,
}

impl ISeq {
    /// Worst-case operand-stack depth — conservative static bound used to
    /// size frames. A simple abstract interpretation over stack effects.
    pub fn max_stack(&self) -> usize {
        let mut depth: i64 = 0;
        let mut max: i64 = 8; // headroom for call glue
        for insn in &self.code {
            depth += stack_effect(insn);
            if depth < 0 {
                depth = 0;
            }
            if depth > max {
                max = depth;
            }
        }
        (max as usize) + 8
    }
}

/// Net stack effect of one instruction (conservative for calls).
fn stack_effect(i: &Insn) -> i64 {
    use Insn::*;
    match i {
        Nop | Jump(_) | Leave | DefineMethod { .. } => 0,
        PutNil | PutTrue | PutFalse | PutSelf | PutInt(_) | PutPooled(_) | PutString(_)
        | PutSym(_) => 1,
        Pop => -1,
        Dup => 1,
        DupN(n) => i64::from(*n),
        GetLocal { .. } | GetIvar { .. } | GetCvar { .. } | GetGlobal { .. } | GetConst { .. } => 1,
        SetLocal { .. } | SetIvar { .. } | SetCvar { .. } | SetGlobal { .. } | SetConst { .. } => {
            -1
        }
        NewArray { n } => 1 - i64::from(*n),
        NewHash { n } => 1 - 2 * i64::from(*n),
        NewRange { .. } => -1,
        Send { argc, .. } => -i64::from(*argc), // recv+args → result
        InvokeBlock { argc } => 1 - i64::from(*argc),
        OptPlus { .. }
        | OptMinus { .. }
        | OptMult { .. }
        | OptDiv { .. }
        | OptMod { .. }
        | OptEq { .. }
        | OptNeq { .. }
        | OptLt { .. }
        | OptLe { .. }
        | OptGt { .. }
        | OptGe { .. }
        | OptAref { .. }
        | OptShl { .. }
        | RareOp(_) => -1,
        OptAset { .. } => -2,
        OptNot | OptNeg => 0,
        BranchIf(_) | BranchUnless(_) => -1,
        DefineClass { .. } => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_yield_points_match_paper_list() {
        // Extended set includes the original points…
        assert!(InsnKind::BranchBack.is_extended_yield_point());
        assert!(InsnKind::Leave.is_extended_yield_point());
        // …plus the eight bytecode types of §4.2.
        for k in [
            InsnKind::GetLocal,
            InsnKind::GetIvar,
            InsnKind::GetCvar,
            InsnKind::Send,
            InsnKind::OptPlus,
            InsnKind::OptMinus,
            InsnKind::OptMult,
            InsnKind::OptAref,
        ] {
            assert!(k.is_extended_yield_point(), "{k:?}");
            assert!(!k.is_original_yield_point(), "{k:?}");
        }
        assert!(!InsnKind::Other.is_extended_yield_point());
    }

    #[test]
    fn backward_branches_classify_as_back_edges() {
        assert_eq!(Insn::Jump(-3).kind(), InsnKind::BranchBack);
        assert_eq!(Insn::BranchUnless(-10).kind(), InsnKind::BranchBack);
        assert_eq!(Insn::Jump(3).kind(), InsnKind::Other);
        assert_eq!(Insn::BranchIf(2).kind(), InsnKind::Other);
    }

    #[test]
    fn max_stack_bounds_pushes() {
        let iseq = ISeq {
            id: IseqId(0),
            name: "t".into(),
            nparams: 0,
            nlocals: 0,
            code: vec![
                Insn::PutInt(1),
                Insn::PutInt(2),
                Insn::PutInt(3),
                Insn::NewArray { n: 3 },
                Insn::Leave,
            ],
            is_block: false,
        };
        assert!(iseq.max_stack() >= 3);
    }
}
