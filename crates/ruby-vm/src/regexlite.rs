//! A small backtracking regex engine (the CRuby `oniguruma` stand-in).
//!
//! The paper found that in WEBrick and Rails "most of these aborts …
//! occurred in the regular-expression library": regex matching is a C-level
//! operation with *no yield points inside*, so a transaction that enters it
//! must absorb the engine's whole footprint. The `ruby-vm` builtins
//! reproduce that by touching the subject string's shadow buffer and
//! charging native cycles proportional to the work this engine reports.
//!
//! Supported syntax: literals, `.`, `*`, `+`, `?`, alternation `|`,
//! groups `(…)` (capturing), character classes `[a-z]`/`[^…]`, escapes
//! (`\d`, `\w`, `\s`, `\.`, …), anchors `^`/`$`.

/// Compiled pattern: a backtracking instruction program (the classic
/// `Split`/`Jump`/`Save` form), so group contents backtrack correctly into
/// their continuation.
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Vec<Inst>,
    pub source: String,
    pub ngroups: usize,
    anchored: bool,
}

#[derive(Debug, Clone)]
enum Inst {
    Char(char),
    Any,
    Class {
        neg: bool,
        ranges: Vec<(char, char)>,
    },
    /// Try `a` first, backtrack into `b`.
    Split(usize, usize),
    Jump(usize),
    /// Record the current position in save slot `n` (2k = group-k start,
    /// 2k+1 = group-k end).
    Save(usize),
    AnchorStart,
    AnchorEnd,
    Matched,
}

/// Backtracking-step budget per `find` attempt: keeps pathological
/// patterns ((a+)+b) from hanging the simulator; exceeding it counts as
/// "no match", which is also what oniguruma's backtrack limit does.
const STEP_BUDGET: usize = 200_000;

#[derive(Debug, Clone)]
enum Ast {
    Char(char),
    Any,
    Class {
        neg: bool,
        ranges: Vec<(char, char)>,
    },
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
    Group(usize, Vec<Vec<Ast>>),
    /// Non-capturing alternation at top level is wrapped in group 0.
    AnchorStart,
    AnchorEnd,
}

/// Compile error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex error: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// A successful match: overall span plus capture-group spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    pub start: usize,
    pub end: usize,
    /// Group spans by index (group 0 = whole match).
    pub groups: Vec<Option<(usize, usize)>>,
    /// Positions examined — the cost measure the VM charges cycles for.
    pub steps: usize,
}

impl Regex {
    pub fn compile(pattern: &str) -> Result<Regex, RegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0, ngroups: 0 };
        let alts = p.alternation()?;
        if p.pos != p.chars.len() {
            return Err(RegexError(format!("trailing characters at {}", p.pos)));
        }
        let ngroups = p.ngroups;
        let anchored = alts.iter().all(|a| matches!(a.first(), Some(Ast::AnchorStart)));
        let mut prog = Vec::new();
        emit_alts(&mut prog, &alts);
        prog.push(Inst::Matched);
        Ok(Regex { prog, source: pattern.to_string(), ngroups, anchored })
    }

    /// Find the leftmost match in `subject`.
    pub fn find(&self, subject: &str) -> Option<MatchResult> {
        let chars: Vec<char> = subject.chars().collect();
        let mut steps = 0usize;
        for start in 0..=chars.len() {
            let mut saves = vec![usize::MAX; 2 * (self.ngroups + 1)];
            if let Some(end) = self.run(&chars, start, &mut saves, &mut steps) {
                let mut groups = vec![None; self.ngroups + 1];
                groups[0] = Some((start, end));
                for g in 1..=self.ngroups {
                    let (s, e) = (saves[2 * g], saves[2 * g + 1]);
                    if s != usize::MAX && e != usize::MAX {
                        groups[g] = Some((s, e));
                    }
                }
                return Some(MatchResult { start, end, groups, steps });
            }
            if self.anchored || steps > STEP_BUDGET {
                break;
            }
        }
        None
    }

    /// Backtracking executor with an explicit stack.
    fn run(
        &self,
        chars: &[char],
        start: usize,
        saves: &mut Vec<usize>,
        steps: &mut usize,
    ) -> Option<usize> {
        // (pc, pos, saves-at-branch) backtrack points; saves are cheap to
        // clone (tiny vectors).
        let mut stack: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        let mut pc = 0usize;
        let mut pos = start;
        loop {
            *steps += 1;
            if *steps > STEP_BUDGET {
                return None;
            }
            let advance = match &self.prog[pc] {
                Inst::Matched => return Some(pos),
                Inst::Char(c) => chars.get(pos) == Some(c),
                Inst::Any => pos < chars.len(),
                Inst::Class { neg, ranges } => match chars.get(pos) {
                    Some(&ch) => ranges.iter().any(|&(lo, hi)| ch >= lo && ch <= hi) != *neg,
                    None => false,
                },
                Inst::AnchorStart => {
                    if pos == 0 {
                        pc += 1;
                        continue;
                    }
                    false
                }
                Inst::AnchorEnd => {
                    if pos == chars.len() {
                        pc += 1;
                        continue;
                    }
                    false
                }
                Inst::Save(n) => {
                    // No undo entry needed: every Split snapshots the whole
                    // save vector, so backtracking restores it wholesale.
                    saves[*n] = pos;
                    pc += 1;
                    continue;
                }
                Inst::Jump(x) => {
                    pc = *x;
                    continue;
                }
                Inst::Split(a, b) => {
                    stack.push((*b, pos, saves.clone()));
                    pc = *a;
                    continue;
                }
            };
            if advance {
                pc += 1;
                pos += 1;
            } else {
                // Backtrack to the most recent split.
                match stack.pop() {
                    Some((bpc, bpos, bsaves)) => {
                        pc = bpc;
                        pos = bpos;
                        *saves = bsaves;
                    }
                    None => return None,
                }
            }
        }
    }

    /// Is there a match anywhere?
    pub fn is_match(&self, subject: &str) -> bool {
        self.find(subject).is_some()
    }

    /// Replace the first match with `rep` (no backreferences in `rep`).
    pub fn replace_first(&self, subject: &str, rep: &str) -> (String, bool, usize) {
        match self.find(subject) {
            Some(m) => {
                let chars: Vec<char> = subject.chars().collect();
                let mut out: String = chars[..m.start].iter().collect();
                out.push_str(rep);
                out.extend(chars[m.end..].iter());
                (out, true, m.steps)
            }
            None => (subject.to_string(), false, subject.len() + 1),
        }
    }

    /// Replace all (non-overlapping) matches.
    pub fn replace_all(&self, subject: &str, rep: &str) -> (String, usize, usize) {
        let chars: Vec<char> = subject.chars().collect();
        let mut out = String::new();
        let mut pos = 0usize;
        let mut count = 0usize;
        let mut total_steps = 0usize;
        while pos <= chars.len() {
            let rest: String = chars[pos..].iter().collect();
            match self.find(&rest) {
                Some(m) => {
                    total_steps += m.steps;
                    out.extend(chars[pos..pos + m.start].iter());
                    out.push_str(rep);
                    count += 1;
                    let advance = if m.end == m.start { m.end + 1 } else { m.end };
                    if m.start == m.end && pos + m.start < chars.len() {
                        out.push(chars[pos + m.start]);
                    }
                    pos += advance.max(1);
                }
                None => {
                    total_steps += rest.len() + 1;
                    out.extend(chars[pos..].iter());
                    break;
                }
            }
        }
        (out, count, total_steps)
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    ngroups: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn alternation(&mut self) -> Result<Vec<Vec<Ast>>, RegexError> {
        let mut alts = vec![self.sequence()?];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.sequence()?);
        }
        Ok(alts)
    }

    fn sequence(&mut self) -> Result<Vec<Ast>, RegexError> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom()?;
            let atom = match self.peek() {
                Some('*') => {
                    self.bump();
                    Ast::Star(Box::new(atom))
                }
                Some('+') => {
                    self.bump();
                    Ast::Plus(Box::new(atom))
                }
                Some('?') => {
                    self.bump();
                    Ast::Opt(Box::new(atom))
                }
                _ => atom,
            };
            seq.push(atom);
        }
        Ok(seq)
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            Some('(') => {
                self.ngroups += 1;
                let idx = self.ngroups;
                let alts = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(RegexError("unclosed group".into()));
                }
                Ok(Ast::Group(idx, alts))
            }
            Some('[') => self.class_atom(),
            Some('.') => Ok(Ast::Any),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('\\') => {
                let c = self.bump().ok_or_else(|| RegexError("dangling escape".into()))?;
                Ok(match c {
                    'd' => Ast::Class { neg: false, ranges: vec![('0', '9')] },
                    'w' => Ast::Class {
                        neg: false,
                        ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                    },
                    's' => Ast::Class {
                        neg: false,
                        ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                    },
                    'n' => Ast::Char('\n'),
                    't' => Ast::Char('\t'),
                    other => Ast::Char(other),
                })
            }
            Some(c) if c == '*' || c == '+' || c == '?' => {
                Err(RegexError(format!("dangling quantifier {c:?}")))
            }
            Some(c) => Ok(Ast::Char(c)),
            None => Err(RegexError("unexpected end of pattern".into())),
        }
    }

    fn class_atom(&mut self) -> Result<Ast, RegexError> {
        let neg = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let c = self.bump().ok_or_else(|| RegexError("unclosed character class".into()))?;
            if c == ']' {
                break;
            }
            let c = if c == '\\' {
                self.bump().ok_or_else(|| RegexError("dangling escape in class".into()))?
            } else {
                c
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = self.bump().ok_or_else(|| RegexError("unclosed range".into()))?;
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Ast::Class { neg, ranges })
    }
}

/// Emit an alternation: Split chains over each branch.
fn emit_alts(prog: &mut Vec<Inst>, alts: &[Vec<Ast>]) {
    if alts.len() == 1 {
        emit_seq(prog, &alts[0]);
        return;
    }
    // split L1, L2; L1: alt0; jump END; L2: …
    let mut jump_fixups = Vec::new();
    let mut split_fixup: Option<usize> = None;
    for (i, alt) in alts.iter().enumerate() {
        if let Some(sf) = split_fixup.take() {
            let here = prog.len();
            if let Inst::Split(_, b) = &mut prog[sf] {
                *b = here;
            }
        }
        if i + 1 < alts.len() {
            split_fixup = Some(prog.len());
            prog.push(Inst::Split(prog.len() + 1, 0));
        }
        emit_seq(prog, alt);
        if i + 1 < alts.len() {
            jump_fixups.push(prog.len());
            prog.push(Inst::Jump(0));
        }
    }
    let end = prog.len();
    for j in jump_fixups {
        prog[j] = Inst::Jump(end);
    }
}

fn emit_seq(prog: &mut Vec<Inst>, seq: &[Ast]) {
    for a in seq {
        emit_atom(prog, a);
    }
}

fn emit_atom(prog: &mut Vec<Inst>, a: &Ast) {
    match a {
        Ast::Char(c) => prog.push(Inst::Char(*c)),
        Ast::Any => prog.push(Inst::Any),
        Ast::Class { neg, ranges } => prog.push(Inst::Class { neg: *neg, ranges: ranges.clone() }),
        Ast::AnchorStart => prog.push(Inst::AnchorStart),
        Ast::AnchorEnd => prog.push(Inst::AnchorEnd),
        Ast::Opt(inner) => {
            // split BODY, END
            let sp = prog.len();
            prog.push(Inst::Split(sp + 1, 0));
            emit_atom(prog, inner);
            let end = prog.len();
            if let Inst::Split(_, b) = &mut prog[sp] {
                *b = end;
            }
        }
        Ast::Star(inner) => {
            // L1: split BODY, END; BODY: inner; jump L1; END:
            let l1 = prog.len();
            prog.push(Inst::Split(l1 + 1, 0));
            emit_atom(prog, inner);
            prog.push(Inst::Jump(l1));
            let end = prog.len();
            if let Inst::Split(_, b) = &mut prog[l1] {
                *b = end;
            }
        }
        Ast::Plus(inner) => {
            // L1: inner; split L1, END
            let l1 = prog.len();
            emit_atom(prog, inner);
            let sp = prog.len();
            prog.push(Inst::Split(l1, sp + 1));
        }
        Ast::Group(idx, alts) => {
            prog.push(Inst::Save(2 * idx));
            emit_alts(prog, alts);
            prog.push(Inst::Save(2 * idx + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, subj: &str) -> Option<(usize, usize)> {
        Regex::compile(pat).unwrap().find(subj).map(|r| (r.start, r.end))
    }

    #[test]
    fn literals() {
        assert_eq!(m("abc", "xxabczz"), Some((2, 5)));
        assert_eq!(m("abc", "ab"), None);
    }

    #[test]
    fn dot_and_classes() {
        assert_eq!(m("a.c", "abc"), Some((0, 3)));
        assert_eq!(m("[0-9]+", "ab123cd"), Some((2, 5)));
        assert_eq!(m("[^0-9]+", "12ab3"), Some((2, 4)));
        assert_eq!(m("\\d\\d", "a42"), Some((1, 3)));
        assert_eq!(m("\\w+", "  hi_there "), Some((2, 10)));
        assert_eq!(m("\\s", "ab c"), Some((2, 3)));
    }

    #[test]
    fn quantifiers() {
        assert_eq!(m("ab*c", "ac"), Some((0, 2)));
        assert_eq!(m("ab*c", "abbbc"), Some((0, 5)));
        assert_eq!(m("ab+c", "ac"), None);
        assert_eq!(m("ab?c", "abc"), Some((0, 3)));
        assert_eq!(m("ab?c", "ac"), Some((0, 2)));
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^ab", "abc"), Some((0, 2)));
        assert_eq!(m("^b", "abc"), None);
        assert_eq!(m("bc$", "abc"), Some((1, 3)));
        assert_eq!(m("ab$", "abc"), None);
    }

    #[test]
    fn groups_and_alternation() {
        let r = Regex::compile("GET (.*) HTTP/(1\\.[01])").unwrap();
        let res = r.find("GET /index.html HTTP/1.1").unwrap();
        assert_eq!(res.groups[1], Some((4, 15)));
        assert_eq!(res.groups[2], Some((21, 24)));
        assert_eq!(m("cat|dog", "hotdog"), Some((3, 6)));
        assert_eq!(m("(a|b)+c", "ababc"), Some((0, 5)));
    }

    #[test]
    fn replace() {
        let r = Regex::compile("o+").unwrap();
        assert_eq!(r.replace_first("foo boo", "0").0, "f0 boo");
        let (s, n, _) = r.replace_all("foo boo", "0");
        assert_eq!(s, "f0 b0");
        assert_eq!(n, 2);
    }

    #[test]
    fn steps_grow_with_subject() {
        let r = Regex::compile("zzz").unwrap();
        let short = r.replace_first("ab", "x").2;
        let long = r.replace_first(&"ab".repeat(100), "x").2;
        assert!(long > short, "cost must scale with subject length");
    }

    #[test]
    fn backtracking_terminates() {
        // Classic pathological pattern must still terminate.
        let r = Regex::compile("(a+)+b").unwrap();
        assert!(r.find("aaaaaaaaaaaaaaaa").is_none());
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::compile("(abc").is_err());
        assert!(Regex::compile("[abc").is_err());
        assert!(Regex::compile("*a").is_err());
    }
}
