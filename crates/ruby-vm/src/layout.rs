//! Address-space layout of the simulated interpreter.
//!
//! Mirrors the memory map of a real CRuby process closely enough that the
//! paper's conflict points land on distinct (or deliberately shared) cache
//! lines:
//!
//! ```text
//! ┌─────────────────────────────────────────────────────────────┐
//! │ GIL word (alone on its line — every transaction reads it)   │
//! │ running-thread global (the paper's worst conflict point)    │
//! │ heap metadata: free-list head, sweep cursor, malloc bump    │
//! │ malloc size-class free-list heads                           │
//! │ global-variable slots                                       │
//! │ constant slots                                              │
//! │ inline-cache area (2 words per call/ivar site, packed)      │
//! │ thread structs (padded to a line each, or packed — §4.4)    │
//! │ object slots (8 words each, the CRuby RVALUE heap)          │
//! │ malloc area (array/hash/ivar buffers, string shadows)       │
//! │ per-thread stacks (frames + operand stacks)                 │
//! └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! The slot area can grow at the end of memory (heap growth adds slot
//! ranges); everything else is fixed at boot.

use crate::value::Addr;

/// Words per object slot (64 bytes — one full line on the Xeon, a quarter
/// line on zEC12, like CRuby's 40-byte RVALUEs).
pub const SLOT_WORDS: usize = 8;

/// Number of malloc size classes (powers of two from 4 words up).
pub const MALLOC_CLASSES: usize = 12;

/// Words per thread struct when unpadded (the paper's false-sharing case).
pub const THREAD_STRUCT_WORDS: usize = 8;

/// Offsets within a thread struct.
pub mod ts {
    /// `yield_point_counter` of paper Fig. 2 (written at every yield point).
    pub const YIELD_COUNTER: usize = 0;
    /// Timer-thread interrupt flag (GIL mode, paper §3.2).
    pub const INTERRUPT: usize = 1;
    /// Thread-local free-list head (paper §4.4 conflict removal #2).
    pub const TL_FREE_HEAD: usize = 2;
    /// Thread-local malloc bump pointer (z/OS HEAPPOOLS analogue).
    pub const TL_MALLOC_BUMP: usize = 3;
    /// End of the thread-local malloc arena chunk.
    pub const TL_MALLOC_END: usize = 4;
    /// Private sweep cursor for the §5.6 thread-local lazy-sweep
    /// extension.
    pub const TL_SWEEP_CURSOR: usize = 5;
    /// Scratch word (spin counters etc.).
    pub const SCRATCH: usize = 6;
    /// Reserved/padding.
    pub const RESERVED: usize = 7;
}

/// Computed address map.
#[derive(Debug, Clone)]
pub struct Layout {
    pub line_words: usize,
    pub gil: Addr,
    pub running_thread: Addr,
    pub free_head: Addr,
    pub sweep_cursor: Addr,
    pub malloc_bump: Addr,
    pub malloc_end: Addr,
    pub malloc_class_base: Addr,
    pub gvar_base: Addr,
    pub gvar_cap: usize,
    pub const_base: Addr,
    pub const_cap: usize,
    pub ic_base: Addr,
    pub ic_count: usize,
    /// Copies of the IC area (1 shared, or one per thread for the §5.6
    /// thread-local inline-cache extension).
    pub ic_copies: usize,
    pub thread_struct_base: Addr,
    pub thread_struct_stride: usize,
    pub max_threads: usize,
    pub slots_base: Addr,
    pub initial_slots: usize,
    pub malloc_base: Addr,
    pub malloc_words: usize,
    pub stack_base: Addr,
    pub stack_words: usize,
    /// First address past the initial layout (heap growth appends here).
    pub total_words: usize,
}

impl Layout {
    /// Build the address map.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        line_words: usize,
        ic_count: usize,
        max_threads: usize,
        initial_slots: usize,
        malloc_words: usize,
        stack_words: usize,
        gvar_cap: usize,
        const_cap: usize,
        padded_thread_structs: bool,
        ic_copies: usize,
    ) -> Layout {
        let align = |a: usize| a.div_ceil(line_words) * line_words;
        let gil = 0;
        let running_thread = align(gil + 1);
        let free_head = align(running_thread + 1);
        let sweep_cursor = free_head + 1;
        let malloc_bump = free_head + 2;
        let malloc_end = free_head + 3;
        let malloc_class_base = align(free_head + 4);
        let gvar_base = align(malloc_class_base + MALLOC_CLASSES);
        let const_base = align(gvar_base + gvar_cap);
        let ic_base = align(const_base + const_cap);
        let thread_struct_base = align(ic_base + 2 * ic_count.max(1) * ic_copies.max(1));
        let thread_struct_stride = if padded_thread_structs {
            align(THREAD_STRUCT_WORDS).max(line_words)
        } else {
            THREAD_STRUCT_WORDS
        };
        let slots_base = align(thread_struct_base + thread_struct_stride * max_threads);
        let malloc_base = align(slots_base + initial_slots * SLOT_WORDS);
        let stack_base = align(malloc_base + malloc_words);
        let total_words = align(stack_base + stack_words * max_threads);
        Layout {
            line_words,
            gil,
            running_thread,
            free_head,
            sweep_cursor,
            malloc_bump,
            malloc_end,
            malloc_class_base,
            gvar_base,
            gvar_cap,
            const_base,
            const_cap,
            ic_base,
            ic_count,
            ic_copies: ic_copies.max(1),
            thread_struct_base,
            thread_struct_stride,
            max_threads,
            slots_base,
            initial_slots,
            malloc_base,
            malloc_words,
            stack_base,
            stack_words,
            total_words,
        }
    }

    /// Address of inline-cache site `site` (2 words: guard, entry).
    #[inline]
    pub fn ic(&self, site: u32) -> Addr {
        self.ic_base + 2 * site as usize
    }

    /// Address of global-variable slot `idx`.
    #[inline]
    pub fn gvar(&self, idx: usize) -> Addr {
        assert!(idx < self.gvar_cap, "too many global variables");
        self.gvar_base + idx
    }

    /// Address of constant slot `idx`.
    #[inline]
    pub fn cnst(&self, idx: usize) -> Addr {
        assert!(idx < self.const_cap, "too many constants");
        self.const_base + idx
    }

    /// Base address of thread `tid`'s struct.
    #[inline]
    pub fn thread_struct(&self, tid: usize) -> Addr {
        self.thread_struct_base + tid * self.thread_struct_stride
    }

    /// Stack region of thread `tid`: (base, end-exclusive).
    #[inline]
    pub fn thread_stack(&self, tid: usize) -> (Addr, Addr) {
        let base = self.stack_base + tid * self.stack_words;
        (base, base + self.stack_words)
    }

    /// Size class index for a malloc request of `words` (powers of two
    /// from 4). Returns `MALLOC_CLASSES - 1` for anything huge.
    pub fn size_class(words: usize) -> usize {
        let mut cls = 0usize;
        let mut cap = 4usize;
        while cap < words && cls + 1 < MALLOC_CLASSES {
            cap *= 2;
            cls += 1;
        }
        cls
    }

    /// Capacity in words of a size class.
    pub fn class_words(cls: usize) -> usize {
        4usize << cls
    }
}

/// Which VM structure owns a cache line — the vocabulary of the paper's
/// §5.6 conflict attribution ("more than 50 % of those read-set conflicts
/// occurred at the time of object allocation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineOwner {
    /// The GIL word itself.
    Gil,
    /// The running-thread global (§4.4 #1).
    RunningThread,
    /// Heap metadata: free-list head, sweep cursor, malloc bump/class
    /// heads — the allocator (§4.4 #2 / §5.6).
    Allocator,
    /// Global variables / constants.
    Globals,
    /// Inline-cache words (§4.4 #4).
    InlineCache,
    /// Thread structs — false sharing when unpadded (§4.4 #5).
    ThreadStruct,
    /// Object slots (shared application data, lazy-sweep links).
    HeapSlots,
    /// Malloc'd buffers (array/ivar/string data).
    MallocArea,
    /// Another thread's stack (escaped environments).
    Stack,
}

impl LineOwner {
    /// All owners, in address-map order.
    pub const ALL: [LineOwner; 9] = [
        LineOwner::Gil,
        LineOwner::RunningThread,
        LineOwner::Allocator,
        LineOwner::Globals,
        LineOwner::InlineCache,
        LineOwner::ThreadStruct,
        LineOwner::HeapSlots,
        LineOwner::MallocArea,
        LineOwner::Stack,
    ];

    /// Stable label used in reports and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            LineOwner::Gil => "gil",
            LineOwner::RunningThread => "running-thread",
            LineOwner::Allocator => "allocator",
            LineOwner::Globals => "globals",
            LineOwner::InlineCache => "inline-cache",
            LineOwner::ThreadStruct => "thread-struct",
            LineOwner::HeapSlots => "heap-slots",
            LineOwner::MallocArea => "malloc-area",
            LineOwner::Stack => "stack",
        }
    }
}

/// Line → owner attribution map.
///
/// The VM registers its regions here at layout time and appends entries
/// whenever the address space grows (slot-heap growth registers the new
/// range as [`LineOwner::HeapSlots`], malloc-arena growth as
/// [`LineOwner::MallocArea`] — the two growth paths land in different
/// structures, which a layout-boundary comparison against the *initial*
/// map would misattribute). Lookups resolve a cache line to the region
/// with the greatest starting line at or below it.
#[derive(Debug, Clone)]
pub struct AttributionMap {
    line_words: usize,
    /// `(first line, owner)`, sorted by starting line.
    regions: Vec<(usize, LineOwner)>,
}

impl AttributionMap {
    /// Build the boot-time map from a layout.
    pub fn from_layout(l: &Layout) -> AttributionMap {
        let mut map = AttributionMap { line_words: l.line_words, regions: Vec::new() };
        map.register_region(l.gil, LineOwner::Gil);
        map.register_region(l.running_thread, LineOwner::RunningThread);
        map.register_region(l.free_head, LineOwner::Allocator);
        map.register_region(l.gvar_base, LineOwner::Globals);
        map.register_region(l.ic_base, LineOwner::InlineCache);
        map.register_region(l.thread_struct_base, LineOwner::ThreadStruct);
        map.register_region(l.slots_base, LineOwner::HeapSlots);
        map.register_region(l.malloc_base, LineOwner::MallocArea);
        map.register_region(l.stack_base, LineOwner::Stack);
        map
    }

    /// Register a region starting at `base` as owned by `owner`. The
    /// region extends to the next registered region (or to the end of
    /// memory). Out-of-order registration is supported but growth always
    /// appends at the top of memory in practice.
    pub fn register_region(&mut self, base: Addr, owner: LineOwner) {
        let line = base / self.line_words;
        match self.regions.binary_search_by_key(&line, |&(l, _)| l) {
            Ok(i) => self.regions[i] = (line, owner),
            Err(i) => self.regions.insert(i, (line, owner)),
        }
    }

    /// Owner of a cache line.
    pub fn owner_of_line(&self, line: usize) -> LineOwner {
        let idx = self.regions.partition_point(|&(l, _)| l <= line);
        if idx == 0 {
            // Below the first region: the map always starts at the GIL
            // word (line 0), so this is unreachable in practice.
            return self.regions.first().map_or(LineOwner::Gil, |&(_, o)| o);
        }
        self.regions[idx - 1].1
    }

    /// Owner of a word address.
    pub fn owner_of_addr(&self, addr: Addr) -> LineOwner {
        self.owner_of_line(addr / self.line_words)
    }

    /// Number of registered regions (boot regions + growth appendices).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(padded: bool) -> Layout {
        Layout::new(8, 100, 4, 1000, 10_000, 2_000, 64, 128, padded, 1)
    }

    #[test]
    fn regions_do_not_overlap_and_are_ordered() {
        let l = layout(true);
        let points = [
            l.gil,
            l.running_thread,
            l.free_head,
            l.malloc_class_base,
            l.gvar_base,
            l.const_base,
            l.ic_base,
            l.thread_struct_base,
            l.slots_base,
            l.malloc_base,
            l.stack_base,
        ];
        for w in points.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
        assert!(l.stack_base + 4 * l.stack_words <= l.total_words);
    }

    #[test]
    fn gil_and_running_thread_on_distinct_lines() {
        let l = layout(true);
        assert_ne!(l.gil / l.line_words, l.running_thread / l.line_words);
        assert_ne!(l.running_thread / l.line_words, l.free_head / l.line_words);
    }

    #[test]
    fn padded_thread_structs_have_line_stride() {
        let l = layout(true);
        assert_eq!(l.thread_struct_stride % l.line_words, 0);
        // Distinct threads' structs land on distinct lines.
        assert_ne!(l.thread_struct(0) / l.line_words, l.thread_struct(1) / l.line_words);
    }

    #[test]
    fn unpadded_thread_structs_share_lines() {
        // zEC12-style 32-word lines: four unpadded 8-word structs per line.
        let l = Layout::new(32, 100, 4, 1000, 10_000, 2_000, 64, 128, false, 1);
        assert_eq!(l.thread_struct_stride, THREAD_STRUCT_WORDS);
        assert_eq!(l.thread_struct(0) / l.line_words, (l.thread_struct(1)) / l.line_words);
    }

    #[test]
    fn size_classes() {
        assert_eq!(Layout::size_class(1), 0);
        assert_eq!(Layout::size_class(4), 0);
        assert_eq!(Layout::size_class(5), 1);
        assert_eq!(Layout::size_class(8), 1);
        assert_eq!(Layout::size_class(9), 2);
        assert_eq!(Layout::class_words(0), 4);
        assert_eq!(Layout::class_words(2), 16);
        // Huge requests cap at the last class.
        assert_eq!(Layout::size_class(1 << 30), MALLOC_CLASSES - 1);
    }

    #[test]
    fn ic_slots_are_two_words() {
        let l = layout(true);
        assert_eq!(l.ic(1) - l.ic(0), 2);
        assert!(l.ic(99) + 1 < l.thread_struct_base);
    }

    #[test]
    fn attribution_map_matches_layout_regions() {
        let l = layout(true);
        let m = AttributionMap::from_layout(&l);
        assert_eq!(m.owner_of_addr(l.gil), LineOwner::Gil);
        assert_eq!(m.owner_of_addr(l.running_thread), LineOwner::RunningThread);
        assert_eq!(m.owner_of_addr(l.free_head), LineOwner::Allocator);
        assert_eq!(m.owner_of_addr(l.sweep_cursor), LineOwner::Allocator);
        assert_eq!(m.owner_of_addr(l.malloc_bump), LineOwner::Allocator);
        assert_eq!(m.owner_of_addr(l.malloc_class_base + MALLOC_CLASSES - 1), LineOwner::Allocator);
        assert_eq!(m.owner_of_addr(l.gvar_base), LineOwner::Globals);
        assert_eq!(m.owner_of_addr(l.const_base), LineOwner::Globals);
        assert_eq!(m.owner_of_addr(l.ic(0)), LineOwner::InlineCache);
        assert_eq!(m.owner_of_addr(l.thread_struct(3)), LineOwner::ThreadStruct);
        assert_eq!(m.owner_of_addr(l.slots_base), LineOwner::HeapSlots);
        assert_eq!(m.owner_of_addr(l.slots_base + 999 * SLOT_WORDS), LineOwner::HeapSlots);
        assert_eq!(m.owner_of_addr(l.malloc_base), LineOwner::MallocArea);
        let (sb, se) = l.thread_stack(3);
        assert_eq!(m.owner_of_addr(sb), LineOwner::Stack);
        assert_eq!(m.owner_of_addr(se - 1), LineOwner::Stack);
    }

    #[test]
    fn attribution_map_distinguishes_growth_kinds() {
        let l = layout(true);
        let mut m = AttributionMap::from_layout(&l);
        let boot_regions = m.region_count();
        // Grown slot range, then a grown malloc arena above it.
        let grown_slots = l.total_words;
        let grown_malloc = l.total_words + 4096;
        m.register_region(grown_slots, LineOwner::HeapSlots);
        m.register_region(grown_malloc, LineOwner::MallocArea);
        assert_eq!(m.region_count(), boot_regions + 2);
        assert_eq!(m.owner_of_addr(grown_slots), LineOwner::HeapSlots);
        assert_eq!(m.owner_of_addr(grown_slots + 4095), LineOwner::HeapSlots);
        assert_eq!(m.owner_of_addr(grown_malloc), LineOwner::MallocArea);
        assert_eq!(m.owner_of_addr(grown_malloc + (1 << 20)), LineOwner::MallocArea);
        // Boot regions still resolve.
        assert_eq!(m.owner_of_addr(l.slots_base), LineOwner::HeapSlots);
    }

    #[test]
    fn line_owner_labels_are_distinct() {
        let mut labels: Vec<&str> = LineOwner::ALL.iter().map(|o| o.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), LineOwner::ALL.len());
    }

    #[test]
    fn stacks_are_disjoint() {
        let l = layout(true);
        let (b0, e0) = l.thread_stack(0);
        let (b1, _e1) = l.thread_stack(1);
        assert_eq!(e0, b1);
        assert!(b0 < e0);
    }
}
