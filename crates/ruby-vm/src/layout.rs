//! Address-space layout of the simulated interpreter.
//!
//! Mirrors the memory map of a real CRuby process closely enough that the
//! paper's conflict points land on distinct (or deliberately shared) cache
//! lines:
//!
//! ```text
//! ┌─────────────────────────────────────────────────────────────┐
//! │ GIL word (alone on its line — every transaction reads it)   │
//! │ running-thread global (the paper's worst conflict point)    │
//! │ heap metadata: free-list head, sweep cursor, malloc bump    │
//! │ malloc size-class free-list heads                           │
//! │ global-variable slots                                       │
//! │ constant slots                                              │
//! │ inline-cache area (2 words per call/ivar site, packed)      │
//! │ thread structs (padded to a line each, or packed — §4.4)    │
//! │ object slots (8 words each, the CRuby RVALUE heap)          │
//! │ malloc area (array/hash/ivar buffers, string shadows)       │
//! │ per-thread stacks (frames + operand stacks)                 │
//! └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! The slot area can grow at the end of memory (heap growth adds slot
//! ranges); everything else is fixed at boot.

use crate::value::Addr;

/// Words per object slot (64 bytes — one full line on the Xeon, a quarter
/// line on zEC12, like CRuby's 40-byte RVALUEs).
pub const SLOT_WORDS: usize = 8;

/// Number of malloc size classes (powers of two from 4 words up).
pub const MALLOC_CLASSES: usize = 12;

/// Words per thread struct when unpadded (the paper's false-sharing case).
pub const THREAD_STRUCT_WORDS: usize = 8;

/// Offsets within a thread struct.
pub mod ts {
    /// `yield_point_counter` of paper Fig. 2 (written at every yield point).
    pub const YIELD_COUNTER: usize = 0;
    /// Timer-thread interrupt flag (GIL mode, paper §3.2).
    pub const INTERRUPT: usize = 1;
    /// Thread-local free-list head (paper §4.4 conflict removal #2).
    pub const TL_FREE_HEAD: usize = 2;
    /// Thread-local malloc bump pointer (z/OS HEAPPOOLS analogue).
    pub const TL_MALLOC_BUMP: usize = 3;
    /// End of the thread-local malloc arena chunk.
    pub const TL_MALLOC_END: usize = 4;
    /// Private sweep cursor for the §5.6 thread-local lazy-sweep
    /// extension.
    pub const TL_SWEEP_CURSOR: usize = 5;
    /// Scratch word (spin counters etc.).
    pub const SCRATCH: usize = 6;
    /// Reserved/padding.
    pub const RESERVED: usize = 7;
}

/// Computed address map.
#[derive(Debug, Clone)]
pub struct Layout {
    pub line_words: usize,
    pub gil: Addr,
    pub running_thread: Addr,
    pub free_head: Addr,
    pub sweep_cursor: Addr,
    pub malloc_bump: Addr,
    pub malloc_end: Addr,
    pub malloc_class_base: Addr,
    pub gvar_base: Addr,
    pub gvar_cap: usize,
    pub const_base: Addr,
    pub const_cap: usize,
    pub ic_base: Addr,
    pub ic_count: usize,
    /// Copies of the IC area (1 shared, or one per thread for the §5.6
    /// thread-local inline-cache extension).
    pub ic_copies: usize,
    pub thread_struct_base: Addr,
    pub thread_struct_stride: usize,
    pub max_threads: usize,
    pub slots_base: Addr,
    pub initial_slots: usize,
    pub malloc_base: Addr,
    pub malloc_words: usize,
    pub stack_base: Addr,
    pub stack_words: usize,
    /// First address past the initial layout (heap growth appends here).
    pub total_words: usize,
}

impl Layout {
    /// Build the address map.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        line_words: usize,
        ic_count: usize,
        max_threads: usize,
        initial_slots: usize,
        malloc_words: usize,
        stack_words: usize,
        gvar_cap: usize,
        const_cap: usize,
        padded_thread_structs: bool,
        ic_copies: usize,
    ) -> Layout {
        let align = |a: usize| a.div_ceil(line_words) * line_words;
        let gil = 0;
        let running_thread = align(gil + 1);
        let free_head = align(running_thread + 1);
        let sweep_cursor = free_head + 1;
        let malloc_bump = free_head + 2;
        let malloc_end = free_head + 3;
        let malloc_class_base = align(free_head + 4);
        let gvar_base = align(malloc_class_base + MALLOC_CLASSES);
        let const_base = align(gvar_base + gvar_cap);
        let ic_base = align(const_base + const_cap);
        let thread_struct_base = align(ic_base + 2 * ic_count.max(1) * ic_copies.max(1));
        let thread_struct_stride = if padded_thread_structs {
            align(THREAD_STRUCT_WORDS).max(line_words)
        } else {
            THREAD_STRUCT_WORDS
        };
        let slots_base = align(thread_struct_base + thread_struct_stride * max_threads);
        let malloc_base = align(slots_base + initial_slots * SLOT_WORDS);
        let stack_base = align(malloc_base + malloc_words);
        let total_words = align(stack_base + stack_words * max_threads);
        Layout {
            line_words,
            gil,
            running_thread,
            free_head,
            sweep_cursor,
            malloc_bump,
            malloc_end,
            malloc_class_base,
            gvar_base,
            gvar_cap,
            const_base,
            const_cap,
            ic_base,
            ic_count,
            ic_copies: ic_copies.max(1),
            thread_struct_base,
            thread_struct_stride,
            max_threads,
            slots_base,
            initial_slots,
            malloc_base,
            malloc_words,
            stack_base,
            stack_words,
            total_words,
        }
    }

    /// Address of inline-cache site `site` (2 words: guard, entry).
    #[inline]
    pub fn ic(&self, site: u32) -> Addr {
        self.ic_base + 2 * site as usize
    }

    /// Address of global-variable slot `idx`.
    #[inline]
    pub fn gvar(&self, idx: usize) -> Addr {
        assert!(idx < self.gvar_cap, "too many global variables");
        self.gvar_base + idx
    }

    /// Address of constant slot `idx`.
    #[inline]
    pub fn cnst(&self, idx: usize) -> Addr {
        assert!(idx < self.const_cap, "too many constants");
        self.const_base + idx
    }

    /// Base address of thread `tid`'s struct.
    #[inline]
    pub fn thread_struct(&self, tid: usize) -> Addr {
        self.thread_struct_base + tid * self.thread_struct_stride
    }

    /// Stack region of thread `tid`: (base, end-exclusive).
    #[inline]
    pub fn thread_stack(&self, tid: usize) -> (Addr, Addr) {
        let base = self.stack_base + tid * self.stack_words;
        (base, base + self.stack_words)
    }

    /// Size class index for a malloc request of `words` (powers of two
    /// from 4). Returns `MALLOC_CLASSES - 1` for anything huge.
    pub fn size_class(words: usize) -> usize {
        let mut cls = 0usize;
        let mut cap = 4usize;
        while cap < words && cls + 1 < MALLOC_CLASSES {
            cap *= 2;
            cls += 1;
        }
        cls
    }

    /// Capacity in words of a size class.
    pub fn class_words(cls: usize) -> usize {
        4usize << cls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(padded: bool) -> Layout {
        Layout::new(8, 100, 4, 1000, 10_000, 2_000, 64, 128, padded, 1)
    }

    #[test]
    fn regions_do_not_overlap_and_are_ordered() {
        let l = layout(true);
        let points = [
            l.gil,
            l.running_thread,
            l.free_head,
            l.malloc_class_base,
            l.gvar_base,
            l.const_base,
            l.ic_base,
            l.thread_struct_base,
            l.slots_base,
            l.malloc_base,
            l.stack_base,
        ];
        for w in points.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
        assert!(l.stack_base + 4 * l.stack_words <= l.total_words);
    }

    #[test]
    fn gil_and_running_thread_on_distinct_lines() {
        let l = layout(true);
        assert_ne!(l.gil / l.line_words, l.running_thread / l.line_words);
        assert_ne!(l.running_thread / l.line_words, l.free_head / l.line_words);
    }

    #[test]
    fn padded_thread_structs_have_line_stride() {
        let l = layout(true);
        assert_eq!(l.thread_struct_stride % l.line_words, 0);
        // Distinct threads' structs land on distinct lines.
        assert_ne!(
            l.thread_struct(0) / l.line_words,
            l.thread_struct(1) / l.line_words
        );
    }

    #[test]
    fn unpadded_thread_structs_share_lines() {
        // zEC12-style 32-word lines: four unpadded 8-word structs per line.
        let l = Layout::new(32, 100, 4, 1000, 10_000, 2_000, 64, 128, false, 1);
        assert_eq!(l.thread_struct_stride, THREAD_STRUCT_WORDS);
        assert_eq!(
            l.thread_struct(0) / l.line_words,
            (l.thread_struct(1)) / l.line_words
        );
    }

    #[test]
    fn size_classes() {
        assert_eq!(Layout::size_class(1), 0);
        assert_eq!(Layout::size_class(4), 0);
        assert_eq!(Layout::size_class(5), 1);
        assert_eq!(Layout::size_class(8), 1);
        assert_eq!(Layout::size_class(9), 2);
        assert_eq!(Layout::class_words(0), 4);
        assert_eq!(Layout::class_words(2), 16);
        // Huge requests cap at the last class.
        assert_eq!(Layout::size_class(1 << 30), MALLOC_CLASSES - 1);
    }

    #[test]
    fn ic_slots_are_two_words() {
        let l = layout(true);
        assert_eq!(l.ic(1) - l.ic(0), 2);
        assert!(l.ic(99) + 1 < l.thread_struct_base);
    }

    #[test]
    fn stacks_are_disjoint() {
        let l = layout(true);
        let (b0, e0) = l.thread_stack(0);
        let (b1, _e1) = l.thread_stack(1);
        assert_eq!(e0, b1);
        assert!(b0 < e0);
    }
}
