//! Symbol interning.
//!
//! Symbols are interned at compile/boot time (and occasionally at runtime
//! by `String#to_sym`); the table itself is host-side metadata, like
//! CRuby's symbol table before 2.2 made symbols GC-able. Runtime interning
//! contention is not modelled — the workloads intern everything up front.

use std::collections::HashMap;

/// Interned symbol id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

/// Bidirectional symbol table.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: HashMap<String, SymId>,
}

impl SymbolTable {
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> SymId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = SymId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<SymId> {
        self.ids.get(name).copied()
    }

    /// Name of a symbol id.
    pub fn name(&self, id: SymId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("each");
        let b = t.intern("map");
        let a2 = t.intern("each");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "each");
        assert_eq!(t.name(b), "map");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_without_interning() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup("x"), None);
        let id = t.intern("x");
        assert_eq!(t.lookup("x"), Some(id));
    }
}
