//! # ruby-vm
//!
//! A from-scratch reimplementation of the parts of CRuby 1.9.3 that the
//! paper's GIL-elision experiments exercise: a YARV-like stack bytecode and
//! compiler, a slot heap with free-list allocation and mark-&-lazy-sweep
//! GC, method/ivar inline caches with the paper's original and improved
//! policies, Ruby threads with `Mutex`/`Barrier`, and the builtin classes
//! the workloads need (including a small regex engine and a tiny relational
//! store for the Rails model).
//!
//! ## The memory discipline that makes the reproduction work
//!
//! Every piece of shared VM state — the slot heap, malloc'd buffers, global
//! variables, constants, inline caches, class method tables, free-list
//! heads, per-thread structs, and even each thread's call stack — lives in
//! one simulated word-addressed [`htm_sim::TxMemory`]. Every interpreter
//! load and store goes through it, so:
//!
//! * transactions accumulate *exactly* the cache-line footprint the real
//!   interpreter would (stack writes included — the reason the paper's
//!   original coarse yield points overflow the zEC12's 8 KB write budget);
//! * the paper's conflict hot spots exist at real addresses: the global
//!   free-list head, inline-cache words, the running-thread global,
//!   malloc metadata, unpadded thread structs sharing a cache line;
//! * aborting a transaction restores interpreter state exactly (the stack
//!   words roll back via the undo log; the thread's registers are
//!   snapshotted by the TLE runtime).
//!
//! One deliberate simplification: string *content* is kept in host `Rc<str>`
//! for convenience, but every string carries a "shadow buffer" in simulated
//! memory sized to its byte length, and string/regex operations touch that
//! buffer — so string-heavy code (WEBrick parsing, Rails templating)
//! generates the same footprint (and the same overflow aborts) it does in
//! CRuby. See DESIGN.md §2.
//!
//! The crate is driven one bytecode at a time by the `core` crate's
//! executor ([`vm::Vm::step`]); it never blocks the host thread.

pub mod builtins;
pub mod bytecode;
pub mod compile;
pub mod decode;
pub mod extensions;
pub mod heap;
pub mod interp;
pub mod layout;
pub mod object;
pub mod prelude;
pub mod program;
pub mod regexlite;
pub mod store;
pub mod symbols;
pub mod value;
pub mod vm;

pub use bytecode::{ISeq, Insn, IseqId};
pub use layout::{AttributionMap, LineOwner};
pub use program::Program;
pub use symbols::{SymId, SymbolTable};
pub use value::{ObjKind, Word};
pub use vm::{BlockOn, StepOk, ThreadCtx, Vm, VmAbort, VmConfig, VmError};
