//! Word values stored in the simulated memory.
//!
//! A `Word` plays two roles, as in a real interpreter's address space:
//!
//! * **Ruby values** visible to programs: `Nil`, `True`, `False`,
//!   immediate `Int`s (CRuby Fixnums), `Sym`bols, and `Obj` references to
//!   heap slots. CRuby 1.9 has no immediate floats — `Float`s are heap
//!   objects, which is why numeric code allocates furiously and why the
//!   paper found most read-set conflicts at the object allocator.
//! * **Payload words** inside objects: slot headers, raw `F64` float
//!   payloads, `Str` string content, and free-list links, all of which
//!   occupy simulated cache lines like any other data.

use std::rc::Rc;

use crate::symbols::SymId;

/// Simulated-memory address (word index).
pub type Addr = usize;

/// Heap-object kinds (the `T_*` flags of CRuby's `RVALUE` header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// Slot on the free list; payload word 1 is the next-free link.
    Free,
    Float,
    String,
    Array,
    Hash,
    /// Plain object: class ref + ivar buffer.
    Object,
    Class,
    Range,
    Thread,
    Mutex,
    Barrier,
    Regexp,
    MatchData,
    /// Block turned into a first-class value (captures defining frame).
    Proc,
    /// A table of the mini relational store backing the Rails model.
    Table,
}

/// Slot header word: kind + GC mark bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjHeader {
    pub kind: ObjKind,
    pub marked: bool,
}

/// One word of simulated memory.
#[derive(Debug, PartialEq, Default)]
pub enum Word {
    /// Untouched memory.
    #[default]
    Uninit,
    Nil,
    True,
    False,
    /// Immediate integer (Fixnum).
    Int(i64),
    /// Interned symbol.
    Sym(SymId),
    /// Reference to a heap slot (its base address).
    Obj(Addr),
    /// Raw float payload (inside a `Float` object only).
    F64(f64),
    /// String content payload (inside a `String` object only). The bytes
    /// additionally have a shadow buffer in simulated memory for footprint
    /// accounting (see crate docs).
    Str(Rc<str>),
    /// Slot header.
    Hdr(ObjHeader),
}

/// Hand-written so the clone on the memory read path inlines to a plain
/// 16-byte copy for every immediate variant, with the `Rc` refcount bump
/// isolated in the one heap-carrying arm (`Str`) instead of dominating the
/// whole match.
impl Clone for Word {
    #[inline(always)]
    fn clone(&self) -> Word {
        match self {
            Word::Uninit => Word::Uninit,
            Word::Nil => Word::Nil,
            Word::True => Word::True,
            Word::False => Word::False,
            Word::Int(i) => Word::Int(*i),
            Word::Sym(s) => Word::Sym(*s),
            Word::Obj(a) => Word::Obj(*a),
            Word::F64(f) => Word::F64(*f),
            Word::Str(s) => Word::Str(Rc::clone(s)),
            Word::Hdr(h) => Word::Hdr(*h),
        }
    }
}

impl Word {
    /// Ruby truthiness: everything except `nil` and `false`.
    pub fn truthy(&self) -> bool {
        !matches!(self, Word::Nil | Word::False)
    }

    /// True when the word is a program-visible Ruby value.
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            Word::Nil | Word::True | Word::False | Word::Int(_) | Word::Sym(_) | Word::Obj(_)
        )
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Word::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<Addr> {
        match self {
            Word::Obj(a) => Some(*a),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Word::F64(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&Rc<str>> {
        match self {
            Word::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_header(&self) -> Option<ObjHeader> {
        match self {
            Word::Hdr(h) => Some(*h),
            _ => None,
        }
    }

    /// Ruby `==` on immediates; object equality is decided by the VM.
    pub fn immediate_eq(&self, other: &Word) -> Option<bool> {
        match (self, other) {
            (Word::Nil, Word::Nil) => Some(true),
            (Word::True, Word::True) => Some(true),
            (Word::False, Word::False) => Some(true),
            (Word::Int(a), Word::Int(b)) => Some(a == b),
            (Word::Sym(a), Word::Sym(b)) => Some(a == b),
            (Word::Nil | Word::True | Word::False | Word::Int(_) | Word::Sym(_), _)
                if other.is_value() && !matches!(other, Word::Obj(_)) =>
            {
                Some(false)
            }
            _ => None,
        }
    }
}

/// Ruby floor division (sign of the divisor, like `Integer#/`).
pub fn ruby_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ruby modulo (result takes the divisor's sign, like `Integer#%`).
pub fn ruby_mod(a: i64, b: i64) -> i64 {
    let m = a % b;
    if m != 0 && ((m < 0) != (b < 0)) {
        m + b
    } else {
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Word::Nil.truthy());
        assert!(!Word::False.truthy());
        assert!(Word::True.truthy());
        assert!(Word::Int(0).truthy(), "0 is truthy in Ruby");
        assert!(Word::Obj(1).truthy());
    }

    #[test]
    fn ruby_division_matches_ruby() {
        // Samples checked against CRuby semantics.
        assert_eq!(ruby_div(7, 2), 3);
        assert_eq!(ruby_div(-7, 2), -4);
        assert_eq!(ruby_div(7, -2), -4);
        assert_eq!(ruby_div(-7, -2), 3);
        assert_eq!(ruby_mod(7, 2), 1);
        assert_eq!(ruby_mod(-7, 2), 1);
        assert_eq!(ruby_mod(7, -2), -1);
        assert_eq!(ruby_mod(-7, -2), -1);
        assert_eq!(ruby_mod(6, 3), 0);
        assert_eq!(ruby_mod(-6, 3), 0);
    }

    #[test]
    fn immediate_equality() {
        assert_eq!(Word::Int(3).immediate_eq(&Word::Int(3)), Some(true));
        assert_eq!(Word::Int(3).immediate_eq(&Word::Int(4)), Some(false));
        assert_eq!(Word::Nil.immediate_eq(&Word::Nil), Some(true));
        assert_eq!(Word::Int(3).immediate_eq(&Word::Nil), Some(false));
        // Object comparisons are not decided at the immediate level.
        assert_eq!(Word::Obj(8).immediate_eq(&Word::Obj(8)), None);
    }

    #[test]
    fn value_classification() {
        assert!(Word::Int(1).is_value());
        assert!(Word::Obj(64).is_value());
        assert!(!Word::F64(1.0).is_value());
        assert!(!Word::Hdr(ObjHeader { kind: ObjKind::Free, marked: false }).is_value());
        assert!(!Word::Uninit.is_value());
    }
}
