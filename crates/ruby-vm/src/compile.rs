//! AST → bytecode compiler.
//!
//! Follows YARV's compilation patterns: a scope stack resolves locals
//! (blocks see enclosing locals up to the nearest method boundary, with a
//! `depth` counting block hops), `&&`/`||` compile to dup-branch
//! sequences, loops keep the operand stack balanced so `next`/`break`
//! cannot leak stack words, and every call/operator/ivar site gets its own
//! inline-cache slot.

use ruby_lang::ast::{BinOp, BlockDef, Node, UnOp};
use ruby_lang::parse_program;

use crate::bytecode::{ISeq, Insn, IseqId, RareBinOp};
use crate::program::Program;
use crate::symbols::SymId;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    pub msg: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.msg)
    }
}

impl std::error::Error for CompileError {}

impl From<ruby_lang::ParseError> for CompileError {
    fn from(e: ruby_lang::ParseError) -> Self {
        CompileError { msg: e.to_string() }
    }
}

/// Compile `src` into `prog`, returning the top-level iseq. Call
/// [`Program::finalize`] after the *last* compilation before running.
pub fn compile_source(src: &str, prog: &mut Program) -> Result<IseqId, CompileError> {
    let ast = parse_program(src)?;
    let mut c = Compiler { prog, scopes: Vec::new() };
    c.compile_unit("<main>", &[], &ast, false, false)
}

struct ScopeInfo {
    locals: Vec<String>,
    is_block: bool,
}

struct Compiler<'p> {
    prog: &'p mut Program,
    scopes: Vec<ScopeInfo>,
}

/// Per-unit emission state (one iseq being built).
struct Emit {
    code: Vec<Insn>,
    /// (position, label) pairs to patch.
    fixups: Vec<(usize, usize)>,
    /// Label id → resolved pc.
    labels: Vec<Option<usize>>,
    /// Loop context stack: (continue label, done label).
    loops: Vec<(usize, usize)>,
    in_class_body: bool,
}

impl Emit {
    fn new(in_class_body: bool) -> Self {
        Emit {
            code: Vec::new(),
            fixups: Vec::new(),
            labels: Vec::new(),
            loops: Vec::new(),
            in_class_body,
        }
    }

    fn label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn place(&mut self, label: usize) {
        self.labels[label] = Some(self.code.len());
    }

    fn emit(&mut self, i: Insn) {
        self.code.push(i);
    }

    /// Emit a branch to `label`, to be patched later.
    fn branch(&mut self, mk: fn(i32) -> Insn, label: usize) {
        self.fixups.push((self.code.len(), label));
        self.emit(mk(0));
    }

    fn patch(&mut self) {
        for &(pos, label) in &self.fixups {
            let target = self.labels[label].expect("unplaced label") as i32;
            let off = target - pos as i32;
            match &mut self.code[pos] {
                Insn::Jump(o) | Insn::BranchIf(o) | Insn::BranchUnless(o) => *o = off,
                other => panic!("fixup on non-branch {other:?}"),
            }
        }
    }
}

impl<'p> Compiler<'p> {
    /// Compile one unit (method body, block, class body or main).
    fn compile_unit(
        &mut self,
        name: &str,
        params: &[String],
        body: &Node,
        is_block: bool,
        in_class_body: bool,
    ) -> Result<IseqId, CompileError> {
        self.scopes.push(ScopeInfo { locals: params.to_vec(), is_block });
        let mut e = Emit::new(in_class_body);
        let r = self.node(&mut e, body);
        let scope = self.scopes.pop().expect("scope");
        r?;
        e.emit(Insn::Leave);
        e.patch();
        let iseq = ISeq {
            id: IseqId(0),
            name: name.to_string(),
            nparams: params.len(),
            nlocals: scope.locals.len(),
            code: e.code,
            is_block,
        };
        Ok(self.prog.push_iseq(iseq))
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError { msg: msg.into() })
    }

    fn sym(&mut self, s: &str) -> SymId {
        self.prog.intern(s)
    }

    /// Resolve a local: (idx, depth) walking block scopes outward.
    #[allow(clippy::explicit_counter_loop)] // depth counts block hops, not items
    fn resolve_local(&self, name: &str) -> Option<(u16, u8)> {
        let mut depth = 0u8;
        for scope in self.scopes.iter().rev() {
            if let Some(idx) = scope.locals.iter().position(|l| l == name) {
                return Some((idx as u16, depth));
            }
            if !scope.is_block {
                break;
            }
            depth += 1;
        }
        None
    }

    /// Define a local in the current scope (or return the existing one).
    fn define_local(&mut self, name: &str) -> (u16, u8) {
        if let Some(found) = self.resolve_local(name) {
            return found;
        }
        let scope = self.scopes.last_mut().expect("scope");
        scope.locals.push(name.to_string());
        ((scope.locals.len() - 1) as u16, 0)
    }

    // ---- node compilation -------------------------------------------------

    fn node(&mut self, e: &mut Emit, n: &Node) -> Result<(), CompileError> {
        match n {
            Node::Nil => e.emit(Insn::PutNil),
            Node::True => e.emit(Insn::PutTrue),
            Node::False => e.emit(Insn::PutFalse),
            Node::SelfExpr => e.emit(Insn::PutSelf),
            Node::Int(i) => e.emit(Insn::PutInt(*i)),
            Node::Float(f) => {
                let idx = self.prog.pool_float(*f);
                e.emit(Insn::PutPooled(idx));
            }
            Node::Str(s) => {
                let idx = self.prog.pool_string(s.clone());
                e.emit(Insn::PutString(idx));
            }
            Node::Sym(s) => {
                let id = self.sym(s);
                e.emit(Insn::PutSym(id));
            }
            Node::ArrayLit(elems) => {
                if elems.len() > u16::MAX as usize {
                    return self.err("array literal too long");
                }
                for el in elems {
                    self.node(e, el)?;
                }
                e.emit(Insn::NewArray { n: elems.len() as u16 });
            }
            Node::HashLit(pairs) => {
                for (k, v) in pairs {
                    self.node(e, k)?;
                    self.node(e, v)?;
                }
                e.emit(Insn::NewHash { n: pairs.len() as u16 });
            }
            Node::Range { lo, hi, excl } => {
                self.node(e, lo)?;
                self.node(e, hi)?;
                e.emit(Insn::NewRange { excl: *excl });
            }
            Node::LVar(name) => {
                if let Some((idx, depth)) = self.resolve_local(name) {
                    e.emit(Insn::GetLocal { idx, depth });
                } else {
                    // Zero-arg self-call.
                    let name = self.sym(name);
                    let ic = self.prog.new_ic_site();
                    e.emit(Insn::PutSelf);
                    e.emit(Insn::Send { name, argc: 0, block: None, ic });
                }
            }
            Node::IVar(name) => {
                let name = self.sym(name);
                let ic = self.prog.new_ic_site();
                e.emit(Insn::GetIvar { name, ic });
            }
            Node::CVar(name) => {
                let name = self.sym(name);
                e.emit(Insn::GetCvar { name });
            }
            Node::GVar(name) => {
                let name = self.sym(name);
                e.emit(Insn::GetGlobal { name });
            }
            Node::Const(name) => {
                let name = self.sym(name);
                e.emit(Insn::GetConst { name });
            }
            Node::Assign { target, value } => self.assign(e, target, value)?,
            Node::OpAssign { target, op, value } => self.op_assign(e, target, *op, value)?,
            Node::OrAssign { target, value, is_and } => {
                self.logic_assign(e, target, value, *is_and)?
            }
            Node::BinExpr { op, l, r } => {
                self.node(e, l)?;
                self.node(e, r)?;
                self.emit_binop(e, *op);
            }
            Node::UnExpr { op, e: inner } => match op {
                UnOp::Not => {
                    self.node(e, inner)?;
                    e.emit(Insn::OptNot);
                }
                UnOp::Neg => {
                    self.node(e, inner)?;
                    e.emit(Insn::OptNeg);
                }
                UnOp::BitNot => {
                    // ~x == x ^ -1
                    self.node(e, inner)?;
                    e.emit(Insn::PutInt(-1));
                    e.emit(Insn::RareOp(RareBinOp::BitXor));
                }
            },
            Node::Logical { is_and, l, r } => {
                self.node(e, l)?;
                e.emit(Insn::Dup);
                let end = e.label();
                if *is_and {
                    e.branch(Insn::BranchUnless, end);
                } else {
                    e.branch(Insn::BranchIf, end);
                }
                e.emit(Insn::Pop);
                self.node(e, r)?;
                e.place(end);
            }
            Node::Index { recv, args } => {
                self.node(e, recv)?;
                if args.len() == 1 {
                    self.node(e, &args[0])?;
                    let ic = self.prog.new_ic_site();
                    e.emit(Insn::OptAref { ic });
                } else {
                    for a in args {
                        self.node(e, a)?;
                    }
                    let name = self.sym("[]");
                    let ic = self.prog.new_ic_site();
                    e.emit(Insn::Send { name, argc: args.len() as u8, block: None, ic });
                }
            }
            Node::Call { recv, name, args, block } => {
                self.call(e, recv.as_deref(), name, args, block.as_ref())?;
            }
            Node::Yield(args) => {
                for a in args {
                    self.node(e, a)?;
                }
                e.emit(Insn::InvokeBlock { argc: args.len() as u8 });
            }
            Node::If { cond, then, els } => {
                self.node(e, cond)?;
                let l_else = e.label();
                let l_end = e.label();
                e.branch(Insn::BranchUnless, l_else);
                self.node(e, then)?;
                e.branch(Insn::Jump, l_end);
                e.place(l_else);
                match els {
                    Some(els) => self.node(e, els)?,
                    None => e.emit(Insn::PutNil),
                }
                e.place(l_end);
            }
            Node::Ternary { cond, then, els } => {
                self.node(e, cond)?;
                let l_else = e.label();
                let l_end = e.label();
                e.branch(Insn::BranchUnless, l_else);
                self.node(e, then)?;
                e.branch(Insn::Jump, l_end);
                e.place(l_else);
                self.node(e, els)?;
                e.place(l_end);
            }
            Node::While { cond, body } => {
                let l_head = e.label();
                let l_cont = e.label();
                let l_done = e.label();
                e.place(l_head);
                self.node(e, cond)?;
                e.branch(Insn::BranchUnless, l_done);
                e.loops.push((l_cont, l_done));
                let body_result = self.node(e, body);
                e.loops.pop();
                body_result?;
                e.place(l_cont);
                e.emit(Insn::Pop);
                e.branch(Insn::Jump, l_head);
                e.place(l_done);
                e.emit(Insn::PutNil);
            }
            Node::Break => {
                let &(_, l_done) = e.loops.last().ok_or(CompileError {
                    msg: "break outside of loop (break inside blocks is outside the subset)".into(),
                })?;
                e.branch(Insn::Jump, l_done);
                // Unreachable filler keeps the stack model simple.
                e.emit(Insn::PutNil);
            }
            Node::Next => {
                if let Some(&(l_cont, _)) = e.loops.last() {
                    e.emit(Insn::PutNil);
                    e.branch(Insn::Jump, l_cont);
                    e.emit(Insn::PutNil);
                } else {
                    // `next` in a block: return nil from the block frame.
                    e.emit(Insn::PutNil);
                    e.emit(Insn::Leave);
                }
            }
            Node::Return(value) => {
                match value {
                    Some(v) => self.node(e, v)?,
                    None => e.emit(Insn::PutNil),
                }
                if self.scopes.last().is_some_and(|s| s.is_block) {
                    return self.err("return inside a block is outside the subset");
                }
                e.emit(Insn::Leave);
            }
            Node::Seq(stmts) => {
                if stmts.is_empty() {
                    e.emit(Insn::PutNil);
                } else {
                    for (i, s) in stmts.iter().enumerate() {
                        self.node(e, s)?;
                        if i + 1 != stmts.len() {
                            e.emit(Insn::Pop);
                        }
                    }
                }
            }
            Node::MethodDef { name, params, body, on_self } => {
                let iseq = self.compile_unit(&name.to_string(), params, body, false, false)?;
                let name = self.sym(name);
                e.emit(Insn::DefineMethod { name, iseq, on_self: *on_self });
                e.emit(Insn::PutSym(name));
            }
            Node::ClassDef { name, superclass, body } => {
                let body_iseq =
                    self.compile_unit(&format!("<class:{name}>"), &[], body, false, true)?;
                let name = self.sym(name);
                let superclass = superclass.as_ref().map(|s| self.sym(s));
                e.emit(Insn::DefineClass { name, superclass, body: body_iseq });
            }
        }
        Ok(())
    }

    fn emit_binop(&mut self, e: &mut Emit, op: BinOp) {
        let insn = match op {
            BinOp::Add => Insn::OptPlus { ic: self.prog.new_ic_site() },
            BinOp::Sub => Insn::OptMinus { ic: self.prog.new_ic_site() },
            BinOp::Mul => Insn::OptMult { ic: self.prog.new_ic_site() },
            BinOp::Div => Insn::OptDiv { ic: self.prog.new_ic_site() },
            BinOp::Mod => Insn::OptMod { ic: self.prog.new_ic_site() },
            BinOp::Eq => Insn::OptEq { ic: self.prog.new_ic_site() },
            BinOp::Ne => Insn::OptNeq { ic: self.prog.new_ic_site() },
            BinOp::Lt => Insn::OptLt { ic: self.prog.new_ic_site() },
            BinOp::Le => Insn::OptLe { ic: self.prog.new_ic_site() },
            BinOp::Gt => Insn::OptGt { ic: self.prog.new_ic_site() },
            BinOp::Ge => Insn::OptGe { ic: self.prog.new_ic_site() },
            BinOp::Shl => Insn::OptShl { ic: self.prog.new_ic_site() },
            BinOp::Pow => Insn::RareOp(RareBinOp::Pow),
            BinOp::Cmp => Insn::RareOp(RareBinOp::Cmp),
            BinOp::Shr => Insn::RareOp(RareBinOp::Shr),
            BinOp::BitAnd => Insn::RareOp(RareBinOp::BitAnd),
            BinOp::BitOr => Insn::RareOp(RareBinOp::BitOr),
            BinOp::BitXor => Insn::RareOp(RareBinOp::BitXor),
        };
        e.emit(insn);
    }

    fn assign(&mut self, e: &mut Emit, target: &Node, value: &Node) -> Result<(), CompileError> {
        match target {
            Node::LVar(name) => {
                self.node(e, value)?;
                let (idx, depth) = self.define_local(name);
                e.emit(Insn::Dup);
                e.emit(Insn::SetLocal { idx, depth });
            }
            Node::IVar(name) => {
                self.node(e, value)?;
                let name = self.sym(name);
                let ic = self.prog.new_ic_site();
                e.emit(Insn::Dup);
                e.emit(Insn::SetIvar { name, ic });
            }
            Node::CVar(name) => {
                self.node(e, value)?;
                let name = self.sym(name);
                e.emit(Insn::Dup);
                e.emit(Insn::SetCvar { name });
            }
            Node::GVar(name) => {
                self.node(e, value)?;
                let name = self.sym(name);
                e.emit(Insn::Dup);
                e.emit(Insn::SetGlobal { name });
            }
            Node::Const(name) => {
                self.node(e, value)?;
                let name = self.sym(name);
                e.emit(Insn::Dup);
                e.emit(Insn::SetConst { name });
            }
            Node::Index { recv, args } => {
                self.node(e, recv)?;
                if args.len() == 1 {
                    self.node(e, &args[0])?;
                    self.node(e, value)?;
                    let ic = self.prog.new_ic_site();
                    e.emit(Insn::OptAset { ic });
                } else {
                    for a in args {
                        self.node(e, a)?;
                    }
                    self.node(e, value)?;
                    let name = self.sym("[]=");
                    let ic = self.prog.new_ic_site();
                    e.emit(Insn::Send { name, argc: (args.len() + 1) as u8, block: None, ic });
                }
            }
            Node::Call { recv: Some(recv), name, args, block: None } if args.is_empty() => {
                // Attribute write: o.x = v → send "x="
                self.node(e, recv)?;
                self.node(e, value)?;
                let name = self.sym(&format!("{name}="));
                let ic = self.prog.new_ic_site();
                e.emit(Insn::Send { name, argc: 1, block: None, ic });
            }
            other => return self.err(format!("invalid assignment target: {other:?}")),
        }
        Ok(())
    }

    fn op_assign(
        &mut self,
        e: &mut Emit,
        target: &Node,
        op: BinOp,
        value: &Node,
    ) -> Result<(), CompileError> {
        match target {
            Node::LVar(name) => {
                let (idx, depth) = self.define_local(name);
                e.emit(Insn::GetLocal { idx, depth });
                self.node(e, value)?;
                self.emit_binop(e, op);
                e.emit(Insn::Dup);
                e.emit(Insn::SetLocal { idx, depth });
            }
            Node::IVar(name) => {
                let name = self.sym(name);
                let get_ic = self.prog.new_ic_site();
                let set_ic = self.prog.new_ic_site();
                e.emit(Insn::GetIvar { name, ic: get_ic });
                self.node(e, value)?;
                self.emit_binop(e, op);
                e.emit(Insn::Dup);
                e.emit(Insn::SetIvar { name, ic: set_ic });
            }
            Node::GVar(name) => {
                let name = self.sym(name);
                e.emit(Insn::GetGlobal { name });
                self.node(e, value)?;
                self.emit_binop(e, op);
                e.emit(Insn::Dup);
                e.emit(Insn::SetGlobal { name });
            }
            Node::CVar(name) => {
                let name = self.sym(name);
                e.emit(Insn::GetCvar { name });
                self.node(e, value)?;
                self.emit_binop(e, op);
                e.emit(Insn::Dup);
                e.emit(Insn::SetCvar { name });
            }
            Node::Index { recv, args } if args.len() == 1 => {
                // a[i] op= v:  [a,i] dup2 aref v op aset
                self.node(e, recv)?;
                self.node(e, &args[0])?;
                e.emit(Insn::DupN(2));
                let aref_ic = self.prog.new_ic_site();
                e.emit(Insn::OptAref { ic: aref_ic });
                self.node(e, value)?;
                self.emit_binop(e, op);
                let aset_ic = self.prog.new_ic_site();
                e.emit(Insn::OptAset { ic: aset_ic });
            }
            other => return self.err(format!("unsupported op-assign target: {other:?}")),
        }
        Ok(())
    }

    fn logic_assign(
        &mut self,
        e: &mut Emit,
        target: &Node,
        value: &Node,
        is_and: bool,
    ) -> Result<(), CompileError> {
        // x ||= v  →  x ? x : (x = v); x &&= v mirrored.
        let (get, set): (Insn, Insn) = match target {
            Node::LVar(name) => {
                let (idx, depth) = self.define_local(name);
                (Insn::GetLocal { idx, depth }, Insn::SetLocal { idx, depth })
            }
            Node::IVar(name) => {
                let name = self.sym(name);
                let g = self.prog.new_ic_site();
                let s = self.prog.new_ic_site();
                (Insn::GetIvar { name, ic: g }, Insn::SetIvar { name, ic: s })
            }
            Node::GVar(name) => {
                let name = self.sym(name);
                (Insn::GetGlobal { name }, Insn::SetGlobal { name })
            }
            other => return self.err(format!("unsupported ||= target: {other:?}")),
        };
        e.emit(get);
        e.emit(Insn::Dup);
        let end = e.label();
        if is_and {
            e.branch(Insn::BranchUnless, end);
        } else {
            e.branch(Insn::BranchIf, end);
        }
        e.emit(Insn::Pop);
        self.node(e, value)?;
        e.emit(Insn::Dup);
        e.emit(set);
        e.place(end);
        Ok(())
    }

    fn call(
        &mut self,
        e: &mut Emit,
        recv: Option<&Node>,
        name: &str,
        args: &[Node],
        block: Option<&BlockDef>,
    ) -> Result<(), CompileError> {
        // attr_accessor family inside class bodies is a compile-time
        // directive: synthesize reader/writer methods.
        if recv.is_none() && e.in_class_body && block.is_none() {
            if let "attr_accessor" | "attr_reader" | "attr_writer" = name {
                for a in args {
                    let Node::Sym(attr) = a else {
                        return self.err("attr_accessor expects symbol literals");
                    };
                    if name != "attr_writer" {
                        self.synth_reader(e, attr);
                    }
                    if name != "attr_reader" {
                        self.synth_writer(e, attr);
                    }
                }
                e.emit(Insn::PutNil);
                return Ok(());
            }
            if name == "require" {
                // Library loading is a no-op in the subset.
                e.emit(Insn::PutNil);
                return Ok(());
            }
        }
        match recv {
            Some(r) => self.node(e, r)?,
            None => e.emit(Insn::PutSelf),
        }
        for a in args {
            self.node(e, a)?;
        }
        let block_iseq = match block {
            Some(b) => Some(self.compile_unit(
                &format!("block in {name}"),
                &b.params,
                &b.body,
                true,
                false,
            )?),
            None => None,
        };
        let name = self.sym(name);
        let ic = self.prog.new_ic_site();
        e.emit(Insn::Send { name, argc: args.len() as u8, block: block_iseq, ic });
        Ok(())
    }

    fn synth_reader(&mut self, e: &mut Emit, attr: &str) {
        let ivar = self.sym(attr);
        let ic = self.prog.new_ic_site();
        let iseq = self.prog.push_iseq(ISeq {
            id: IseqId(0),
            name: format!("{attr} (reader)"),
            nparams: 0,
            nlocals: 0,
            code: vec![Insn::GetIvar { name: ivar, ic }, Insn::Leave],
            is_block: false,
        });
        let mname = self.sym(attr);
        e.emit(Insn::DefineMethod { name: mname, iseq, on_self: false });
        e.emit(Insn::Pop);
    }

    fn synth_writer(&mut self, e: &mut Emit, attr: &str) {
        let ivar = self.sym(attr);
        let ic = self.prog.new_ic_site();
        let iseq = self.prog.push_iseq(ISeq {
            id: IseqId(0),
            name: format!("{attr}= (writer)"),
            nparams: 1,
            nlocals: 1,
            code: vec![
                Insn::GetLocal { idx: 0, depth: 0 },
                Insn::Dup,
                Insn::SetIvar { name: ivar, ic },
                Insn::Leave,
            ],
            is_block: false,
        });
        let mname = self.sym(&format!("{attr}="));
        e.emit(Insn::DefineMethod { name: mname, iseq, on_self: false });
        e.emit(Insn::Pop);
    }
}

impl Emit {
    // `Pop` after DefineMethod's PutSym is folded by callers where needed.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> (Program, IseqId) {
        let mut p = Program::default();
        let main = compile_source(src, &mut p).unwrap_or_else(|e| panic!("{e} in {src:?}"));
        p.finalize();
        (p, main)
    }

    fn main_code(src: &str) -> Vec<Insn> {
        let (p, main) = compile(src);
        p.iseq(main).code.clone()
    }

    #[test]
    fn literal_pushes() {
        let code = main_code("42");
        assert_eq!(code, vec![Insn::PutInt(42), Insn::Leave]);
    }

    #[test]
    fn float_literals_are_pooled() {
        let (p, main) = compile("1.5 + 1.5");
        let code = &p.iseq(main).code;
        assert!(matches!(code[0], Insn::PutPooled(0)));
        assert!(matches!(code[1], Insn::PutPooled(0)), "same pooled object");
        assert_eq!(p.pooled.len(), 1);
    }

    #[test]
    fn local_assignment_and_use() {
        let code = main_code("x = 1\nx + 2");
        assert_eq!(
            code,
            vec![
                Insn::PutInt(1),
                Insn::Dup,
                Insn::SetLocal { idx: 0, depth: 0 },
                Insn::Pop,
                Insn::GetLocal { idx: 0, depth: 0 },
                Insn::PutInt(2),
                Insn::OptPlus { ic: 0 },
                Insn::Leave
            ]
        );
    }

    #[test]
    fn unknown_ident_is_self_call() {
        let code = main_code("foo");
        assert!(matches!(code[0], Insn::PutSelf));
        assert!(matches!(code[1], Insn::Send { argc: 0, .. }));
    }

    #[test]
    fn while_loop_back_edge_is_negative() {
        let code = main_code("i = 0\nwhile i < 3\n  i += 1\nend");
        let back = code
            .iter()
            .find_map(|i| match i {
                Insn::Jump(off) if *off < 0 => Some(*off),
                _ => None,
            })
            .expect("backward jump");
        assert!(back < 0);
    }

    #[test]
    fn loop_body_keeps_stack_balanced() {
        // Conservative static stack check over one loop round trip.
        let code = main_code("i = 0\nwhile i < 1000\n  i += 1\nend");
        // Find BranchUnless (loop exit) and the backward Jump; simulate.
        let mut depth: i32 = 0;
        let mut max_depth = 0;
        for _round in 0..3 {
            for insn in &code {
                depth += match insn {
                    Insn::PutInt(_) | Insn::GetLocal { .. } | Insn::Dup => 1,
                    Insn::Pop | Insn::SetLocal { .. } | Insn::BranchUnless(_) => -1,
                    Insn::OptPlus { .. } | Insn::OptLt { .. } => -1,
                    _ => 0,
                };
                max_depth = max_depth.max(depth);
            }
        }
        assert!(max_depth < 10, "stack must not grow per iteration");
    }

    #[test]
    fn method_definition_compiles_body() {
        let (p, main) = compile("def add(a, b)\n  a + b\nend");
        let code = &p.iseq(main).code;
        let iseq_id = code
            .iter()
            .find_map(|i| match i {
                Insn::DefineMethod { iseq, .. } => Some(*iseq),
                _ => None,
            })
            .expect("DefineMethod");
        let body = p.iseq(iseq_id);
        assert_eq!(body.nparams, 2);
        assert_eq!(
            body.code,
            vec![
                Insn::GetLocal { idx: 0, depth: 0 },
                Insn::GetLocal { idx: 1, depth: 0 },
                Insn::OptPlus { ic: 0 },
                Insn::Leave
            ]
        );
    }

    #[test]
    fn block_reads_outer_local_with_depth() {
        let (p, main) = compile("x = 0\nf() { |i| x = x + i }");
        let block_id = p
            .iseq(main)
            .code
            .iter()
            .find_map(|i| match i {
                Insn::Send { block: Some(b), .. } => Some(*b),
                _ => None,
            })
            .expect("block");
        let block = p.iseq(block_id);
        assert!(block.is_block);
        // x resolves one block hop up: depth 1; i is local: depth 0.
        assert!(block.code.iter().any(|i| matches!(i, Insn::GetLocal { idx: 0, depth: 1 })));
        assert!(block.code.iter().any(|i| matches!(i, Insn::SetLocal { idx: 0, depth: 1 })));
    }

    #[test]
    fn index_op_assign_dups_receiver_and_index() {
        let code = main_code("a = [1]\na[0] += 2");
        assert!(code.iter().any(|i| matches!(i, Insn::DupN(2))));
        assert!(code.iter().any(|i| matches!(i, Insn::OptAref { .. })));
        assert!(code.iter().any(|i| matches!(i, Insn::OptAset { .. })));
    }

    #[test]
    fn logical_and_short_circuits() {
        let code = main_code("a = 1\na && 2");
        assert!(code.iter().any(|i| matches!(i, Insn::BranchUnless(_))));
    }

    #[test]
    fn class_with_attr_accessor() {
        let (p, main) = compile("class P\n  attr_accessor(:x)\nend");
        let body_id = p
            .iseq(main)
            .code
            .iter()
            .find_map(|i| match i {
                Insn::DefineClass { body, .. } => Some(*body),
                _ => None,
            })
            .expect("class");
        let body = p.iseq(body_id);
        let defs: Vec<_> =
            body.code.iter().filter(|i| matches!(i, Insn::DefineMethod { .. })).collect();
        assert_eq!(defs.len(), 2, "reader and writer");
    }

    #[test]
    fn each_ic_site_is_unique() {
        let (p, main) = compile("1 + 2\n3 + 4");
        let sites: Vec<u32> = p
            .iseq(main)
            .code
            .iter()
            .filter_map(|i| match i {
                Insn::OptPlus { ic } => Some(*ic),
                _ => None,
            })
            .collect();
        assert_eq!(sites.len(), 2);
        assert_ne!(sites[0], sites[1]);
    }

    #[test]
    fn return_inside_block_is_rejected() {
        let mut p = Program::default();
        let r = compile_source("f() { return 1 }", &mut p);
        assert!(r.is_err());
    }

    #[test]
    fn break_in_while_next_in_while() {
        let code =
            main_code("i = 0\nwhile true\n  i += 1\n  break if i > 3\n  next if i == 2\nend\ni");
        assert!(code.len() > 5);
    }

    #[test]
    fn yield_compiles_to_invokeblock() {
        let (p, main) = compile("def f()\n  yield(1, 2)\nend");
        let body_id = p
            .iseq(main)
            .code
            .iter()
            .find_map(|i| match i {
                Insn::DefineMethod { iseq, .. } => Some(*iseq),
                _ => None,
            })
            .unwrap();
        assert!(p.iseq(body_id).code.iter().any(|i| matches!(i, Insn::InvokeBlock { argc: 2 })));
    }

    #[test]
    fn string_literals_use_string_pool() {
        let (p, main) = compile("\"ab\" + \"ab\"");
        let code = &p.iseq(main).code;
        assert!(matches!(code[0], Insn::PutString(0)));
        assert!(matches!(code[1], Insn::PutString(0)));
        assert_eq!(p.strings.len(), 1);
    }
}
