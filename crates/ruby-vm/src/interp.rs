//! The bytecode interpreter: frames, dispatch, specialized operators and
//! inline caches.
//!
//! Call frames live in each thread's stack region of simulated memory:
//!
//! ```text
//! fp+0  prev_fp   (Int; 0 for the root frame)
//! fp+1  ret_pc    (Int)
//! fp+2  ret_iseq  (Int; -1 for the root frame)
//! fp+3  ret_sp    (Int; caller sp to restore before pushing the result)
//! fp+4  self
//! fp+5  block     (Int; Proc slot addr, 0 = none)
//! fp+6  ep        (Int; defining frame of a block, 0 otherwise)
//! fp+7  flags
//! fp+8… locals, then the operand stack
//! ```
//!
//! Because the whole frame is ordinary simulated memory, a transaction
//! abort rolls the stack back via the undo log and the TLE runtime only
//! restores four registers ([`crate::vm::RegSnapshot`]). Stack *writes*
//! count toward HTM write sets — the effect that makes CRuby's original
//! coarse yield points overflow (paper §4.2).

use machine_sim::ThreadId;

use crate::bytecode::{Insn, IseqId, RareBinOp};
use crate::object::MethodEntry;
use crate::symbols::SymId;
use crate::value::{Addr, ObjKind, Word};
use crate::vm::{BlockOn, StepOk, ThreadCtx, Vm, VmAbort};

/// A popped operand, already classified: `Ok` when it was an immediate
/// integer (the arithmetic fast lane), `Err` carrying the original word
/// otherwise.
type IntOrWord = Result<i64, Word>;

pub const F_PREV_FP: usize = 0;
pub const F_RET_PC: usize = 1;
pub const F_RET_ISEQ: usize = 2;
pub const F_RET_SP: usize = 3;
pub const F_SELF: usize = 4;
pub const F_BLOCK: usize = 5;
pub const F_EP: usize = 6;
pub const F_FLAGS: usize = 7;
pub const FRAME_WORDS: usize = 8;

pub const FLAG_DISCARD: i64 = 1;
pub const FLAG_BLOCK: i64 = 2;
/// The frame's own iseq id is packed into the flags word above this shift
/// so environment promotion can recover a frame's local count.
pub const FLAG_ISEQ_SHIFT: u32 = 3;
pub const FLAG_MASK: i64 = (1 << FLAG_ISEQ_SHIFT) - 1;

/// What a builtin asks the interpreter to do.
pub enum BResult {
    /// Pop receiver+args, push this value, advance.
    Value(Word),
    /// Park the thread; retry this instruction on wake.
    Block(BlockOn),
    /// Pop receiver+args, optionally push `under` (pre-pushed result),
    /// then enter `iseq` with the given self/args. `discard` frames do not
    /// push their return value (used by `new` → `initialize`). A non-zero
    /// `ep` enters the iseq as a block frame with that static link
    /// (`Proc#call`).
    Frame {
        iseq: IseqId,
        self_w: Word,
        args: Vec<Word>,
        block: Addr,
        under: Option<Word>,
        discard: bool,
        ep: Addr,
    },
    /// Pop receiver+args, push the Thread object, advance, and tell the
    /// executor a new thread exists.
    Spawned { tid: ThreadId, thread_obj: Word },
}

impl Vm {
    // ---- stack primitives -------------------------------------------------

    #[inline]
    pub fn push(&mut self, t: ThreadId, w: Word) -> Result<(), VmAbort> {
        let sp = self.threads[t].sp;
        if sp >= self.threads[t].stack_end {
            return Err(VmAbort::fatal("stack overflow"));
        }
        self.wr(t, sp, w)?;
        self.threads[t].sp = sp + 1;
        Ok(())
    }

    #[inline]
    pub fn pop(&mut self, t: ThreadId) -> Result<Word, VmAbort> {
        let sp = self.threads[t].sp;
        if sp == self.threads[t].stack_base {
            return Err(VmAbort::fatal("stack underflow"));
        }
        let w = self.rd(t, sp - 1)?;
        self.threads[t].sp = sp - 1;
        Ok(w)
    }

    /// Read the word `n` below the top without popping.
    #[inline]
    pub fn peek_n(&mut self, t: ThreadId, n: usize) -> Result<Word, VmAbort> {
        let sp = self.threads[t].sp;
        self.rd(t, sp - 1 - n)
    }

    #[inline]
    fn advance(&mut self, t: ThreadId) {
        self.threads[t].pc += 1;
    }

    fn frame_self(&mut self, t: ThreadId) -> Result<Word, VmAbort> {
        let fp = self.threads[t].fp;
        self.rd(t, fp + F_SELF)
    }

    /// Frame base `depth` block hops up the static (ep) chain.
    fn ep_at(&mut self, t: ThreadId, depth: u8) -> Result<Addr, VmAbort> {
        let mut f = self.threads[t].fp;
        for _ in 0..depth {
            let ep = self.rd(t, f + F_EP)?.as_int().unwrap_or(0);
            if ep == 0 {
                return Err(VmAbort::fatal("broken static chain"));
            }
            f = ep as Addr;
        }
        Ok(f)
    }

    /// Set up the root frame of a thread (main or spawned).
    pub fn push_root_frame(
        &mut self,
        ctx: &mut ThreadCtx,
        iseq: IseqId,
        self_w: Word,
        block: Addr,
        ep: Addr,
    ) {
        let t = ctx.tid;
        let fp = ctx.stack_base;
        let is_block = self.program.iseq(iseq).is_block;
        let nlocals = self.program.iseq(iseq).nlocals;
        let words: [(usize, Word); 8] = [
            (F_PREV_FP, Word::Int(0)),
            (F_RET_PC, Word::Int(0)),
            (F_RET_ISEQ, Word::Int(-1)),
            (F_RET_SP, Word::Int(fp as i64)),
            (F_SELF, self_w),
            (
                F_BLOCK,
                // A heap reference: stored as Obj so the GC's stack scan
                // keeps the Proc alive while any frame can still yield to
                // it.
                if block == 0 { Word::Nil } else { Word::Obj(block) },
            ),
            (F_EP, Word::Int(ep as i64)),
            (
                F_FLAGS,
                Word::Int(
                    (if is_block { FLAG_BLOCK } else { 0 })
                        | (i64::from(iseq.0) << FLAG_ISEQ_SHIFT),
                ),
            ),
        ];
        for (off, w) in words {
            self.mem.write(t, fp + off, w).expect("root frame write");
        }
        for i in 0..nlocals {
            self.mem.write(t, fp + FRAME_WORDS + i, Word::Nil).expect("root frame local");
        }
        ctx.fp = fp;
        ctx.sp = fp + FRAME_WORDS + nlocals;
        ctx.pc = 0;
        ctx.iseq = iseq;
        ctx.base = self.program.base(iseq);
    }

    /// Push a frame whose arguments are the top `argc` stack words of the
    /// caller (normal method dispatch).
    #[allow(clippy::too_many_arguments)]
    fn push_frame(
        &mut self,
        t: ThreadId,
        iseq: IseqId,
        self_w: Word,
        block: Addr,
        ep: Addr,
        ret_sp: Addr,
        flags: i64,
        args: FrameArgs,
    ) -> Result<(), VmAbort> {
        let (nparams, nlocals, max_stack) = {
            let i = self.program.iseq(iseq);
            (i.nparams, i.nlocals, self.program.max_stack(iseq))
        };
        let ctx = &self.threads[t];
        let new_fp = ctx.sp;
        let old_pc = ctx.pc;
        let old_iseq = ctx.iseq;
        let old_fp = ctx.fp;
        if new_fp + FRAME_WORDS + nlocals + max_stack >= ctx.stack_end {
            return Err(VmAbort::fatal("stack too deep"));
        }
        self.wr(t, new_fp + F_PREV_FP, Word::Int(old_fp as i64))?;
        self.wr(t, new_fp + F_RET_PC, Word::Int(old_pc as i64 + 1))?;
        self.wr(t, new_fp + F_RET_ISEQ, Word::Int(i64::from(old_iseq.0)))?;
        self.wr(t, new_fp + F_RET_SP, Word::Int(ret_sp as i64))?;
        self.wr(t, new_fp + F_SELF, self_w)?;
        self.wr(t, new_fp + F_BLOCK, if block == 0 { Word::Nil } else { Word::Obj(block) })?;
        self.wr(t, new_fp + F_EP, Word::Int(ep as i64))?;
        self.wr(t, new_fp + F_FLAGS, Word::Int(flags | (i64::from(iseq.0) << FLAG_ISEQ_SHIFT)))?;
        // Parameters then remaining locals.
        match args {
            FrameArgs::Stack { base, argc } => {
                for i in 0..nparams.min(argc) {
                    let w = self.rd(t, base + i)?;
                    self.wr(t, new_fp + FRAME_WORDS + i, w)?;
                }
                for i in argc.min(nparams)..nparams {
                    self.wr(t, new_fp + FRAME_WORDS + i, Word::Nil)?;
                }
            }
            FrameArgs::Vec(words) => {
                let argc = words.len();
                for (i, w) in words.into_iter().take(nparams).enumerate() {
                    self.wr(t, new_fp + FRAME_WORDS + i, w)?;
                }
                for i in argc.min(nparams)..nparams {
                    self.wr(t, new_fp + FRAME_WORDS + i, Word::Nil)?;
                }
            }
        }
        for i in nparams..nlocals {
            self.wr(t, new_fp + FRAME_WORDS + i, Word::Nil)?;
        }
        let base = self.program.base(iseq);
        let ctx = &mut self.threads[t];
        ctx.fp = new_fp;
        ctx.sp = new_fp + FRAME_WORDS + nlocals;
        ctx.pc = 0;
        ctx.iseq = iseq;
        ctx.base = base;
        Ok(())
    }

    fn do_leave(&mut self, t: ThreadId) -> Result<StepOk, VmAbort> {
        let value = self.pop(t)?;
        let fp = self.threads[t].fp;
        let prev_fp = self.rd(t, fp + F_PREV_FP)?.as_int().unwrap_or(0);
        if prev_fp == 0 {
            let ctx = &mut self.threads[t];
            ctx.finished = true;
            ctx.result = value;
            return Ok(StepOk::Finished);
        }
        let ret_pc = self.rd(t, fp + F_RET_PC)?.as_int().unwrap_or(0) as usize;
        let ret_iseq = self.rd(t, fp + F_RET_ISEQ)?.as_int().unwrap_or(0);
        let ret_sp = self.rd(t, fp + F_RET_SP)?.as_int().unwrap_or(0) as Addr;
        let flags = self.rd(t, fp + F_FLAGS)?.as_int().unwrap_or(0);
        let base = self.program.base(IseqId(ret_iseq as u32));
        let ctx = &mut self.threads[t];
        ctx.fp = prev_fp as Addr;
        ctx.sp = ret_sp;
        ctx.pc = ret_pc;
        ctx.iseq = IseqId(ret_iseq as u32);
        ctx.base = base;
        if flags & FLAG_DISCARD == 0 {
            self.push(t, value)?;
        }
        Ok(StepOk::Normal)
    }

    // ---- the dispatcher ------------------------------------------------------

    /// Execute exactly one bytecode for thread `t` (two when a fused
    /// superinstruction pair runs — see [`crate::vm::Vm::fuse_allowed`];
    /// `step_insns` reports which).
    pub fn step(&mut self, t: ThreadId) -> Result<StepOk, VmAbort> {
        if let Some(reason) = self.mem.poll_doomed(t) {
            return Err(VmAbort::Tx(reason));
        }
        if self.threads[t].finished {
            return Ok(StepOk::Finished);
        }
        if self.slow_dispatch {
            return self.step_slow(t);
        }
        let gpc = {
            let c = &self.threads[t];
            c.base as usize + c.pc
        };
        let d = self.program.decoded_at(gpc);
        let r = self.exec_decoded(t, &d)?;
        // A pair marked fusable at decode time executes its second half in
        // the same step iff the executor allows fusion here *and* the
        // first half actually fell through to `gpc + 1` (fast path taken,
        // no frame pushed). `gpc + 1` is interior to the current iseq, so
        // it can never collide with a freshly pushed frame's pc 0.
        if d.flags & self.fuse_allowed != 0 && matches!(r, StepOk::Normal) {
            let c = &self.threads[t];
            if c.base as usize + c.pc == gpc + 1 {
                let d2 = self.program.decoded_at(gpc + 1);
                // Popped operands of the first half are dead; the fused
                // step keeps only the second half's in-flight values.
                self.temp_roots.clear();
                let r2 = self.exec_decoded(t, &d2)?;
                self.step_insns = 2;
                return Ok(r2);
            }
        }
        Ok(r)
    }

    /// Execute one pre-decoded instruction.
    fn exec_decoded(
        &mut self,
        t: ThreadId,
        d: &crate::decode::DecodedInsn,
    ) -> Result<StepOk, VmAbort> {
        use crate::decode::Op;
        match d.op {
            Op::Nop => {
                self.advance(t);
            }
            Op::PutNil => {
                self.push(t, Word::Nil)?;
                self.advance(t);
            }
            Op::PutTrue => {
                self.push(t, Word::True)?;
                self.advance(t);
            }
            Op::PutFalse => {
                self.push(t, Word::False)?;
                self.advance(t);
            }
            Op::PutSelf => {
                let s = self.frame_self(t)?;
                self.push(t, s)?;
                self.advance(t);
            }
            Op::PutInt => {
                self.push(t, Word::Int(d.a as i64))?;
                self.advance(t);
            }
            Op::PutPooled => {
                let w = self.pooled_objs[d.a as usize].clone();
                self.push(t, w)?;
                self.advance(t);
            }
            Op::PutString => {
                let s = self.program.strings[d.a as usize].clone();
                let w = self.make_string(t, &s)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::PutSym => {
                self.push(t, Word::Sym(SymId(d.a_lo())))?;
                self.advance(t);
            }
            Op::Pop => {
                self.pop(t)?;
                self.advance(t);
            }
            Op::Dup => {
                let w = self.peek_n(t, 0)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::DupN => {
                let n = d.b as usize;
                for _ in 0..n {
                    let w = self.peek_n(t, n - 1)?;
                    self.push(t, w)?;
                }
                self.advance(t);
            }
            Op::GetLocal0 => {
                let fp = self.threads[t].fp;
                let w = self.rd(t, fp + d.a as usize)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::SetLocal0 => {
                let v = self.pop(t)?;
                let fp = self.threads[t].fp;
                self.wr(t, fp + d.a as usize, v)?;
                self.advance(t);
            }
            Op::GetLocalUp => {
                let f = self.ep_at(t, d.b as u8)?;
                let w = self.rd(t, f + FRAME_WORDS + d.a as usize)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::SetLocalUp => {
                let v = self.pop(t)?;
                let f = self.ep_at(t, d.b as u8)?;
                self.wr(t, f + FRAME_WORDS + d.a as usize, v)?;
                self.advance(t);
            }
            Op::GetIvar => {
                let w = self.ivar_get_cached(t, SymId(d.a_lo()), d.c)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::SetIvar => {
                let v = self.pop(t)?;
                self.ivar_set_cached(t, SymId(d.a_lo()), d.c, v)?;
                self.advance(t);
            }
            Op::GetCvar => {
                let owner = self.cvar_owner(t)?;
                let w = self.cvar_get(t, owner, SymId(d.a_lo()))?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::SetCvar => {
                let v = self.pop(t)?;
                let owner = self.cvar_owner(t)?;
                self.cvar_set(t, owner, SymId(d.a_lo()), v)?;
                self.advance(t);
            }
            Op::GetGlobal => {
                let addr = self.gvar_addr(SymId(d.a_lo()));
                let w = match self.rd(t, addr)? {
                    Word::Uninit => Word::Nil,
                    w => w,
                };
                self.push(t, w)?;
                self.advance(t);
            }
            Op::SetGlobal => {
                let v = self.pop(t)?;
                let addr = self.gvar_addr(SymId(d.a_lo()));
                self.wr(t, addr, v)?;
                self.advance(t);
            }
            Op::GetConst => {
                let name = SymId(d.a_lo());
                let addr = self.const_lookup(name).ok_or_else(|| {
                    VmAbort::fatal(format!(
                        "uninitialized constant {}",
                        self.program.symbols.name(name)
                    ))
                })?;
                let w = self.rd(t, addr)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::SetConst => {
                let v = self.pop(t)?;
                let addr = self.const_define_addr(SymId(d.a_lo()));
                self.wr(t, addr, v)?;
                self.advance(t);
            }
            Op::NewArray => {
                let n = d.b as usize;
                let mut elems = vec![Word::Nil; n];
                for i in (0..n).rev() {
                    elems[i] = self.pop(t)?;
                }
                let w = self.make_array(t, &elems)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::NewHash => {
                let n = d.b as usize;
                let mut pairs = vec![(Word::Nil, Word::Nil); n];
                for i in (0..n).rev() {
                    let v = self.pop(t)?;
                    let k = self.pop(t)?;
                    pairs[i] = (k, v);
                }
                let w = self.make_hash(t, &pairs)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::NewRange => {
                let hi = self.pop(t)?;
                let lo = self.pop(t)?;
                let w = self.make_range(t, lo, hi, d.b != 0)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Op::Send => {
                let block = match d.a_hi() {
                    0 => None,
                    b => Some(IseqId(b - 1)),
                };
                return self.do_send(t, SymId(d.a_lo()), d.b as usize, block, d.c);
            }
            Op::InvokeBlock => {
                return self.do_invoke_block(t, d.b as usize);
            }
            Op::OptPlus => return self.op_arith(t, ArithOp::Add, d.a_lo(), d.c),
            Op::OptMinus => return self.op_arith(t, ArithOp::Sub, d.a_lo(), d.c),
            Op::OptMult => return self.op_arith(t, ArithOp::Mul, d.a_lo(), d.c),
            Op::OptDiv => return self.op_arith(t, ArithOp::Div, d.a_lo(), d.c),
            Op::OptMod => return self.op_arith(t, ArithOp::Mod, d.a_lo(), d.c),
            Op::OptEq => return self.op_cmp(t, CmpOp::Eq, d.a_lo(), d.c),
            Op::OptNeq => return self.op_cmp(t, CmpOp::Ne, d.a_lo(), d.c),
            Op::OptLt => return self.op_cmp(t, CmpOp::Lt, d.a_lo(), d.c),
            Op::OptLe => return self.op_cmp(t, CmpOp::Le, d.a_lo(), d.c),
            Op::OptGt => return self.op_cmp(t, CmpOp::Gt, d.a_lo(), d.c),
            Op::OptGe => return self.op_cmp(t, CmpOp::Ge, d.a_lo(), d.c),
            Op::OptAref => return self.op_aref(t, d.a_lo(), d.c),
            Op::OptAset => return self.op_aset(t, d.a_lo(), d.c),
            Op::OptShl => return self.op_shl(t, d.a_lo(), d.c),
            Op::OptNot => {
                let w = self.pop(t)?;
                self.push(t, if w.truthy() { Word::False } else { Word::True })?;
                self.advance(t);
            }
            Op::OptNeg => {
                let w = self.pop(t)?;
                match w {
                    Word::Int(i) => self.push(t, Word::Int(i.wrapping_neg()))?,
                    ref o @ Word::Obj(_) => {
                        let f = self
                            .as_number(t, o)?
                            .ok_or_else(|| VmAbort::fatal("cannot negate non-numeric"))?;
                        let w = self.make_float(t, -f)?;
                        self.push(t, w)?;
                    }
                    other => return Err(VmAbort::fatal(format!("cannot negate {other:?}"))),
                }
                self.advance(t);
            }
            Op::RareOp => return self.op_rare(t, crate::decode::rare_from_index(d.b)),
            Op::Jump => {
                self.threads[t].pc = d.a as usize;
            }
            Op::BranchIf => {
                let c = self.pop(t)?;
                if c.truthy() {
                    self.threads[t].pc = d.a as usize;
                } else {
                    self.advance(t);
                }
            }
            Op::BranchUnless => {
                let c = self.pop(t)?;
                if !c.truthy() {
                    self.threads[t].pc = d.a as usize;
                } else {
                    self.advance(t);
                }
            }
            Op::Leave => return self.do_leave(t),
            Op::DefineMethod => {
                let self_w = self.frame_self(t)?;
                let cls = match self_w {
                    Word::Obj(s) if self.kind_of(t, s)? == ObjKind::Class => s,
                    _ => self.classes.object,
                };
                self.define_method(
                    t,
                    cls,
                    SymId(d.a_lo()),
                    MethodEntry::Iseq(IseqId(d.a_hi())),
                    d.b != 0,
                )?;
                self.advance(t);
            }
            Op::DefineClass => {
                let superclass = match d.c {
                    0 => None,
                    s => Some(SymId(s - 1)),
                };
                return self.do_define_class(t, SymId(d.a_lo()), superclass, IseqId(d.a_hi()));
            }
        }
        Ok(StepOk::Normal)
    }

    /// The un-decoded reference interpreter: fetches the original [`Insn`]
    /// and dispatches on it, exactly as before pre-decoding existed. Kept
    /// behind `slow_dispatch` so CI can diff the two paths
    /// (`HTMGIL_FORCE_SLOW_DISPATCH=1`).
    fn step_slow(&mut self, t: ThreadId) -> Result<StepOk, VmAbort> {
        use crate::decode::NO_SYM;
        let (iseq, pc) = {
            let c = &self.threads[t];
            (c.iseq, c.pc)
        };
        let insn = self.program.insn(iseq, pc).clone();
        match insn {
            Insn::Nop => {
                self.advance(t);
            }
            Insn::PutNil => {
                self.push(t, Word::Nil)?;
                self.advance(t);
            }
            Insn::PutTrue => {
                self.push(t, Word::True)?;
                self.advance(t);
            }
            Insn::PutFalse => {
                self.push(t, Word::False)?;
                self.advance(t);
            }
            Insn::PutSelf => {
                let s = self.frame_self(t)?;
                self.push(t, s)?;
                self.advance(t);
            }
            Insn::PutInt(i) => {
                self.push(t, Word::Int(i))?;
                self.advance(t);
            }
            Insn::PutPooled(i) => {
                let w = self.pooled_objs[i as usize].clone();
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::PutString(i) => {
                let s = self.program.strings[i as usize].clone();
                let w = self.make_string(t, &s)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::PutSym(s) => {
                self.push(t, Word::Sym(s))?;
                self.advance(t);
            }
            Insn::Pop => {
                self.pop(t)?;
                self.advance(t);
            }
            Insn::Dup => {
                let w = self.peek_n(t, 0)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::DupN(n) => {
                let n = n as usize;
                for i in 0..n {
                    let w = self.peek_n(t, n - 1)?;
                    let _ = i;
                    self.push(t, w)?;
                }
                self.advance(t);
            }
            Insn::GetLocal { idx, depth } => {
                let f = self.ep_at(t, depth)?;
                let w = self.rd(t, f + FRAME_WORDS + idx as usize)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::SetLocal { idx, depth } => {
                let v = self.pop(t)?;
                let f = self.ep_at(t, depth)?;
                self.wr(t, f + FRAME_WORDS + idx as usize, v)?;
                self.advance(t);
            }
            Insn::GetIvar { name, ic } => {
                let w = self.ivar_get_cached(t, name, ic)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::SetIvar { name, ic } => {
                let v = self.pop(t)?;
                self.ivar_set_cached(t, name, ic, v)?;
                self.advance(t);
            }
            Insn::GetCvar { name } => {
                let owner = self.cvar_owner(t)?;
                let w = self.cvar_get(t, owner, name)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::SetCvar { name } => {
                let v = self.pop(t)?;
                let owner = self.cvar_owner(t)?;
                self.cvar_set(t, owner, name, v)?;
                self.advance(t);
            }
            Insn::GetGlobal { name } => {
                let addr = self.gvar_addr(name);
                let w = match self.rd(t, addr)? {
                    Word::Uninit => Word::Nil,
                    w => w,
                };
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::SetGlobal { name } => {
                let v = self.pop(t)?;
                let addr = self.gvar_addr(name);
                self.wr(t, addr, v)?;
                self.advance(t);
            }
            Insn::GetConst { name } => {
                let addr = self.const_lookup(name).ok_or_else(|| {
                    VmAbort::fatal(format!(
                        "uninitialized constant {}",
                        self.program.symbols.name(name)
                    ))
                })?;
                let w = self.rd(t, addr)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::SetConst { name } => {
                let v = self.pop(t)?;
                let addr = self.const_define_addr(name);
                self.wr(t, addr, v)?;
                self.advance(t);
            }
            Insn::NewArray { n } => {
                let n = n as usize;
                let mut elems = vec![Word::Nil; n];
                for i in (0..n).rev() {
                    elems[i] = self.pop(t)?;
                }
                let w = self.make_array(t, &elems)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::NewHash { n } => {
                let n = n as usize;
                let mut pairs = vec![(Word::Nil, Word::Nil); n];
                for i in (0..n).rev() {
                    let v = self.pop(t)?;
                    let k = self.pop(t)?;
                    pairs[i] = (k, v);
                }
                let w = self.make_hash(t, &pairs)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::NewRange { excl } => {
                let hi = self.pop(t)?;
                let lo = self.pop(t)?;
                let w = self.make_range(t, lo, hi, excl)?;
                self.push(t, w)?;
                self.advance(t);
            }
            Insn::Send { name, argc, block, ic } => {
                return self.do_send(t, name, argc as usize, block, ic);
            }
            Insn::InvokeBlock { argc } => {
                return self.do_invoke_block(t, argc as usize);
            }
            Insn::OptPlus { ic } => return self.op_arith(t, ArithOp::Add, NO_SYM, ic),
            Insn::OptMinus { ic } => return self.op_arith(t, ArithOp::Sub, NO_SYM, ic),
            Insn::OptMult { ic } => return self.op_arith(t, ArithOp::Mul, NO_SYM, ic),
            Insn::OptDiv { ic } => return self.op_arith(t, ArithOp::Div, NO_SYM, ic),
            Insn::OptMod { ic } => return self.op_arith(t, ArithOp::Mod, NO_SYM, ic),
            Insn::OptEq { ic } => return self.op_cmp(t, CmpOp::Eq, NO_SYM, ic),
            Insn::OptNeq { ic } => return self.op_cmp(t, CmpOp::Ne, NO_SYM, ic),
            Insn::OptLt { ic } => return self.op_cmp(t, CmpOp::Lt, NO_SYM, ic),
            Insn::OptLe { ic } => return self.op_cmp(t, CmpOp::Le, NO_SYM, ic),
            Insn::OptGt { ic } => return self.op_cmp(t, CmpOp::Gt, NO_SYM, ic),
            Insn::OptGe { ic } => return self.op_cmp(t, CmpOp::Ge, NO_SYM, ic),
            Insn::OptAref { ic } => return self.op_aref(t, NO_SYM, ic),
            Insn::OptAset { ic } => return self.op_aset(t, NO_SYM, ic),
            Insn::OptShl { ic } => return self.op_shl(t, NO_SYM, ic),
            Insn::OptNot => {
                let w = self.pop(t)?;
                self.push(t, if w.truthy() { Word::False } else { Word::True })?;
                self.advance(t);
            }
            Insn::OptNeg => {
                let w = self.pop(t)?;
                match w {
                    Word::Int(i) => self.push(t, Word::Int(i.wrapping_neg()))?,
                    ref o @ Word::Obj(_) => {
                        let f = self
                            .as_number(t, o)?
                            .ok_or_else(|| VmAbort::fatal("cannot negate non-numeric"))?;
                        let w = self.make_float(t, -f)?;
                        self.push(t, w)?;
                    }
                    other => return Err(VmAbort::fatal(format!("cannot negate {other:?}"))),
                }
                self.advance(t);
            }
            Insn::RareOp(op) => return self.op_rare(t, op),
            Insn::Jump(off) => {
                let pc = self.threads[t].pc as i64 + i64::from(off);
                self.threads[t].pc = pc as usize;
            }
            Insn::BranchIf(off) => {
                let c = self.pop(t)?;
                if c.truthy() {
                    let pc = self.threads[t].pc as i64 + i64::from(off);
                    self.threads[t].pc = pc as usize;
                } else {
                    self.advance(t);
                }
            }
            Insn::BranchUnless(off) => {
                let c = self.pop(t)?;
                if !c.truthy() {
                    let pc = self.threads[t].pc as i64 + i64::from(off);
                    self.threads[t].pc = pc as usize;
                } else {
                    self.advance(t);
                }
            }
            Insn::Leave => return self.do_leave(t),
            Insn::DefineMethod { name, iseq, on_self } => {
                let self_w = self.frame_self(t)?;
                let cls = match self_w {
                    Word::Obj(s) if self.kind_of(t, s)? == ObjKind::Class => s,
                    _ => self.classes.object,
                };
                self.define_method(t, cls, name, MethodEntry::Iseq(iseq), on_self)?;
                self.advance(t);
            }
            Insn::DefineClass { name, superclass, body } => {
                return self.do_define_class(t, name, superclass, body);
            }
        }
        Ok(StepOk::Normal)
    }

    // ---- sends -----------------------------------------------------------------

    fn do_send(
        &mut self,
        t: ThreadId,
        name: SymId,
        argc: usize,
        block: Option<IseqId>,
        ic: u32,
    ) -> Result<StepOk, VmAbort> {
        let sp = self.threads[t].sp;
        let recv_pos = sp - argc - 1;
        let recv = self.rd(t, recv_pos)?;
        // Receiver-class word for the cache guard; class objects guard on
        // their own identity so Thread.new and Mutex.new never alias.
        let recv_is_class = matches!(&recv, Word::Obj(s) if self.kind_of(t, *s)? == ObjKind::Class);
        let cls = if recv_is_class { recv.as_obj().unwrap() } else { self.class_of(t, &recv)? };
        // Inline-cache probe (two words, like CRuby's call caches). The
        // guard packs the global method-table version above the class
        // word, so every cached entry anywhere dies the moment a method
        // redefinition bumps the version — megamorphic or redefined sites
        // just fall back to the table walk until refilled.
        let ver = self.effective_method_version();
        let expected = (i64::from(ver) << 32) | cls as i64;
        let ic_addr = self.ic_addr(t, ic);
        let guard = self.rd(t, ic_addr)?;
        let entry = if guard == Word::Int(expected) {
            let e = self.rd(t, ic_addr + 1)?;
            Some(MethodEntry::decode(e.as_int().unwrap_or(0)))
        } else {
            None
        };
        let entry = match entry {
            Some(e) => e,
            None => {
                // Slow path: method-table walk.
                let found = if recv_is_class {
                    match self.lookup_static(t, cls, name)? {
                        Some(e) => Some(e),
                        None => {
                            let meta = self.class_of(t, &recv)?;
                            self.lookup_method(t, meta, name)?
                        }
                    }
                } else {
                    self.lookup_method(t, cls, name)?
                };
                let Some(e) = found else {
                    let n = self.program.symbols.name(name).to_string();
                    let r = self.display(t, &recv)?;
                    return Err(VmAbort::fatal(format!("undefined method `{n}' for {r}")));
                };
                // Fill policy (paper §4.4 #4a): the improved cache fills
                // only the first time; the original rewrites on every
                // miss. A guard from a stale method-table version is dead
                // — refilling over it is always allowed. The fill is a
                // plain transactional store, so an aborted slice rolls it
                // back via the undo log (escrowed like marks and wakes).
                let reusable = matches!(guard, Word::Int(g) if (g >> 32) as u32 == ver);
                if !self.config.method_ic_fill_once || !reusable {
                    self.wr(t, ic_addr, Word::Int(expected))?;
                    self.wr(t, ic_addr + 1, Word::Int(e.encode()))?;
                }
                e
            }
        };
        // Materialize the block (allocates a Proc — CRuby passes blocks on
        // the control-frame stack without allocation; the cost difference
        // is one slot per block-taking call, negligible for the workloads).
        let block_addr = match block {
            Some(bi) => {
                let self_w = self.frame_self(t)?;
                let fp = self.threads[t].fp;
                let p = self.make_proc(t, bi, fp, self_w)?;
                // Pin until a frame's F_BLOCK word (or the builtin) roots
                // it — allocations inside the callee setup can GC.
                self.temp_roots.push(p.clone());
                p.as_obj().unwrap()
            }
            None => 0,
        };
        match entry {
            MethodEntry::Iseq(iseq) => {
                self.push_frame(
                    t,
                    iseq,
                    recv,
                    block_addr,
                    0,
                    recv_pos,
                    0,
                    FrameArgs::Stack { base: recv_pos + 1, argc },
                )?;
                Ok(StepOk::Normal)
            }
            MethodEntry::Builtin(id) => {
                let mut args = Vec::with_capacity(argc);
                for i in 0..argc {
                    args.push(self.rd(t, recv_pos + 1 + i)?);
                }
                let r = crate::builtins::call(self, t, id, recv.clone(), args, block_addr)?;
                self.apply_bresult(t, r, argc)
            }
        }
    }

    /// Apply a builtin's outcome (stack manipulation + control).
    fn apply_bresult(&mut self, t: ThreadId, r: BResult, argc: usize) -> Result<StepOk, VmAbort> {
        match r {
            BResult::Value(w) => {
                for _ in 0..argc + 1 {
                    self.pop(t)?;
                }
                self.push(t, w)?;
                self.advance(t);
                Ok(StepOk::Normal)
            }
            BResult::Block(on) => {
                if let BlockOn::Io(_) = on {
                    // I/O completes while the thread sleeps: consume the
                    // call now and resume at the *next* instruction.
                    for _ in 0..argc + 1 {
                        self.pop(t)?;
                    }
                    self.push(t, Word::Nil)?;
                    self.advance(t);
                }
                Ok(StepOk::Block(on))
            }
            BResult::Frame { iseq, self_w, args, block, under, discard, ep } => {
                for _ in 0..argc + 1 {
                    self.pop(t)?;
                }
                if let Some(u) = under {
                    self.push(t, u)?;
                }
                let ret_sp = self.threads[t].sp;
                let mut flags = if discard { FLAG_DISCARD } else { 0 };
                if ep != 0 {
                    flags |= FLAG_BLOCK;
                }
                self.push_frame(t, iseq, self_w, block, ep, ret_sp, flags, FrameArgs::Vec(args))?;
                Ok(StepOk::Normal)
            }
            BResult::Spawned { tid, thread_obj } => {
                for _ in 0..argc + 1 {
                    self.pop(t)?;
                }
                self.push(t, thread_obj)?;
                self.advance(t);
                Ok(StepOk::Spawned { tid })
            }
        }
    }

    fn do_invoke_block(&mut self, t: ThreadId, argc: usize) -> Result<StepOk, VmAbort> {
        // Find the method frame up the static chain (yield inside nested
        // blocks refers to the enclosing method's block).
        let mut f = self.threads[t].fp;
        loop {
            let flags = self.rd(t, f + F_FLAGS)?.as_int().unwrap_or(0);
            if flags & FLAG_BLOCK == 0 {
                break;
            }
            let ep = self.rd(t, f + F_EP)?.as_int().unwrap_or(0);
            if ep == 0 {
                break;
            }
            f = ep as Addr;
        }
        let proc_addr = self.rd(t, f + F_BLOCK)?.as_obj().unwrap_or(0);
        if proc_addr == 0 {
            return Err(VmAbort::fatal("no block given (yield)"));
        }
        let iseq = IseqId(self.rd(t, proc_addr + 1)?.as_int().unwrap_or(0) as u32);
        let captured_fp = self.rd(t, proc_addr + 2)?.as_int().unwrap_or(0) as Addr;
        let self_w = self.rd(t, proc_addr + 3)?;
        let sp = self.threads[t].sp;
        let args_base = sp - argc;
        let ret_sp = args_base;
        self.push_frame(
            t,
            iseq,
            self_w,
            0,
            captured_fp,
            ret_sp,
            FLAG_BLOCK,
            FrameArgs::Stack { base: args_base, argc },
        )?;
        Ok(StepOk::Normal)
    }

    /// Promote a block-frame chain to heap-allocated environments
    /// (CRuby's env objects). Called when a block escapes its dynamic
    /// extent — i.e. when it is handed to `Thread.new` — because the
    /// spawner keeps running and will reuse the stack words the chain
    /// lives in. Copies every *block* frame (header + locals) into the
    /// malloc area, relinking `ep`s; stops at the first non-block frame,
    /// which by the workload discipline outlives the spawned thread
    /// (spawn and join happen in the same method).
    ///
    /// Note the semantics this buys exactly match what the paper's
    /// workloads need: outer *method/main* locals stay shared (reduction
    /// variables, result arrays), while enclosing block locals (loop
    /// counters) are snapshotted per spawn.
    pub fn promote_env(&mut self, t: ThreadId, fp: Addr) -> Result<Addr, VmAbort> {
        let flags = self.rd(t, fp + F_FLAGS)?.as_int().unwrap_or(0);
        if flags & FLAG_BLOCK == 0 {
            return Ok(fp);
        }
        let iseq = IseqId((flags >> FLAG_ISEQ_SHIFT) as u32);
        let nlocals = self.program.iseq(iseq).nlocals;
        let total = FRAME_WORDS + nlocals;
        let parent = self.rd(t, fp + F_EP)?.as_int().unwrap_or(0) as Addr;
        let new_parent = if parent != 0 { self.promote_env(t, parent)? } else { 0 };
        let (region, _cap) = self.malloc(t, total)?;
        for i in 0..total {
            let w = self.rd(t, fp + i)?;
            self.wr(t, region + i, w)?;
        }
        self.wr(t, region + F_EP, Word::Int(new_parent as i64))?;
        // Promoted envs are GC roots for as long as the VM runs (they are
        // few: one chain per spawned thread).
        self.promoted_envs.push((region, total));
        Ok(region)
    }

    /// Invoke a Proc object as a block with explicit args (used by
    /// builtins like `Array#sort_by` — and by spawned threads' roots).
    pub fn invoke_proc(
        &mut self,
        t: ThreadId,
        proc_addr: Addr,
        args: Vec<Word>,
    ) -> Result<(), VmAbort> {
        let iseq = IseqId(self.rd(t, proc_addr + 1)?.as_int().unwrap_or(0) as u32);
        let captured_fp = self.rd(t, proc_addr + 2)?.as_int().unwrap_or(0) as Addr;
        let self_w = self.rd(t, proc_addr + 3)?;
        let ret_sp = self.threads[t].sp;
        self.push_frame(t, iseq, self_w, 0, captured_fp, ret_sp, FLAG_BLOCK, FrameArgs::Vec(args))
    }

    fn do_define_class(
        &mut self,
        t: ThreadId,
        name: SymId,
        superclass: Option<SymId>,
        body: IseqId,
    ) -> Result<StepOk, VmAbort> {
        let existing = match self.const_lookup(name) {
            Some(addr) => match self.rd(t, addr)? {
                Word::Obj(s) if self.kind_of(t, s)? == ObjKind::Class => Some(s),
                _ => None,
            },
            None => None,
        };
        let cls = match existing {
            Some(c) => c,
            None => {
                let sup = match superclass {
                    Some(s) => {
                        let addr = self.const_lookup(s).ok_or_else(|| {
                            VmAbort::fatal(format!(
                                "uninitialized constant {} (superclass)",
                                self.program.symbols.name(s)
                            ))
                        })?;
                        self.rd(t, addr)?
                            .as_obj()
                            .ok_or_else(|| VmAbort::fatal("superclass is not a class"))?
                    }
                    None => self.classes.object,
                };
                let slot = self.alloc_slot(t)?;
                self.set_header(t, slot, ObjKind::Class)?;
                self.wr(t, slot + 1, Word::Obj(sup))?;
                self.wr(t, slot + 2, Word::Int(0))?;
                self.wr(t, slot + 3, Word::Int(0))?;
                self.wr(t, slot + 4, Word::Int(0))?;
                self.wr(t, slot + 5, Word::Int(0))?;
                self.wr(t, slot + 6, Word::Sym(name))?;
                self.wr(t, slot + 7, Word::Int(0))?;
                let caddr = self.const_define_addr(name);
                self.wr(t, caddr, Word::Obj(slot))?;
                slot
            }
        };
        let ret_sp = self.threads[t].sp;
        self.push_frame(t, body, Word::Obj(cls), 0, 0, ret_sp, 0, FrameArgs::Vec(Vec::new()))?;
        Ok(StepOk::Normal)
    }

    // ---- inline-cached ivars ------------------------------------------------

    fn ivar_self_slot(&mut self, t: ThreadId) -> Result<Addr, VmAbort> {
        let s = self.frame_self(t)?;
        s.as_obj().ok_or_else(|| VmAbort::fatal("instance variable access on immediate"))
    }

    /// The guard word this site would match (paper §4.4 #4b): class
    /// identity originally, ivar-table identity in the improved scheme.
    fn ivar_guard(&mut self, t: ThreadId, cls: Addr) -> Result<Option<i64>, VmAbort> {
        if self.config.ivar_ic_table_guard {
            let ivtbl = self.rd(t, cls + 4)?.as_int().unwrap_or(0);
            Ok(if ivtbl == 0 { None } else { Some(ivtbl) })
        } else {
            Ok(Some(cls as i64))
        }
    }

    fn ivar_get_cached(&mut self, t: ThreadId, name: SymId, ic: u32) -> Result<Word, VmAbort> {
        let slot = self.ivar_self_slot(t)?;
        if self.kind_of(t, slot)? != ObjKind::Object {
            return Err(VmAbort::fatal("ivars are only supported on plain objects"));
        }
        let cls =
            self.rd(t, slot + 1)?.as_obj().ok_or_else(|| VmAbort::fatal("object without class"))?;
        let ic_addr = self.ic_addr(t, ic);
        let guard = self.rd(t, ic_addr)?;
        if let Some(expected) = self.ivar_guard(t, cls)? {
            if guard == Word::Int(expected) {
                let idx = self.rd(t, ic_addr + 1)?.as_int().unwrap_or(0) as usize;
                return self.obj_ivar_get(t, slot, idx);
            }
        }
        match self.ivar_index(t, cls, name, false)? {
            Some(idx) => {
                if let Some(expected) = self.ivar_guard(t, cls)? {
                    self.wr(t, ic_addr, Word::Int(expected))?;
                    self.wr(t, ic_addr + 1, Word::Int(idx as i64))?;
                }
                self.obj_ivar_get(t, slot, idx)
            }
            None => Ok(Word::Nil),
        }
    }

    fn ivar_set_cached(
        &mut self,
        t: ThreadId,
        name: SymId,
        ic: u32,
        v: Word,
    ) -> Result<(), VmAbort> {
        let slot = self.ivar_self_slot(t)?;
        if self.kind_of(t, slot)? != ObjKind::Object {
            return Err(VmAbort::fatal("ivars are only supported on plain objects"));
        }
        let cls =
            self.rd(t, slot + 1)?.as_obj().ok_or_else(|| VmAbort::fatal("object without class"))?;
        let ic_addr = self.ic_addr(t, ic);
        let guard = self.rd(t, ic_addr)?;
        if let Some(expected) = self.ivar_guard(t, cls)? {
            if guard == Word::Int(expected) {
                let idx = self.rd(t, ic_addr + 1)?.as_int().unwrap_or(0) as usize;
                return self.obj_ivar_set(t, slot, idx, v);
            }
        }
        let idx = self.ivar_index(t, cls, name, true)?.expect("create=true always yields an index");
        if let Some(expected) = self.ivar_guard(t, cls)? {
            self.wr(t, ic_addr, Word::Int(expected))?;
            self.wr(t, ic_addr + 1, Word::Int(idx as i64))?;
        }
        self.obj_ivar_set(t, slot, idx, v)
    }

    fn cvar_owner(&mut self, t: ThreadId) -> Result<Addr, VmAbort> {
        let s = self.frame_self(t)?;
        match s {
            Word::Obj(slot) if self.kind_of(t, slot)? == ObjKind::Class => Ok(slot),
            other => self.class_of(t, &other),
        }
    }

    // ---- specialized operators -------------------------------------------------

    /// Resolve a generic-dispatch fallback selector: pre-resolved at
    /// decode time when possible ([`crate::decode::NO_SYM`] otherwise),
    /// interned lazily exactly like the undecoded interpreter — so SymId
    /// numbering is identical on both dispatch paths.
    #[inline]
    fn op_fallback_sym(&mut self, sym: u32, name: &str) -> SymId {
        if sym == crate::decode::NO_SYM {
            self.program.intern(name)
        } else {
            SymId(sym)
        }
    }

    /// Pop the two operands of a binary operator, classifying each as an
    /// immediate integer in a single counted access apiece. Read order —
    /// rhs at `sp-1` first, then lhs at `sp-2` — matches the two `pop`
    /// calls this replaces, so memory traces are unchanged.
    #[inline]
    fn pop_binop_operands(&mut self, t: ThreadId) -> Result<(IntOrWord, IntOrWord), VmAbort> {
        let sp = self.threads[t].sp;
        if sp < self.threads[t].stack_base + 2 {
            return Err(VmAbort::fatal("stack underflow"));
        }
        let rhs = self.rd_int(t, sp - 1)?;
        let lhs = self.rd_int(t, sp - 2)?;
        self.threads[t].sp = sp - 2;
        Ok((lhs, rhs))
    }

    fn op_arith(&mut self, t: ThreadId, op: ArithOp, sym: u32, ic: u32) -> Result<StepOk, VmAbort> {
        let (lhs, rhs) = self.pop_binop_operands(t)?;
        if let (&Ok(a), &Ok(b)) = (&lhs, &rhs) {
            let r = match op {
                ArithOp::Add => a.wrapping_add(b),
                ArithOp::Sub => a.wrapping_sub(b),
                ArithOp::Mul => a.wrapping_mul(b),
                ArithOp::Div => {
                    if b == 0 {
                        return Err(VmAbort::fatal("divided by 0"));
                    }
                    crate::value::ruby_div(a, b)
                }
                ArithOp::Mod => {
                    if b == 0 {
                        return Err(VmAbort::fatal("divided by 0"));
                    }
                    crate::value::ruby_mod(a, b)
                }
            };
            self.push(t, Word::Int(r))?;
            self.advance(t);
            return Ok(StepOk::Normal);
        }
        let lhs = match lhs {
            Ok(i) => Word::Int(i),
            Err(w) => w,
        };
        let rhs = match rhs {
            Ok(i) => Word::Int(i),
            Err(w) => w,
        };
        // Float path (heap-allocates the result, CRuby 1.9 style).
        let lf = self.as_number(t, &lhs)?;
        let rf = self.as_number(t, &rhs)?;
        if let (Some(a), Some(b)) = (lf, rf) {
            let r = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
                ArithOp::Mod => a.rem_euclid(b),
            };
            let w = self.make_float(t, r)?;
            self.push(t, w)?;
            self.advance(t);
            return Ok(StepOk::Normal);
        }
        // String + String.
        if op == ArithOp::Add {
            if let (Word::Obj(a), Word::Obj(b)) = (&lhs, &rhs) {
                if self.kind_of(t, *a)? == ObjKind::String
                    && self.kind_of(t, *b)? == ObjKind::String
                {
                    let sa = self.string_content(t, *a)?;
                    let sb = self.string_content(t, *b)?;
                    let joined = format!("{sa}{sb}");
                    self.step_native_cost += (joined.len() / 8) as u64;
                    let w = self.make_string(t, &joined)?;
                    self.push(t, w)?;
                    self.advance(t);
                    return Ok(StepOk::Normal);
                }
                if self.kind_of(t, *a)? == ObjKind::Array && self.kind_of(t, *b)? == ObjKind::Array
                {
                    let mut elems = Vec::new();
                    for i in 0..self.array_len(t, *a)? {
                        elems.push(self.array_get(t, *a, i as i64)?);
                    }
                    for i in 0..self.array_len(t, *b)? {
                        elems.push(self.array_get(t, *b, i as i64)?);
                    }
                    let w = self.make_array(t, &elems)?;
                    self.push(t, w)?;
                    self.advance(t);
                    return Ok(StepOk::Normal);
                }
            }
        }
        // Generic dispatch to a user-defined operator.
        self.push(t, lhs)?;
        self.push(t, rhs)?;
        let name = self.op_fallback_sym(sym, op.name());
        self.do_send(t, name, 1, None, ic)
    }

    fn op_cmp(&mut self, t: ThreadId, op: CmpOp, sym: u32, ic: u32) -> Result<StepOk, VmAbort> {
        let (lhs, rhs) = self.pop_binop_operands(t)?;
        if let (&Ok(a), &Ok(b)) = (&lhs, &rhs) {
            let hit = op.apply_ord(a.cmp(&b));
            self.push(t, if hit { Word::True } else { Word::False })?;
            self.advance(t);
            return Ok(StepOk::Normal);
        }
        let lhs = match lhs {
            Ok(i) => Word::Int(i),
            Err(w) => w,
        };
        let rhs = match rhs {
            Ok(i) => Word::Int(i),
            Err(w) => w,
        };
        let result: Option<bool> = match op {
            CmpOp::Eq => Some(self.words_eq(t, &lhs, &rhs)?),
            CmpOp::Ne => Some(!self.words_eq(t, &lhs, &rhs)?),
            _ => {
                let lf = self.as_number(t, &lhs)?;
                let rf = self.as_number(t, &rhs)?;
                if let (Some(a), Some(b)) = (lf, rf) {
                    a.partial_cmp(&b).map(|o| op.apply_ord(o))
                } else if let (Word::Obj(a), Word::Obj(b)) = (&lhs, &rhs) {
                    if self.kind_of(t, *a)? == ObjKind::String
                        && self.kind_of(t, *b)? == ObjKind::String
                    {
                        let sa = self.string_content(t, *a)?;
                        let sb = self.string_content(t, *b)?;
                        Some(op.apply_ord(sa.cmp(&sb)))
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
        };
        match result {
            Some(b) => {
                self.push(t, if b { Word::True } else { Word::False })?;
                self.advance(t);
                Ok(StepOk::Normal)
            }
            None => {
                self.push(t, lhs)?;
                self.push(t, rhs)?;
                let name = self.op_fallback_sym(sym, op.name());
                self.do_send(t, name, 1, None, ic)
            }
        }
    }

    fn op_aref(&mut self, t: ThreadId, sym: u32, ic: u32) -> Result<StepOk, VmAbort> {
        let idx = self.pop(t)?;
        let recv = self.pop(t)?;
        if let Word::Obj(slot) = recv {
            match self.kind_of(t, slot)? {
                ObjKind::Array => {
                    if let Word::Int(i) = idx {
                        let w = self.array_get(t, slot, i)?;
                        self.push(t, w)?;
                        self.advance(t);
                        return Ok(StepOk::Normal);
                    }
                }
                ObjKind::Hash => {
                    let w = self.hash_get(t, slot, &idx)?;
                    self.push(t, w)?;
                    self.advance(t);
                    return Ok(StepOk::Normal);
                }
                ObjKind::String => {
                    if let Word::Int(i) = idx {
                        let s = self.string_content(t, slot)?;
                        let len = s.len() as i64;
                        let i = if i < 0 { len + i } else { i };
                        let w = if i < 0 || i >= len {
                            Word::Nil
                        } else {
                            let ch = &s[i as usize..i as usize + 1];
                            self.make_string(t, ch)?
                        };
                        self.push(t, w)?;
                        self.advance(t);
                        return Ok(StepOk::Normal);
                    }
                }
                ObjKind::MatchData => {
                    if let Word::Int(i) = idx {
                        let groups = self.rd(t, slot + 1)?;
                        if let Word::Obj(g) = groups {
                            let w = self.array_get(t, g, i)?;
                            self.push(t, w)?;
                            self.advance(t);
                            return Ok(StepOk::Normal);
                        }
                    }
                }
                _ => {}
            }
        }
        // Generic `[]`.
        self.push(t, recv)?;
        self.push(t, idx)?;
        let name = self.op_fallback_sym(sym, "[]");
        self.do_send(t, name, 1, None, ic)
    }

    fn op_aset(&mut self, t: ThreadId, sym: u32, ic: u32) -> Result<StepOk, VmAbort> {
        let value = self.pop(t)?;
        let idx = self.pop(t)?;
        let recv = self.pop(t)?;
        if let Word::Obj(slot) = recv {
            match self.kind_of(t, slot)? {
                ObjKind::Array => {
                    if let Word::Int(i) = idx {
                        self.array_set(t, slot, i, value.clone())?;
                        self.push(t, value)?;
                        self.advance(t);
                        return Ok(StepOk::Normal);
                    }
                }
                ObjKind::Hash => {
                    self.hash_set(t, slot, idx, value.clone())?;
                    self.push(t, value)?;
                    self.advance(t);
                    return Ok(StepOk::Normal);
                }
                _ => {}
            }
        }
        self.push(t, recv)?;
        self.push(t, idx)?;
        self.push(t, value)?;
        let name = self.op_fallback_sym(sym, "[]=");
        self.do_send(t, name, 2, None, ic)
    }

    fn op_shl(&mut self, t: ThreadId, sym: u32, ic: u32) -> Result<StepOk, VmAbort> {
        let rhs = self.pop(t)?;
        let lhs = self.pop(t)?;
        match &lhs {
            Word::Int(a) => {
                let b = rhs
                    .as_int()
                    .ok_or_else(|| VmAbort::fatal("shift amount must be an Integer"))?;
                self.push(t, Word::Int(a.wrapping_shl(b as u32)))?;
                self.advance(t);
                Ok(StepOk::Normal)
            }
            Word::Obj(slot) => match self.kind_of(t, *slot)? {
                ObjKind::Array => {
                    self.array_push(t, *slot, rhs)?;
                    self.push(t, lhs)?;
                    self.advance(t);
                    Ok(StepOk::Normal)
                }
                ObjKind::String => {
                    let sa = self.string_content(t, *slot)?;
                    let sb = self.display(t, &rhs)?;
                    let joined = format!("{sa}{sb}");
                    self.step_native_cost += (joined.len() / 8) as u64;
                    self.string_replace(t, *slot, &joined)?;
                    self.push(t, lhs)?;
                    self.advance(t);
                    Ok(StepOk::Normal)
                }
                _ => {
                    self.push(t, lhs)?;
                    self.push(t, rhs)?;
                    let name = self.op_fallback_sym(sym, "<<");
                    self.do_send(t, name, 1, None, ic)
                }
            },
            _ => Err(VmAbort::fatal("unsupported << receiver")),
        }
    }

    fn op_rare(&mut self, t: ThreadId, op: RareBinOp) -> Result<StepOk, VmAbort> {
        let rhs = self.pop(t)?;
        let lhs = self.pop(t)?;
        let w = match (op, &lhs, &rhs) {
            (RareBinOp::BitAnd, Word::Int(a), Word::Int(b)) => Word::Int(a & b),
            (RareBinOp::BitOr, Word::Int(a), Word::Int(b)) => Word::Int(a | b),
            (RareBinOp::BitXor, Word::Int(a), Word::Int(b)) => Word::Int(a ^ b),
            (RareBinOp::Shr, Word::Int(a), Word::Int(b)) => Word::Int(a.wrapping_shr(*b as u32)),
            (RareBinOp::BitAnd, Word::True | Word::False, Word::True | Word::False) => {
                if lhs.truthy() && rhs.truthy() {
                    Word::True
                } else {
                    Word::False
                }
            }
            (RareBinOp::BitOr, Word::True | Word::False, Word::True | Word::False) => {
                if lhs.truthy() || rhs.truthy() {
                    Word::True
                } else {
                    Word::False
                }
            }
            (RareBinOp::Pow, Word::Int(a), Word::Int(b)) if *b >= 0 => {
                Word::Int(a.wrapping_pow(*b as u32))
            }
            (RareBinOp::Pow, _, _) => {
                let a = self
                    .as_number(t, &lhs)?
                    .ok_or_else(|| VmAbort::fatal("non-numeric base for **"))?;
                let b = self
                    .as_number(t, &rhs)?
                    .ok_or_else(|| VmAbort::fatal("non-numeric exponent for **"))?;
                self.make_float(t, a.powf(b))?
            }
            (RareBinOp::Cmp, _, _) => {
                let la = self.as_number(t, &lhs)?;
                let lb = self.as_number(t, &rhs)?;
                let ord = if let (Some(a), Some(b)) = (la, lb) {
                    a.partial_cmp(&b)
                } else if let (Word::Obj(a), Word::Obj(b)) = (&lhs, &rhs) {
                    if self.kind_of(t, *a)? == ObjKind::String
                        && self.kind_of(t, *b)? == ObjKind::String
                    {
                        let sa = self.string_content(t, *a)?;
                        let sb = self.string_content(t, *b)?;
                        Some(sa.cmp(&sb))
                    } else {
                        None
                    }
                } else {
                    None
                };
                match ord {
                    Some(std::cmp::Ordering::Less) => Word::Int(-1),
                    Some(std::cmp::Ordering::Equal) => Word::Int(0),
                    Some(std::cmp::Ordering::Greater) => Word::Int(1),
                    None => Word::Nil,
                }
            }
            _ => {
                return Err(VmAbort::fatal(format!(
                    "unsupported operands for {op:?}: {lhs:?}, {rhs:?}"
                )))
            }
        };
        self.push(t, w)?;
        self.advance(t);
        Ok(StepOk::Normal)
    }
}

enum FrameArgs {
    /// Copy `argc` words starting at stack address `base`.
    Stack {
        base: Addr,
        argc: usize,
    },
    Vec(Vec<Word>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    fn name(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    fn apply_ord(self, o: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => o == Equal,
            CmpOp::Ne => o != Equal,
            CmpOp::Lt => o == Less,
            CmpOp::Le => o != Greater,
            CmpOp::Gt => o == Greater,
            CmpOp::Ge => o != Less,
        }
    }
}
