//! A tiny in-VM relational store — the SQLite3 stand-in for the Rails
//! model.
//!
//! The paper's Rails application "fetch[es] a list of books from a
//! database" through SQLite3. What matters for the reproduction is not SQL
//! but the *memory behaviour* of query execution inside a request: a table
//! scan reads every row (large read sets), result materialization
//! allocates row arrays and strings, and the whole thing happens in a
//! C-extension-like builtin with no yield points — a footprint-overflow
//! source exactly like the regex engine.
//!
//! Tables are heap objects (`ObjKind::Table`) whose rows live in an
//! ordinary VM array-of-arrays, so scans generate real simulated-memory
//! traffic and the GC sees everything.

use machine_sim::ThreadId;

use crate::interp::BResult;
use crate::value::{ObjKind, Word};
use crate::vm::{Vm, VmAbort};

impl Vm {
    /// `Store.create(ncols)` — make an empty table.
    pub fn store_create(&mut self, t: ThreadId, ncols: i64) -> Result<Word, VmAbort> {
        let rows = self.make_array(t, &[])?;
        let slot = self.alloc_slot(t)?;
        self.set_header(t, slot, ObjKind::Table)?;
        self.wr(t, slot + 1, rows)?;
        self.wr(t, slot + 2, Word::Int(ncols))?;
        Ok(Word::Obj(slot))
    }

    fn table_rows(&mut self, t: ThreadId, table: Word) -> Result<usize, VmAbort> {
        let slot = table
            .as_obj()
            .filter(|&s| matches!(self.kind_of(t, s), Ok(ObjKind::Table)))
            .ok_or_else(|| VmAbort::fatal("receiver is not a Store table"))?;
        self.rd(t, slot + 1)?.as_obj().ok_or_else(|| VmAbort::fatal("corrupt table"))
    }

    /// `table.insert(row_array)` — append a row.
    pub fn store_insert(&mut self, t: ThreadId, table: Word, row: Word) -> Result<Word, VmAbort> {
        let rows = self.table_rows(t, table.clone())?;
        if row.as_obj().is_none() {
            return Err(VmAbort::fatal("insert expects an Array row"));
        }
        self.array_push(t, rows, row)?;
        self.step_native_cost += 20;
        Ok(table)
    }

    /// `table.count`.
    pub fn store_count(&mut self, t: ThreadId, table: Word) -> Result<Word, VmAbort> {
        let rows = self.table_rows(t, table)?;
        let n = self.array_len(t, rows)?;
        Ok(Word::Int(n as i64))
    }

    /// `table.scan_eq(col, value)` — full scan, returns matching rows.
    /// Reads every row (the read-set pressure of a real query) and
    /// materializes a fresh result array.
    pub fn store_scan_eq(
        &mut self,
        t: ThreadId,
        table: Word,
        col: i64,
        value: Word,
    ) -> Result<Word, VmAbort> {
        let rows = self.table_rows(t, table)?;
        let n = self.array_len(t, rows)?;
        let mut hits = Vec::new();
        for i in 0..n {
            let row = self.array_get(t, rows, i as i64)?;
            if let Word::Obj(r) = row {
                let cell = self.array_get(t, r, col)?;
                if self.words_eq(t, &cell, &value)? {
                    hits.push(Word::Obj(r));
                }
            }
        }
        self.step_native_cost += 10 * n as u64 + 20;
        self.make_array(t, &hits)
    }

    /// `table.all` — every row, freshly materialized result array.
    pub fn store_all(&mut self, t: ThreadId, table: Word) -> Result<Word, VmAbort> {
        let rows = self.table_rows(t, table)?;
        let n = self.array_len(t, rows)?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.array_get(t, rows, i as i64)?);
        }
        self.step_native_cost += 5 * n as u64 + 10;
        self.make_array(t, &out)
    }
}

// Builtin wrappers (registered by `builtins::install`).

pub fn bi_store_create(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _block: usize,
) -> Result<BResult, VmAbort> {
    let ncols = args
        .first()
        .and_then(|w| w.as_int())
        .ok_or_else(|| VmAbort::fatal("Store.create(ncols) expects an Integer"))?;
    Ok(BResult::Value(vm.store_create(t, ncols)?))
}

pub fn bi_store_insert(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _block: usize,
) -> Result<BResult, VmAbort> {
    let row = args.first().cloned().ok_or_else(|| VmAbort::fatal("insert(row) expects a row"))?;
    Ok(BResult::Value(vm.store_insert(t, recv, row)?))
}

pub fn bi_store_count(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _args: Vec<Word>,
    _block: usize,
) -> Result<BResult, VmAbort> {
    Ok(BResult::Value(vm.store_count(t, recv)?))
}

pub fn bi_store_scan_eq(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _block: usize,
) -> Result<BResult, VmAbort> {
    let col = args
        .first()
        .and_then(|w| w.as_int())
        .ok_or_else(|| VmAbort::fatal("scan_eq(col, value) expects an Integer column"))?;
    let value = args
        .get(1)
        .cloned()
        .ok_or_else(|| VmAbort::fatal("scan_eq(col, value) expects a value"))?;
    Ok(BResult::Value(vm.store_scan_eq(t, recv, col, value)?))
}

pub fn bi_store_all(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _args: Vec<Word>,
    _block: usize,
) -> Result<BResult, VmAbort> {
    Ok(BResult::Value(vm.store_all(t, recv)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use machine_sim::MachineProfile;

    fn vm() -> Vm {
        Vm::boot("nil", VmConfig::default(), &MachineProfile::generic(2)).unwrap()
    }

    #[test]
    fn create_insert_scan() {
        let mut vm = vm();
        let table = vm.store_create(0, 3).unwrap();
        for (id, title, year) in [(1, "Dune", 1965), (2, "Neuromancer", 1984), (3, "Dune II", 1984)]
        {
            let t_w = vm.make_string(0, title).unwrap();
            let row = vm.make_array(0, &[Word::Int(id), t_w, Word::Int(year)]).unwrap();
            vm.store_insert(0, table.clone(), row).unwrap();
        }
        assert_eq!(vm.store_count(0, table.clone()).unwrap(), Word::Int(3));
        let hits = vm.store_scan_eq(0, table.clone(), 2, Word::Int(1984)).unwrap();
        let slot = hits.as_obj().unwrap();
        assert_eq!(vm.array_len(0, slot).unwrap(), 2);
        let all = vm.store_all(0, table).unwrap();
        assert_eq!(vm.array_len(0, all.as_obj().unwrap()).unwrap(), 3);
    }

    #[test]
    fn scan_miss_returns_empty() {
        let mut vm = vm();
        let table = vm.store_create(0, 1).unwrap();
        let hits = vm.store_scan_eq(0, table, 0, Word::Int(42)).unwrap();
        assert_eq!(vm.array_len(0, hits.as_obj().unwrap()).unwrap(), 0);
    }

    #[test]
    fn scan_cost_scales_with_rows() {
        let mut vm = vm();
        let table = vm.store_create(0, 1).unwrap();
        for i in 0..50 {
            let row = vm.make_array(0, &[Word::Int(i)]).unwrap();
            vm.store_insert(0, table.clone(), row).unwrap();
        }
        vm.step_native_cost = 0;
        vm.store_scan_eq(0, table, 0, Word::Int(7)).unwrap();
        assert!(vm.step_native_cost >= 500, "scan must charge per-row cost");
    }
}
