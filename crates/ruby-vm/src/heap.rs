//! Object-slot allocation, malloc regions, and the mark-&-lazy-sweep GC.
//!
//! Faithful to the CRuby 1.9 structures the paper identifies as conflict
//! points (§4.4 / §5.6):
//!
//! * a **single global free list** threaded through the slots themselves —
//!   its head word is the hottest conflict address in unmodified CRuby;
//! * optional **thread-local free lists** refilled in bulk (256 slots) from
//!   the global list — the paper's conflict removal #2; the global head is
//!   still touched occasionally, which is why §5.6 still attributes >50 %
//!   of remaining read-set conflicts to allocation;
//! * **lazy sweeping**: when the lists run dry the allocating thread sweeps
//!   slots incrementally, writing free-list links into shared memory — the
//!   paper notes this causes additional conflicts;
//! * **GC only ever runs with the GIL held** — triggered inside a
//!   transaction it raises a `Restricted` abort so the TLE runtime falls
//!   back to the GIL and retries;
//! * a **malloc** with global size-class free lists plus an optional
//!   per-thread bump arena (the z/OS HEAPPOOLS option of §5.2).

use machine_sim::ThreadId;

use crate::layout::{ts, Layout, SLOT_WORDS};
use crate::value::{Addr, ObjHeader, ObjKind, Word};
use crate::vm::{Vm, VmAbort};

impl Vm {
    // ---- slot allocation -------------------------------------------------

    /// Allocate one object slot for thread `t`. May trigger lazy sweeping;
    /// triggers GC (restricted in transactions) when the heap is
    /// exhausted.
    pub fn alloc_slot(&mut self, t: ThreadId) -> Result<Addr, VmAbort> {
        self.allocations += 1;
        if self.config.thread_local_free_lists {
            let ts_addr = self.layout.thread_struct(t) + ts::TL_FREE_HEAD;
            let head = self.rd(t, ts_addr)?;
            if let Word::Int(h) = head {
                if h != 0 {
                    let slot = h as Addr;
                    let next = self.rd(t, slot + 1)?;
                    self.wr(t, ts_addr, next)?;
                    return Ok(slot);
                }
            }
            // Refill from the global list in bulk.
            if self.refill_thread_local(t)? {
                let head = self.rd(t, ts_addr)?;
                if let Word::Int(h) = head {
                    if h != 0 {
                        let slot = h as Addr;
                        let next = self.rd(t, slot + 1)?;
                        self.wr(t, ts_addr, next)?;
                        return Ok(slot);
                    }
                }
            }
        } else if let Some(slot) = self.pop_global_free(t)? {
            return Ok(slot);
        }
        // Lists dry: sweep lazily (thread-local partitions under the §5.6
        // extension, the shared cursor otherwise), then GC, then grow.
        if self.config.tl_lazy_sweep {
            if let Some(slot) = self.tl_lazy_sweep(t, 64)? {
                return Ok(slot);
            }
        } else if let Some(slot) = self.lazy_sweep(t, 64)? {
            return Ok(slot);
        }
        // Need a collection — never inside a transaction.
        if self.mem.in_tx(t) {
            return Err(VmAbort::Tx(self.mem.abort_restricted(t)));
        }
        self.gc(t)?;
        if self.config.tl_lazy_sweep {
            if let Some(slot) = self.tl_lazy_sweep(t, usize::MAX)? {
                return Ok(slot);
            }
        } else if let Some(slot) = self.lazy_sweep(t, usize::MAX)? {
            return Ok(slot);
        }
        // Everything is live: grow the heap.
        self.grow_heap(t)?;
        self.pop_global_free(t)?.ok_or_else(|| VmAbort::fatal("heap exhausted even after growth"))
    }

    /// Boot-time slot allocation (no thread, no transactions).
    pub(crate) fn alloc_slot_boot(&mut self) -> Option<Addr> {
        let head = self.mem.peek(self.layout.free_head).clone();
        if let Word::Int(h) = head {
            if h != 0 {
                let slot = h as Addr;
                let next = self.mem.peek(slot + 1).clone();
                self.mem.poke(self.layout.free_head, next);
                self.allocations += 1;
                return Some(slot);
            }
        }
        None
    }

    /// Pop one slot from the global free list.
    fn pop_global_free(&mut self, t: ThreadId) -> Result<Option<Addr>, VmAbort> {
        let head = self.rd(t, self.layout.free_head)?;
        if let Word::Int(h) = head {
            if h != 0 {
                let slot = h as Addr;
                let next = self.rd(t, slot + 1)?;
                self.wr(t, self.layout.free_head, next)?;
                return Ok(Some(slot));
            }
        }
        Ok(None)
    }

    /// Move up to `free_list_refill` slots from the global list to `t`'s
    /// local list. Returns false when the global list was empty.
    fn refill_thread_local(&mut self, t: ThreadId) -> Result<bool, VmAbort> {
        let ts_addr = self.layout.thread_struct(t) + ts::TL_FREE_HEAD;
        let head = self.rd(t, self.layout.free_head)?;
        let Word::Int(mut h) = head else { return Ok(false) };
        if h == 0 {
            return Ok(false);
        }
        let first = h;
        let mut last = h as Addr;
        let mut taken = 1usize;
        while taken < self.config.free_list_refill {
            let next = self.rd(t, last + 1)?;
            match next {
                Word::Int(n) if n != 0 => {
                    last = n as Addr;
                    h = n;
                    taken += 1;
                }
                _ => break,
            }
        }
        let _ = h;
        // Detach: global head ← last.next; last.next ← old TL head (0).
        let after = self.rd(t, last + 1)?;
        self.wr(t, self.layout.free_head, after)?;
        let old_tl = self.rd(t, ts_addr)?;
        self.wr(t, last + 1, old_tl)?;
        self.wr(t, ts_addr, Word::Int(first))?;
        Ok(true)
    }

    /// Sweep up to `budget` slots from the sweep cursor, freeing garbage.
    /// Returns a freshly freed slot if one was found (fast-path reuse).
    fn lazy_sweep(&mut self, t: ThreadId, budget: usize) -> Result<Option<Addr>, VmAbort> {
        let cursor_addr = self.layout.sweep_cursor;
        let Word::Int(mut cursor) = self.rd(t, cursor_addr)? else {
            return Err(VmAbort::fatal("corrupt sweep cursor"));
        };
        let total: usize = self.slot_ranges.iter().map(|&(_, n)| n).sum();
        let mut swept = 0usize;
        let mut found: Option<Addr> = None;
        while (cursor as usize) < total && swept < budget {
            let slot = self.slot_addr(cursor as usize);
            let hdr = self.rd(t, slot)?;
            match hdr.as_header() {
                Some(h) if h.kind == ObjKind::Free => {}
                Some(h) if h.marked => {
                    // Live: clear the mark for the next cycle.
                    self.wr(t, slot, Word::Hdr(ObjHeader { kind: h.kind, marked: false }))?;
                }
                Some(h) => {
                    // Garbage: release buffers, relink as free.
                    self.free_object_buffers(t, slot, h.kind)?;
                    self.wr(t, slot, Word::Hdr(ObjHeader { kind: ObjKind::Free, marked: false }))?;
                    if found.is_none() {
                        found = Some(slot);
                        // Keep the found slot out of any list; caller owns it.
                        self.wr(t, slot + 1, Word::Int(0))?;
                    } else {
                        self.push_free(t, slot)?;
                    }
                }
                None => {
                    // Uninitialized region of a grown heap: link as free.
                    self.wr(t, slot, Word::Hdr(ObjHeader { kind: ObjKind::Free, marked: false }))?;
                    if found.is_none() {
                        found = Some(slot);
                        self.wr(t, slot + 1, Word::Int(0))?;
                    } else {
                        self.push_free(t, slot)?;
                    }
                }
            }
            cursor += 1;
            swept += 1;
        }
        self.wr(t, cursor_addr, Word::Int(cursor))?;
        Ok(found)
    }

    /// Push a freed slot onto the *global* free list. Sweeping always
    /// frees globally (as CRuby does); thread-local lists are only filled
    /// through bulk refills. Sweeping into the sweeper's private list
    /// would let one thread hoard the whole reclaimed heap and starve the
    /// others into immediate re-collections. The global-head writes a
    /// transactional sweep performs are exactly the lazy-sweep conflicts
    /// the paper reports (§5.6).
    fn push_free(&mut self, t: ThreadId, slot: Addr) -> Result<(), VmAbort> {
        let head_addr = self.layout.free_head;
        let old = self.rd(t, head_addr)?;
        self.wr(t, slot + 1, old)?;
        self.wr(t, head_addr, Word::Int(slot as i64))?;
        Ok(())
    }

    /// Address of slot index `i` across ranges.
    pub fn slot_addr(&self, mut i: usize) -> Addr {
        for &(base, n) in &self.slot_ranges {
            if i < n {
                return base + i * SLOT_WORDS;
            }
            i -= n;
        }
        panic!("slot index out of range");
    }

    /// Total slots across ranges.
    pub fn total_slots(&self) -> usize {
        self.slot_ranges.iter().map(|&(_, n)| n).sum()
    }

    // ---- garbage collection ----------------------------------------------

    /// Stop-the-world mark phase. Caller guarantees no transaction is
    /// active on `t`; in the full system this runs with the GIL held, and
    /// the GIL-word write that acquired it already doomed all concurrent
    /// transactions.
    pub fn gc(&mut self, t: ThreadId) -> Result<(), VmAbort> {
        debug_assert!(!self.mem.in_tx(t), "GC inside a transaction");
        self.in_gc = true;
        self.gc_runs += 1;
        let mut worklist: Vec<Addr> = Vec::new();
        // Roots: literal pool, constants, globals, all thread stacks.
        for w in self.pooled_objs.clone() {
            if let Word::Obj(a) = w {
                worklist.push(a);
            }
        }
        for idx in 0..self.const_map.len() {
            let w = self.rd(t, self.layout.cnst(idx))?;
            if let Word::Obj(a) = w {
                worklist.push(a);
            }
        }
        for idx in 0..self.gvar_map.len() {
            let w = self.rd(t, self.layout.gvar(idx))?;
            if let Word::Obj(a) = w {
                worklist.push(a);
            }
        }
        let stacks: Vec<(Addr, Addr, bool, Word)> = self
            .threads
            .iter()
            .map(|c| (c.stack_base, c.sp, c.finished, c.result.clone()))
            .collect();
        for (base, sp, finished, result) in stacks {
            if let Word::Obj(a) = result {
                worklist.push(a);
            }
            if finished {
                continue;
            }
            for addr in base..sp {
                let w = self.rd(t, addr)?;
                if let Word::Obj(a) = w {
                    worklist.push(a);
                }
            }
        }
        let thread_objs: Vec<Addr> =
            self.threads.iter().filter(|c| c.thread_obj != 0).map(|c| c.thread_obj).collect();
        worklist.extend(thread_objs);
        // Rust-local temporaries of the in-flight step (conservative
        // C-stack analogue).
        for w in self.temp_roots.clone() {
            if let Word::Obj(a) = w {
                worklist.push(a);
            }
        }
        // Heap-promoted block environments (see `Vm::promote_env`).
        for (region, total) in self.promoted_envs.clone() {
            for i in 0..total {
                let w = self.rd(t, region + i)?;
                if let Word::Obj(a) = w {
                    worklist.push(a);
                }
            }
        }
        // Mark. Traversal termination uses a host-side visited set, NOT
        // the mark bit: objects are *born* with the mark bit set (so an
        // in-progress lazy sweep cannot reclaim them), and relying on the
        // bit here would skip their children.
        let mut visited: std::collections::HashSet<Addr> = std::collections::HashSet::new();
        while let Some(obj) = worklist.pop() {
            if !visited.insert(obj) {
                continue;
            }
            let hdr = self.rd(t, obj)?;
            let Some(h) = hdr.as_header() else {
                // Conservative root scan can hit non-slot addresses if a
                // stale Obj word survives on a dead stack region; skip.
                continue;
            };
            if h.kind == ObjKind::Free {
                continue;
            }
            if !h.marked {
                self.wr(t, obj, Word::Hdr(ObjHeader { kind: h.kind, marked: true }))?;
            }
            self.scan_children(t, obj, h.kind, &mut worklist)?;
        }
        // Restart the lazy-sweep cursor(s): allocation sweeps from the
        // top (per-thread partition starts under the §5.6 extension).
        if self.config.tl_lazy_sweep {
            self.gc_sweep_total = self.total_slots();
            self.reset_tl_sweep_cursors(t)?;
            // Keep the shared cursor parked at the end so the global
            // sweep never double-frees partitioned slots.
            let total = self.total_slots() as i64;
            self.wr(t, self.layout.sweep_cursor, Word::Int(total))?;
        } else {
            self.wr(t, self.layout.sweep_cursor, Word::Int(0))?;
        }
        self.in_gc = false;
        Ok(())
    }

    fn scan_children(
        &mut self,
        t: ThreadId,
        obj: Addr,
        kind: ObjKind,
        out: &mut Vec<Addr>,
    ) -> Result<(), VmAbort> {
        let push = |w: &Word, out: &mut Vec<Addr>| {
            if let Word::Obj(a) = w {
                out.push(*a);
            }
        };
        match kind {
            ObjKind::Free
            | ObjKind::Float
            | ObjKind::String
            | ObjKind::Regexp
            | ObjKind::Mutex
            | ObjKind::Barrier => {
                // Mutex owner is a thread object — scan it.
                if kind == ObjKind::Mutex {
                    let w = self.rd(t, obj + 1)?;
                    push(&w, out);
                }
            }
            ObjKind::Array => {
                let len = self.rd(t, obj + 1)?.as_int().unwrap_or(0) as usize;
                let buf = self.rd(t, obj + 3)?.as_int().unwrap_or(0) as Addr;
                for i in 0..len {
                    let w = self.rd(t, buf + i)?;
                    push(&w, out);
                }
            }
            ObjKind::Hash => {
                let n = self.rd(t, obj + 1)?.as_int().unwrap_or(0) as usize;
                let buf = self.rd(t, obj + 3)?.as_int().unwrap_or(0) as Addr;
                for i in 0..2 * n {
                    let w = self.rd(t, buf + i)?;
                    push(&w, out);
                }
            }
            ObjKind::Object => {
                let cls = self.rd(t, obj + 1)?;
                push(&cls, out);
                let nivars = self.rd(t, obj + 3)?.as_int().unwrap_or(0) as usize;
                let buf = self.rd(t, obj + 2)?.as_int().unwrap_or(0) as Addr;
                for i in 0..nivars {
                    let w = self.rd(t, buf + i)?;
                    push(&w, out);
                }
            }
            ObjKind::Class => {
                let sup = self.rd(t, obj + 1)?;
                push(&sup, out);
                // Class variables hold values.
                let cv = self.rd(t, obj + 5)?.as_int().unwrap_or(0) as Addr;
                if cv != 0 {
                    let n = self.rd(t, cv)?.as_int().unwrap_or(0) as usize;
                    for i in 0..n {
                        let w = self.rd(t, cv + 2 + 2 * i + 1)?;
                        push(&w, out);
                    }
                }
            }
            ObjKind::Range => {
                let lo = self.rd(t, obj + 1)?;
                let hi = self.rd(t, obj + 2)?;
                push(&lo, out);
                push(&hi, out);
            }
            ObjKind::Thread => {
                let r = self.rd(t, obj + 3)?;
                push(&r, out);
            }
            ObjKind::Proc => {
                let s = self.rd(t, obj + 3)?;
                push(&s, out);
            }
            ObjKind::MatchData => {
                let g = self.rd(t, obj + 1)?;
                push(&g, out);
            }
            ObjKind::Table => {
                let rows = self.rd(t, obj + 1)?;
                push(&rows, out);
            }
        }
        Ok(())
    }

    /// Release the malloc buffers owned by a dead object.
    pub(crate) fn free_object_buffers(
        &mut self,
        t: ThreadId,
        obj: Addr,
        kind: ObjKind,
    ) -> Result<(), VmAbort> {
        match kind {
            ObjKind::Array | ObjKind::Hash => {
                let cap = self.rd(t, obj + 2)?.as_int().unwrap_or(0) as usize;
                let buf = self.rd(t, obj + 3)?.as_int().unwrap_or(0) as Addr;
                if buf != 0 {
                    let words = if kind == ObjKind::Hash { 2 * cap } else { cap };
                    self.mfree(t, buf, words)?;
                }
            }
            ObjKind::String => {
                let buf = self.rd(t, obj + 3)?.as_int().unwrap_or(0) as Addr;
                let cap = self.rd(t, obj + 4)?.as_int().unwrap_or(0) as usize;
                if buf != 0 {
                    self.mfree(t, buf, cap)?;
                }
            }
            ObjKind::Object => {
                let buf = self.rd(t, obj + 2)?.as_int().unwrap_or(0) as Addr;
                let cap = self.rd(t, obj + 4)?.as_int().unwrap_or(0) as usize;
                if buf != 0 {
                    self.mfree(t, buf, cap)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Append a new slot range (heap growth). GIL-held only.
    fn grow_heap(&mut self, t: ThreadId) -> Result<(), VmAbort> {
        let current = self.total_slots();
        if current >= self.config.max_heap_slots {
            return Err(VmAbort::fatal(format!(
                "heap limit reached ({current} slots; raise VmConfig::max_heap_slots)"
            )));
        }
        let add = (current / 2).max(1024).min(self.config.max_heap_slots - current);
        let base = self.mem.size();
        self.mem.grow(add * SLOT_WORDS, Word::Uninit);
        self.attribution.register_region(base, crate::layout::LineOwner::HeapSlots);
        self.slot_ranges.push((base, add));
        self.heap_grows += 1;
        // Link the new slots straight onto the global free list.
        for i in (0..add).rev() {
            let slot = base + i * SLOT_WORDS;
            let old = self.rd(t, self.layout.free_head)?;
            self.wr(t, slot, Word::Hdr(ObjHeader { kind: ObjKind::Free, marked: false }))?;
            self.wr(t, slot + 1, old)?;
            self.wr(t, self.layout.free_head, Word::Int(slot as i64))?;
        }
        Ok(())
    }

    // ---- malloc ------------------------------------------------------------

    /// Allocate a buffer of at least `words` words. Uses the per-thread
    /// bump arena when `malloc_thread_local` is set, else the global
    /// size-class lists + bump pointer (the conflict-prone default
    /// `malloc` of z/OS, §5.2/§5.5).
    pub fn malloc(&mut self, t: ThreadId, words: usize) -> Result<(Addr, usize), VmAbort> {
        let cls = Layout::size_class(words);
        let cap = Layout::class_words(cls);
        if cap < words {
            return Err(VmAbort::fatal(format!("allocation of {words} words too large")));
        }
        // Freed buffers live on global size-class lists; check there first
        // so memory is actually reused. Even with HEAPPOOLS the real
        // allocator touches shared metadata occasionally — the paper saw
        // exactly these residual malloc conflicts on zEC12 (§5.5).
        let head_addr = self.layout.malloc_class_base + cls;
        let head = self.rd(t, head_addr)?;
        if let Word::Int(h) = head {
            if h != 0 {
                let next = self.rd(t, h as Addr)?;
                self.wr(t, head_addr, next)?;
                return Ok((h as Addr, cap));
            }
        }
        if self.config.malloc_thread_local && cap <= self.config.tl_malloc_chunk / 2 {
            let sbase = self.layout.thread_struct(t);
            let bump = self.rd(t, sbase + ts::TL_MALLOC_BUMP)?.as_int().unwrap_or(0) as Addr;
            let end = self.rd(t, sbase + ts::TL_MALLOC_END)?.as_int().unwrap_or(0) as Addr;
            if bump != 0 && bump + cap <= end {
                self.wr(t, sbase + ts::TL_MALLOC_BUMP, Word::Int((bump + cap) as i64))?;
                return Ok((bump, cap));
            }
            // Grab a fresh chunk from the global bump region.
            let chunk = self.config.tl_malloc_chunk;
            let (cbase, _) = self.global_bump(t, chunk)?;
            self.wr(t, sbase + ts::TL_MALLOC_BUMP, Word::Int((cbase + cap) as i64))?;
            self.wr(t, sbase + ts::TL_MALLOC_END, Word::Int((cbase + chunk) as i64))?;
            return Ok((cbase, cap));
        }
        // Global path: bump allocation (the class list was checked above).
        self.global_bump(t, cap)
    }

    fn global_bump(&mut self, t: ThreadId, cap: usize) -> Result<(Addr, usize), VmAbort> {
        let bump = self.rd(t, self.layout.malloc_bump)?.as_int().unwrap_or(0) as Addr;
        let end = self.rd(t, self.layout.malloc_end)?.as_int().unwrap_or(0) as Addr;
        if bump + cap > end {
            // The arena is exhausted: mmap more, like a real malloc. Memory
            // growth is GIL-only (all transactions must be quiesced), so
            // inside a transaction this is a persistent abort and the
            // retry grows under the GIL.
            if self.mem.in_tx(t) {
                return Err(VmAbort::Tx(self.mem.abort_restricted(t)));
            }
            let extra = (self.config.malloc_words / 2).max(cap + 1024);
            let base = self.mem.size();
            self.mem.grow(extra, Word::Uninit);
            self.attribution.register_region(base, crate::layout::LineOwner::MallocArea);
            self.wr(t, self.layout.malloc_bump, Word::Int((base + cap) as i64))?;
            self.wr(t, self.layout.malloc_end, Word::Int((base + extra) as i64))?;
            self.heap_grows += 1;
            return Ok((base, cap));
        }
        self.wr(t, self.layout.malloc_bump, Word::Int((bump + cap) as i64))?;
        Ok((bump, cap))
    }

    /// Return a buffer to its size-class free list (first word becomes the
    /// link). Buffers from thread-local arenas are returned to the global
    /// lists too — arenas never shrink, like HEAPPOOLS.
    pub fn mfree(&mut self, t: ThreadId, buf: Addr, words: usize) -> Result<(), VmAbort> {
        if words == 0 || buf == 0 {
            return Ok(());
        }
        let cls = Layout::size_class(words);
        let head_addr = self.layout.malloc_class_base + cls;
        let old = self.rd(t, head_addr)?;
        self.wr(t, buf, old)?;
        self.wr(t, head_addr, Word::Int(buf as i64))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use machine_sim::MachineProfile;

    fn vm() -> Vm {
        Vm::boot("nil", VmConfig::default(), &MachineProfile::generic(2)).unwrap()
    }

    #[test]
    fn alloc_returns_distinct_slots() {
        let mut vm = vm();
        let a = vm.alloc_slot(0).unwrap();
        let b = vm.alloc_slot(0).unwrap();
        assert_ne!(a, b);
        assert_eq!((a as i64 - b as i64).unsigned_abs() % SLOT_WORDS as u64, 0);
    }

    #[test]
    fn thread_local_lists_refill_in_bulk() {
        let mut vm = vm();
        assert!(vm.config.thread_local_free_lists);
        // First allocation triggers a bulk refill; the global head moves by
        // ~refill slots at once.
        let _ = vm.alloc_slot(1).unwrap();
        let tl = vm.mem.peek(vm.layout.thread_struct(1) + ts::TL_FREE_HEAD).clone();
        assert!(matches!(tl, Word::Int(h) if h != 0), "local list holds the rest");
    }

    #[test]
    fn global_list_mode_pops_head() {
        let cfg = VmConfig { thread_local_free_lists: false, ..VmConfig::default() };
        let mut vm = Vm::boot("nil", cfg, &MachineProfile::generic(2)).unwrap();
        let before = vm.mem.peek(vm.layout.free_head).clone();
        let a = vm.alloc_slot(0).unwrap();
        assert_eq!(before, Word::Int(a as i64), "allocates from the head");
    }

    #[test]
    fn malloc_size_classes_and_free_roundtrip() {
        let mut vm = vm();
        let (buf, cap) = vm.malloc(0, 10).unwrap();
        assert!(cap >= 10);
        vm.mfree(0, buf, cap).unwrap();
        // Freed global-class buffers are reused (global path).
        let cfg = VmConfig { malloc_thread_local: false, ..VmConfig::default() };
        let mut vm2 = Vm::boot("nil", cfg, &MachineProfile::generic(2)).unwrap();
        let (b1, c1) = vm2.malloc(0, 10).unwrap();
        vm2.mfree(0, b1, c1).unwrap();
        let (b2, _) = vm2.malloc(0, 10).unwrap();
        assert_eq!(b1, b2, "size-class free list reuses the buffer");
    }

    #[test]
    fn gc_reclaims_unreachable_slots() {
        let cfg = VmConfig { heap_slots: 512, max_heap_slots: 512, ..VmConfig::default() }; // forbid growth: GC must reclaim
        let mut vm = Vm::boot("nil", cfg, &MachineProfile::generic(2)).unwrap();
        // Allocate and drop many floats; the heap must not run out.
        for i in 0..5_000 {
            let slot = vm.alloc_slot(0).unwrap();
            vm.mem.poke(slot, Word::Hdr(ObjHeader { kind: ObjKind::Float, marked: false }));
            vm.mem.poke(slot + 1, Word::F64(i as f64));
        }
        assert!(vm.gc_runs >= 1, "GC must have run");
    }

    #[test]
    fn heap_grows_when_everything_is_live() {
        let cfg = VmConfig { heap_slots: 256, max_heap_slots: 4_096, ..VmConfig::default() };
        let mut vm = Vm::boot("nil", cfg, &MachineProfile::generic(2)).unwrap();
        // Keep everything alive via a gvar-rooted chain: store object addrs
        // into an array buffer we root through a constant.
        let mut kept = Vec::new();
        for i in 0..600 {
            let slot = vm.alloc_slot(0).unwrap();
            vm.mem.poke(slot, Word::Hdr(ObjHeader { kind: ObjKind::Float, marked: false }));
            vm.mem.poke(slot + 1, Word::F64(i as f64));
            kept.push(slot);
            // Root it: park in the result of thread 0 chained via an Array
            // would be complex; instead pin via pooled objects list.
            vm.pooled_objs.push(Word::Obj(slot));
        }
        assert!(vm.heap_grows >= 1, "heap must grow when all slots are live");
        assert!(vm.total_slots() > 256);
    }

    #[test]
    fn allocation_inside_transaction_never_runs_gc() {
        let cfg = VmConfig { heap_slots: 300, max_heap_slots: 300, ..VmConfig::default() };
        let mut vm = Vm::boot("nil", cfg, &MachineProfile::generic(2)).unwrap();
        let budgets = htm_sim::Budgets { read_lines: 1 << 20, write_lines: 1 << 20 };
        // Exhaust the free lists outside a transaction first.
        for _ in 0..400 {
            let Ok(slot) = vm.alloc_slot(0) else { break };
            vm.mem.poke(slot, Word::Hdr(ObjHeader { kind: ObjKind::Float, marked: false }));
            vm.pooled_objs.push(Word::Obj(slot)); // keep live
        }
        // Now inside a transaction the allocator must abort, not collect.
        vm.mem.begin(0, budgets).unwrap();
        let before_gc = vm.gc_runs;
        let r = vm.alloc_slot(0);
        match r {
            Err(VmAbort::Tx(reason)) => assert!(reason.is_persistent()),
            other => panic!("expected restricted abort, got {other:?}"),
        }
        assert_eq!(vm.gc_runs, before_gc, "no GC inside a transaction");
        assert!(!vm.mem.in_tx(0), "transaction rolled back");
    }
}
