//! Builtin (C-level) methods.
//!
//! These correspond to CRuby's C-implemented core methods: they execute as
//! one bytecode (`send`) with **no yield points inside** — exactly why the
//! paper sees footprint-overflow aborts in the regex library and method
//! invocation paths (§5.6). Their simulated-memory traffic (string
//! shadows, array buffers, table scans) is real; host-only work is charged
//! via `Vm::step_native_cost`.
//!
//! Blocking builtins (`Thread#join`, `Mutex#lock`, `Barrier#wait`,
//! `Kernel#io_wait`) abort the enclosing transaction with a *persistent*
//! reason when called transactionally — a system call cannot run inside an
//! HTM transaction — so the TLE runtime falls back to the GIL and the
//! operation re-executes there, mirroring CRuby's blocking regions.

use machine_sim::ThreadId;

use crate::interp::BResult;
use crate::object::MethodEntry;

use crate::value::{Addr, ObjKind, Word};
use crate::vm::{BlockOn, ThreadCtx, Vm, VmAbort, WakeKey};

/// Builtin function signature: (vm, thread, receiver, args, block proc).
pub type BFn = fn(&mut Vm, ThreadId, Word, Vec<Word>, Addr) -> Result<BResult, VmAbort>;

/// Dispatch a builtin by id.
pub fn call(
    vm: &mut Vm,
    t: ThreadId,
    id: u32,
    recv: Word,
    args: Vec<Word>,
    block: Addr,
) -> Result<BResult, VmAbort> {
    let f = vm.builtins[id as usize];
    vm.step_native_cost += 1; // the C-call transition itself
    f(vm, t, recv, args, block)
}

/// Register every builtin on the core classes. Boot-time only.
pub fn install(vm: &mut Vm) {
    fn reg(vm: &mut Vm, cls: Addr, name: &str, on_self: bool, f: BFn) {
        let id = vm.builtins.len() as u32;
        vm.builtins.push(f);
        vm.boot_define(cls, name, MethodEntry::Builtin(id), on_self);
    }
    let c = vm.classes.clone();
    // Kernel-ish methods on Object.
    reg(vm, c.object, "puts", false, bi_puts);
    reg(vm, c.object, "print", false, bi_print);
    reg(vm, c.object, "p", false, bi_p);
    reg(vm, c.object, "rand", false, bi_rand);
    reg(vm, c.object, "io_wait", false, bi_io_wait);
    reg(vm, c.object, "conn_wait", false, bi_conn_wait);
    reg(vm, c.object, "srv_mark", false, bi_srv_mark);
    reg(vm, c.object, "to_s", false, bi_to_s);
    reg(vm, c.object, "inspect", false, bi_inspect);
    reg(vm, c.object, "class", false, bi_class);
    reg(vm, c.object, "nil?", false, bi_nil_p);
    // Class.
    reg(vm, c.class_cls, "new", false, bi_class_new);
    reg(vm, c.class_cls, "name", false, bi_class_name);
    // Integer.
    reg(vm, c.integer, "to_i", false, bi_identity);
    reg(vm, c.integer, "to_f", false, bi_int_to_f);
    reg(vm, c.integer, "abs", false, bi_int_abs);
    // Float.
    reg(vm, c.float_cls, "to_f", false, bi_identity);
    reg(vm, c.float_cls, "to_i", false, bi_float_to_i);
    reg(vm, c.float_cls, "abs", false, bi_float_abs);
    reg(vm, c.float_cls, "floor", false, bi_float_floor);
    reg(vm, c.float_cls, "ceil", false, bi_float_ceil);
    reg(vm, c.float_cls, "round", false, bi_float_round);
    reg(vm, c.float_cls, "nan?", false, bi_float_nan);
    // Math (static).
    reg(vm, c.math, "sqrt", true, bi_math_sqrt);
    reg(vm, c.math, "sin", true, bi_math_sin);
    reg(vm, c.math, "cos", true, bi_math_cos);
    reg(vm, c.math, "exp", true, bi_math_exp);
    reg(vm, c.math, "log", true, bi_math_log);
    reg(vm, c.math, "pow", true, bi_math_pow);
    reg(vm, c.math, "pi", true, bi_math_pi);
    // String.
    reg(vm, c.string, "length", false, bi_str_len);
    reg(vm, c.string, "size", false, bi_str_len);
    reg(vm, c.string, "empty?", false, bi_str_empty);
    reg(vm, c.string, "to_i", false, bi_str_to_i);
    reg(vm, c.string, "to_f", false, bi_str_to_f);
    reg(vm, c.string, "to_s", false, bi_identity);
    reg(vm, c.string, "to_sym", false, bi_str_to_sym);
    reg(vm, c.string, "upcase", false, bi_str_upcase);
    reg(vm, c.string, "downcase", false, bi_str_downcase);
    reg(vm, c.string, "reverse", false, bi_str_reverse);
    reg(vm, c.string, "strip", false, bi_str_strip);
    reg(vm, c.string, "include?", false, bi_str_include);
    reg(vm, c.string, "start_with?", false, bi_str_start_with);
    reg(vm, c.string, "end_with?", false, bi_str_end_with);
    reg(vm, c.string, "index", false, bi_str_index);
    reg(vm, c.string, "split", false, bi_str_split);
    reg(vm, c.string, "sub", false, bi_str_sub);
    reg(vm, c.string, "gsub", false, bi_str_gsub);
    reg(vm, c.string, "slice", false, bi_str_slice);
    reg(vm, c.string, "dup", false, bi_str_dup);
    reg(vm, c.string, "*", false, bi_str_repeat);
    // Array.
    reg(vm, c.array, "new", true, bi_array_new);
    reg(vm, c.array, "length", false, bi_arr_len);
    reg(vm, c.array, "size", false, bi_arr_len);
    reg(vm, c.array, "empty?", false, bi_arr_empty);
    reg(vm, c.array, "push", false, bi_arr_push);
    reg(vm, c.array, "pop", false, bi_arr_pop);
    reg(vm, c.array, "shift", false, bi_arr_shift);
    reg(vm, c.array, "first", false, bi_arr_first);
    reg(vm, c.array, "last", false, bi_arr_last);
    reg(vm, c.array, "clear", false, bi_arr_clear);
    reg(vm, c.array, "include?", false, bi_arr_include);
    reg(vm, c.array, "index", false, bi_arr_index);
    reg(vm, c.array, "join", false, bi_arr_join);
    reg(vm, c.array, "sort!", false, bi_arr_sort_bang);
    reg(vm, c.array, "sort", false, bi_arr_sort);
    reg(vm, c.array, "min", false, bi_arr_min);
    reg(vm, c.array, "max", false, bi_arr_max);
    reg(vm, c.array, "dup", false, bi_arr_dup);
    reg(vm, c.array, "concat", false, bi_arr_concat);
    reg(vm, c.array, "delete_at", false, bi_arr_delete_at);
    // Hash.
    reg(vm, c.hash, "new", true, bi_hash_new);
    reg(vm, c.hash, "size", false, bi_hash_len);
    reg(vm, c.hash, "length", false, bi_hash_len);
    reg(vm, c.hash, "empty?", false, bi_hash_empty);
    reg(vm, c.hash, "key?", false, bi_hash_key_p);
    reg(vm, c.hash, "has_key?", false, bi_hash_key_p);
    reg(vm, c.hash, "keys", false, bi_hash_keys);
    reg(vm, c.hash, "values", false, bi_hash_values);
    reg(vm, c.hash, "delete", false, bi_hash_delete);
    // Range.
    reg(vm, c.range, "begin", false, bi_range_begin);
    reg(vm, c.range, "first", false, bi_range_begin);
    reg(vm, c.range, "end", false, bi_range_end);
    reg(vm, c.range, "last", false, bi_range_end);
    reg(vm, c.range, "exclude_end?", false, bi_range_excl);
    // Thread.
    reg(vm, c.thread_cls, "new", true, bi_thread_new);
    reg(vm, c.thread_cls, "current", true, bi_thread_current);
    reg(vm, c.thread_cls, "join", false, bi_thread_join);
    reg(vm, c.thread_cls, "value", false, bi_thread_value);
    reg(vm, c.thread_cls, "alive?", false, bi_thread_alive);
    // Mutex.
    reg(vm, c.mutex_cls, "new", true, bi_mutex_new);
    reg(vm, c.mutex_cls, "lock", false, bi_mutex_lock);
    reg(vm, c.mutex_cls, "unlock", false, bi_mutex_unlock);
    reg(vm, c.mutex_cls, "try_lock", false, bi_mutex_try_lock);
    // Barrier.
    reg(vm, c.barrier_cls, "new", true, bi_barrier_new);
    reg(vm, c.barrier_cls, "wait", false, bi_barrier_wait);
    // Regexp.
    reg(vm, c.regexp, "new", true, bi_regexp_new);
    reg(vm, c.regexp, "match", false, bi_regexp_match);
    reg(vm, c.regexp, "match?", false, bi_regexp_match_p);
    reg(vm, c.regexp, "source", false, bi_regexp_source);
    // Proc.
    reg(vm, c.proc_cls, "call", false, bi_proc_call);
    // Store (the Rails database stand-in).
    reg(vm, c.store, "create", true, crate::store::bi_store_create);
    reg(vm, c.store, "insert", false, crate::store::bi_store_insert);
    reg(vm, c.store, "count", false, crate::store::bi_store_count);
    reg(vm, c.store, "scan_eq", false, crate::store::bi_store_scan_eq);
    reg(vm, c.store, "all", false, crate::store::bi_store_all);
}

// ---- helpers ----------------------------------------------------------------

fn arg_int(args: &[Word], i: usize, what: &str) -> Result<i64, VmAbort> {
    args.get(i)
        .and_then(|w| w.as_int())
        .ok_or_else(|| VmAbort::fatal(format!("{what} expects an Integer argument {i}")))
}

fn recv_slot(vm: &mut Vm, t: ThreadId, recv: &Word, kind: ObjKind) -> Result<Addr, VmAbort> {
    let slot =
        recv.as_obj().ok_or_else(|| VmAbort::fatal(format!("receiver is not a {kind:?}")))?;
    if vm.kind_of(t, slot)? != kind {
        return Err(VmAbort::fatal(format!("receiver is not a {kind:?}")));
    }
    Ok(slot)
}

fn str_arg(vm: &mut Vm, t: ThreadId, args: &[Word], i: usize) -> Result<String, VmAbort> {
    let w =
        args.get(i).ok_or_else(|| VmAbort::fatal(format!("missing string argument {i}")))?.clone();
    let slot = recv_slot(vm, t, &w, ObjKind::String)?;
    Ok(vm.string_content(t, slot)?.to_string())
}

/// Blocking is a system call: inside a transaction it must abort
/// persistently so the runtime falls back on the GIL.
fn forbid_in_tx(vm: &mut Vm, t: ThreadId) -> Result<(), VmAbort> {
    if vm.mem.in_tx(t) {
        return Err(VmAbort::Tx(vm.mem.abort_restricted(t)));
    }
    Ok(())
}

// ---- Kernel ------------------------------------------------------------------

fn bi_puts(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    // Writing to stdout is I/O: CRuby releases the GIL around it, and an
    // aborted transaction must not leave phantom output — restricted.
    forbid_in_tx(vm, t)?;
    if args.is_empty() {
        vm.stdout.push(String::new());
    }
    for a in &args {
        // `puts [1,2]` prints one element per line, like Ruby.
        if let Word::Obj(slot) = a {
            if vm.kind_of(t, *slot)? == ObjKind::Array {
                let n = vm.array_len(t, *slot)?;
                for i in 0..n {
                    let e = vm.array_get(t, *slot, i as i64)?;
                    let s = vm.display(t, &e)?;
                    vm.stdout.push(s);
                }
                continue;
            }
        }
        let s = vm.display(t, a)?;
        vm.stdout.push(s);
    }
    vm.step_native_cost += 50;
    Ok(BResult::Value(Word::Nil))
}

fn bi_print(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    // Writing to stdout is I/O: CRuby releases the GIL around it, and an
    // aborted transaction must not leave phantom output — restricted.
    forbid_in_tx(vm, t)?;
    let mut s = String::new();
    for a in &args {
        s.push_str(&vm.display(t, a)?);
    }
    match vm.stdout.last_mut() {
        Some(last) => last.push_str(&s),
        None => vm.stdout.push(s),
    }
    vm.step_native_cost += 30;
    Ok(BResult::Value(Word::Nil))
}

fn bi_p(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    // Writing to stdout is I/O: CRuby releases the GIL around it, and an
    // aborted transaction must not leave phantom output — restricted.
    forbid_in_tx(vm, t)?;
    for a in &args {
        let s = vm.inspect(t, a)?;
        vm.stdout.push(s);
    }
    vm.step_native_cost += 50;
    Ok(BResult::Value(args.into_iter().next().unwrap_or(Word::Nil)))
}

fn bi_rand(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let r = vm.next_rand();
    match args.first() {
        Some(Word::Int(n)) if *n > 0 => Ok(BResult::Value(Word::Int((r % *n as u64) as i64))),
        None => {
            let f = (r >> 11) as f64 / (1u64 << 53) as f64;
            Ok(BResult::Value(vm.make_float(t, f)?))
        }
        _ => Err(VmAbort::fatal("rand expects a positive Integer or nothing")),
    }
}

fn bi_io_wait(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    forbid_in_tx(vm, t)?;
    let units = args.first().and_then(|w| w.as_int()).unwrap_or(1).max(1) as u32;
    Ok(BResult::Block(BlockOn::Io(units)))
}

fn bi_conn_wait(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    forbid_in_tx(vm, t)?;
    let conn = args.first().and_then(|w| w.as_int()).unwrap_or(0).max(0) as u64;
    let seq = args.get(1).and_then(|w| w.as_int()).unwrap_or(0).max(0) as u64;
    let units = vm.conn.latency_units(conn, seq, machine_sim::ConnEvent::Request);
    Ok(BResult::Block(BlockOn::Io(units)))
}

fn bi_srv_mark(
    vm: &mut Vm,
    _t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    // Deliberately NOT restricted: marks must be emittable from inside a
    // transaction (the executor escrows them until commit), otherwise every
    // latency observation would force a GIL fallback and perturb the very
    // timings being measured.
    let kind = args.first().and_then(|w| w.as_int()).unwrap_or(0).clamp(0, 255) as u8;
    let id = args.get(1).and_then(|w| w.as_int()).unwrap_or(0);
    vm.pending_marks.push((kind, id));
    vm.step_native_cost += 1;
    Ok(BResult::Value(Word::Nil))
}

fn bi_to_s(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let s = vm.display(t, &recv)?;
    Ok(BResult::Value(vm.make_string(t, &s)?))
}

fn bi_inspect(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let s = vm.inspect(t, &recv)?;
    Ok(BResult::Value(vm.make_string(t, &s)?))
}

fn bi_class(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let cls = vm.class_of(t, &recv)?;
    Ok(BResult::Value(Word::Obj(cls)))
}

fn bi_nil_p(
    _vm: &mut Vm,
    _t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    Ok(BResult::Value(if recv == Word::Nil { Word::True } else { Word::False }))
}

fn bi_identity(
    _vm: &mut Vm,
    _t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    Ok(BResult::Value(recv))
}

// ---- Class --------------------------------------------------------------------

fn bi_class_new(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    block: Addr,
) -> Result<BResult, VmAbort> {
    let cls = recv_slot(vm, t, &recv, ObjKind::Class)?;
    let obj = vm.make_object(t, cls)?;
    let init = vm.program.symbols.lookup("initialize").expect("interned");
    match vm.lookup_method(t, cls, init)? {
        Some(MethodEntry::Iseq(iseq)) => Ok(BResult::Frame {
            iseq,
            self_w: obj.clone(),
            args,
            block,
            under: Some(obj),
            discard: true,
            ep: 0,
        }),
        Some(MethodEntry::Builtin(_)) => Err(VmAbort::fatal("builtin initialize is not supported")),
        None => Ok(BResult::Value(obj)),
    }
}

fn bi_class_name(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let cls = recv_slot(vm, t, &recv, ObjKind::Class)?;
    let name = vm.rd(t, cls + 6)?;
    let s = match name {
        Word::Sym(s) => vm.program.symbols.name(s).to_string(),
        _ => "?".into(),
    };
    Ok(BResult::Value(vm.make_string(t, &s)?))
}

// ---- numerics -------------------------------------------------------------------

fn bi_int_to_f(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let i = recv.as_int().ok_or_else(|| VmAbort::fatal("to_f on non-Integer"))?;
    Ok(BResult::Value(vm.make_float(t, i as f64)?))
}

fn bi_int_abs(
    _vm: &mut Vm,
    _t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let i = recv.as_int().ok_or_else(|| VmAbort::fatal("abs on non-Integer"))?;
    Ok(BResult::Value(Word::Int(i.abs())))
}

fn float_of(vm: &mut Vm, t: ThreadId, recv: &Word) -> Result<f64, VmAbort> {
    vm.as_number(t, recv)?.ok_or_else(|| VmAbort::fatal("receiver is not numeric"))
}

fn bi_float_to_i(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let f = float_of(vm, t, &recv)?;
    Ok(BResult::Value(Word::Int(f.trunc() as i64)))
}

fn bi_float_abs(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let f = float_of(vm, t, &recv)?;
    Ok(BResult::Value(vm.make_float(t, f.abs())?))
}

fn bi_float_floor(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let f = float_of(vm, t, &recv)?;
    Ok(BResult::Value(Word::Int(f.floor() as i64)))
}

fn bi_float_ceil(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let f = float_of(vm, t, &recv)?;
    Ok(BResult::Value(Word::Int(f.ceil() as i64)))
}

fn bi_float_round(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let f = float_of(vm, t, &recv)?;
    match args.first().and_then(|w| w.as_int()) {
        Some(digits) => {
            let p = 10f64.powi(digits as i32);
            Ok(BResult::Value(vm.make_float(t, (f * p).round() / p)?))
        }
        None => Ok(BResult::Value(Word::Int(f.round() as i64))),
    }
}

fn bi_float_nan(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let f = float_of(vm, t, &recv)?;
    Ok(BResult::Value(if f.is_nan() { Word::True } else { Word::False }))
}

macro_rules! math_fn {
    ($name:ident, $op:expr) => {
        fn $name(
            vm: &mut Vm,
            t: ThreadId,
            _recv: Word,
            args: Vec<Word>,
            _b: Addr,
        ) -> Result<BResult, VmAbort> {
            let x = vm
                .as_number(t, args.first().unwrap_or(&Word::Nil))?
                .ok_or_else(|| VmAbort::fatal("Math function expects a numeric argument"))?;
            let f: fn(f64) -> f64 = $op;
            vm.step_native_cost += 20;
            Ok(BResult::Value(vm.make_float(t, f(x))?))
        }
    };
}

math_fn!(bi_math_sqrt, f64::sqrt);
math_fn!(bi_math_sin, f64::sin);
math_fn!(bi_math_cos, f64::cos);
math_fn!(bi_math_exp, f64::exp);
math_fn!(bi_math_log, f64::ln);

fn bi_math_pow(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let x = vm
        .as_number(t, args.first().unwrap_or(&Word::Nil))?
        .ok_or_else(|| VmAbort::fatal("Math.pow expects numerics"))?;
    let y = vm
        .as_number(t, args.get(1).unwrap_or(&Word::Nil))?
        .ok_or_else(|| VmAbort::fatal("Math.pow expects numerics"))?;
    vm.step_native_cost += 25;
    Ok(BResult::Value(vm.make_float(t, x.powf(y))?))
}

fn bi_math_pi(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    Ok(BResult::Value(vm.make_float(t, std::f64::consts::PI)?))
}

// ---- String ---------------------------------------------------------------------

fn self_string(vm: &mut Vm, t: ThreadId, recv: &Word) -> Result<(Addr, String), VmAbort> {
    let slot = recv_slot(vm, t, recv, ObjKind::String)?;
    let s = vm.string_content(t, slot)?.to_string();
    Ok((slot, s))
}

fn bi_str_len(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    Ok(BResult::Value(Word::Int(s.len() as i64)))
}

fn bi_str_empty(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    Ok(BResult::Value(if s.is_empty() { Word::True } else { Word::False }))
}

fn bi_str_to_i(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let trimmed = s.trim_start();
    let mut end = 0;
    let bytes = trimmed.as_bytes();
    if !bytes.is_empty() && (bytes[0] == b'-' || bytes[0] == b'+') {
        end = 1;
    }
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    let v = trimmed[..end].parse::<i64>().unwrap_or(0);
    Ok(BResult::Value(Word::Int(v)))
}

fn bi_str_to_f(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let v = s.trim().parse::<f64>().unwrap_or(0.0);
    Ok(BResult::Value(vm.make_float(t, v)?))
}

fn bi_str_to_sym(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let sym = vm.program.intern(&s);
    Ok(BResult::Value(Word::Sym(sym)))
}

macro_rules! str_map {
    ($name:ident, |$s:ident| $body:expr) => {
        fn $name(
            vm: &mut Vm,
            t: ThreadId,
            recv: Word,
            _a: Vec<Word>,
            _b: Addr,
        ) -> Result<BResult, VmAbort> {
            let (_slot, $s) = self_string(vm, t, &recv)?;
            vm.step_native_cost += ($s.len() / 4) as u64;
            let out: String = $body;
            Ok(BResult::Value(vm.make_string(t, &out)?))
        }
    };
}

str_map!(bi_str_upcase, |s| s.to_uppercase());
str_map!(bi_str_downcase, |s| s.to_lowercase());
str_map!(bi_str_reverse, |s| s.chars().rev().collect());
str_map!(bi_str_strip, |s| s.trim().to_string());
str_map!(bi_str_dup, |s| s);

fn bi_str_include(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let needle = str_arg(vm, t, &args, 0)?;
    vm.step_native_cost += (s.len() / 4) as u64;
    Ok(BResult::Value(if s.contains(&needle) { Word::True } else { Word::False }))
}

fn bi_str_start_with(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let needle = str_arg(vm, t, &args, 0)?;
    Ok(BResult::Value(if s.starts_with(&needle) { Word::True } else { Word::False }))
}

fn bi_str_end_with(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let needle = str_arg(vm, t, &args, 0)?;
    Ok(BResult::Value(if s.ends_with(&needle) { Word::True } else { Word::False }))
}

fn bi_str_index(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let needle = str_arg(vm, t, &args, 0)?;
    vm.step_native_cost += (s.len() / 4) as u64;
    Ok(BResult::Value(match s.find(&needle) {
        Some(i) => Word::Int(i as i64),
        None => Word::Nil,
    }))
}

fn bi_str_split(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    vm.step_native_cost += (s.len() / 2) as u64;
    let parts: Vec<String> = if args.is_empty() {
        s.split_whitespace().map(|p| p.to_string()).collect()
    } else {
        let sep = str_arg(vm, t, &args, 0)?;
        s.split(&sep as &str).map(|p| p.to_string()).collect()
    };
    let mut words = Vec::with_capacity(parts.len());
    for p in parts {
        let w = vm.make_string(t, &p)?;
        vm.temp_roots.push(w.clone()); // pin across the following allocs
        words.push(w);
    }
    Ok(BResult::Value(vm.make_array(t, &words)?))
}

/// Pattern for `sub`/`gsub`: literal string or Regexp.
fn sub_impl(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    all: bool,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let rep = str_arg(vm, t, &args, 1)?;
    let pat = args
        .first()
        .cloned()
        .ok_or_else(|| VmAbort::fatal("sub/gsub expects (pattern, replacement)"))?;
    let out = match &pat {
        Word::Obj(p) if vm.kind_of(t, *p)? == ObjKind::Regexp => {
            let re = vm.get_regex(t, *p)?;
            if all {
                let (o, _n, steps) = re.replace_all(&s, &rep);
                vm.step_native_cost += steps as u64;
                o
            } else {
                let (o, _hit, steps) = re.replace_first(&s, &rep);
                vm.step_native_cost += steps as u64;
                o
            }
        }
        _ => {
            let lit = str_arg(vm, t, &args, 0)?;
            vm.step_native_cost += s.len() as u64;
            if all {
                s.replace(&lit as &str, &rep)
            } else {
                s.replacen(&lit as &str, &rep, 1)
            }
        }
    };
    Ok(BResult::Value(vm.make_string(t, &out)?))
}

fn bi_str_sub(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    sub_impl(vm, t, recv, args, false)
}

fn bi_str_gsub(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    sub_impl(vm, t, recv, args, true)
}

fn bi_str_repeat(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let n = arg_int(&args, 0, "String#*")?.max(0) as usize;
    let out = s.repeat(n);
    vm.step_native_cost += (out.len() / 4) as u64;
    Ok(BResult::Value(vm.make_string(t, &out)?))
}

fn bi_str_slice(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (_slot, s) = self_string(vm, t, &recv)?;
    let start = arg_int(&args, 0, "slice")?;
    let len = args.get(1).and_then(|w| w.as_int()).unwrap_or(1);
    let n = s.len() as i64;
    let start = if start < 0 { n + start } else { start };
    if start < 0 || start > n || len < 0 {
        return Ok(BResult::Value(Word::Nil));
    }
    let end = (start + len).min(n);
    let out = &s[start as usize..end as usize];
    Ok(BResult::Value(vm.make_string(t, out)?))
}

// ---- Array -----------------------------------------------------------------------

fn bi_array_new(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let n = args.first().and_then(|w| w.as_int()).unwrap_or(0).max(0) as usize;
    let default = args.get(1).cloned().unwrap_or(Word::Nil);
    let elems = vec![default; n];
    Ok(BResult::Value(vm.make_array(t, &elems)?))
}

fn self_array(vm: &mut Vm, t: ThreadId, recv: &Word) -> Result<Addr, VmAbort> {
    recv_slot(vm, t, recv, ObjKind::Array)
}

fn bi_arr_len(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let n = vm.array_len(t, slot)?;
    Ok(BResult::Value(Word::Int(n as i64)))
}

fn bi_arr_empty(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let n = vm.array_len(t, slot)?;
    Ok(BResult::Value(if n == 0 { Word::True } else { Word::False }))
}

fn bi_arr_push(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    for a in args {
        vm.array_push(t, slot, a)?;
    }
    Ok(BResult::Value(recv))
}

fn bi_arr_pop(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let n = vm.array_len(t, slot)?;
    if n == 0 {
        return Ok(BResult::Value(Word::Nil));
    }
    let w = vm.array_get(t, slot, n as i64 - 1)?;
    vm.wr(t, slot + 1, Word::Int(n as i64 - 1))?;
    Ok(BResult::Value(w))
}

fn bi_arr_shift(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let n = vm.array_len(t, slot)?;
    if n == 0 {
        return Ok(BResult::Value(Word::Nil));
    }
    let first = vm.array_get(t, slot, 0)?;
    for i in 1..n {
        let w = vm.array_get(t, slot, i as i64)?;
        vm.array_set(t, slot, i as i64 - 1, w)?;
    }
    vm.wr(t, slot + 1, Word::Int(n as i64 - 1))?;
    Ok(BResult::Value(first))
}

fn bi_arr_first(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    Ok(BResult::Value(vm.array_get(t, slot, 0)?))
}

fn bi_arr_last(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    Ok(BResult::Value(vm.array_get(t, slot, -1)?))
}

fn bi_arr_clear(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    vm.wr(t, slot + 1, Word::Int(0))?;
    Ok(BResult::Value(recv))
}

fn bi_arr_include(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let needle = args.first().cloned().unwrap_or(Word::Nil);
    let n = vm.array_len(t, slot)?;
    for i in 0..n {
        let w = vm.array_get(t, slot, i as i64)?;
        if vm.words_eq(t, &w, &needle)? {
            return Ok(BResult::Value(Word::True));
        }
    }
    Ok(BResult::Value(Word::False))
}

fn bi_arr_index(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let needle = args.first().cloned().unwrap_or(Word::Nil);
    let n = vm.array_len(t, slot)?;
    for i in 0..n {
        let w = vm.array_get(t, slot, i as i64)?;
        if vm.words_eq(t, &w, &needle)? {
            return Ok(BResult::Value(Word::Int(i as i64)));
        }
    }
    Ok(BResult::Value(Word::Nil))
}

fn bi_arr_join(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let sep = if args.is_empty() { String::new() } else { str_arg(vm, t, &args, 0)? };
    let n = vm.array_len(t, slot)?;
    let mut parts = Vec::with_capacity(n);
    for i in 0..n {
        let w = vm.array_get(t, slot, i as i64)?;
        parts.push(vm.display(t, &w)?);
    }
    let out = parts.join(&sep);
    vm.step_native_cost += (out.len() / 4) as u64;
    Ok(BResult::Value(vm.make_string(t, &out)?))
}

/// Sort key (numbers before anything; strings lexicographic).
fn sort_keys(vm: &mut Vm, t: ThreadId, slot: Addr) -> Result<Vec<(Word, SortKey)>, VmAbort> {
    let n = vm.array_len(t, slot)?;
    let mut keyed = Vec::with_capacity(n);
    for i in 0..n {
        let w = vm.array_get(t, slot, i as i64)?;
        let key = if let Some(f) = vm.as_number(t, &w)? {
            SortKey::Num(f)
        } else if let Word::Obj(s) = &w {
            if vm.kind_of(t, *s)? == ObjKind::String {
                SortKey::Str(vm.string_content(t, *s)?.to_string())
            } else {
                return Err(VmAbort::fatal("cannot sort non-comparable elements"));
            }
        } else {
            return Err(VmAbort::fatal("cannot sort non-comparable elements"));
        };
        keyed.push((w, key));
    }
    Ok(keyed)
}

#[derive(Debug, Clone, PartialEq)]
enum SortKey {
    Num(f64),
    Str(String),
}

impl SortKey {
    fn cmp(&self, other: &SortKey) -> std::cmp::Ordering {
        match (self, other) {
            (SortKey::Num(a), SortKey::Num(b)) => a.total_cmp(b),
            (SortKey::Str(a), SortKey::Str(b)) => a.cmp(b),
            (SortKey::Num(_), SortKey::Str(_)) => std::cmp::Ordering::Less,
            (SortKey::Str(_), SortKey::Num(_)) => std::cmp::Ordering::Greater,
        }
    }
}

fn bi_arr_sort_bang(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let mut keyed = sort_keys(vm, t, slot)?;
    vm.step_native_cost += (keyed.len().max(1) as u64).ilog2() as u64 * keyed.len() as u64;
    keyed.sort_by(|a, b| a.1.cmp(&b.1));
    for (i, (w, _)) in keyed.into_iter().enumerate() {
        vm.array_set(t, slot, i as i64, w)?;
    }
    Ok(BResult::Value(recv))
}

fn bi_arr_sort(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let mut keyed = sort_keys(vm, t, slot)?;
    vm.step_native_cost += (keyed.len().max(1) as u64).ilog2() as u64 * keyed.len() as u64;
    keyed.sort_by(|a, b| a.1.cmp(&b.1));
    let sorted: Vec<Word> = keyed.into_iter().map(|(w, _)| w).collect();
    Ok(BResult::Value(vm.make_array(t, &sorted)?))
}

fn minmax(vm: &mut Vm, t: ThreadId, recv: Word, want_max: bool) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let keyed = sort_keys(vm, t, slot)?;
    let best = keyed.into_iter().reduce(|a, b| {
        let o = a.1.cmp(&b.1);
        let take_b =
            if want_max { o == std::cmp::Ordering::Less } else { o == std::cmp::Ordering::Greater };
        if take_b {
            b
        } else {
            a
        }
    });
    Ok(BResult::Value(best.map(|(w, _)| w).unwrap_or(Word::Nil)))
}

fn bi_arr_min(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    minmax(vm, t, recv, false)
}

fn bi_arr_max(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    minmax(vm, t, recv, true)
}

fn bi_arr_dup(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let n = vm.array_len(t, slot)?;
    let mut elems = Vec::with_capacity(n);
    for i in 0..n {
        elems.push(vm.array_get(t, slot, i as i64)?);
    }
    Ok(BResult::Value(vm.make_array(t, &elems)?))
}

fn bi_arr_concat(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let other = args.first().cloned().ok_or_else(|| VmAbort::fatal("concat expects an Array"))?;
    let oslot = self_array(vm, t, &other)?;
    let n = vm.array_len(t, oslot)?;
    for i in 0..n {
        let w = vm.array_get(t, oslot, i as i64)?;
        vm.array_push(t, slot, w)?;
    }
    Ok(BResult::Value(recv))
}

fn bi_arr_delete_at(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_array(vm, t, &recv)?;
    let idx = arg_int(&args, 0, "delete_at")?;
    let n = vm.array_len(t, slot)? as i64;
    let idx = if idx < 0 { n + idx } else { idx };
    if idx < 0 || idx >= n {
        return Ok(BResult::Value(Word::Nil));
    }
    let removed = vm.array_get(t, slot, idx)?;
    for i in idx + 1..n {
        let w = vm.array_get(t, slot, i)?;
        vm.array_set(t, slot, i - 1, w)?;
    }
    vm.wr(t, slot + 1, Word::Int(n - 1))?;
    Ok(BResult::Value(removed))
}

// ---- Hash ------------------------------------------------------------------------

fn bi_hash_new(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    Ok(BResult::Value(vm.make_hash(t, &[])?))
}

fn self_hash(vm: &mut Vm, t: ThreadId, recv: &Word) -> Result<Addr, VmAbort> {
    recv_slot(vm, t, recv, ObjKind::Hash)
}

fn bi_hash_len(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_hash(vm, t, &recv)?;
    let n = vm.rd(t, slot + 1)?.as_int().unwrap_or(0);
    Ok(BResult::Value(Word::Int(n)))
}

fn bi_hash_empty(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_hash(vm, t, &recv)?;
    let n = vm.rd(t, slot + 1)?.as_int().unwrap_or(0);
    Ok(BResult::Value(if n == 0 { Word::True } else { Word::False }))
}

fn bi_hash_key_p(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_hash(vm, t, &recv)?;
    let key = args.first().cloned().unwrap_or(Word::Nil);
    let n = vm.rd(t, slot + 1)?.as_int().unwrap_or(0) as usize;
    let buf = vm.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
    for i in 0..n {
        let k = vm.rd(t, buf + 2 * i)?;
        if vm.words_eq(t, &k, &key)? {
            return Ok(BResult::Value(Word::True));
        }
    }
    Ok(BResult::Value(Word::False))
}

fn hash_collect(vm: &mut Vm, t: ThreadId, recv: Word, values: bool) -> Result<BResult, VmAbort> {
    let slot = self_hash(vm, t, &recv)?;
    let n = vm.rd(t, slot + 1)?.as_int().unwrap_or(0) as usize;
    let buf = vm.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(vm.rd(t, buf + 2 * i + usize::from(values))?);
    }
    Ok(BResult::Value(vm.make_array(t, &out)?))
}

fn bi_hash_keys(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    hash_collect(vm, t, recv, false)
}

fn bi_hash_values(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    hash_collect(vm, t, recv, true)
}

fn bi_hash_delete(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_hash(vm, t, &recv)?;
    let key = args.first().cloned().unwrap_or(Word::Nil);
    let n = vm.rd(t, slot + 1)?.as_int().unwrap_or(0) as usize;
    let buf = vm.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
    for i in 0..n {
        let k = vm.rd(t, buf + 2 * i)?;
        if vm.words_eq(t, &k, &key)? {
            let v = vm.rd(t, buf + 2 * i + 1)?;
            // Move the last pair into the gap.
            if i + 1 != n {
                let lk = vm.rd(t, buf + 2 * (n - 1))?;
                let lv = vm.rd(t, buf + 2 * (n - 1) + 1)?;
                vm.wr(t, buf + 2 * i, lk)?;
                vm.wr(t, buf + 2 * i + 1, lv)?;
            }
            vm.wr(t, slot + 1, Word::Int(n as i64 - 1))?;
            return Ok(BResult::Value(v));
        }
    }
    Ok(BResult::Value(Word::Nil))
}

// ---- Range -----------------------------------------------------------------------

fn self_range(vm: &mut Vm, t: ThreadId, recv: &Word) -> Result<Addr, VmAbort> {
    recv_slot(vm, t, recv, ObjKind::Range)
}

fn bi_range_begin(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_range(vm, t, &recv)?;
    Ok(BResult::Value(vm.rd(t, slot + 1)?))
}

fn bi_range_end(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_range(vm, t, &recv)?;
    Ok(BResult::Value(vm.rd(t, slot + 2)?))
}

fn bi_range_excl(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_range(vm, t, &recv)?;
    let e = vm.rd(t, slot + 3)?.as_int().unwrap_or(0);
    Ok(BResult::Value(if e != 0 { Word::True } else { Word::False }))
}

// ---- Thread ----------------------------------------------------------------------

fn bi_thread_new(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    block: Addr,
) -> Result<BResult, VmAbort> {
    // pthread_create is a system call: never inside a transaction.
    forbid_in_tx(vm, t)?;
    if block == 0 {
        return Err(VmAbort::fatal("Thread.new requires a block"));
    }
    let new_tid = vm.threads.len();
    if new_tid >= vm.config.max_threads {
        return Err(VmAbort::fatal(format!(
            "thread limit reached ({}); raise VmConfig::max_threads",
            vm.config.max_threads
        )));
    }
    // Thread object first (allocated by the spawner).
    let tobj_w = {
        let slot = vm.alloc_slot(t)?;
        vm.set_header(t, slot, ObjKind::Thread)?;
        vm.wr(t, slot + 1, Word::Int(new_tid as i64))?;
        vm.wr(t, slot + 2, Word::Int(0))?; // running
        vm.wr(t, slot + 3, Word::Nil)?;
        Word::Obj(slot)
    };
    let iseq = crate::bytecode::IseqId(vm.rd(t, block + 1)?.as_int().unwrap_or(0) as u32);
    let captured_fp = vm.rd(t, block + 2)?.as_int().unwrap_or(0) as Addr;
    let self_w = vm.rd(t, block + 3)?;
    // The spawner keeps running: the block's enclosing block frames must
    // be promoted to the heap before their stack words are reused.
    let captured_fp = vm.promote_env(t, captured_fp)?;
    let (stack_base, stack_end) = vm.layout.thread_stack(new_tid);
    let mut ctx = ThreadCtx {
        tid: new_tid,
        stack_base,
        stack_end,
        fp: stack_base,
        sp: stack_base,
        pc: 0,
        iseq,
        base: vm.program.base(iseq),
        finished: false,
        thread_obj: tobj_w.as_obj().unwrap(),
        result: Word::Nil,
        barrier_token: None,
    };
    vm.push_root_frame(&mut ctx, iseq, self_w, 0, captured_fp);
    // Pass Thread.new's arguments as block parameters.
    let nparams = vm.program.iseq(iseq).nparams;
    for (i, a) in args.into_iter().take(nparams).enumerate() {
        vm.mem
            .write(new_tid, ctx.stack_base + crate::interp::FRAME_WORDS + i, a)
            .expect("thread arg write");
    }
    vm.threads.push(ctx);
    vm.step_native_cost += 400; // pthread_create
    Ok(BResult::Spawned { tid: new_tid, thread_obj: tobj_w })
}

fn bi_thread_current(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    if vm.threads[t].thread_obj == 0 {
        // Materializing the Thread object caches its address in host state
        // a rollback would not undo — do it under the GIL only.
        forbid_in_tx(vm, t)?;
    }
    if vm.threads[t].thread_obj == 0 {
        let slot = vm.alloc_slot(t)?;
        vm.set_header(t, slot, ObjKind::Thread)?;
        vm.wr(t, slot + 1, Word::Int(t as i64))?;
        vm.wr(t, slot + 2, Word::Int(0))?;
        vm.wr(t, slot + 3, Word::Nil)?;
        vm.threads[t].thread_obj = slot;
    }
    Ok(BResult::Value(Word::Obj(vm.threads[t].thread_obj)))
}

fn thread_target(vm: &mut Vm, t: ThreadId, recv: &Word) -> Result<(Addr, ThreadId), VmAbort> {
    let slot = recv_slot(vm, t, recv, ObjKind::Thread)?;
    let tid = vm.rd(t, slot + 1)?.as_int().unwrap_or(-1);
    if tid < 0 || tid as usize >= vm.threads.len() {
        return Err(VmAbort::fatal("corrupt Thread object"));
    }
    Ok((slot, tid as usize))
}

fn bi_thread_join(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (slot, target) = thread_target(vm, t, &recv)?;
    let state = vm.rd(t, slot + 2)?.as_int().unwrap_or(0);
    if state == 1 {
        return Ok(BResult::Value(recv));
    }
    forbid_in_tx(vm, t)?;
    Ok(BResult::Block(BlockOn::Join(target)))
}

fn bi_thread_value(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (slot, target) = thread_target(vm, t, &recv)?;
    let state = vm.rd(t, slot + 2)?.as_int().unwrap_or(0);
    if state == 1 {
        return Ok(BResult::Value(vm.rd(t, slot + 3)?));
    }
    forbid_in_tx(vm, t)?;
    Ok(BResult::Block(BlockOn::Join(target)))
}

fn bi_thread_alive(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let (slot, _target) = thread_target(vm, t, &recv)?;
    let state = vm.rd(t, slot + 2)?.as_int().unwrap_or(0);
    Ok(BResult::Value(if state == 0 { Word::True } else { Word::False }))
}

// ---- Mutex -----------------------------------------------------------------------

fn bi_mutex_new(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = vm.alloc_slot(t)?;
    vm.set_header(t, slot, ObjKind::Mutex)?;
    vm.wr(t, slot + 1, Word::Nil)?;
    Ok(BResult::Value(Word::Obj(slot)))
}

fn self_mutex(vm: &mut Vm, t: ThreadId, recv: &Word) -> Result<Addr, VmAbort> {
    recv_slot(vm, t, recv, ObjKind::Mutex)
}

fn bi_mutex_lock(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_mutex(vm, t, &recv)?;
    let owner = vm.rd(t, slot + 1)?;
    match owner {
        Word::Nil => {
            // Uncontended: a transactional write is exactly how TLE wants
            // critical sections to compose — conflicts on the owner word
            // abort and serialize naturally.
            vm.wr(t, slot + 1, Word::Int(t as i64 + 1))?;
            Ok(BResult::Value(recv))
        }
        Word::Int(o) if o == t as i64 + 1 => Err(VmAbort::fatal("deadlock; recursive locking")),
        _ => {
            // Contended: blocking is a system call.
            forbid_in_tx(vm, t)?;
            Ok(BResult::Block(BlockOn::Mutex(slot)))
        }
    }
}

fn bi_mutex_try_lock(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_mutex(vm, t, &recv)?;
    let owner = vm.rd(t, slot + 1)?;
    if owner == Word::Nil {
        vm.wr(t, slot + 1, Word::Int(t as i64 + 1))?;
        Ok(BResult::Value(Word::True))
    } else {
        Ok(BResult::Value(Word::False))
    }
}

fn bi_mutex_unlock(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = self_mutex(vm, t, &recv)?;
    let owner = vm.rd(t, slot + 1)?;
    if owner != Word::Int(t as i64 + 1) {
        return Err(VmAbort::fatal("Attempt to unlock a mutex which is not locked by this thread"));
    }
    vm.wr(t, slot + 1, Word::Nil)?;
    vm.pending_wakes.push(WakeKey::Mutex(slot));
    Ok(BResult::Value(recv))
}

// ---- Barrier ---------------------------------------------------------------------

fn bi_barrier_new(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let n = arg_int(&args, 0, "Barrier.new")?;
    let slot = vm.alloc_slot(t)?;
    vm.set_header(t, slot, ObjKind::Barrier)?;
    vm.wr(t, slot + 1, Word::Int(n))?;
    vm.wr(t, slot + 2, Word::Int(0))?;
    vm.wr(t, slot + 3, Word::Int(0))?;
    Ok(BResult::Value(Word::Obj(slot)))
}

fn bi_barrier_wait(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    // The whole wait (arrival *and* wake re-check) is a blocking region:
    // it mutates host-side re-entry state (`barrier_token`) that a
    // transaction rollback would not restore, so it must only ever run
    // under the GIL — as CRuby's ConditionVariable would.
    forbid_in_tx(vm, t)?;
    let slot = recv_slot(vm, t, &recv, ObjKind::Barrier)?;
    // Re-entry after a wake: the generation moved on → pass through.
    if let Some((addr, gen)) = vm.threads[t].barrier_token {
        if addr == slot {
            let cur = vm.rd(t, slot + 3)?.as_int().unwrap_or(0);
            if cur != gen {
                vm.threads[t].barrier_token = None;
                return Ok(BResult::Value(Word::Nil));
            }
            return Ok(BResult::Block(BlockOn::Barrier(slot)));
        }
        vm.threads[t].barrier_token = None;
    }
    let n = vm.rd(t, slot + 1)?.as_int().unwrap_or(0);
    let arrived = vm.rd(t, slot + 2)?.as_int().unwrap_or(0);
    if arrived + 1 >= n {
        // Last arriver: release everyone.
        let gen = vm.rd(t, slot + 3)?.as_int().unwrap_or(0);
        vm.wr(t, slot + 2, Word::Int(0))?;
        vm.wr(t, slot + 3, Word::Int(gen + 1))?;
        vm.pending_wakes.push(WakeKey::Barrier(slot));
        Ok(BResult::Value(Word::Nil))
    } else {
        let gen = vm.rd(t, slot + 3)?.as_int().unwrap_or(0);
        vm.wr(t, slot + 2, Word::Int(arrived + 1))?;
        vm.threads[t].barrier_token = Some((slot, gen));
        Ok(BResult::Block(BlockOn::Barrier(slot)))
    }
}

// ---- Regexp ---------------------------------------------------------------------

impl Vm {
    /// Compile (or fetch from the host-side cache) the regex of a Regexp
    /// object.
    pub fn get_regex(
        &mut self,
        t: ThreadId,
        slot: Addr,
    ) -> Result<crate::regexlite::Regex, VmAbort> {
        let pat = self
            .rd(t, slot + 1)?
            .as_str()
            .cloned()
            .ok_or_else(|| VmAbort::fatal("corrupt Regexp"))?;
        if let Some(r) = self.regex_cache.get(&*pat) {
            return Ok(r.clone());
        }
        let r =
            crate::regexlite::Regex::compile(&pat).map_err(|e| VmAbort::fatal(e.to_string()))?;
        self.regex_cache.insert(pat.to_string(), r.clone());
        Ok(r)
    }
}

fn bi_regexp_new(
    vm: &mut Vm,
    t: ThreadId,
    _recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let pat = str_arg(vm, t, &args, 0)?;
    crate::regexlite::Regex::compile(&pat).map_err(|e| VmAbort::fatal(e.to_string()))?;
    let slot = vm.alloc_slot(t)?;
    vm.set_header(t, slot, ObjKind::Regexp)?;
    vm.wr(t, slot + 1, Word::Str(pat.into()))?;
    Ok(BResult::Value(Word::Obj(slot)))
}

fn bi_regexp_source(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    _a: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = recv_slot(vm, t, &recv, ObjKind::Regexp)?;
    let pat =
        vm.rd(t, slot + 1)?.as_str().cloned().ok_or_else(|| VmAbort::fatal("corrupt Regexp"))?;
    Ok(BResult::Value(vm.make_string(t, &pat)?))
}

fn regexp_run(
    vm: &mut Vm,
    t: ThreadId,
    recv: &Word,
    args: &[Word],
) -> Result<Option<(crate::regexlite::MatchResult, String)>, VmAbort> {
    let slot = recv_slot(vm, t, recv, ObjKind::Regexp)?;
    let re = vm.get_regex(t, slot)?;
    let subject = str_arg(vm, t, args, 0)?;
    let m = re.find(&subject);
    // Charge the engine's work; the subject's shadow buffer was already
    // touched by str_arg → string_content.
    vm.step_native_cost += m.as_ref().map_or(subject.len() + 1, |r| r.steps) as u64 * 2;
    Ok(m.map(|m| (m, subject)))
}

fn bi_regexp_match(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    match regexp_run(vm, t, &recv, &args)? {
        None => Ok(BResult::Value(Word::Nil)),
        Some((m, subject)) => {
            let chars: Vec<char> = subject.chars().collect();
            let mut groups = Vec::with_capacity(m.groups.len());
            for g in &m.groups {
                match g {
                    Some((s, e)) => {
                        let text: String = chars[*s..*e].iter().collect();
                        let w = vm.make_string(t, &text)?;
                        // Pin: the next group's allocation may GC.
                        vm.temp_roots.push(w.clone());
                        groups.push(w);
                    }
                    None => groups.push(Word::Nil),
                }
            }
            let garr = vm.make_array(t, &groups)?;
            let slot = vm.alloc_slot(t)?;
            vm.set_header(t, slot, ObjKind::MatchData)?;
            vm.wr(t, slot + 1, garr)?;
            Ok(BResult::Value(Word::Obj(slot)))
        }
    }
}

fn bi_regexp_match_p(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let hit = regexp_run(vm, t, &recv, &args)?.is_some();
    Ok(BResult::Value(if hit { Word::True } else { Word::False }))
}

// ---- Proc -----------------------------------------------------------------------

fn bi_proc_call(
    vm: &mut Vm,
    t: ThreadId,
    recv: Word,
    args: Vec<Word>,
    _b: Addr,
) -> Result<BResult, VmAbort> {
    let slot = recv_slot(vm, t, &recv, ObjKind::Proc)?;
    let iseq = crate::bytecode::IseqId(vm.rd(t, slot + 1)?.as_int().unwrap_or(0) as u32);
    let captured_fp = vm.rd(t, slot + 2)?.as_int().unwrap_or(0) as Addr;
    let self_w = vm.rd(t, slot + 3)?;
    Ok(BResult::Frame {
        iseq,
        self_w,
        args,
        block: 0,
        under: None,
        discard: false,
        ep: captured_fp,
    })
}
