//! Object layouts, constructors, class bootstrap and lookup machinery.
//!
//! Slot payloads (word offsets from the slot base; word 0 is the header):
//!
//! | kind     | 1                | 2               | 3              | 4            |
//! |----------|------------------|-----------------|----------------|--------------|
//! | Float    | `F64` payload    |                 |                |              |
//! | String   | `Str` content    | `Int` byte len  | `Int` shadow   | `Int` cap    |
//! | Array    | `Int` len        | `Int` cap       | `Int` buf      |              |
//! | Hash     | `Int` pairs      | `Int` cap pairs | `Int` buf      |              |
//! | Object   | `Obj` class      | `Int` ivar buf  | `Int` nivars   | `Int` cap    |
//! | Class    | super            | `Int` mtbl      | `Int` smtbl    | `Int` ivtbl  |
//! |          | (5: `Int` cvtbl, 6: `Sym` name)                                    |
//! | Range    | lo               | hi              | `Int` excl     |              |
//! | Thread   | `Int` tid        | `Int` state     | result         |              |
//! | Mutex    | owner            |                 |                |              |
//! | Barrier  | `Int` n          | `Int` arrived   | `Int` gen      |              |
//! | Regexp   | `Str` pattern    |                 |                |              |
//! | MatchData| `Obj` groups     |                 |                |              |
//! | Proc     | `Int` iseq       | `Int` captured fp | self         | `Int` tid    |
//! | Table    | `Obj` rows array | `Int` ncols     |                |              |
//!
//! Assoc buffers (method tables, ivar-index tables, cvar tables) are
//! malloc regions: `[len, cap, (key, value) × cap]`. Method-table values
//! encode user iseqs as non-negative ints and builtins as `-(id + 1)`.

use machine_sim::ThreadId;

use crate::symbols::SymId;
use crate::value::{Addr, ObjHeader, ObjKind, Word};
use crate::vm::{Vm, VmAbort};

/// Method-table entry: user iseq or builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodEntry {
    Iseq(crate::bytecode::IseqId),
    Builtin(u32),
}

impl MethodEntry {
    pub fn encode(self) -> i64 {
        match self {
            MethodEntry::Iseq(id) => i64::from(id.0),
            MethodEntry::Builtin(b) => -i64::from(b) - 1,
        }
    }

    pub fn decode(v: i64) -> MethodEntry {
        if v >= 0 {
            MethodEntry::Iseq(crate::bytecode::IseqId(v as u32))
        } else {
            MethodEntry::Builtin((-v - 1) as u32)
        }
    }
}

impl Vm {
    // ---- constructors ------------------------------------------------------

    /// Write a slot header. Objects are *born live* (`marked: true`): a
    /// lazy-sweep cycle may still be in progress (some cursor has not
    /// passed this slot yet), and an unmarked fresh object ahead of a
    /// cursor would be reclaimed while alive. The next sweep pass clears
    /// the mark; the one after that can collect it if it is garbage —
    /// the standard one-cycle delay of incremental sweeping.
    pub fn set_header(&mut self, t: ThreadId, slot: Addr, kind: ObjKind) -> Result<(), VmAbort> {
        self.wr(t, slot, Word::Hdr(ObjHeader { kind, marked: true }))
    }

    /// Heap-allocate a Float (CRuby 1.9 semantics: every float result is a
    /// new object — the paper's allocation-pressure source).
    pub fn make_float(&mut self, t: ThreadId, f: f64) -> Result<Word, VmAbort> {
        let slot = self.alloc_slot(t)?;
        self.set_header(t, slot, ObjKind::Float)?;
        self.wr(t, slot + 1, Word::F64(f))?;
        Ok(Word::Obj(slot))
    }

    /// Allocate a String. Content lives host-side; a shadow buffer of
    /// ⌈len/8⌉ words is written so the bytes occupy simulated cache lines.
    pub fn make_string(&mut self, t: ThreadId, s: &str) -> Result<Word, VmAbort> {
        let slot = self.alloc_slot(t)?;
        let len = s.len();
        let shadow_words = len.div_ceil(8).max(1);
        let (buf, cap) = self.malloc(t, shadow_words)?;
        for i in 0..shadow_words {
            self.wr(t, buf + i, Word::Int(0))?;
        }
        self.set_header(t, slot, ObjKind::String)?;
        self.wr(t, slot + 1, Word::Str(s.into()))?;
        self.wr(t, slot + 2, Word::Int(len as i64))?;
        self.wr(t, slot + 3, Word::Int(buf as i64))?;
        self.wr(t, slot + 4, Word::Int(cap as i64))?;
        Ok(Word::Obj(slot))
    }

    /// Replace a String's content in place (`<<`, `sub!`…): new `Rc`, new
    /// length, shadow grown if needed and rewritten.
    pub fn string_replace(&mut self, t: ThreadId, slot: Addr, s: &str) -> Result<(), VmAbort> {
        let len = s.len();
        let need = len.div_ceil(8).max(1);
        let buf = self.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
        let cap = self.rd(t, slot + 4)?.as_int().unwrap_or(0) as usize;
        let (buf, cap) = if need > cap {
            let (nb, nc) = self.malloc(t, need)?;
            if buf != 0 {
                self.mfree(t, buf, cap)?;
            }
            self.wr(t, slot + 3, Word::Int(nb as i64))?;
            self.wr(t, slot + 4, Word::Int(nc as i64))?;
            (nb, nc)
        } else {
            (buf, cap)
        };
        let _ = cap;
        for i in 0..need {
            self.wr(t, buf + i, Word::Int(0))?;
        }
        self.wr(t, slot + 1, Word::Str(s.into()))?;
        self.wr(t, slot + 2, Word::Int(len as i64))?;
        Ok(())
    }

    /// Read a String's content (touching its shadow buffer for footprint).
    pub fn string_content(&mut self, t: ThreadId, slot: Addr) -> Result<std::rc::Rc<str>, VmAbort> {
        let w = self.rd(t, slot + 1)?;
        let len = self.rd(t, slot + 2)?.as_int().unwrap_or(0) as usize;
        let buf = self.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
        if buf != 0 {
            for i in 0..len.div_ceil(8).max(1) {
                let _ = self.rd(t, buf + i)?;
            }
        }
        w.as_str().cloned().ok_or_else(|| VmAbort::fatal("corrupt string payload"))
    }

    /// Allocate an Array with the given elements.
    pub fn make_array(&mut self, t: ThreadId, elems: &[Word]) -> Result<Word, VmAbort> {
        // Pin the elements: they may live only in a Rust Vec (popped off
        // the operand stack) and the slot allocation below can run a GC.
        self.temp_roots.extend_from_slice(elems);
        let slot = self.alloc_slot(t)?;
        let cap = elems.len().max(4);
        let (buf, cap) = self.malloc(t, cap)?;
        for (i, w) in elems.iter().enumerate() {
            self.wr(t, buf + i, w.clone())?;
        }
        self.set_header(t, slot, ObjKind::Array)?;
        self.wr(t, slot + 1, Word::Int(elems.len() as i64))?;
        self.wr(t, slot + 2, Word::Int(cap as i64))?;
        self.wr(t, slot + 3, Word::Int(buf as i64))?;
        Ok(Word::Obj(slot))
    }

    pub fn array_len(&mut self, t: ThreadId, slot: Addr) -> Result<usize, VmAbort> {
        Ok(self.rd(t, slot + 1)?.as_int().unwrap_or(0) as usize)
    }

    pub fn array_get(&mut self, t: ThreadId, slot: Addr, idx: i64) -> Result<Word, VmAbort> {
        let len = self.array_len(t, slot)? as i64;
        let idx = if idx < 0 { len + idx } else { idx };
        if idx < 0 || idx >= len {
            return Ok(Word::Nil);
        }
        let buf = self.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
        self.rd(t, buf + idx as usize)
    }

    pub fn array_set(&mut self, t: ThreadId, slot: Addr, idx: i64, v: Word) -> Result<(), VmAbort> {
        let len = self.rd(t, slot + 1)?.as_int().unwrap_or(0);
        let idx = if idx < 0 { len + idx } else { idx };
        if idx < 0 {
            return Err(VmAbort::fatal("negative array index out of range"));
        }
        let idx = idx as usize;
        let cap = self.rd(t, slot + 2)?.as_int().unwrap_or(0) as usize;
        let mut buf = self.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
        if idx >= cap {
            // Grow: new buffer, copy, free old (all real memory traffic).
            let (nb, nc) = self.malloc(t, (idx + 1).max(cap * 2))?;
            for i in 0..len as usize {
                let w = self.rd(t, buf + i)?;
                self.wr(t, nb + i, w)?;
            }
            self.mfree(t, buf, cap)?;
            self.wr(t, slot + 2, Word::Int(nc as i64))?;
            self.wr(t, slot + 3, Word::Int(nb as i64))?;
            buf = nb;
        }
        if idx as i64 >= len {
            for i in len as usize..idx {
                self.wr(t, buf + i, Word::Nil)?;
            }
            self.wr(t, slot + 1, Word::Int(idx as i64 + 1))?;
        }
        self.wr(t, buf + idx, v)
    }

    pub fn array_push(&mut self, t: ThreadId, slot: Addr, v: Word) -> Result<(), VmAbort> {
        let len = self.array_len(t, slot)? as i64;
        self.array_set(t, slot, len, v)
    }

    /// Allocate a Hash from `pairs`.
    pub fn make_hash(&mut self, t: ThreadId, pairs: &[(Word, Word)]) -> Result<Word, VmAbort> {
        for (k, v) in pairs {
            self.temp_roots.push(k.clone());
            self.temp_roots.push(v.clone());
        }
        let slot = self.alloc_slot(t)?;
        let cap = pairs.len().max(4);
        let (buf, capw) = self.malloc(t, 2 * cap)?;
        let cap = capw / 2;
        for (i, (k, v)) in pairs.iter().enumerate() {
            self.wr(t, buf + 2 * i, k.clone())?;
            self.wr(t, buf + 2 * i + 1, v.clone())?;
        }
        self.set_header(t, slot, ObjKind::Hash)?;
        self.wr(t, slot + 1, Word::Int(pairs.len() as i64))?;
        self.wr(t, slot + 2, Word::Int(cap as i64))?;
        self.wr(t, slot + 3, Word::Int(buf as i64))?;
        Ok(Word::Obj(slot))
    }

    /// Linear-scan hash lookup (CRuby's st_table is a hash; linear scan
    /// over a handful of entries reads a comparable number of lines for
    /// the small hashes the workloads build).
    pub fn hash_get(&mut self, t: ThreadId, slot: Addr, key: &Word) -> Result<Word, VmAbort> {
        let n = self.rd(t, slot + 1)?.as_int().unwrap_or(0) as usize;
        let buf = self.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
        for i in 0..n {
            let k = self.rd(t, buf + 2 * i)?;
            if self.words_eq(t, &k, key)? {
                return self.rd(t, buf + 2 * i + 1);
            }
        }
        Ok(Word::Nil)
    }

    pub fn hash_set(&mut self, t: ThreadId, slot: Addr, key: Word, v: Word) -> Result<(), VmAbort> {
        let n = self.rd(t, slot + 1)?.as_int().unwrap_or(0) as usize;
        let cap = self.rd(t, slot + 2)?.as_int().unwrap_or(0) as usize;
        let mut buf = self.rd(t, slot + 3)?.as_int().unwrap_or(0) as Addr;
        for i in 0..n {
            let k = self.rd(t, buf + 2 * i)?;
            if self.words_eq(t, &k, &key)? {
                return self.wr(t, buf + 2 * i + 1, v);
            }
        }
        if n == cap {
            let (nb, ncw) = self.malloc(t, 4 * cap.max(2))?;
            for i in 0..2 * n {
                let w = self.rd(t, buf + i)?;
                self.wr(t, nb + i, w)?;
            }
            self.mfree(t, buf, 2 * cap)?;
            self.wr(t, slot + 2, Word::Int((ncw / 2) as i64))?;
            self.wr(t, slot + 3, Word::Int(nb as i64))?;
            buf = nb;
        }
        self.wr(t, buf + 2 * n, key)?;
        self.wr(t, buf + 2 * n + 1, v)?;
        self.wr(t, slot + 1, Word::Int(n as i64 + 1))
    }

    pub fn make_range(
        &mut self,
        t: ThreadId,
        lo: Word,
        hi: Word,
        excl: bool,
    ) -> Result<Word, VmAbort> {
        let slot = self.alloc_slot(t)?;
        self.set_header(t, slot, ObjKind::Range)?;
        self.wr(t, slot + 1, lo)?;
        self.wr(t, slot + 2, hi)?;
        self.wr(t, slot + 3, Word::Int(i64::from(excl)))?;
        Ok(Word::Obj(slot))
    }

    /// Allocate a plain instance of `cls`.
    pub fn make_object(&mut self, t: ThreadId, cls: Addr) -> Result<Word, VmAbort> {
        let slot = self.alloc_slot(t)?;
        self.set_header(t, slot, ObjKind::Object)?;
        self.wr(t, slot + 1, Word::Obj(cls))?;
        self.wr(t, slot + 2, Word::Int(0))?;
        self.wr(t, slot + 3, Word::Int(0))?;
        self.wr(t, slot + 4, Word::Int(0))?;
        Ok(Word::Obj(slot))
    }

    /// Allocate a Proc capturing (`iseq`, defining frame, self, thread).
    pub fn make_proc(
        &mut self,
        t: ThreadId,
        iseq: crate::bytecode::IseqId,
        captured_fp: Addr,
        self_w: Word,
    ) -> Result<Word, VmAbort> {
        let slot = self.alloc_slot(t)?;
        self.set_header(t, slot, ObjKind::Proc)?;
        self.wr(t, slot + 1, Word::Int(i64::from(iseq.0)))?;
        self.wr(t, slot + 2, Word::Int(captured_fp as i64))?;
        self.wr(t, slot + 3, self_w)?;
        self.wr(t, slot + 4, Word::Int(t as i64))?;
        Ok(Word::Obj(slot))
    }

    // ---- assoc buffers -----------------------------------------------------

    /// Create an assoc buffer with capacity `cap` pairs; returns its
    /// address.
    pub fn assoc_new(&mut self, t: ThreadId, cap: usize) -> Result<Addr, VmAbort> {
        let (buf, _w) = self.malloc(t, 2 + 2 * cap)?;
        self.wr(t, buf, Word::Int(0))?;
        self.wr(t, buf + 1, Word::Int(cap as i64))?;
        Ok(buf)
    }

    /// Look up `key`, returning (pair index, value).
    pub fn assoc_get(
        &mut self,
        t: ThreadId,
        buf: Addr,
        key: SymId,
    ) -> Result<Option<(usize, Word)>, VmAbort> {
        if buf == 0 {
            return Ok(None);
        }
        let n = self.rd(t, buf)?.as_int().unwrap_or(0) as usize;
        for i in 0..n {
            let k = self.rd(t, buf + 2 + 2 * i)?;
            if k == Word::Sym(key) {
                let v = self.rd(t, buf + 2 + 2 * i + 1)?;
                return Ok(Some((i, v)));
            }
        }
        Ok(None)
    }

    /// Insert or update `key` in the assoc buffer held by the word at
    /// `holder` (the holder is rewritten when the buffer grows). Creates
    /// the buffer on first use.
    pub fn assoc_set(
        &mut self,
        t: ThreadId,
        holder: Addr,
        key: SymId,
        value: Word,
    ) -> Result<(), VmAbort> {
        let mut buf = self.rd(t, holder)?.as_int().unwrap_or(0) as Addr;
        if buf == 0 {
            buf = self.assoc_new(t, 4)?;
            self.wr(t, holder, Word::Int(buf as i64))?;
        }
        if let Some((i, _)) = self.assoc_get(t, buf, key)? {
            return self.wr(t, buf + 2 + 2 * i + 1, value);
        }
        let n = self.rd(t, buf)?.as_int().unwrap_or(0) as usize;
        let cap = self.rd(t, buf + 1)?.as_int().unwrap_or(0) as usize;
        if n == cap {
            let nbuf = self.assoc_new(t, cap * 2)?;
            for i in 0..2 * n {
                let w = self.rd(t, buf + 2 + i)?;
                self.wr(t, nbuf + 2 + i, w)?;
            }
            self.wr(t, nbuf, Word::Int(n as i64))?;
            self.mfree(t, buf, 2 + 2 * cap)?;
            self.wr(t, holder, Word::Int(nbuf as i64))?;
            buf = nbuf;
        }
        self.wr(t, buf + 2 + 2 * n, Word::Sym(key))?;
        self.wr(t, buf + 2 + 2 * n + 1, value)?;
        self.wr(t, buf, Word::Int(n as i64 + 1))
    }

    // ---- classes -----------------------------------------------------------

    /// Object kind of a heap reference (reads the header: one memory ref,
    /// like reading `RBASIC(obj)->flags`).
    pub fn kind_of(&mut self, t: ThreadId, slot: Addr) -> Result<ObjKind, VmAbort> {
        self.rd(t, slot)?
            .as_header()
            .map(|h| h.kind)
            .ok_or_else(|| VmAbort::fatal(format!("not an object at {slot}")))
    }

    /// Class (heap address) of any value.
    pub fn class_of(&mut self, t: ThreadId, w: &Word) -> Result<Addr, VmAbort> {
        Ok(match w {
            Word::Nil => self.classes.nil_cls,
            Word::True => self.classes.true_cls,
            Word::False => self.classes.false_cls,
            Word::Int(_) => self.classes.integer,
            Word::Sym(_) => self.classes.symbol,
            Word::Obj(slot) => match self.kind_of(t, *slot)? {
                ObjKind::Float => self.classes.float_cls,
                ObjKind::String => self.classes.string,
                ObjKind::Array => self.classes.array,
                ObjKind::Hash => self.classes.hash,
                ObjKind::Range => self.classes.range,
                ObjKind::Thread => self.classes.thread_cls,
                ObjKind::Mutex => self.classes.mutex_cls,
                ObjKind::Barrier => self.classes.barrier_cls,
                ObjKind::Regexp => self.classes.regexp,
                ObjKind::MatchData => self.classes.matchdata,
                ObjKind::Proc => self.classes.proc_cls,
                ObjKind::Table => self.classes.store,
                ObjKind::Class => self.classes.class_cls,
                ObjKind::Object => {
                    let c = self.rd(t, *slot + 1)?;
                    c.as_obj().ok_or_else(|| VmAbort::fatal("object without class"))?
                }
                ObjKind::Free => return Err(VmAbort::fatal("use of freed object")),
            },
            _ => return Err(VmAbort::fatal(format!("not a value: {w:?}"))),
        })
    }

    /// Instance-method lookup along the superclass chain. Reads method
    /// tables from simulated memory (the footprint CRuby's `st_lookup`
    /// would generate).
    pub fn lookup_method(
        &mut self,
        t: ThreadId,
        cls: Addr,
        name: SymId,
    ) -> Result<Option<MethodEntry>, VmAbort> {
        let mut c = cls;
        loop {
            let mtbl = self.rd(t, c + 2)?.as_int().unwrap_or(0) as Addr;
            if let Some((_, v)) = self.assoc_get(t, mtbl, name)? {
                let e = v.as_int().ok_or_else(|| VmAbort::fatal("corrupt method entry"))?;
                return Ok(Some(MethodEntry::decode(e)));
            }
            match self.rd(t, c + 1)? {
                Word::Obj(s) => c = s,
                _ => return Ok(None),
            }
        }
    }

    /// Static (class-level) method lookup along the superclass chain.
    pub fn lookup_static(
        &mut self,
        t: ThreadId,
        cls: Addr,
        name: SymId,
    ) -> Result<Option<MethodEntry>, VmAbort> {
        let mut c = cls;
        loop {
            let smtbl = self.rd(t, c + 3)?.as_int().unwrap_or(0) as Addr;
            if let Some((_, v)) = self.assoc_get(t, smtbl, name)? {
                let e = v.as_int().ok_or_else(|| VmAbort::fatal("corrupt method entry"))?;
                return Ok(Some(MethodEntry::decode(e)));
            }
            match self.rd(t, c + 1)? {
                Word::Obj(s) => c = s,
                _ => return Ok(None),
            }
        }
    }

    /// Host-side (uncounted) probe: does `cls`'s *own* table at
    /// `holder_off` (instance = 2, static = 3) already define `name`?
    /// `define_method` uses it to decide whether a definition *replaces*
    /// an existing method — the case that must invalidate versioned
    /// inline caches. It peeks rather than reads because a real VM gets
    /// this for free from `st_insert`'s return value; modelling it as
    /// extra memory traffic would be charging for loads CRuby does not
    /// do. Deliberately not a superclass-chain walk: a *shadowing*
    /// definition (subclass overrides an inherited method after call
    /// sites cached the inherited entry) does not bump, matching the
    /// fill-once staleness the undecoded cache always had (DESIGN.md
    /// §12).
    fn method_defined_here(&self, cls: Addr, holder_off: usize, name: SymId) -> bool {
        let buf = match self.mem.peek(cls + holder_off) {
            Word::Int(b) => *b as Addr,
            _ => 0,
        };
        if buf == 0 {
            return false;
        }
        let n = match self.mem.peek(buf) {
            Word::Int(n) => *n as usize,
            _ => 0,
        };
        (0..n).any(|i| *self.mem.peek(buf + 2 + 2 * i) == Word::Sym(name))
    }

    /// Define a method on `cls` (instance table, or static when
    /// `on_self`). Replacing an existing definition bumps the global
    /// method-table version — escrowed in
    /// [`crate::vm::Vm::pending_method_bumps`] until the enclosing
    /// transaction commits (the table words themselves roll back via the
    /// undo log, so an aborted definition leaves neither the entry nor
    /// the bump behind).
    pub fn define_method(
        &mut self,
        t: ThreadId,
        cls: Addr,
        name: SymId,
        entry: MethodEntry,
        on_self: bool,
    ) -> Result<(), VmAbort> {
        let holder_off = if on_self { 3 } else { 2 };
        if self.method_defined_here(cls, holder_off, name) {
            self.pending_method_bumps = self.pending_method_bumps.wrapping_add(1);
        }
        self.assoc_set(t, cls + holder_off, name, Word::Int(entry.encode()))
    }

    /// Resolve (creating on `create`) the ivar index of `name` for `cls`.
    pub fn ivar_index(
        &mut self,
        t: ThreadId,
        cls: Addr,
        name: SymId,
        create: bool,
    ) -> Result<Option<usize>, VmAbort> {
        let ivtbl = self.rd(t, cls + 4)?.as_int().unwrap_or(0) as Addr;
        if let Some((_, v)) = self.assoc_get(t, ivtbl, name)? {
            return Ok(v.as_int().map(|i| i as usize));
        }
        if !create {
            return Ok(None);
        }
        let n = if ivtbl == 0 { 0 } else { self.rd(t, ivtbl)?.as_int().unwrap_or(0) as usize };
        self.assoc_set(t, cls + 4, name, Word::Int(n as i64))?;
        Ok(Some(n))
    }

    /// Read ivar by index from an Object instance.
    pub fn obj_ivar_get(&mut self, t: ThreadId, obj: Addr, idx: usize) -> Result<Word, VmAbort> {
        let n = self.rd(t, obj + 3)?.as_int().unwrap_or(0) as usize;
        if idx >= n {
            return Ok(Word::Nil);
        }
        let buf = self.rd(t, obj + 2)?.as_int().unwrap_or(0) as Addr;
        self.rd(t, buf + idx)
    }

    /// Write ivar by index, growing the buffer as needed.
    pub fn obj_ivar_set(
        &mut self,
        t: ThreadId,
        obj: Addr,
        idx: usize,
        v: Word,
    ) -> Result<(), VmAbort> {
        let n = self.rd(t, obj + 3)?.as_int().unwrap_or(0) as usize;
        let cap = self.rd(t, obj + 4)?.as_int().unwrap_or(0) as usize;
        let mut buf = self.rd(t, obj + 2)?.as_int().unwrap_or(0) as Addr;
        if idx >= cap {
            let (nb, nc) = self.malloc(t, (idx + 1).max(cap * 2).max(4))?;
            for i in 0..n {
                let w = self.rd(t, buf + i)?;
                self.wr(t, nb + i, w)?;
            }
            if buf != 0 {
                self.mfree(t, buf, cap)?;
            }
            self.wr(t, obj + 2, Word::Int(nb as i64))?;
            self.wr(t, obj + 4, Word::Int(nc as i64))?;
            buf = nb;
        }
        if idx >= n {
            for i in n..idx {
                self.wr(t, buf + i, Word::Nil)?;
            }
            self.wr(t, obj + 3, Word::Int(idx as i64 + 1))?;
        }
        self.wr(t, buf + idx, v)
    }

    /// Class-variable read: walk the superclass chain.
    pub fn cvar_get(&mut self, t: ThreadId, cls: Addr, name: SymId) -> Result<Word, VmAbort> {
        let mut c = cls;
        loop {
            let cvtbl = self.rd(t, c + 5)?.as_int().unwrap_or(0) as Addr;
            if let Some((_, v)) = self.assoc_get(t, cvtbl, name)? {
                return Ok(v);
            }
            match self.rd(t, c + 1)? {
                Word::Obj(s) => c = s,
                _ => return Ok(Word::Nil),
            }
        }
    }

    /// Class-variable write: update where defined, else define on `cls`.
    pub fn cvar_set(
        &mut self,
        t: ThreadId,
        cls: Addr,
        name: SymId,
        v: Word,
    ) -> Result<(), VmAbort> {
        let mut c = cls;
        loop {
            let cvtbl = self.rd(t, c + 5)?.as_int().unwrap_or(0) as Addr;
            if self.assoc_get(t, cvtbl, name)?.is_some() {
                return self.assoc_set(t, c + 5, name, v);
            }
            match self.rd(t, c + 1)? {
                Word::Obj(s) => c = s,
                _ => return self.assoc_set(t, cls + 5, name, v),
            }
        }
    }

    // ---- equality / display -------------------------------------------------

    /// Ruby `==` (value equality for strings/floats, identity otherwise).
    pub fn words_eq(&mut self, t: ThreadId, a: &Word, b: &Word) -> Result<bool, VmAbort> {
        if let Some(r) = a.immediate_eq(b) {
            return Ok(r);
        }
        match (a, b) {
            (Word::Obj(x), Word::Obj(y)) => {
                if x == y {
                    return Ok(true);
                }
                let kx = self.kind_of(t, *x)?;
                let ky = self.kind_of(t, *y)?;
                match (kx, ky) {
                    (ObjKind::Float, ObjKind::Float) => {
                        let fx = self.rd(t, *x + 1)?.as_f64().unwrap_or(f64::NAN);
                        let fy = self.rd(t, *y + 1)?.as_f64().unwrap_or(f64::NAN);
                        Ok(fx == fy)
                    }
                    (ObjKind::String, ObjKind::String) => {
                        let sx = self.string_content(t, *x)?;
                        let sy = self.string_content(t, *y)?;
                        Ok(sx == sy)
                    }
                    _ => Ok(false),
                }
            }
            (Word::Obj(x), Word::Int(i)) | (Word::Int(i), Word::Obj(x)) => {
                if self.kind_of(t, *x)? == ObjKind::Float {
                    let f = self.rd(t, *x + 1)?.as_f64().unwrap_or(f64::NAN);
                    Ok(f == *i as f64)
                } else {
                    Ok(false)
                }
            }
            _ => Ok(false),
        }
    }

    /// Numeric view of a value (Int or Float object).
    pub fn as_number(&mut self, t: ThreadId, w: &Word) -> Result<Option<f64>, VmAbort> {
        Ok(match w {
            Word::Int(i) => Some(*i as f64),
            Word::Obj(s) if self.kind_of(t, *s)? == ObjKind::Float => {
                Some(self.rd(t, *s + 1)?.as_f64().unwrap_or(f64::NAN))
            }
            _ => None,
        })
    }

    /// `to_s` used by `puts` and string concatenation.
    pub fn display(&mut self, t: ThreadId, w: &Word) -> Result<String, VmAbort> {
        Ok(match w {
            Word::Nil => String::new(),
            Word::True => "true".into(),
            Word::False => "false".into(),
            Word::Int(i) => i.to_string(),
            Word::Sym(s) => self.program.symbols.name(*s).to_string(),
            Word::Obj(slot) => match self.kind_of(t, *slot)? {
                ObjKind::Float => {
                    let f = self.rd(t, *slot + 1)?.as_f64().unwrap_or(f64::NAN);
                    format_ruby_float(f)
                }
                ObjKind::String => self.string_content(t, *slot)?.to_string(),
                ObjKind::Array => {
                    let len = self.array_len(t, *slot)?;
                    let mut parts = Vec::with_capacity(len);
                    for i in 0..len {
                        let e = self.array_get(t, *slot, i as i64)?;
                        parts.push(self.inspect(t, &e)?);
                    }
                    format!("[{}]", parts.join(", "))
                }
                ObjKind::Range => {
                    let lo = self.rd(t, *slot + 1)?;
                    let hi = self.rd(t, *slot + 2)?;
                    let excl = self.rd(t, *slot + 3)?.as_int().unwrap_or(0) != 0;
                    let l = self.display(t, &lo)?;
                    let h = self.display(t, &hi)?;
                    format!("{l}{}{h}", if excl { "..." } else { ".." })
                }
                ObjKind::Class => {
                    let n = self.rd(t, *slot + 6)?;
                    match n {
                        Word::Sym(s) => self.program.symbols.name(s).to_string(),
                        _ => "#<Class>".into(),
                    }
                }
                k => format!("#<{k:?}:{slot}>"),
            },
            other => format!("{other:?}"),
        })
    }

    /// `inspect` (strings quoted, nil printed).
    pub fn inspect(&mut self, t: ThreadId, w: &Word) -> Result<String, VmAbort> {
        Ok(match w {
            Word::Nil => "nil".into(),
            Word::Sym(s) => format!(":{}", self.program.symbols.name(*s)),
            Word::Obj(slot) if self.kind_of(t, *slot)? == ObjKind::String => {
                format!("{:?}", self.string_content(t, *slot)?)
            }
            other => self.display(t, other)?,
        })
    }

    // ---- globals / constants -------------------------------------------------

    pub fn gvar_addr(&mut self, name: SymId) -> Addr {
        let next = self.gvar_map.len();
        let idx = *self.gvar_map.entry(name).or_insert(next);
        self.layout.gvar(idx)
    }

    pub fn const_lookup(&self, name: SymId) -> Option<Addr> {
        self.const_map.get(&name).map(|&i| self.layout.cnst(i))
    }

    pub fn const_define_addr(&mut self, name: SymId) -> Addr {
        let next = self.const_map.len();
        let idx = *self.const_map.entry(name).or_insert(next);
        self.layout.cnst(idx)
    }

    // ---- bootstrap -------------------------------------------------------------

    /// Create the core class hierarchy and install builtins. Boot-time
    /// only (uses `poke`, no transactions active).
    pub fn bootstrap_classes(&mut self) {
        let object = self.boot_class("Object", 0);
        self.classes.object = object;
        self.classes.class_cls = self.boot_class("Class", object);
        self.classes.integer = self.boot_class("Integer", object);
        self.classes.float_cls = self.boot_class("Float", object);
        self.classes.string = self.boot_class("String", object);
        self.classes.array = self.boot_class("Array", object);
        self.classes.hash = self.boot_class("Hash", object);
        self.classes.range = self.boot_class("Range", object);
        self.classes.symbol = self.boot_class("Symbol", object);
        self.classes.nil_cls = self.boot_class("NilClass", object);
        self.classes.true_cls = self.boot_class("TrueClass", object);
        self.classes.false_cls = self.boot_class("FalseClass", object);
        self.classes.thread_cls = self.boot_class("Thread", object);
        self.classes.mutex_cls = self.boot_class("Mutex", object);
        self.classes.barrier_cls = self.boot_class("Barrier", object);
        self.classes.regexp = self.boot_class("Regexp", object);
        self.classes.matchdata = self.boot_class("MatchData", object);
        self.classes.proc_cls = self.boot_class("Proc", object);
        self.classes.math = self.boot_class("Math", object);
        self.classes.store = self.boot_class("Store", object);
        // Numeric alias used by some sources.
        let fixnum_sym = self.program.intern("Fixnum");
        let addr = self.const_define_addr(fixnum_sym);
        self.mem.poke(addr, Word::Obj(self.classes.integer));
        // The top-level main object.
        let main = self.alloc_slot_boot().expect("heap too small for bootstrap");
        self.mem.poke(main, Word::Hdr(ObjHeader { kind: ObjKind::Object, marked: false }));
        self.mem.poke(main + 1, Word::Obj(object));
        self.mem.poke(main + 2, Word::Int(0));
        self.mem.poke(main + 3, Word::Int(0));
        self.mem.poke(main + 4, Word::Int(0));
        self.classes.main_obj = main;
        crate::builtins::install(self);
    }

    fn boot_class(&mut self, name: &str, superclass: Addr) -> Addr {
        let slot = self.alloc_slot_boot().expect("heap too small for bootstrap classes");
        let name_sym = self.program.intern(name);
        self.mem.poke(slot, Word::Hdr(ObjHeader { kind: ObjKind::Class, marked: false }));
        self.mem.poke(slot + 1, if superclass == 0 { Word::Nil } else { Word::Obj(superclass) });
        self.mem.poke(slot + 2, Word::Int(0));
        self.mem.poke(slot + 3, Word::Int(0));
        self.mem.poke(slot + 4, Word::Int(0));
        self.mem.poke(slot + 5, Word::Int(0));
        self.mem.poke(slot + 6, Word::Sym(name_sym));
        self.mem.poke(slot + 7, Word::Int(0));
        let caddr = self.const_define_addr(name_sym);
        self.mem.poke(caddr, Word::Obj(slot));
        slot
    }

    /// Boot-time method installation (used by `builtins::install`).
    pub fn boot_define(&mut self, cls: Addr, name: &str, entry: MethodEntry, on_self: bool) {
        let sym = self.program.intern(name);
        self.define_method(0, cls, sym, entry, on_self).expect("boot method definition failed");
    }
}

/// Ruby-style float formatting (always shows a decimal point).
pub fn format_ruby_float(f: f64) -> String {
    if f.is_nan() {
        return "NaN".into();
    }
    if f.is_infinite() {
        return if f > 0.0 { "Infinity".into() } else { "-Infinity".into() };
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        let s = format!("{f}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmConfig;
    use machine_sim::MachineProfile;

    fn vm() -> Vm {
        Vm::boot("nil", VmConfig::default(), &MachineProfile::generic(2)).unwrap()
    }

    #[test]
    fn float_objects_roundtrip() {
        let mut vm = vm();
        let w = vm.make_float(0, 2.5).unwrap();
        let slot = w.as_obj().unwrap();
        assert_eq!(vm.kind_of(0, slot).unwrap(), ObjKind::Float);
        assert_eq!(vm.as_number(0, &w).unwrap(), Some(2.5));
    }

    #[test]
    fn string_replace_grows_shadow() {
        let mut vm = vm();
        let w = vm.make_string(0, "ab").unwrap();
        let slot = w.as_obj().unwrap();
        let long = "x".repeat(200);
        vm.string_replace(0, slot, &long).unwrap();
        assert_eq!(&*vm.string_content(0, slot).unwrap(), long.as_str());
        let cap = vm.mem.peek(slot + 4).as_int().unwrap() as usize;
        assert!(cap >= 25, "shadow must cover 200 bytes, got {cap} words");
    }

    #[test]
    fn array_growth_preserves_elements() {
        let mut vm = vm();
        let w = vm.make_array(0, &[Word::Int(0), Word::Int(1)]).unwrap();
        let slot = w.as_obj().unwrap();
        for i in 2..50 {
            vm.array_push(0, slot, Word::Int(i)).unwrap();
        }
        assert_eq!(vm.array_len(0, slot).unwrap(), 50);
        for i in 0..50 {
            assert_eq!(vm.array_get(0, slot, i).unwrap(), Word::Int(i));
        }
        // Negative indexing.
        assert_eq!(vm.array_get(0, slot, -1).unwrap(), Word::Int(49));
        // Out of bounds reads nil.
        assert_eq!(vm.array_get(0, slot, 99).unwrap(), Word::Nil);
    }

    #[test]
    fn sparse_array_set_fills_nils() {
        let mut vm = vm();
        let w = vm.make_array(0, &[]).unwrap();
        let slot = w.as_obj().unwrap();
        vm.array_set(0, slot, 5, Word::Int(7)).unwrap();
        assert_eq!(vm.array_len(0, slot).unwrap(), 6);
        assert_eq!(vm.array_get(0, slot, 2).unwrap(), Word::Nil);
        assert_eq!(vm.array_get(0, slot, 5).unwrap(), Word::Int(7));
    }

    #[test]
    fn hash_set_get_update() {
        let mut vm = vm();
        let w = vm.make_hash(0, &[]).unwrap();
        let slot = w.as_obj().unwrap();
        vm.hash_set(0, slot, Word::Int(1), Word::Int(10)).unwrap();
        vm.hash_set(0, slot, Word::Int(2), Word::Int(20)).unwrap();
        vm.hash_set(0, slot, Word::Int(1), Word::Int(11)).unwrap();
        assert_eq!(vm.hash_get(0, slot, &Word::Int(1)).unwrap(), Word::Int(11));
        assert_eq!(vm.hash_get(0, slot, &Word::Int(2)).unwrap(), Word::Int(20));
        assert_eq!(vm.hash_get(0, slot, &Word::Int(3)).unwrap(), Word::Nil);
        // Growth past initial capacity.
        for i in 3..40 {
            vm.hash_set(0, slot, Word::Int(i), Word::Int(10 * i)).unwrap();
        }
        assert_eq!(vm.hash_get(0, slot, &Word::Int(39)).unwrap(), Word::Int(390));
    }

    #[test]
    fn string_keys_compare_by_content() {
        let mut vm = vm();
        let h = vm.make_hash(0, &[]).unwrap();
        let hs = h.as_obj().unwrap();
        let k1 = vm.make_string(0, "key").unwrap();
        let k2 = vm.make_string(0, "key").unwrap();
        vm.hash_set(0, hs, k1, Word::Int(5)).unwrap();
        assert_eq!(vm.hash_get(0, hs, &k2).unwrap(), Word::Int(5));
    }

    #[test]
    fn method_definition_and_lookup_chain() {
        let mut vm = vm();
        let obj_cls = vm.classes.object;
        let sub = vm.boot_class("Sub", obj_cls);
        let sym = vm.program.intern("zzz_test_method");
        vm.define_method(0, obj_cls, sym, MethodEntry::Builtin(1234), false).unwrap();
        // Inherited through the chain:
        let got = vm.lookup_method(0, sub, sym).unwrap();
        assert_eq!(got, Some(MethodEntry::Builtin(1234)));
        // Overriding in the subclass shadows:
        vm.define_method(0, sub, sym, MethodEntry::Builtin(7), false).unwrap();
        assert_eq!(vm.lookup_method(0, sub, sym).unwrap(), Some(MethodEntry::Builtin(7)));
        assert_eq!(vm.lookup_method(0, obj_cls, sym).unwrap(), Some(MethodEntry::Builtin(1234)));
    }

    #[test]
    fn method_entry_encoding_roundtrip() {
        for e in [
            MethodEntry::Iseq(crate::bytecode::IseqId(0)),
            MethodEntry::Iseq(crate::bytecode::IseqId(123)),
            MethodEntry::Builtin(0),
            MethodEntry::Builtin(999),
        ] {
            assert_eq!(MethodEntry::decode(e.encode()), e);
        }
    }

    #[test]
    fn ivar_index_allocation_is_per_class() {
        let mut vm = vm();
        let cls = vm.boot_class("IvarTest", vm.classes.object);
        let a = vm.program.intern("a");
        let b = vm.program.intern("b");
        assert_eq!(vm.ivar_index(0, cls, a, true).unwrap(), Some(0));
        assert_eq!(vm.ivar_index(0, cls, b, true).unwrap(), Some(1));
        assert_eq!(vm.ivar_index(0, cls, a, true).unwrap(), Some(0));
        assert_eq!(
            vm.ivar_index(0, cls, vm.program.symbols.lookup("a").unwrap(), false).unwrap(),
            Some(0)
        );
    }

    #[test]
    fn object_ivars_grow() {
        let mut vm = vm();
        let cls = vm.classes.object;
        let o = vm.make_object(0, cls).unwrap();
        let slot = o.as_obj().unwrap();
        for i in 0..10 {
            vm.obj_ivar_set(0, slot, i, Word::Int(i as i64)).unwrap();
        }
        for i in 0..10 {
            assert_eq!(vm.obj_ivar_get(0, slot, i).unwrap(), Word::Int(i as i64));
        }
        assert_eq!(vm.obj_ivar_get(0, slot, 99).unwrap(), Word::Nil);
    }

    #[test]
    fn cvar_walks_superclass_chain() {
        let mut vm = vm();
        let base = vm.boot_class("CvBase", vm.classes.object);
        let sub = vm.boot_class("CvSub", base);
        let name = vm.program.intern("count");
        vm.cvar_set(0, base, name, Word::Int(1)).unwrap();
        assert_eq!(vm.cvar_get(0, sub, name).unwrap(), Word::Int(1));
        // Writing through the subclass updates the *base* definition.
        vm.cvar_set(0, sub, name, Word::Int(2)).unwrap();
        assert_eq!(vm.cvar_get(0, base, name).unwrap(), Word::Int(2));
    }

    #[test]
    fn display_formats() {
        let mut vm = vm();
        assert_eq!(vm.display(0, &Word::Int(42)).unwrap(), "42");
        assert_eq!(vm.display(0, &Word::Nil).unwrap(), "");
        assert_eq!(vm.inspect(0, &Word::Nil).unwrap(), "nil");
        let f = vm.make_float(0, 3.0).unwrap();
        assert_eq!(vm.display(0, &f).unwrap(), "3.0");
        let s = vm.make_string(0, "hey").unwrap();
        assert_eq!(vm.display(0, &s).unwrap(), "hey");
        assert_eq!(vm.inspect(0, &s).unwrap(), "\"hey\"");
        let arr = vm.make_array(0, &[Word::Int(1), s.clone()]).unwrap();
        assert_eq!(vm.display(0, &arr).unwrap(), "[1, \"hey\"]");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_ruby_float(3.0), "3.0");
        assert_eq!(format_ruby_float(2.5), "2.5");
        assert_eq!(format_ruby_float(-1.0), "-1.0");
    }

    #[test]
    fn words_eq_semantics() {
        let mut vm = vm();
        let f1 = vm.make_float(0, 1.5).unwrap();
        let f2 = vm.make_float(0, 1.5).unwrap();
        assert!(vm.words_eq(0, &f1, &f2).unwrap());
        let s1 = vm.make_string(0, "x").unwrap();
        let s2 = vm.make_string(0, "x").unwrap();
        assert!(vm.words_eq(0, &s1, &s2).unwrap());
        assert!(!vm.words_eq(0, &s1, &f1).unwrap());
        let i3 = Word::Int(3);
        let f3 = vm.make_float(0, 3.0).unwrap();
        assert!(vm.words_eq(0, &i3, &f3).unwrap(), "3 == 3.0 in Ruby");
    }
}
