//! The VM proper: configuration, thread contexts, boot, and the helpers
//! shared by the interpreter, heap and builtins (which are all `impl Vm`
//! blocks in their own modules).

use std::collections::HashMap;

use htm_sim::{AbortReason, LineLease, TxMemory};
use machine_sim::{MachineProfile, ThreadId};

use crate::bytecode::IseqId;
use crate::compile::{compile_source, CompileError};
use crate::layout::{ts, Layout, SLOT_WORDS};
use crate::program::{PoolLiteral, Program};
use crate::symbols::SymId;
use crate::value::{Addr, ObjHeader, ObjKind, Word};

/// Configuration knobs — each maps to a lever the paper turns.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Initial object-slot count (`RUBY_HEAP_MIN_SLOTS`; the paper raises
    /// it from 10 000 to 10 000 000 — we scale both ends down).
    pub heap_slots: usize,
    /// Hard cap on slots after growth.
    pub max_heap_slots: usize,
    /// Words in the malloc area.
    pub malloc_words: usize,
    /// Words per thread stack.
    pub stack_words: usize,
    /// Maximum concurrently-live threads.
    pub max_threads: usize,
    /// §4.4 #2: per-thread free lists, refilled in bulk from the global
    /// list.
    pub thread_local_free_lists: bool,
    /// Bulk-refill size (paper: 256).
    pub free_list_refill: usize,
    /// HEAPPOOLS analogue: per-thread malloc arenas.
    pub malloc_thread_local: bool,
    /// §4.4 #4a: method inline caches filled only at the first miss.
    pub method_ic_fill_once: bool,
    /// §4.4 #4b: ivar inline caches guarded by ivar-table identity rather
    /// than class identity.
    pub ivar_ic_table_guard: bool,
    /// §4.4 #5: thread structs padded to dedicated cache lines.
    pub padded_thread_structs: bool,
    /// Words the thread-local malloc arena grabs from the bump region at a
    /// time.
    pub tl_malloc_chunk: usize,
    /// Capacity of the global-variable and constant tables.
    pub gvar_cap: usize,
    pub const_cap: usize,
    /// §5.6 extension: thread-local lazy sweeping over per-thread heap
    /// partitions (see `extensions`).
    pub tl_lazy_sweep: bool,
    /// §5.6 extension: per-thread inline-cache areas.
    pub thread_local_ics: bool,
    /// §7 what-if: CPython-style reference-count writes on every object
    /// store (the counts are decorative; the *traffic* is the point).
    pub refcount_writes: bool,
    /// Seed of the deterministic connection-latency model behind
    /// `Kernel#conn_wait` (task-server scenario).
    pub conn_seed: u64,
    /// Force the un-decoded reference interpreter (`Vm::step_slow`);
    /// also settable via `HTMGIL_FORCE_SLOW_DISPATCH=1`. The decoded
    /// fast path and this reference path must be observationally
    /// identical — CI diffs figure reports across the two.
    pub slow_dispatch: bool,
    /// Disable the line-lease batched access path: every `Vm::rd`/`Vm::wr`
    /// goes through the full per-word `TxMemory` accounting. Also settable
    /// via `HTMGIL_FORCE_WORD_ACCESS=1`. The leased and per-word paths
    /// must be observationally identical — CI diffs figure reports across
    /// the two, exactly like the dispatch knob above.
    pub force_word_access: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            heap_slots: 40_000,
            max_heap_slots: 400_000,
            malloc_words: 400_000,
            stack_words: 4_096,
            max_threads: 16,
            thread_local_free_lists: true,
            free_list_refill: 256,
            malloc_thread_local: true,
            method_ic_fill_once: true,
            ivar_ic_table_guard: true,
            padded_thread_structs: true,
            tl_malloc_chunk: 4_096,
            gvar_cap: 128,
            const_cap: 256,
            tl_lazy_sweep: false,
            thread_local_ics: false,
            refcount_writes: false,
            conn_seed: 0xC0_11EC7,
            slow_dispatch: false,
            force_word_access: false,
        }
    }
}

impl VmConfig {
    /// The paper's *original CRuby* interpreter internals: global free
    /// list, global malloc, refill-every-miss caches, class-equality ivar
    /// guards, packed thread structs, small heap. Used by the "without
    /// conflict removal" ablations.
    pub fn original_cruby(mut self) -> Self {
        self.thread_local_free_lists = false;
        self.malloc_thread_local = false;
        self.method_ic_fill_once = false;
        self.ivar_ic_table_guard = false;
        self.padded_thread_structs = false;
        self
    }

    /// Small-heap variant (the paper's default 10 000-slot CRuby heap,
    /// scaled): triggers frequent GC.
    pub fn small_heap(mut self) -> Self {
        self.heap_slots = 4_000;
        // Leave growth headroom: delayed-reclamation schemes (the §5.6
        // thread-local sweep keeps each partition's garbage until its
        // owner allocates) retain more floating garbage.
        self.max_heap_slots = 200_000;
        self
    }
}

/// Fatal interpreter error (a Ruby exception would be raised; the subset
/// treats them as run-ending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    pub msg: String,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm error: {}", self.msg)
    }
}

impl std::error::Error for VmError {}

/// Why a step did not complete normally.
#[derive(Debug, Clone, PartialEq)]
pub enum VmAbort {
    /// The active transaction aborted (already rolled back); the TLE
    /// runtime decides whether to retry or fall back on the GIL.
    Tx(AbortReason),
    /// Fatal error — stops the run.
    Err(VmError),
}

impl From<AbortReason> for VmAbort {
    fn from(r: AbortReason) -> Self {
        VmAbort::Tx(r)
    }
}

impl VmAbort {
    pub fn fatal(msg: impl Into<String>) -> VmAbort {
        VmAbort::Err(VmError { msg: msg.into() })
    }
}

/// What a thread is blocked on (the executor parks it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockOn {
    /// Mutex held by someone else; retry the instruction on wake.
    Mutex(Addr),
    /// Waiting for a thread to finish; retry on wake.
    Join(ThreadId),
    /// Blocking I/O with a simulated latency in I/O units (the executor
    /// multiplies by the profile's `io_latency`).
    Io(u32),
    /// Waiting on a barrier; retry on wake (generation check skips
    /// re-arrival).
    Barrier(Addr),
}

/// Result of executing one bytecode.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOk {
    Normal,
    /// The thread's root frame returned; `ThreadCtx::result` holds the
    /// value.
    Finished,
    /// A new VM thread was created (already registered); the executor must
    /// schedule it.
    Spawned {
        tid: ThreadId,
    },
    /// Block the thread; the instruction will be retried on wake unless
    /// noted otherwise.
    Block(BlockOn),
}

/// Wait-queue keys the executor uses to wake parked threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeKey {
    Mutex(Addr),
    Barrier(Addr),
}

/// Registers of one Ruby thread. Everything else (stack, frames, locals)
/// lives in simulated memory so transactions roll it back automatically.
#[derive(Debug, Clone)]
pub struct ThreadCtx {
    pub tid: ThreadId,
    pub stack_base: Addr,
    pub stack_end: Addr,
    /// Current frame base.
    pub fp: Addr,
    /// Next free stack word.
    pub sp: Addr,
    pub pc: usize,
    pub iseq: IseqId,
    /// Global-pc base of `iseq` in the pre-decoded stream (cached so the
    /// fast dispatcher fetches `decoded[base + pc]` without an indirection
    /// through the iseq table). Maintained by every frame transition.
    pub base: u32,
    pub finished: bool,
    /// Heap address of the Ruby `Thread` object (0 for the main thread
    /// until materialized).
    pub thread_obj: Addr,
    pub result: Word,
    /// Barrier re-entry token: (barrier addr, generation at arrival).
    pub barrier_token: Option<(Addr, i64)>,
}

/// Register snapshot taken at transaction begin; memory words roll back
/// via the undo log, registers via this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegSnapshot {
    pub fp: Addr,
    pub sp: Addr,
    pub pc: usize,
    pub iseq: IseqId,
}

/// Well-known classes created at boot (heap addresses).
#[derive(Debug, Clone, Default)]
pub struct CoreClasses {
    pub object: Addr,
    pub class_cls: Addr,
    pub integer: Addr,
    pub float_cls: Addr,
    pub string: Addr,
    pub array: Addr,
    pub hash: Addr,
    pub range: Addr,
    pub symbol: Addr,
    pub nil_cls: Addr,
    pub true_cls: Addr,
    pub false_cls: Addr,
    pub thread_cls: Addr,
    pub mutex_cls: Addr,
    pub barrier_cls: Addr,
    pub regexp: Addr,
    pub matchdata: Addr,
    pub proc_cls: Addr,
    pub math: Addr,
    pub store: Addr,
    /// The top-level `main` object.
    pub main_obj: Addr,
}

/// Ways in the per-thread lease cache, direct-mapped by cache-line number.
/// Four cover the hot working set of a step — the frame-locals line, the
/// operand-stack top line, and an inline-cache or ivar line — without
/// making the lookup more than an index-and-compare.
const LEASE_WAYS: usize = 4;
const LEASE_MASK: usize = LEASE_WAYS - 1;

/// One lease-cache way: the read and write leases a thread holds for one
/// line. The modes are separate tokens because `TxMemory` accounts read
/// and write footprints independently (a write lease must not serve
/// reads, or the read set would stop growing where the per-word path
/// grows it).
#[derive(Debug, Clone, Copy)]
pub struct LeasePair {
    rd: LineLease,
    wr: LineLease,
}

impl Default for LeasePair {
    fn default() -> Self {
        LeasePair { rd: LineLease::INVALID, wr: LineLease::INVALID }
    }
}

/// The virtual machine.
pub struct Vm {
    pub mem: TxMemory<Word>,
    pub layout: Layout,
    /// Line → owner map registered at layout time and extended on heap
    /// growth; the executor uses it to attribute conflicting cache lines
    /// to VM structures (paper §5.6).
    pub attribution: crate::layout::AttributionMap,
    pub config: VmConfig,
    pub program: Program,
    pub threads: Vec<ThreadCtx>,
    pub classes: CoreClasses,
    /// Captured `puts` output (per-run, used as the correctness oracle).
    pub stdout: Vec<String>,
    pub gvar_map: HashMap<SymId, usize>,
    pub const_map: HashMap<SymId, usize>,
    /// Literal pool resolved to heap objects at boot (shared, frozen).
    pub pooled_objs: Vec<Word>,
    /// Slot ranges: (base addr, slot count) — grows with the heap.
    pub slot_ranges: Vec<(Addr, usize)>,
    /// Compiled-regex cache keyed by pattern (host-side, like onig's).
    pub regex_cache: HashMap<String, crate::regexlite::Regex>,
    /// Memory references made by the current step (the executor charges
    /// cycles from this).
    pub step_mem_refs: u32,
    /// Extra native cycles requested by the current step (regex, store…).
    pub step_native_cost: u64,
    /// Wakes to drain after the step (mutex unlocks, barrier releases).
    pub pending_wakes: Vec<WakeKey>,
    /// GC statistics.
    pub gc_runs: u64,
    pub heap_grows: u64,
    /// Allocation counter (paper §5.6 attributes conflicts to allocation).
    pub allocations: u64,
    /// True while the GC mark/sweep itself runs (for cycle attribution).
    pub in_gc: bool,
    /// Deterministic RNG for `rand` (seeded per run).
    pub(crate) rand_state: u64,
    /// Builtin dispatch table (ids are indices; see `builtins::install`).
    pub builtins: Vec<crate::builtins::BFn>,
    /// Heap-promoted block environments (one chain per spawned thread);
    /// permanent GC roots. See `Vm::promote_env`.
    pub promoted_envs: Vec<(Addr, usize)>,
    /// Slot-count snapshot taken at the last mark phase: thread-local
    /// sweep partitions are computed from this frozen total so mid-cycle
    /// heap growth cannot shift partition boundaries (two threads
    /// sweeping the same slot would free live objects).
    pub gc_sweep_total: usize,
    /// Values alive only in Rust locals during the current step (popped
    /// operands being assembled into a new aggregate, a Proc in flight to
    /// a builtin, regex group strings…). The GC treats them as roots —
    /// the role CRuby's conservative C-stack scan plays. Cleared at the
    /// start of every step.
    pub temp_roots: Vec<Word>,
    /// Deterministic connection-latency model behind `Kernel#conn_wait`.
    pub conn: machine_sim::ConnModel,
    /// Server-scenario marks (`Kernel#srv_mark`: kind, task id) emitted by
    /// the current step; the executor drains them after every step and —
    /// inside a transaction — holds them in escrow until commit, so an
    /// aborted slice leaves no phantom latency events.
    pub pending_marks: Vec<(u8, i64)>,
    /// True when the un-decoded reference interpreter is forced (config
    /// flag or `HTMGIL_FORCE_SLOW_DISPATCH`).
    pub slow_dispatch: bool,
    /// Superinstruction gate: a decoded insn whose fusion bits intersect
    /// this mask may execute its fused pair in one step. The executor only
    /// raises it when fusion is invisible (single live thread, no active
    /// transaction, no trace sink); 0 disables fusion entirely.
    pub fuse_allowed: u8,
    /// Bytecodes retired by the current step (2 when a fused pair ran,
    /// else 1); the executor folds this into committed-insn accounting and
    /// cycle charging so fusion stays invisible to the simulation.
    pub step_insns: u32,
    /// Committed global method-table version. A versioned inline cache is
    /// valid only if the version half of its guard word matches
    /// [`Vm::effective_method_version`]; bumped when a method definition
    /// shadows or replaces a resolvable one.
    pub method_version: u32,
    /// Version bumps made inside the current transaction, escrowed exactly
    /// like marks and wakes: published at commit, dropped on abort (the
    /// method-table words themselves roll back via the undo log).
    pub pending_method_bumps: u32,
    /// Per-thread line-lease cache ([`LEASE_WAYS`] ways, direct-mapped by
    /// line number). Stale entries are harmless — validity is re-checked
    /// against the memory's epoch on every use.
    pub(crate) lease_cache: Vec<[LeasePair; LEASE_WAYS]>,
    /// Dedicated per-thread lease pair for runtime-level words (yield
    /// counter, interrupt flag — the thread-struct line), kept out of the
    /// way cache so per-instruction counter traffic cannot thrash the
    /// interpreter's hot lines.
    pub(crate) runtime_leases: Vec<LeasePair>,
    /// False when the batched lease path is disabled (config flag,
    /// `HTMGIL_FORCE_WORD_ACCESS`, or `refcount_writes` — whose extra
    /// traffic per store needs the full path anyway).
    pub(crate) use_leases: bool,
}

impl Vm {
    /// Build a VM for `source`, compiled against the prelude, sized by
    /// `config`, with the cache geometry of `profile`.
    pub fn boot(
        source: &str,
        config: VmConfig,
        profile: &MachineProfile,
    ) -> Result<Vm, CompileError> {
        let mut program = Program::default();
        // Pre-intern operator names used by generic fallbacks.
        for op in [
            "+",
            "-",
            "*",
            "/",
            "%",
            "==",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
            "<=>",
            "<<",
            ">>",
            "&",
            "|",
            "^",
            "**",
            "initialize",
            "new",
            "each",
            "times",
            "to_s",
        ] {
            program.intern(op);
        }
        let prelude_iseq = compile_source(crate::prelude::PRELUDE, &mut program)?;
        let main_iseq = compile_source(source, &mut program)?;
        program.finalize();

        let line_words = profile.cache.line_words();
        let ic_copies = if config.thread_local_ics { config.max_threads } else { 1 };
        let layout = Layout::new(
            line_words,
            program.ic_count as usize,
            config.max_threads,
            config.heap_slots,
            config.malloc_words,
            config.stack_words,
            config.gvar_cap,
            config.const_cap,
            config.padded_thread_structs,
            ic_copies,
        );
        let mem = TxMemory::new(layout.total_words, line_words, config.max_threads, Word::Uninit);
        let attribution = crate::layout::AttributionMap::from_layout(&layout);
        let config_slots = config.heap_slots;
        let conn_seed = config.conn_seed;
        let slow_dispatch = config.slow_dispatch
            || std::env::var_os("HTMGIL_FORCE_SLOW_DISPATCH")
                .is_some_and(|v| v != "0" && !v.is_empty());
        let force_word_access = config.force_word_access
            || std::env::var_os("HTMGIL_FORCE_WORD_ACCESS")
                .is_some_and(|v| v != "0" && !v.is_empty());
        let use_leases = !force_word_access && !config.refcount_writes;
        let lease_cache = vec![[LeasePair::default(); LEASE_WAYS]; config.max_threads];
        let runtime_leases = vec![LeasePair::default(); config.max_threads];
        let mut vm = Vm {
            mem,
            layout,
            attribution,
            config,
            program,
            threads: Vec::new(),
            classes: CoreClasses::default(),
            stdout: Vec::new(),
            gvar_map: HashMap::new(),
            const_map: HashMap::new(),
            pooled_objs: Vec::new(),
            slot_ranges: Vec::new(),
            regex_cache: HashMap::new(),
            step_mem_refs: 0,
            step_native_cost: 0,
            pending_wakes: Vec::new(),
            gc_runs: 0,
            heap_grows: 0,
            allocations: 0,
            in_gc: false,
            rand_state: 0x1234_5678_9abc_def0,
            builtins: Vec::new(),
            promoted_envs: Vec::new(),
            gc_sweep_total: config_slots,
            temp_roots: Vec::new(),
            conn: machine_sim::ConnModel::new(conn_seed),
            pending_marks: Vec::new(),
            slow_dispatch,
            fuse_allowed: 0,
            step_insns: 1,
            method_version: 0,
            pending_method_bumps: 0,
            lease_cache,
            runtime_leases,
            use_leases,
        };
        vm.init_memory();
        vm.bootstrap_classes();
        vm.alloc_literal_pool();
        // Main thread runs the prelude first, then the program: chain by
        // running the prelude to completion synchronously at boot (it only
        // defines methods — cheap and conflict-free).
        vm.spawn_main(prelude_iseq);
        vm.run_to_completion_single(0)
            .map_err(|e| CompileError { msg: format!("prelude failed: {e:?}") })?;
        // Reset the main thread onto the real program.
        vm.reset_thread(0, main_iseq);
        Ok(vm)
    }

    /// Initialize heap metadata and free lists.
    fn init_memory(&mut self) {
        let l = &self.layout;
        self.mem.poke(l.gil, Word::Int(0));
        self.mem.poke(l.running_thread, Word::Int(-1));
        // Nothing is sweepable until a mark phase has run: an unmarked
        // object is only garbage *after* GC marked the live ones.
        self.mem.poke(l.sweep_cursor, Word::Int(l.initial_slots as i64));
        self.mem.poke(l.malloc_bump, Word::Int(l.malloc_base as i64));
        self.mem.poke(l.malloc_end, Word::Int((l.malloc_base + l.malloc_words) as i64));
        for c in 0..crate::layout::MALLOC_CLASSES {
            self.mem.poke(l.malloc_class_base + c, Word::Int(0));
        }
        // Link every slot into the global free list.
        let base = l.slots_base;
        let n = l.initial_slots;
        self.slot_ranges.push((base, n));
        for i in 0..n {
            let slot = base + i * SLOT_WORDS;
            let next = if i + 1 < n { slot + SLOT_WORDS } else { 0 };
            self.mem.poke(slot, Word::Hdr(ObjHeader { kind: ObjKind::Free, marked: false }));
            self.mem.poke(slot + 1, Word::Int(next as i64));
        }
        self.mem.poke(l.free_head, Word::Int(base as i64));
        // Thread structs.
        for t in 0..l.max_threads {
            let s = l.thread_struct(t);
            self.mem.poke(s + ts::YIELD_COUNTER, Word::Int(0));
            self.mem.poke(s + ts::INTERRUPT, Word::Int(0));
            self.mem.poke(s + ts::TL_FREE_HEAD, Word::Int(0));
            self.mem.poke(s + ts::TL_MALLOC_BUMP, Word::Int(0));
            self.mem.poke(s + ts::TL_MALLOC_END, Word::Int(0));
            // Like the shared cursor: nothing is sweepable until a mark
            // phase has run, so park the cursor past the heap.
            self.mem.poke(s + ts::TL_SWEEP_CURSOR, Word::Int(l.initial_slots as i64));
            self.mem.poke(s + ts::SCRATCH, Word::Int(0));
            self.mem.poke(s + ts::RESERVED, Word::Int(0));
        }
    }

    /// Resolve pooled literals into shared heap objects.
    fn alloc_literal_pool(&mut self) {
        for i in 0..self.program.pooled.len() {
            let lit = self.program.pooled[i].clone();
            let w = match lit {
                PoolLiteral::Float(f) => {
                    let slot = self.alloc_slot_boot().expect("heap too small for literal pool");
                    self.mem
                        .poke(slot, Word::Hdr(ObjHeader { kind: ObjKind::Float, marked: false }));
                    self.mem.poke(slot + 1, Word::F64(f));
                    Word::Obj(slot)
                }
                PoolLiteral::Str(_) => unreachable!("strings are not pooled as objects"),
            };
            self.pooled_objs.push(w);
        }
    }

    /// Register the main thread.
    fn spawn_main(&mut self, iseq: IseqId) {
        assert!(self.threads.is_empty());
        let (stack_base, stack_end) = self.layout.thread_stack(0);
        let mut ctx = ThreadCtx {
            tid: 0,
            stack_base,
            stack_end,
            fp: stack_base,
            sp: stack_base,
            pc: 0,
            iseq,
            base: self.program.base(iseq),
            finished: false,
            thread_obj: 0,
            result: Word::Nil,
            barrier_token: None,
        };
        self.push_root_frame(&mut ctx, iseq, Word::Obj(self.classes.main_obj), 0, 0);
        self.threads.push(ctx);
    }

    /// Point an existing (finished) thread at a fresh iseq — used to chain
    /// prelude → program on the main thread.
    fn reset_thread(&mut self, tid: ThreadId, iseq: IseqId) {
        let (stack_base, stack_end) = self.layout.thread_stack(tid);
        let main_obj = self.classes.main_obj;
        let ctx = &mut self.threads[tid];
        ctx.stack_base = stack_base;
        ctx.stack_end = stack_end;
        ctx.fp = stack_base;
        ctx.sp = stack_base;
        ctx.pc = 0;
        ctx.iseq = iseq;
        ctx.base = self.program.base(iseq);
        ctx.finished = false;
        ctx.result = Word::Nil;
        let mut ctx = self.threads[tid].clone();
        self.push_root_frame(&mut ctx, iseq, Word::Obj(main_obj), 0, 0);
        self.threads[tid] = ctx;
    }

    /// Run thread `tid` to completion without transactions or scheduling —
    /// boot-time only (prelude execution).
    fn run_to_completion_single(&mut self, tid: ThreadId) -> Result<(), VmAbort> {
        // Single-threaded, transaction-free: superinstructions are
        // unobservable here, so always allow them.
        self.fuse_allowed = crate::decode::FUSE_ANY;
        let mut result = Err(VmAbort::fatal("prelude did not terminate"));
        for _ in 0..50_000_000u64 {
            match self.step(tid) {
                Ok(StepOk::Normal) => continue,
                Ok(StepOk::Finished) => result = Ok(()),
                Ok(StepOk::Spawned { .. } | StepOk::Block(_)) => {
                    result = Err(VmAbort::fatal("prelude must not spawn or block"))
                }
                Err(e) => result = Err(e),
            }
            break;
        }
        self.fuse_allowed = 0;
        self.publish_method_bumps();
        result
    }

    /// Take a register snapshot (transaction begin).
    pub fn snapshot(&self, tid: ThreadId) -> RegSnapshot {
        let c = &self.threads[tid];
        RegSnapshot { fp: c.fp, sp: c.sp, pc: c.pc, iseq: c.iseq }
    }

    /// Restore registers after an abort (memory already rolled back).
    pub fn restore(&mut self, tid: ThreadId, s: RegSnapshot) {
        let base = self.program.base(s.iseq);
        let c = &mut self.threads[tid];
        c.fp = s.fp;
        c.sp = s.sp;
        c.pc = s.pc;
        c.iseq = s.iseq;
        c.base = base;
    }

    // ---- memory access helpers (count refs for cycle charging) ----------
    //
    // Every interpreter word access — both dispatch paths, all opcodes —
    // funnels through `rd`/`wr`/`rd_int`. `step_mem_refs` is counted here
    // at the wrapper level, identically on the leased and per-word paths,
    // so simulated cycle charges (and with them every figure golden) are
    // byte-identical whichever path serves the access.

    #[inline]
    pub fn rd(&mut self, t: ThreadId, addr: Addr) -> Result<Word, VmAbort> {
        self.step_mem_refs += 1;
        if self.use_leases {
            let way = self.mem.line_of(addr) & LEASE_MASK;
            let lease = self.lease_cache[t][way].rd;
            if self.mem.lease_valid(&lease) && lease.covers(addr) {
                return Ok(self.mem.lease_read(&lease, addr));
            }
            let w = self.mem.read(t, addr)?;
            self.lease_cache[t][way].rd = self.mem.try_lease(t, addr, false);
            return Ok(w);
        }
        Ok(self.mem.read(t, addr)?)
    }

    /// [`Self::rd`] without the `step_mem_refs` charge — for runtime-level
    /// accesses (yield counters, interrupt flags) whose cycle cost the
    /// executor charges explicitly. Still leased — through the dedicated
    /// runtime pair, so per-instruction counter traffic cannot thrash the
    /// interpreter's way cache — and still one counted statistics access.
    #[inline]
    pub fn rd_untimed(&mut self, t: ThreadId, addr: Addr) -> Result<Word, AbortReason> {
        if self.use_leases {
            let lease = self.runtime_leases[t].rd;
            if self.mem.lease_valid(&lease) && lease.covers(addr) {
                return Ok(self.mem.lease_read(&lease, addr));
            }
            let w = self.mem.read(t, addr)?;
            self.runtime_leases[t].rd = self.mem.try_lease(t, addr, false);
            return Ok(w);
        }
        self.mem.read(t, addr)
    }

    /// Read that classifies the word in place: `Ok(i)` for an immediate
    /// integer, `Err(word)` (cloned) otherwise — one counted access either
    /// way. The arithmetic/compare superinstructions use it to reach the
    /// `(Int, Int)` fast lane without cloning through the generic path.
    #[inline]
    pub fn rd_int(&mut self, t: ThreadId, addr: Addr) -> Result<Result<i64, Word>, VmAbort> {
        #[inline(always)]
        fn probe(w: &Word) -> Result<i64, Word> {
            match w {
                Word::Int(i) => Ok(*i),
                other => Err(other.clone()),
            }
        }
        self.step_mem_refs += 1;
        if self.use_leases {
            let way = self.mem.line_of(addr) & LEASE_MASK;
            let lease = self.lease_cache[t][way].rd;
            if self.mem.lease_valid(&lease) && lease.covers(addr) {
                return Ok(self.mem.lease_read_with(&lease, addr, probe));
            }
            let r = self.mem.read_with(t, addr, probe)?;
            self.lease_cache[t][way].rd = self.mem.try_lease(t, addr, false);
            return Ok(r);
        }
        Ok(self.mem.read_with(t, addr, probe)?)
    }

    #[inline]
    pub fn wr(&mut self, t: ThreadId, addr: Addr, w: Word) -> Result<(), VmAbort> {
        if self.config.refcount_writes {
            // CPython-style: a store of an object reference also touches
            // the referents' count words (see `extensions`). This traffic
            // forces `use_leases` off, so the plain path below serves it.
            let old = {
                self.step_mem_refs += 1;
                self.mem.read(t, addr)?
            };
            if matches!(old, Word::Obj(_)) || matches!(w, Word::Obj(_)) {
                self.refcount_store(t, &old, &w)?;
            }
        }
        self.step_mem_refs += 1;
        if self.use_leases {
            let way = self.mem.line_of(addr) & LEASE_MASK;
            let lease = self.lease_cache[t][way].wr;
            if self.mem.lease_valid(&lease) && lease.covers(addr) {
                self.mem.lease_write(&lease, addr, w);
                return Ok(());
            }
            self.mem.write(t, addr, w)?;
            self.lease_cache[t][way].wr = self.mem.try_lease(t, addr, true);
            return Ok(());
        }
        Ok(self.mem.write(t, addr, w)?)
    }

    /// [`Self::wr`] without the `step_mem_refs` charge (and without the
    /// `refcount_writes` hook, which no runtime-level word participates
    /// in) — the write-side companion of [`Self::rd_untimed`].
    #[inline]
    pub fn wr_untimed(&mut self, t: ThreadId, addr: Addr, w: Word) -> Result<(), AbortReason> {
        if self.use_leases {
            let lease = self.runtime_leases[t].wr;
            if self.mem.lease_valid(&lease) && lease.covers(addr) {
                self.mem.lease_write(&lease, addr, w);
                return Ok(());
            }
            self.mem.write(t, addr, w)?;
            self.runtime_leases[t].wr = self.mem.try_lease(t, addr, true);
            return Ok(());
        }
        self.mem.write(t, addr, w)
    }

    /// Address of inline-cache site `site` as seen by thread `t`
    /// (per-thread copies under the `thread_local_ics` extension).
    #[inline]
    pub fn ic_addr(&self, t: ThreadId, site: u32) -> Addr {
        if self.layout.ic_copies > 1 {
            self.layout.ic_base + 2 * (t * self.layout.ic_count + site as usize)
        } else {
            self.layout.ic(site)
        }
    }

    /// Begin-of-step bookkeeping; returns counters for the executor.
    pub fn reset_step_counters(&mut self) {
        self.step_mem_refs = 0;
        self.step_native_cost = 0;
        self.step_insns = 1;
        self.temp_roots.clear();
    }

    /// Flag byte of the next instruction thread `t` will execute — the
    /// executor's one-load yield-point / fusion query.
    #[inline]
    pub fn insn_flags(&self, t: ThreadId) -> u8 {
        let c = &self.threads[t];
        self.program.decoded_flags(c.base as usize + c.pc)
    }

    /// Method-table version as seen by in-flight code: committed version
    /// plus this thread's escrowed (uncommitted) bumps.
    #[inline]
    pub fn effective_method_version(&self) -> u32 {
        self.method_version.wrapping_add(self.pending_method_bumps)
    }

    /// Commit escrowed method-version bumps (transaction commit, or any
    /// step taken outside a transaction).
    #[inline]
    pub fn publish_method_bumps(&mut self) {
        if self.pending_method_bumps != 0 {
            self.method_version = self.method_version.wrapping_add(self.pending_method_bumps);
            self.pending_method_bumps = 0;
        }
    }

    /// Discard escrowed bumps after an abort (the method-table words
    /// themselves roll back via the undo log).
    #[inline]
    pub fn drop_method_bumps(&mut self) {
        self.pending_method_bumps = 0;
    }

    /// Deterministic xorshift for `rand`.
    pub(crate) fn next_rand(&mut self) -> u64 {
        let mut x = self.rand_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rand_state = x;
        x
    }

    /// All output produced via `puts` so far, joined by newlines.
    pub fn stdout_text(&self) -> String {
        self.stdout.join("\n")
    }

    /// Count of live (unfinished) threads.
    pub fn live_threads(&self) -> usize {
        self.threads.iter().filter(|t| !t.finished).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_big_heap_all_removals() {
        let c = VmConfig::default();
        assert!(c.thread_local_free_lists);
        assert!(c.method_ic_fill_once);
        assert!(c.ivar_ic_table_guard);
        assert!(c.padded_thread_structs);
        assert!(c.heap_slots >= 10_000);
    }

    #[test]
    fn original_cruby_config_strips_removals() {
        let c = VmConfig::default().original_cruby();
        assert!(!c.thread_local_free_lists);
        assert!(!c.malloc_thread_local);
        assert!(!c.method_ic_fill_once);
        assert!(!c.ivar_ic_table_guard);
        assert!(!c.padded_thread_structs);
    }

    #[test]
    fn boot_runs_prelude_and_compiles_program() {
        let vm = Vm::boot("1 + 1", VmConfig::default(), &MachineProfile::generic(2)).unwrap();
        assert_eq!(vm.threads.len(), 1);
        assert!(!vm.threads[0].finished);
        // Core classes materialized.
        assert_ne!(vm.classes.object, 0);
        assert_ne!(vm.classes.integer, 0);
        assert_ne!(vm.classes.thread_cls, 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut vm = Vm::boot("x = 1", VmConfig::default(), &MachineProfile::generic(2)).unwrap();
        let snap = vm.snapshot(0);
        vm.threads[0].pc = 99;
        vm.threads[0].sp += 5;
        vm.restore(0, snap);
        assert_eq!(vm.threads[0].pc, snap.pc);
        assert_eq!(vm.threads[0].sp, snap.sp);
    }
}
