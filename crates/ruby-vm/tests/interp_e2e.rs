//! End-to-end interpreter tests: parse → compile → execute Ruby programs.
//!
//! Uses a minimal cooperative driver (round-robin, no GIL, no HTM, no
//! cycle accounting) so VM *semantics* are validated independently of the
//! TLE runtime in `htm-gil-core`.

use machine_sim::MachineProfile;
use ruby_vm::{BlockOn, StepOk, Vm, VmAbort, VmConfig};

/// Run a program to completion under a simple cooperative scheduler.
fn run_vm(src: &str) -> Vm {
    let mut vm = Vm::boot(src, VmConfig::default(), &MachineProfile::generic(4))
        .unwrap_or_else(|e| panic!("boot failed: {e}"));
    let mut blocked: Vec<Option<BlockOn>> = vec![None];
    let mut budget = 200_000_000u64;
    loop {
        let n = vm.threads.len();
        blocked.resize(n, None);
        let mut progressed = false;
        let mut all_done = true;
        for (t, slot) in blocked.iter_mut().enumerate().take(n) {
            if vm.threads[t].finished {
                continue;
            }
            all_done = false;
            // Re-check blocking conditions.
            if let Some(b) = *slot {
                let ready = match b {
                    BlockOn::Join(target) => vm.threads[target].finished,
                    BlockOn::Io(_) => true,
                    BlockOn::Mutex(_) | BlockOn::Barrier(_) => true, // retry
                };
                if !ready {
                    continue;
                }
                *slot = None;
            }
            // Run a bounded burst for this thread.
            for _ in 0..1000 {
                budget = budget.checked_sub(1).expect("test budget exhausted");
                match vm.step(t) {
                    Ok(StepOk::Normal) => progressed = true,
                    Ok(StepOk::Finished) => {
                        progressed = true;
                        // Publish result into the Thread object, as the
                        // real executor does.
                        let ctx = &vm.threads[t];
                        let (obj, result) = (ctx.thread_obj, ctx.result.clone());
                        if obj != 0 {
                            vm.mem.write(t, obj + 2, ruby_vm::Word::Int(1)).unwrap();
                            vm.mem.write(t, obj + 3, result).unwrap();
                        }
                        break;
                    }
                    Ok(StepOk::Spawned { .. }) => {
                        progressed = true;
                        break;
                    }
                    Ok(StepOk::Block(b)) => {
                        *slot = Some(b);
                        break;
                    }
                    Err(VmAbort::Err(e)) => panic!("vm error: {e}"),
                    Err(VmAbort::Tx(r)) => panic!("unexpected tx abort: {r:?}"),
                }
            }
        }
        if all_done {
            return vm;
        }
        if !progressed {
            // Mutex/Barrier waiters spin through their retry path; classic
            // deadlock shows up as no thread making progress while none
            // can be unblocked by another.
            let any_unfinished_runnable =
                (0..vm.threads.len()).any(|t| !vm.threads[t].finished && blocked[t].is_none());
            assert!(any_unfinished_runnable, "deadlock: all live threads blocked");
        }
    }
}

fn run(src: &str) -> String {
    run_vm(src).stdout_text()
}

#[test]
fn arithmetic_and_puts() {
    assert_eq!(run("puts(1 + 2 * 3)"), "7");
    assert_eq!(run("puts(10 / 3)\nputs(10 % 3)"), "3\n1");
    assert_eq!(run("puts(-7 / 2)"), "-4"); // Ruby floor division
    assert_eq!(run("puts(2 ** 10)"), "1024");
}

#[test]
fn float_arithmetic_allocates_objects() {
    let vm = run_vm("x = 1.5 + 2.25\nputs(x)");
    assert_eq!(vm.stdout_text(), "3.75");
    assert!(vm.allocations > 0, "float results are heap objects");
}

#[test]
fn string_operations() {
    assert_eq!(run(r#"puts("foo" + "bar")"#), "foobar");
    assert_eq!(run(r#"puts("Hello".length)"#), "5");
    assert_eq!(run(r#"puts("Hello".upcase)"#), "HELLO");
    assert_eq!(run(r#"puts("a,b,c".split(",").join("-"))"#), "a-b-c");
    assert_eq!(run(r#"puts("hello world".include?("wor"))"#), "true");
    assert_eq!(run(r#"puts("42abc".to_i + 1)"#), "43");
    assert_eq!(
        run(r#"s = "ab"
s << "cd"
puts(s)"#),
        "abcd"
    );
}

#[test]
fn conditionals_and_loops() {
    assert_eq!(run("if 1 < 2\nputs(\"yes\")\nelse\nputs(\"no\")\nend"), "yes");
    assert_eq!(run("x = 0\ni = 1\nwhile i <= 10\n  x += i\n  i += 1\nend\nputs(x)"), "55");
    assert_eq!(run("puts(5 > 3 ? \"big\" : \"small\")"), "big");
    assert_eq!(run("i = 0\nwhile true\n  i += 1\n  break if i == 7\nend\nputs(i)"), "7");
    assert_eq!(
        run("s = 0\ni = 0\nwhile i < 10\n  i += 1\n  next if i.odd?()\n  s += i\nend\nputs(s)"),
        "30"
    );
    assert_eq!(run("x = 5\nputs(\"neg\") unless x > 0\nputs(\"pos\") if x > 0"), "pos");
}

#[test]
fn methods_and_recursion() {
    assert_eq!(
        run("def fib(n)\n  return n if n < 2\n  fib(n - 1) + fib(n - 2)\nend\nputs(fib(15))"),
        "610"
    );
    assert_eq!(run("def greet(name)\n  \"hi \" + name\nend\nputs(greet(\"bob\"))"), "hi bob");
}

#[test]
fn the_paper_while_microbenchmark() {
    // Fig. 4 left: the While benchmark workload body.
    let src = "def workload(num_iter)\n  x = 0\n  i = 1\n  while i <= num_iter\n    x += i\n    i += 1\n  end\n  x\nend\nputs(workload(1000))";
    assert_eq!(run(src), "500500");
}

#[test]
fn the_paper_iterator_microbenchmark() {
    // Fig. 4 right: the Iterator benchmark workload body.
    let src = "def workload(num_iter)\n  x = 0\n  (1..num_iter).each do |i|\n    x += i\n  end\n  x\nend\nputs(workload(1000))";
    assert_eq!(run(src), "500500");
}

#[test]
fn blocks_and_yield() {
    assert_eq!(
        run("def twice()\n  yield(1)\n  yield(2)\nend\ntwice() { |x| puts(x * 10) }"),
        "10\n20"
    );
    assert_eq!(run("3.times do |i|\n  puts(i)\nend"), "0\n1\n2");
    assert_eq!(run("puts((1..4).map { |x| x * x }.join(\",\"))"), "1,4,9,16");
    assert_eq!(run("puts([3, 1, 2].sort.join(\",\"))"), "1,2,3");
    assert_eq!(run("puts([1, 2, 3, 4].select { |x| x.even?() }.join(\",\"))"), "2,4");
}

#[test]
fn arrays_and_hashes() {
    assert_eq!(run("a = [1, 2, 3]\na.push(4)\na << 5\nputs(a.length)\nputs(a[4])"), "5\n5");
    assert_eq!(run("a = Array.new(3, 7)\nputs(a.join(\",\"))"), "7,7,7");
    assert_eq!(
        run("h = { \"a\" => 1, \"b\" => 2 }\nputs(h[\"b\"])\nh[\"c\"] = 3\nputs(h.size)"),
        "2\n3"
    );
    assert_eq!(run("a = [5, 3, 9]\nputs(a.min)\nputs(a.max)\nputs(a.sum)"), "3\n9\n17");
    assert_eq!(run("a = [1, 2]\na[0] += 10\nputs(a[0])"), "11");
}

#[test]
fn classes_ivars_inheritance() {
    let src = r#"
class Animal
  def initialize(name)
    @name = name
  end
  def name()
    @name
  end
  def speak()
    "..."
  end
end
class Dog < Animal
  def speak()
    "Woof"
  end
end
d = Dog.new("Rex")
puts(d.name)
puts(d.speak)
puts(d.class.name)
"#;
    assert_eq!(run(src), "Rex\nWoof\nDog");
}

#[test]
fn attr_accessor_and_class_vars() {
    let src = r#"
class Counter
  @@total = 0
  attr_accessor(:count)
  def initialize()
    @count = 0
  end
  def bump()
    @count += 1
    @@total += 1
  end
  def self.total()
    @@total
  end
end
a = Counter.new()
b = Counter.new()
a.bump()
a.bump()
b.bump()
puts(a.count)
puts(b.count)
puts(Counter.total)
a.count = 42
puts(a.count)
"#;
    assert_eq!(run(src), "2\n1\n3\n42");
}

#[test]
fn globals_and_constants() {
    assert_eq!(run("$g = 5\n$g += 1\nputs($g)"), "6");
    assert_eq!(run("LIMIT = 10\nputs(LIMIT * 2)"), "20");
}

#[test]
fn threads_run_and_join() {
    let src = r#"
t = Thread.new(21) do |n|
  n * 2
end
t.join()
puts(t.value)
"#;
    assert_eq!(run(src), "42");
}

#[test]
fn many_threads_with_shared_array() {
    let src = r#"
results = Array.new(4, 0)
threads = []
4.times do |i|
  threads << Thread.new(i) do |tid|
    s = 0
    j = 1
    while j <= 100
      s += j * (tid + 1)
      j += 1
    end
    results[tid] = s
  end
end
threads.each do |t|
  t.join()
end
puts(results.join(","))
"#;
    assert_eq!(run(src), "5050,10100,15150,20200");
}

#[test]
fn mutex_protects_counter() {
    let src = r#"
m = Mutex.new()
count = 0
threads = []
3.times do |i|
  threads << Thread.new() do
    j = 0
    while j < 50
      m.synchronize do
        count += 1
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts(count)
"#;
    assert_eq!(run(src), "150");
}

#[test]
fn barrier_synchronizes_phases() {
    let src = r#"
b = Barrier.new(3)
marks = Array.new(3, 0)
sums = Array.new(3, 0)
threads = []
3.times do |i|
  threads << Thread.new(i) do |tid|
    marks[tid] = 1
    b.wait()
    # After the barrier everyone must observe everyone's phase-1 mark.
    sums[tid] = marks[0] + marks[1] + marks[2]
  end
end
threads.each do |t|
  t.join()
end
puts(sums.join(","))
"#;
    assert_eq!(run(src), "3,3,3");
}

#[test]
fn regexp_matching() {
    let src = r#"
r = Regexp.new("GET (.*) HTTP")
m = r.match("GET /index.html HTTP/1.1")
puts(m[1])
puts(r.match("POST /x").nil?)
"#;
    assert_eq!(run(src), "/index.html\ntrue");
}

#[test]
fn store_queries() {
    let src = r#"
books = Store.create(3)
books.insert([1, "Dune", 1965])
books.insert([2, "Neuromancer", 1984])
books.insert([3, "Count Zero", 1984])
rows = books.scan_eq(2, 1984)
puts(rows.length)
puts(rows[0][1])
puts(books.count)
"#;
    assert_eq!(run(src), "2\nNeuromancer\n3");
}

#[test]
fn io_wait_blocks_and_resumes() {
    assert_eq!(run("puts(\"a\")\nio_wait(1)\nputs(\"b\")"), "a\nb");
}

#[test]
fn math_functions() {
    assert_eq!(run("puts(Math.sqrt(16.0))"), "4.0");
    assert_eq!(run("puts(Math.pow(2.0, 8.0).to_i)"), "256");
}

#[test]
fn nested_blocks_and_closures() {
    let src = r#"
total = 0
(1..3).each do |i|
  (1..3).each do |j|
    total += i * j
  end
end
puts(total)
"#;
    assert_eq!(run(src), "36");
}

#[test]
fn logical_operators_short_circuit() {
    assert_eq!(run("puts(nil || 5)"), "5");
    assert_eq!(run("puts(false && broken_call())"), "false");
    assert_eq!(run("x = nil\nx ||= 3\nx ||= 9\nputs(x)"), "3");
}

#[test]
fn comparable_and_equality() {
    assert_eq!(run("puts(1 == 1.0)"), "true");
    assert_eq!(run("puts(\"a\" == \"a\")\nputs(\"a\" == \"b\")"), "true\nfalse");
    assert_eq!(run("puts(3 <=> 5)\nputs(\"b\" <=> \"a\")"), "-1\n1");
}

#[test]
fn two_dimensional_arrays_via_build() {
    let src = r#"
grid = Array.build(3) { |i| Array.new(3, i) }
grid[1][2] = 9
puts(grid[1].join(","))
puts(grid[2].join(","))
"#;
    assert_eq!(run(src), "1,1,9\n2,2,2");
}

#[test]
fn gc_survives_allocation_storm() {
    // Allocate far more floats than the heap holds; GC + growth must cope
    // and the result must still be right.
    let src = r#"
s = 0.0
i = 0
while i < 20000
  s += 1.5
  i += 1
end
puts(s)
"#;
    let cfg = VmConfig { heap_slots: 2_000, max_heap_slots: 20_000, ..VmConfig::default() };
    let mut vm = Vm::boot(src, cfg, &MachineProfile::generic(2)).unwrap();
    loop {
        match vm.step(0) {
            Ok(StepOk::Finished) => break,
            Ok(_) => {}
            Err(e) => panic!("{e:?}"),
        }
    }
    assert_eq!(vm.stdout_text(), "30000.0");
    assert!(vm.gc_runs > 0, "GC must have run");
}
