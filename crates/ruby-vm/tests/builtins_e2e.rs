//! End-to-end coverage of the builtin library and prelude iterators
//! (single-threaded driver — semantics only).

use machine_sim::MachineProfile;
use ruby_vm::{StepOk, Vm, VmConfig};

fn run(src: &str) -> String {
    let mut vm = Vm::boot(src, VmConfig::default(), &MachineProfile::generic(2))
        .unwrap_or_else(|e| panic!("boot: {e}"));
    for _ in 0..80_000_000u64 {
        match vm.step(0) {
            Ok(StepOk::Finished) => return vm.stdout_text(),
            Ok(StepOk::Normal) => {}
            Ok(other) => panic!("unexpected {other:?}"),
            Err(e) => panic!("vm error: {e:?}\nin {src}"),
        }
    }
    panic!("did not finish");
}

#[test]
fn integer_methods() {
    assert_eq!(run("puts(5.to_f + 0.5)"), "5.5");
    assert_eq!(run("puts(-3.abs)"), "3");
    assert_eq!(run("puts(4.even?())\nputs(4.odd?())\nputs(0.zero?())"), "true\nfalse\ntrue");
    assert_eq!(run("puts(6.succ)"), "7");
    assert_eq!(run("s = 0\n3.upto(5) { |i| s += i }\nputs(s)"), "12");
    assert_eq!(run("s = 0\n5.downto(3) { |i| s += i }\nputs(s)"), "12");
    assert_eq!(run("a = []\n1.step(9, 3) { |i| a << i }\nputs(a.join(\",\"))"), "1,4,7");
}

#[test]
fn float_methods() {
    assert_eq!(run("puts(2.7.floor)\nputs(2.2.ceil)\nputs(2.5.round)"), "2\n3\n3");
    assert_eq!(run("puts((-1.5).abs)"), "1.5");
    assert_eq!(run("puts(3.99.to_i)"), "3");
    assert_eq!(run("puts(1.5.round(0))"), "2.0");
}

#[test]
fn math_module() {
    assert_eq!(run("puts(Math.sqrt(144.0).to_i)"), "12");
    assert_eq!(run("puts(Math.exp(0.0))"), "1.0");
    assert_eq!(run("puts(Math.log(1.0))"), "0.0");
    assert_eq!(run("puts((Math.sin(0.0) + Math.cos(0.0)))"), "1.0");
    assert_eq!(run("puts((Math.pi * 10000.0).to_i)"), "31415");
}

#[test]
fn string_library() {
    assert_eq!(run(r#"puts("a-b-c".split("-").length)"#), "3");
    assert_eq!(run(r#"puts("  pad  ".strip + "!")"#), "pad!");
    assert_eq!(run(r#"puts("hello".index("ll"))"#), "2");
    assert_eq!(run(r#"puts("hello".index("z").nil?)"#), "true");
    assert_eq!(run(r#"puts("abc".reverse)"#), "cba");
    assert_eq!(run(r#"puts("aXbXc".sub("X", "-"))"#), "a-bXc");
    assert_eq!(run(r#"puts("aXbXc".gsub("X", "-"))"#), "a-b-c");
    assert_eq!(run(r#"puts("hello world".slice(6, 5))"#), "world");
    assert_eq!(
        run(r#"puts("Ruby".start_with?("Ru"))
puts("Ruby".end_with?("by"))"#),
        "true\ntrue"
    );
    assert_eq!(run(r#"puts("3.5".to_f + 0.5)"#), "4.0");
    assert_eq!(
        run(r#"puts("hi"[0])
puts("hi"[-1])"#),
        "h\ni"
    );
    assert_eq!(run(r#"puts("abc" * 1 == "abc")"#), "true");
}

#[test]
fn array_library() {
    assert_eq!(run("a = [3, 1, 2]\nputs(a.sort.join(\",\"))\nputs(a.join(\",\"))"), "1,2,3\n3,1,2");
    assert_eq!(run("a = [3, 1, 2]\na.sort!()\nputs(a.join(\",\"))"), "1,2,3");
    assert_eq!(run("a = [1, 2, 3]\nputs(a.shift)\nputs(a.join(\",\"))"), "1\n2,3");
    assert_eq!(run("a = [1, 2, 3]\nputs(a.pop)\nputs(a.length)"), "3\n2");
    assert_eq!(run("a = [1, 2, 3]\na.delete_at(1)\nputs(a.join(\",\"))"), "1,3");
    assert_eq!(run("a = [1, 2]\nb = [3, 4]\na.concat(b)\nputs(a.join(\",\"))"), "1,2,3,4");
    assert_eq!(run("puts(([1, 2] + [3]).join(\",\"))"), "1,2,3");
    assert_eq!(run("a = [1, 2, 3]\nputs(a.include?(2))\nputs(a.include?(9))"), "true\nfalse");
    assert_eq!(run("puts([5, 2, 9].index(9))"), "2");
    assert_eq!(run("puts([].empty?())\nputs([1].empty?())"), "true\nfalse");
    assert_eq!(run("puts([1, 2, 3].reverse.join(\",\"))"), "3,2,1");
    assert_eq!(run("puts([1, 2, 3].each_with_index { |x, i| }.length)"), "3");
    assert_eq!(run("s = 0\n[1, 2, 3].each_index { |i| s += i }\nputs(s)"), "3");
    assert_eq!(run("puts([1, 2, 3, 4].reject { |x| x.even?() }.join(\",\"))"), "1,3");
    assert_eq!(run("puts([\"b\", \"a\"].sort.join(\",\"))"), "a,b");
    assert_eq!(run("a = [1, 2]\nb = a.dup()\nb << 3\nputs(a.length)\nputs(b.length)"), "2\n3");
    assert_eq!(run("puts([1, 2, 3].first)\nputs([1, 2, 3].last)"), "1\n3");
}

#[test]
fn hash_library() {
    assert_eq!(
        run("h = { 1 => \"a\", 2 => \"b\" }\nputs(h.keys.sort.join(\",\"))\nputs(h.values.sort.join(\",\"))"),
        "1,2\na,b"
    );
    assert_eq!(run("h = Hash.new()\nh[:x] = 5\nputs(h.key?(:x))\nputs(h.key?(:y))"), "true\nfalse");
    assert_eq!(run("h = { 1 => 2 }\nputs(h.delete(1))\nputs(h.empty?())"), "2\ntrue");
    assert_eq!(run("h = { 1 => 10, 2 => 20 }\ns = 0\nh.each { |k, v| s += k + v }\nputs(s)"), "33");
}

#[test]
fn range_library() {
    assert_eq!(run("r = (2..5)\nputs(r.begin)\nputs(r.end)\nputs(r.size)"), "2\n5\n4");
    assert_eq!(run("puts((1...4).size)"), "3");
    assert_eq!(run("puts((1..10).include?(5))\nputs((1..10).include?(11))"), "true\nfalse");
    assert_eq!(run("puts((1..4).to_a.join(\",\"))"), "1,2,3,4");
    assert_eq!(run("puts((1..5).sum)"), "15");
}

#[test]
fn object_protocol() {
    assert_eq!(run("puts(1.class.name)"), "Integer");
    assert_eq!(run("puts(\"s\".class.name)"), "String");
    assert_eq!(run("puts([].class.name)"), "Array");
    assert_eq!(run("puts(nil.nil?)\nputs(0.nil?)"), "true\nfalse");
    assert_eq!(run("puts(42.to_s + \"!\")"), "42!");
    assert_eq!(run("puts(3.7.inspect)"), "3.7");
}

#[test]
fn kernel_output() {
    assert_eq!(run("puts()"), "");
    assert_eq!(run("print(\"a\")\nprint(\"b\")"), "ab");
    assert_eq!(run("p(\"x\")"), "\"x\"");
    assert_eq!(run("puts([1, \"two\"])"), "1\ntwo");
}

#[test]
fn rand_is_deterministic_per_vm() {
    let a = run("puts(rand(1000))\nputs(rand(1000))");
    let b = run("puts(rand(1000))\nputs(rand(1000))");
    assert_eq!(a, b, "seeded rand must reproduce");
    let lines: Vec<&str> = a.lines().collect();
    assert_eq!(lines.len(), 2);
    for l in lines {
        let v: i64 = l.parse().unwrap();
        assert!((0..1000).contains(&v));
    }
}

#[test]
fn proc_call() {
    // Proc#call through a stored block.
    let src = r#"
def make_adder(n)
  adder = nil
  helper(n) { |x| x + n }
end
def helper(n)
  yield(10)
end
puts(make_adder(5))
"#;
    assert_eq!(run(src), "15");
}

#[test]
fn regexp_library() {
    assert_eq!(
        run(r#"r = Regexp.new("[0-9]+")
puts(r.match?("abc123"))
puts(r.match?("abc"))"#),
        "true\nfalse"
    );
    assert_eq!(
        run(r#"r = Regexp.new("(\\w+)@(\\w+)")
m = r.match("mail bob@example now")
puts(m[1] + " at " + m[2])"#),
        "bob at example"
    );
    assert_eq!(run(r#"puts(Regexp.new("a+").source)"#), "a+");
}

#[test]
fn mutex_try_lock_single_thread() {
    assert_eq!(
        run("m = Mutex.new()\nputs(m.try_lock())\nm.unlock()\nputs(m.try_lock())"),
        "true\ntrue"
    );
}

#[test]
fn class_variables_shared_across_instances() {
    let src = r#"
class Registry
  @@items = []
  def add(x)
    @@items << x
  end
  def self.count()
    @@items.length
  end
end
a = Registry.new()
b = Registry.new()
a.add(1)
b.add(2)
puts(Registry.count)
"#;
    assert_eq!(run(src), "2");
}

#[test]
fn reopening_a_class_adds_methods() {
    let src = r#"
class Thing
  def one()
    1
  end
end
class Thing
  def two()
    2
  end
end
t = Thing.new()
puts(t.one + t.two)
"#;
    assert_eq!(run(src), "3");
}

#[test]
fn operator_method_definitions() {
    let src = r#"
class Vec
  attr_accessor(:x)
  def initialize(x)
    @x = x
  end
  def +(other)
    Vec.new(@x + other.x)
  end
  def [](i)
    @x * i
  end
end
v = Vec.new(3) + Vec.new(4)
puts(v.x)
puts(v[2])
"#;
    assert_eq!(run(src), "7\n14");
}

#[test]
fn string_shadow_footprint_grows() {
    // White-box: a long string's shadow buffer must consume simulated
    // memory proportional to its length.
    let mut vm =
        Vm::boot("s = \"x\"\nt = s\nputs(s)", VmConfig::default(), &MachineProfile::generic(2))
            .unwrap();
    let before = vm.allocations;
    loop {
        match vm.step(0) {
            Ok(StepOk::Finished) => break,
            Ok(_) => {}
            Err(e) => panic!("{e:?}"),
        }
    }
    assert!(vm.allocations > before);
}
