//! Property tests for the pre-decoded instruction stream: on arbitrary
//! generated programs, decoding must be 1:1 with the bytecode, preserve
//! the exact yield-point sequence of both policies index-by-index, keep
//! branch targets inside their iseq, and never mark a superinstruction
//! pair whose second half would hide a yield point.
//!
//! Programs are assembled from known-good source templates with random
//! parameters and random ordering, so every generated program compiles
//! and covers the hot shapes: loops (backward branches), sends, blocks,
//! class/ivar traffic and the compare+branch pairs fusion targets.

use proptest::prelude::*;
use ruby_vm::bytecode::InsnKind;
use ruby_vm::compile::compile_source;
use ruby_vm::decode::{yield_flags_of_kind, Op, FUSE_EXT, FUSE_ORIG, YP_EXT, YP_ORIG};
use ruby_vm::{Insn, Program};

/// One known-good source fragment, parameterised on a unique fragment
/// index (for collision-free names) and two small integers.
fn fragment(choice: u8, i: usize, n: u32, m: u32) -> String {
    match choice % 8 {
        0 => format!("a{i} = {n}\na{i} += a{i} * {m}\n"),
        1 => format!("w{i} = 0\nwhile w{i} < {n}\n  w{i} += 1\nend\n"),
        2 => format!("def m{i}(x)\n  x + {n}\nend\nr{i} = m{i}({m})\n"),
        3 => format!("t{i} = 0\n{n}.times do |j|\n  t{i} += j\nend\n"),
        4 => format!(
            "class K{i}\n  def initialize()\n    @v = {n}\n  end\n  def v()\n    @v\n  end\nend\n\
             o{i} = K{i}.new()\np{i} = o{i}.v\n"
        ),
        5 => format!("q{i} = []\nq{i} << {n}\nq{i} << q{i}[0]\n"),
        6 => format!("$g{i} = {n}\n$g{i} += {m}\n"),
        _ => format!("b{i} = {n}\nif b{i} > {m}\n  b{i} = 0\nend\n"),
    }
}

fn compile_fragments(parts: &[(u8, u32, u32)]) -> Program {
    let src: String =
        parts.iter().enumerate().map(|(i, &(c, n, m))| fragment(c, i, n, m)).collect();
    let mut prog = Program::default();
    compile_source(&src, &mut prog).unwrap_or_else(|e| panic!("template must compile: {e}\n{src}"));
    prog.finalize();
    prog
}

/// The pc sequence of yield points under a policy, read from the
/// *undecoded* bytecode via `InsnKind` classification.
fn reference_yield_pcs(prog: &Program, bit: u8) -> Vec<u32> {
    let mut pcs = Vec::new();
    for iseq in &prog.iseqs {
        let base = prog.base(iseq.id);
        for (pc, insn) in iseq.code.iter().enumerate() {
            if yield_flags_of_kind(insn.kind()) & bit != 0 {
                pcs.push(base + pc as u32);
            }
        }
    }
    pcs
}

/// The same sequence read from the decoded stream's flag bytes.
fn decoded_yield_pcs(prog: &Program, bit: u8) -> Vec<u32> {
    (0..prog.total_insns()).filter(|&gpc| prog.decoded_flags(gpc as usize) & bit != 0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The decoded stream is 1:1 and yield-point flags agree with the
    /// `InsnKind` classification at every index, for both policies.
    #[test]
    fn decoding_preserves_the_yield_point_sequence(
        parts in proptest::collection::vec((any::<u8>(), 1u32..20, 1u32..20), 1..12),
    ) {
        let prog = compile_fragments(&parts);
        let total: usize = prog.iseqs.iter().map(|i| i.code.len()).sum();
        prop_assert_eq!(prog.decoded().len(), total, "decoded stream must be 1:1");
        prop_assert_eq!(prog.total_insns() as usize, total);

        // Index-by-index: the flag byte is exactly the kind classification.
        for iseq in &prog.iseqs {
            for (pc, insn) in iseq.code.iter().enumerate() {
                let gpc = prog.global_pc(iseq.id, pc) as usize;
                let got = prog.decoded_flags(gpc) & (YP_ORIG | YP_EXT);
                let want = yield_flags_of_kind(insn.kind());
                prop_assert_eq!(
                    got, want,
                    "iseq {:?} pc {}: {:?} decoded flags {:#x}, kind says {:#x}",
                    iseq.id, pc, insn, got, want
                );
            }
        }

        // And as whole sequences: same yield pcs, same order, no extras.
        for bit in [YP_ORIG, YP_EXT] {
            prop_assert_eq!(
                decoded_yield_pcs(&prog, bit),
                reference_yield_pcs(&prog, bit),
                "yield-point sequence diverged for policy bit {:#x}", bit
            );
        }
    }

    /// Fusion bits never cover a pair whose second half is a yield point
    /// under the bit's policy, and never mark the last insn of an iseq —
    /// the transparency preconditions of DESIGN.md §12.
    #[test]
    fn fusion_bits_never_hide_a_yield_point(
        parts in proptest::collection::vec((any::<u8>(), 1u32..20, 1u32..20), 1..12),
    ) {
        let prog = compile_fragments(&parts);
        for iseq in &prog.iseqs {
            for pc in 0..iseq.code.len() {
                let flags = prog.decoded_flags(prog.global_pc(iseq.id, pc) as usize);
                if flags & (FUSE_ORIG | FUSE_EXT) == 0 {
                    continue;
                }
                prop_assert!(pc + 1 < iseq.code.len(), "fusable pair at the end of an iseq");
                let second = iseq.code[pc + 1].kind();
                if flags & FUSE_ORIG != 0 {
                    prop_assert!(
                        !second.is_original_yield_point(),
                        "FUSE_ORIG pair hides an original-policy yield point at pc {}", pc + 1
                    );
                }
                if flags & FUSE_EXT != 0 {
                    prop_assert!(
                        !second.is_extended_yield_point(),
                        "FUSE_EXT pair hides an extended-policy yield point at pc {}", pc + 1
                    );
                }
            }
        }
    }

    /// Decoded branch targets are absolute, match `pc + offset`, and stay
    /// inside their iseq.
    #[test]
    fn decoded_branch_targets_are_absolute_and_in_bounds(
        parts in proptest::collection::vec((any::<u8>(), 1u32..20, 1u32..20), 1..12),
    ) {
        let prog = compile_fragments(&parts);
        for iseq in &prog.iseqs {
            for (pc, insn) in iseq.code.iter().enumerate() {
                let d = prog.decoded_at(prog.global_pc(iseq.id, pc) as usize);
                let off = match *insn {
                    Insn::Jump(off) | Insn::BranchIf(off) | Insn::BranchUnless(off) => off,
                    _ => continue,
                };
                prop_assert!(matches!(d.op, Op::Jump | Op::BranchIf | Op::BranchUnless));
                let want = (pc as i64 + i64::from(off)) as u64;
                prop_assert_eq!(d.a, want, "target of {:?} at pc {}", insn, pc);
                prop_assert!(
                    (d.a as usize) < iseq.code.len(),
                    "target {} escapes iseq of {} insns", d.a, iseq.code.len()
                );
                // A backward branch is exactly the original-policy yield
                // point; forward ones never are.
                prop_assert_eq!(
                    d.flags & YP_ORIG != 0,
                    insn.kind() == InsnKind::BranchBack,
                    "backward-branch classification at pc {}", pc
                );
            }
        }
    }
}
