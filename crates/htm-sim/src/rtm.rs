//! Real Intel RTM (`XBEGIN`/`XEND`/`XABORT`) backend — **experimental**.
//!
//! Provided for fidelity to the paper's Haswell implementation: on a
//! machine whose CPU still exposes working TSX, these wrappers issue the
//! actual instructions. No experiment in this repository uses them — TSX is
//! disabled by microcode on all recent parts and this build host has no
//! TSX — so the module is compiled only with `--features rtm-hardware` and
//! callers must check [`rtm_supported`] first.
//!
//! The instruction encodings are emitted as raw bytes so the module
//! assembles on toolchains whose `asm!` dialect lacks the mnemonics.

#![allow(unsafe_code)]

use std::arch::asm;

/// `XBEGIN` status meaning the transaction started (Intel SDM: RTM sets
/// EAX to this value only on the abort path; the started path leaves the
/// destination untouched, for which the wrapper pre-loads this marker).
pub const RTM_STARTED: u32 = u32::MAX;

/// Bit set in the abort status when the abort may succeed on retry.
pub const RTM_RETRY_BIT: u32 = 1 << 1;

/// True when the CPU advertises RTM in CPUID.07H:EBX\[11\].
pub fn rtm_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let ebx: u32;
        unsafe {
            asm!(
                "push rbx",
                "cpuid",
                "mov {out:e}, ebx",
                "pop rbx",
                inout("eax") 7u32 => _,
                inout("ecx") 0u32 => _,
                out("edx") _,
                out = out(reg) ebx,
            );
        }
        (ebx >> 11) & 1 == 1
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Begin a hardware transaction. Returns [`RTM_STARTED`] on entry into the
/// transactional path, or the abort status word after an abort.
///
/// # Safety
/// The caller must have verified [`rtm_supported`]; executing `XBEGIN` on a
/// CPU without RTM raises `#UD`.
#[cfg(target_arch = "x86_64")]
pub unsafe fn xbegin() -> u32 {
    let mut status: u32 = RTM_STARTED;
    // xbegin rel32(0): C7 F8 00 00 00 00 — fall through on start, jump to
    // the next instruction with EAX = abort status on abort.
    asm!(
        ".byte 0xc7, 0xf8, 0x00, 0x00, 0x00, 0x00",
        inout("eax") status,
        options(nomem, nostack)
    );
    status
}

/// Commit the current hardware transaction.
///
/// # Safety
/// Must only execute inside a transaction started by [`xbegin`].
#[cfg(target_arch = "x86_64")]
pub unsafe fn xend() {
    // xend: 0F 01 D5
    asm!(".byte 0x0f, 0x01, 0xd5", options(nomem, nostack));
}

/// Abort the current transaction with `code` in bits 31:24 of the status.
///
/// # Safety
/// Must only execute inside a transaction started by [`xbegin`].
#[cfg(target_arch = "x86_64")]
pub unsafe fn xabort_ff() {
    // xabort imm8(0xff): C6 F8 FF
    asm!(".byte 0xc6, 0xf8, 0xff", options(nomem, nostack));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_does_not_crash() {
        // On this host RTM is expected to be absent; either way the CPUID
        // probe must be safe to execute.
        let _ = rtm_supported();
    }
}
