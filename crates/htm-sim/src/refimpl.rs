//! The retained **reference implementation** of the transactional memory:
//! the original set-based `TxMemory` with O(threads) conflict scans.
//!
//! [`crate::TxMemory`] now detects conflicts through a per-line ownership
//! directory (see its module docs). This module keeps the pre-directory
//! implementation verbatim — per-transaction `HashSet` read/write sets and
//! a `doom_conflicting` that scans every other thread on every access — as
//! the executable specification. It is **not** used by the simulator; its
//! job is to sit on the other side of the differential property test
//! (`tests/differential_txmem.rs`), which drives both implementations with
//! identical access sequences and requires identical results, abort
//! reasons, statistics, and trace events.
//!
//! Keep behavioural changes out of this file: if the semantics of the
//! memory ever need to change, change [`crate::txmem`] first, mirror the
//! change here in a separate commit, and let the differential test arbitrate.

use std::collections::HashSet;

use machine_sim::ThreadId;

use crate::abort::{AbortReason, ExplicitCode, SpuriousCause};
use crate::inject::{Fault, FaultInjector, FaultPlan};
use crate::lease::LineLease;
use crate::predictor::OverflowPredictor;
use crate::stats::HtmStats;
use crate::trace::{TraceEvent, TraceSink};
use crate::txmem::{out_of_bounds, Budgets};

#[derive(Debug)]
struct Tx {
    read_lines: HashSet<usize>,
    write_lines: HashSet<usize>,
    /// (address, undo-arena slot) pairs, in write order.
    undo: Vec<(usize, usize)>,
    budgets: Budgets,
}

/// Word-addressed shared memory with best-effort transactions — reference
/// (set-based) conflict detection. Same public surface as
/// [`crate::TxMemory`].
#[derive(Debug)]
pub struct ReferenceTxMemory<W: Clone> {
    words: Vec<W>,
    line_words: usize,
    txs: Vec<Option<Tx>>,
    /// Undo payloads, one arena per thread (index-linked from `Tx::undo`).
    undo_words: Vec<Vec<W>>,
    doomed: Vec<Option<AbortReason>>,
    predictors: Vec<OverflowPredictor>,
    stats: HtmStats,
    trace: Option<Box<dyn TraceSink>>,
    /// Seeded fault injector, mirroring [`crate::TxMemory`]'s: draws are
    /// consumed only at transactional accesses so both sides of the
    /// differential pair see the same fault stream.
    injector: Option<FaultInjector>,
    now: u64,
    /// Per-slot lease epochs, bumped in lockstep with
    /// [`crate::TxMemory`]'s (same events, same slots, same per-victim
    /// granularity) so `epoch_bumps` compares strictly in the
    /// differential test. Slot `t` guards thread `t`'s in-transaction
    /// leases; the last slot guards plain (out-of-transaction) leases.
    epochs: Vec<u64>,
}

impl<W: Clone> ReferenceTxMemory<W> {
    /// Create a memory of `size` words, all initialized to `init`, with
    /// cache lines of `line_words` words, supporting up to `max_threads`
    /// hardware threads.
    pub fn new(size: usize, line_words: usize, max_threads: usize, init: W) -> Self {
        assert!(line_words.is_power_of_two(), "line size must be 2^k words");
        ReferenceTxMemory {
            words: vec![init; size],
            line_words,
            txs: (0..max_threads).map(|_| None).collect(),
            undo_words: (0..max_threads).map(|_| Vec::new()).collect(),
            doomed: vec![None; max_threads],
            predictors: (0..max_threads).map(|_| OverflowPredictor::disabled()).collect(),
            stats: HtmStats::default(),
            trace: None,
            injector: None,
            now: 0,
            epochs: vec![1; max_threads + 1],
        }
    }

    /// Install a fault-injection plan (or remove it with a no-op plan).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.bump_all_slots();
        self.injector = if plan.is_noop() { None } else { Some(FaultInjector::new(plan)) };
    }

    /// Faults injected so far (zero without a plan).
    pub fn faults_injected(&self) -> u64 {
        self.injector.as_ref().map_or(0, FaultInjector::injected)
    }

    /// Install a trace sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Set the simulated cycle stamped onto trace events.
    #[inline]
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(event);
        }
    }

    /// Install an overflow predictor for thread `t`.
    pub fn set_predictor(&mut self, t: ThreadId, p: OverflowPredictor) {
        self.predictors[t] = p;
    }

    /// Total words.
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Grow the memory by `extra` words initialized to `init`.
    pub fn grow(&mut self, extra: usize, init: W) {
        assert!(self.txs.iter().all(Option::is_none), "memory growth with active transactions");
        self.bump_all_slots();
        let new = self.words.len() + extra;
        self.words.resize(new, init);
    }

    /// Immutable view of the aggregate statistics.
    pub fn stats(&self) -> &HtmStats {
        &self.stats
    }

    /// Cache line of an address.
    #[inline]
    pub fn line_of(&self, addr: usize) -> usize {
        addr / self.line_words
    }

    /// True when thread `t` has an active transaction.
    pub fn in_tx(&self, t: ThreadId) -> bool {
        self.txs[t].is_some()
    }

    /// Number of currently active transactions.
    pub fn active_tx_count(&self) -> usize {
        self.txs.iter().filter(|t| t.is_some()).count()
    }

    /// (read lines, write lines) of `t`'s active transaction.
    pub fn footprint(&self, t: ThreadId) -> (usize, usize) {
        self.txs[t].as_ref().map_or((0, 0), |tx| (tx.read_lines.len(), tx.write_lines.len()))
    }

    /// Begin a transaction for thread `t` with the given budgets.
    pub fn begin(&mut self, t: ThreadId, budgets: Budgets) -> Result<(), AbortReason> {
        assert!(self.txs[t].is_none(), "nested transaction on thread {t}");
        // A begin kills `t`'s own stale leases and every plain lease
        // (granted on the promise that no transaction was active).
        self.bump_slot(t);
        self.bump_slot(self.txs.len());
        self.doomed[t] = None;
        if self.predictors[t].should_abort_eagerly() {
            let reason = AbortReason::EagerPredicted;
            self.stats.begins += 1;
            self.stats.record_abort(reason);
            let cycle = self.now;
            self.emit(TraceEvent::Abort { thread: t, cycle, reason, line: None });
            return Err(reason);
        }
        self.stats.begins += 1;
        self.undo_words[t].clear();
        self.txs[t] = Some(Tx {
            read_lines: HashSet::new(),
            write_lines: HashSet::new(),
            undo: Vec::new(),
            budgets,
        });
        let cycle = self.now;
        self.emit(TraceEvent::Begin { thread: t, cycle });
        Ok(())
    }

    /// Commit thread `t`'s transaction.
    pub fn commit(&mut self, t: ThreadId) -> Result<(), AbortReason> {
        // Only `t`'s own in-transaction leases die with its transaction.
        self.bump_slot(t);
        if let Some(reason) = self.take_doom(t) {
            return Err(reason);
        }
        let tx = self.txs[t].take().expect("commit without transaction");
        self.stats.commits += 1;
        self.predictors[t].on_commit();
        let cycle = self.now;
        self.emit(TraceEvent::Commit {
            thread: t,
            cycle,
            read_lines: tx.read_lines.len(),
            write_lines: tx.write_lines.len(),
        });
        Ok(())
    }

    /// Explicit software abort of `t`'s own transaction.
    pub fn tabort(&mut self, t: ThreadId, code: ExplicitCode) -> AbortReason {
        let reason = AbortReason::Explicit(code);
        self.abort_self(t, reason, None);
        reason
    }

    /// Abort `t`'s transaction because of a restricted operation.
    pub fn abort_restricted(&mut self, t: ThreadId) -> AbortReason {
        let reason = AbortReason::Restricted;
        self.abort_self(t, reason, None);
        reason
    }

    /// Abort `t`'s transaction for an environmental cause (interrupt, TLB,
    /// page fault).
    pub fn abort_spurious(&mut self, t: ThreadId, cause: SpuriousCause) -> AbortReason {
        let reason = AbortReason::Spurious { cause };
        self.abort_self(t, reason, None);
        reason
    }

    /// Check whether a remote conflict doomed `t`'s transaction.
    pub fn poll_doomed(&mut self, t: ThreadId) -> Option<AbortReason> {
        self.take_doom(t)
    }

    /// Transactional or plain read of one word by thread `t`.
    ///
    /// # Panics
    ///
    /// Panics (also in release builds) on an out-of-bounds `addr`, with the
    /// same addr/line message as [`crate::TxMemory::read`].
    pub fn read(&mut self, t: ThreadId, addr: usize) -> Result<W, AbortReason> {
        self.read_with(t, addr, W::clone)
    }

    /// Mirror of [`crate::TxMemory::read_with`]: the full accounting path
    /// applying `f` in place, one counted access.
    pub fn read_with<R>(
        &mut self,
        t: ThreadId,
        addr: usize,
        f: impl FnOnce(&W) -> R,
    ) -> Result<R, AbortReason> {
        if addr >= self.words.len() {
            out_of_bounds("read", addr, addr / self.line_words, self.words.len());
        }
        self.stats.reads += 1;
        if let Some(reason) = self.take_doom(t) {
            return Err(reason);
        }
        if let Some(reason) = self.inject_fault(t) {
            return Err(reason);
        }
        let line = self.line_of(addr);
        // Requester wins: kill remote writers of this line.
        self.doom_conflicting(t, line, false);
        if let Some(tx) = self.txs[t].as_mut() {
            tx.read_lines.insert(line);
            if tx.read_lines.len() > tx.budgets.read_lines {
                let reason = AbortReason::ReadOverflow;
                self.abort_self(t, reason, Some(line));
                self.predictors[t].on_overflow();
                return Err(reason);
            }
        }
        Ok(f(&self.words[addr]))
    }

    /// Transactional or plain write of one word by thread `t`.
    ///
    /// # Panics
    ///
    /// Panics (also in release builds) on an out-of-bounds `addr`, with the
    /// same addr/line message as [`crate::TxMemory::write`].
    pub fn write(&mut self, t: ThreadId, addr: usize, value: W) -> Result<(), AbortReason> {
        if addr >= self.words.len() {
            out_of_bounds("write", addr, addr / self.line_words, self.words.len());
        }
        self.stats.writes += 1;
        if let Some(reason) = self.take_doom(t) {
            return Err(reason);
        }
        if let Some(reason) = self.inject_fault(t) {
            return Err(reason);
        }
        let line = self.line_of(addr);
        // Kill remote readers *and* writers of this line.
        self.doom_conflicting(t, line, true);
        if let Some(tx) = self.txs[t].as_mut() {
            let slot = self.undo_words[t].len();
            self.undo_words[t].push(self.words[addr].clone());
            tx.undo.push((addr, slot));
            tx.write_lines.insert(line);
            if tx.write_lines.len() > tx.budgets.write_lines {
                let reason = AbortReason::WriteOverflow;
                self.abort_self(t, reason, Some(line));
                self.predictors[t].on_overflow();
                return Err(reason);
            }
        }
        self.words[addr] = value;
        Ok(())
    }

    /// Mirror of [`crate::TxMemory::arm_lock_monitor`]: the read path
    /// minus the read-set insert (the monitor register consumes no
    /// capacity). Note no fast path — the reference has none anywhere.
    pub fn arm_lock_monitor(&mut self, t: ThreadId, addr: usize) -> Result<W, AbortReason> {
        if addr >= self.words.len() {
            out_of_bounds("arm_lock_monitor", addr, addr / self.line_words, self.words.len());
        }
        self.stats.reads += 1;
        if let Some(reason) = self.take_doom(t) {
            return Err(reason);
        }
        if let Some(reason) = self.inject_fault(t) {
            return Err(reason);
        }
        let line = self.line_of(addr);
        // Requester wins: kill remote writers of this line (but record
        // nothing in our own sets).
        self.doom_conflicting(t, line, false);
        Ok(self.words[addr].clone())
    }

    /// Mirror of [`crate::TxMemory::doom_all_active`]: doom every other
    /// active transaction in ascending thread order with the acquirer's
    /// `ConflictRead`, counting one non-transactional doom.
    pub fn doom_all_active(&mut self, t: ThreadId, addr: usize) {
        let line = self.line_of(addr);
        let in_tx = self.txs[t].is_some();
        let mut doomed_any = false;
        for victim in 0..self.txs.len() {
            if victim == t || self.txs[victim].is_none() {
                continue;
            }
            let reason = AbortReason::ConflictRead { with: t, line };
            self.bump_slot(victim); // one bump per doomed victim, like `doom`
            self.rollback(victim);
            self.doomed[victim] = Some(reason);
            self.stats.record_abort(reason);
            let cycle = self.now;
            self.emit(TraceEvent::Abort { thread: victim, cycle, reason, line: Some(line) });
            doomed_any = true;
        }
        if doomed_any && !in_tx {
            self.stats.nontx_dooms += 1;
        }
    }

    /// Read bypassing all transaction machinery.
    pub fn peek(&self, addr: usize) -> &W {
        &self.words[addr]
    }

    /// Write bypassing transaction machinery — initialization only.
    pub fn poke(&mut self, addr: usize, value: W) {
        debug_assert!(self.txs.iter().all(Option::is_none), "poke with active transactions");
        self.words[addr] = value;
    }

    // ---- line leases (degenerate per-word fallback) ---------------------
    //
    // The reference never grants a lease: `try_lease` returns a token that
    // can never validate, and the `lease_*` accessors fall back to the full
    // per-word path through the token's recorded owner. This is the
    // executable specification of the lease API — the differential test
    // drives both implementations with the same lease operations and the
    // degenerate fallback must produce identical memory images, abort
    // behaviour, and (lease_hits aside) statistics.

    /// Current epoch of one lease slot (bumped in lockstep with the
    /// directory impl).
    #[inline]
    pub fn epoch(&self, slot: usize) -> u64 {
        self.epochs[slot]
    }

    /// True when `lease` is still current — never, for leases issued here.
    #[inline]
    pub fn lease_valid(&self, lease: &LineLease) -> bool {
        lease.epoch == self.epochs[lease.slot]
    }

    /// Mirror of [`crate::TxMemory::try_lease`] that always declines:
    /// counts the miss, then returns an epoch-0 token that still carries
    /// the addressing (owner/line bounds/mode) so the `lease_*` fallbacks
    /// know how to route the access.
    pub fn try_lease(&mut self, t: ThreadId, addr: usize, write: bool) -> LineLease {
        self.stats.lease_misses += 1;
        if addr >= self.words.len() {
            return LineLease::INVALID;
        }
        let start = self.line_of(addr) * self.line_words;
        let end = (start + self.line_words).min(self.words.len());
        let slot = if self.txs[t].is_some() { t } else { self.txs.len() };
        LineLease { epoch: 0, slot, start, end, write, owner: t }
    }

    /// Degenerate [`crate::TxMemory::lease_read`]: a full per-word read by
    /// the token's owner. Infallible for the same reason the directory
    /// impl's direct path is: while the *directory* lease is valid no doom,
    /// fault, or overflow can hit this access — the `expect` doubles as a
    /// soundness check in the differential test.
    pub fn lease_read(&mut self, lease: &LineLease, addr: usize) -> W {
        self.read(lease.owner, addr).expect("degenerate lease read aborted")
    }

    /// Degenerate [`crate::TxMemory::lease_read_with`].
    pub fn lease_read_with<R>(
        &mut self,
        lease: &LineLease,
        addr: usize,
        f: impl FnOnce(&W) -> R,
    ) -> R {
        self.read_with(lease.owner, addr, f).expect("degenerate lease read aborted")
    }

    /// Degenerate [`crate::TxMemory::lease_write`]: a full per-word write.
    pub fn lease_write(&mut self, lease: &LineLease, addr: usize, value: W) {
        self.write(lease.owner, addr, value).expect("degenerate lease write aborted");
    }

    /// No-op mirror of [`crate::TxMemory::flush_lease_stats`]: the fallback
    /// counts every access eagerly, so there is never anything to flush.
    pub fn flush_lease_stats(&mut self) {}

    // ---- internals ------------------------------------------------------

    /// Mirror of the directory impl's per-slot epoch bump (minus the
    /// stats flush, which the eager fallback never needs).
    #[inline]
    fn bump_slot(&mut self, slot: usize) {
        self.epochs[slot] += 1;
        self.stats.epoch_bumps += 1;
    }

    /// Mirror of the directory impl's bump-every-slot path (fault-plan
    /// installation and memory growth).
    fn bump_all_slots(&mut self) {
        for e in &mut self.epochs {
            *e += 1;
        }
        self.stats.epoch_bumps += self.epochs.len() as u64;
    }

    /// Consult the fault injector for one transactional access by `t` —
    /// the mirror of `TxMemory::inject_fault` (same gating, same draw
    /// discipline, same abort semantics).
    fn inject_fault(&mut self, t: ThreadId) -> Option<AbortReason> {
        self.txs[t].as_ref()?;
        match self.injector.as_mut()?.decide()? {
            Fault::Spurious(cause) => {
                let reason = AbortReason::Spurious { cause };
                self.abort_self(t, reason, None);
                Some(reason)
            }
            Fault::ForceRestricted => {
                let reason = AbortReason::Restricted;
                self.abort_self(t, reason, None);
                Some(reason)
            }
            Fault::ShrinkBudgets => {
                let tx = self.txs[t].as_mut().expect("checked above");
                tx.budgets = tx.budgets.halved();
                let reason = if tx.read_lines.len() > tx.budgets.read_lines {
                    AbortReason::ReadOverflow
                } else if tx.write_lines.len() > tx.budgets.write_lines {
                    AbortReason::WriteOverflow
                } else {
                    return None;
                };
                self.abort_self(t, reason, None);
                self.predictors[t].on_overflow();
                Some(reason)
            }
        }
    }

    fn take_doom(&mut self, t: ThreadId) -> Option<AbortReason> {
        self.doomed[t].take()
    }

    /// Doom every active transaction other than `t` that conflicts with an
    /// access to `line` — the O(threads) scan the directory replaced.
    fn doom_conflicting(&mut self, t: ThreadId, line: usize, is_write: bool) {
        let in_tx = self.txs[t].is_some();
        let mut doomed_any = false;
        for victim in 0..self.txs.len() {
            if victim == t {
                continue;
            }
            let Some(tx) = self.txs[victim].as_ref() else {
                continue;
            };
            let reason = if tx.write_lines.contains(&line) {
                Some(AbortReason::ConflictWrite { with: t, line })
            } else if is_write && tx.read_lines.contains(&line) {
                Some(AbortReason::ConflictRead { with: t, line })
            } else {
                None
            };
            if let Some(reason) = reason {
                self.bump_slot(victim); // one bump per doomed victim, like `doom`
                self.rollback(victim);
                self.doomed[victim] = Some(reason);
                self.stats.record_abort(reason);
                let cycle = self.now;
                self.emit(TraceEvent::Abort { thread: victim, cycle, reason, line: Some(line) });
                doomed_any = true;
            }
        }
        if doomed_any && !in_tx {
            self.stats.nontx_dooms += 1;
        }
    }

    /// Roll back and discard `t`'s transaction, recording `reason`.
    fn abort_self(&mut self, t: ThreadId, reason: AbortReason, line: Option<usize>) {
        self.bump_slot(t);
        self.rollback(t);
        self.doomed[t] = None;
        self.stats.record_abort(reason);
        let cycle = self.now;
        self.emit(TraceEvent::Abort { thread: t, cycle, reason, line });
    }

    /// Replay `t`'s undo log in reverse and drop the transaction.
    fn rollback(&mut self, t: ThreadId) {
        if let Some(tx) = self.txs[t].take() {
            for &(addr, slot) in tx.undo.iter().rev() {
                self.words[addr] = self.undo_words[t][slot].clone();
            }
            self.undo_words[t].clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> ReferenceTxMemory<u64> {
        // Same geometry as the directory impl's unit tests: 1024 words,
        // 8-word lines, 4 threads.
        ReferenceTxMemory::new(1024, 8, 4, 0)
    }

    /// Mirror of the directory impl's constrained-budget bound tests
    /// (`MachineProfile::constrained` geometry: 8 read / 4 write lines).
    #[test]
    fn read_capacity_exact_fit_and_one_over() {
        let mut m = mem();
        m.begin(0, Budgets { read_lines: 8, write_lines: 4 }).unwrap();
        for line in 0..8 {
            m.read(0, line * 8).unwrap();
        }
        assert_eq!(m.footprint(0), (8, 0), "exactly at the bound: no abort");
        assert_eq!(m.read(0, 8 * 8), Err(AbortReason::ReadOverflow), "one over bursts");
        assert!(!m.in_tx(0));
        assert_eq!(m.stats().overflow_read, 1);
    }

    #[test]
    fn write_capacity_exact_fit_and_one_over() {
        let mut m = mem();
        m.begin(0, Budgets { read_lines: 8, write_lines: 4 }).unwrap();
        for line in 0..4 {
            m.write(0, line * 8, 1).unwrap();
        }
        assert_eq!(m.footprint(0), (0, 4), "exactly at the bound: no abort");
        assert_eq!(m.write(0, 4 * 8, 1), Err(AbortReason::WriteOverflow), "one over bursts");
        assert!(!m.in_tx(0));
        assert_eq!(m.stats().overflow_write, 1);
        for line in 0..5 {
            assert_eq!(m.read(1, line * 8).unwrap(), 0, "speculative writes rolled back");
        }
    }

    #[test]
    fn lock_monitor_consumes_no_read_capacity() {
        let mut m = mem();
        m.write(0, 800, 1).unwrap();
        m.begin(0, Budgets { read_lines: 1, write_lines: 1 }).unwrap();
        m.read(0, 0).unwrap();
        assert_eq!(m.arm_lock_monitor(0, 800).unwrap(), 1);
        assert_eq!(m.footprint(0), (1, 0), "no read-set growth");
        m.commit(0).unwrap();
    }

    #[test]
    fn doom_all_active_kills_every_transaction_in_order() {
        let mut m = mem();
        m.begin(0, Budgets { read_lines: 8, write_lines: 4 }).unwrap();
        m.begin(1, Budgets { read_lines: 8, write_lines: 4 }).unwrap();
        m.write(0, 5, 9).unwrap();
        m.doom_all_active(2, 800);
        assert!(matches!(m.poll_doomed(0), Some(AbortReason::ConflictRead { with: 2, line: 100 })));
        assert!(matches!(m.poll_doomed(1), Some(AbortReason::ConflictRead { with: 2, line: 100 })));
        assert_eq!(m.active_tx_count(), 0);
        assert_eq!(m.read(2, 5).unwrap(), 0, "speculative write rolled back");
        assert_eq!(m.stats().nontx_dooms, 1);
    }
}
