//! # htm-sim
//!
//! A software simulation of **best-effort hardware transactional memory**
//! over a word-addressed shared memory, standing in for the IBM zEC12
//! (`TBEGIN`/`TEND`/`TABORT`) and Intel Haswell TSX (`XBEGIN`/`XEND`/
//! `XABORT`) facilities the paper ran on. Real HTM silicon is unavailable
//! (TSX has been fused off on modern parts; zEC12 requires a mainframe), so
//! every mechanism the paper's evaluation depends on is modelled
//! explicitly:
//!
//! * **Read/write sets at cache-line granularity** — each transactional
//!   access records its line; budgets come from the machine profile
//!   ([`machine_sim::CacheGeometry`]) and can be halved by the caller when
//!   an SMT sibling is active.
//! * **Eager, requester-wins conflict detection** — an access (even a
//!   non-transactional one, e.g. by the GIL holder) that collides with
//!   another thread's transactional line dooms *that* transaction; the
//!   victim rolls back immediately and observes the abort at its next
//!   access or poll, like a coherence-triggered abort.
//! * **Footprint overflow** — exceeding the read or write budget is a
//!   *persistent* abort ([`AbortReason::is_persistent`]), the class that
//!   makes retry pointless and forces the GIL fallback.
//! * **Explicit aborts** — `TABORT`/`XABORT` with a software code, used by
//!   the TLE runtime when it observes the GIL held inside a transaction.
//! * **Undo-log rollback** — speculative writes are applied in place and
//!   undone on abort, so committed state is exactly the state a serial
//!   execution would have produced (property-tested).
//! * **Intel's learning abort predictor** (paper §5.4, Fig. 6a) — an
//!   overflow-history confidence that eagerly aborts transactions and only
//!   gradually regains trust, reproducing the slow success-ratio recovery
//!   that penalises dynamic transaction-length adjustment on short runs.
//!
//! The memory is generic over the word type `W` so the Ruby VM can store
//! its `Word` values directly while unit tests use plain integers.
//!
//! An inline-assembly RTM backend for real x86 TSX hardware is included
//! behind the `rtm-hardware` feature ([`rtm`]) for completeness; it is not
//! used by any experiment (no TSX-capable host).

pub mod abort;
pub mod inject;
pub mod lease;
pub mod predictor;
pub mod refimpl;
#[cfg(feature = "rtm-hardware")]
pub mod rtm;
pub mod stats;
pub mod trace;
pub mod txmem;

pub use abort::{AbortReason, ExplicitCode, SpuriousCause};
pub use inject::{Fault, FaultInjector, FaultPlan};
pub use lease::LineLease;
pub use predictor::OverflowPredictor;
pub use refimpl::ReferenceTxMemory;
pub use stats::HtmStats;
pub use trace::{RingBufferSink, TraceEvent, TraceSink};
pub use txmem::{Budgets, TxMemory};
