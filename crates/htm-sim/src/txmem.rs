//! Word-addressed transactional memory with undo-log rollback and a
//! **line-ownership directory** for O(1) conflict detection.
//!
//! All shared interpreter state (and, deliberately, the threads' private
//! stack areas — they occupy real cache lines and therefore real HTM
//! footprint) lives in one `Vec<W>`. Every access goes through
//! [`TxMemory::read`]/[`TxMemory::write`], which:
//!
//! 1. abort the caller first if a remote conflict already doomed it;
//! 2. record the touched cache line in the active transaction's read or
//!    write set and check the footprint budgets;
//! 3. doom every *other* active transaction whose set conflicts with the
//!    access (requester wins, the policy of both zEC12 and Haswell where
//!    the incoming coherence request kills the local transaction).
//!
//! Step 3 is where this module differs from the original implementation
//! (retained verbatim as [`crate::refimpl::ReferenceTxMemory`] and held
//! equivalent by the differential property test): instead of per-thread
//! hash sets scanned across all threads on every access, conflicts are
//! resolved through a flat per-line directory — for each cache line a
//! reader bitmask and a speculative-writer id, exactly the metadata a real
//! coherence directory keeps. One indexed load answers "who conflicts?";
//! doomed victims are read straight out of the bitmask in ascending thread
//! order, preserving the reference scan's victim ordering. The directory
//! invariant mirrors MESI: a line has either any number of transactional
//! readers and no writer, or exactly one writer (which may also be a
//! reader) — the requester-wins dooming enforces it on every access.
//!
//! Per-transaction state is a pair of line *lists* (each line appended
//! exactly once, when its directory bit first flips) whose lengths are the
//! footprint counters, plus the undo log. All per-thread buffers are
//! retained across transactions, so a steady-state begin → access* →
//! commit cycle performs **zero heap allocations**. A one-entry line memo
//! per thread short-circuits the directory for consecutive accesses to the
//! same line — sound because requester-wins dooming means a live
//! transaction's recorded line can have no remote conflicting owner.
//!
//! A doomed transaction is rolled back *immediately* (its undo log is
//! replayed in reverse, its directory bits cleared) so the requester always
//! observes committed data, mirroring how real HTM buffers speculative
//! stores; the victim thread learns of the abort at its next access or at
//! an explicit [`TxMemory::poll_doomed`].
//!
//! On top of the per-word entry points sits the **line-lease** batched
//! path ([`TxMemory::try_lease`] / [`TxMemory::lease_read`] /
//! [`TxMemory::lease_write`], see [`crate::lease`] and `DESIGN.md` §13):
//! once an access has settled a line's bookkeeping, the interpreter can
//! take an epoch-stamped token for that `(thread, line, mode)` and access
//! further words on the line directly, batching the read/write counters
//! until [`TxMemory::flush_lease_stats`]. Any event that could change the
//! answer — begin, commit, abort, doom, fault-plan install, growth —
//! bumps the epoch slots of exactly the leases it can invalidate: the
//! affected thread's slot for its own transaction boundaries and dooms,
//! the shared plain slot for any begin, every slot for global events.

use machine_sim::ThreadId;

use crate::abort::{AbortReason, ExplicitCode, SpuriousCause};
use crate::inject::{Fault, FaultInjector, FaultPlan};
use crate::lease::LineLease;
use crate::predictor::OverflowPredictor;
use crate::stats::HtmStats;
use crate::trace::{TraceEvent, TraceSink};

/// Footprint budgets for one transaction, in whole cache lines.
///
/// The TLE runtime computes these from the machine profile and halves them
/// when the thread's SMT sibling is busy (paper §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budgets {
    pub read_lines: usize,
    pub write_lines: usize,
}

impl Budgets {
    /// Halve both budgets (SMT sibling active), keeping at least one line.
    pub fn halved(self) -> Budgets {
        Budgets {
            read_lines: (self.read_lines / 2).max(1),
            write_lines: (self.write_lines / 2).max(1),
        }
    }
}

/// The directory's reader bitmask is a `u32`; the widest simulated machine
/// (zEC12) has 12 hardware threads, so 32 leaves ample headroom.
pub const MAX_THREADS: usize = 32;

/// Sentinel in [`LineState::writer`]: no speculative writer.
const NO_WRITER: u8 = u8::MAX;

/// Panic with addr/line context on an out-of-bounds access. Kept out of
/// line so the bounds check in the hot path compiles to a compare and a
/// cold jump. Shared with [`crate::refimpl`] so both implementations fail
/// identically.
#[cold]
#[inline(never)]
pub(crate) fn out_of_bounds(op: &str, addr: usize, line: usize, size: usize) -> ! {
    panic!("TxMemory {op} out of bounds: addr {addr} (line {line}) >= memory size {size}");
}

/// Ownership record for one cache line: which transactions currently hold
/// it in their read set (bit per thread) and which single transaction, if
/// any, holds it in its write set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineState {
    readers: u32,
    writer: u8,
}

const EMPTY_LINE: LineState = LineState { readers: 0, writer: NO_WRITER };

/// Per-thread transaction slot. The buffers are retained (cleared, not
/// dropped) when a transaction ends, so repeated transactions on a thread
/// reuse their capacity and steady-state `begin` allocates nothing.
#[derive(Debug)]
struct TxSlot {
    active: bool,
    budgets: Budgets,
    /// Lines in the read set, in first-touch order; no duplicates (a line
    /// is appended exactly when its directory reader bit flips on).
    read_lines: Vec<usize>,
    /// Lines in the write set, in first-touch order; no duplicates.
    write_lines: Vec<usize>,
    /// Undo log in write order: each entry is one overwritten address
    /// pairing with one slot of the thread's undo arena. Log and arena
    /// grow in lockstep, so rollback replays the log backward while
    /// walking an arena cursor.
    undo: Vec<usize>,
}

impl TxSlot {
    fn new() -> Self {
        TxSlot {
            active: false,
            budgets: Budgets { read_lines: 0, write_lines: 0 },
            read_lines: Vec::new(),
            write_lines: Vec::new(),
            undo: Vec::new(),
        }
    }
}

/// One-entry cache of the last line a thread touched transactionally.
/// Valid only while the thread's transaction is live (invalidated at
/// begin, commit, and rollback); a hit proves set membership without a
/// directory probe.
#[derive(Debug, Clone, Copy)]
struct LineMemo {
    line: usize,
    in_read: bool,
    in_write: bool,
}

impl LineMemo {
    const INVALID: LineMemo = LineMemo { line: usize::MAX, in_read: false, in_write: false };
}

/// Word-addressed shared memory with best-effort transactions.
#[derive(Debug)]
pub struct TxMemory<W: Clone> {
    words: Vec<W>,
    line_words: usize,
    /// `log2(line_words)` — `line_of` is a shift.
    line_shift: u32,
    /// One ownership record per cache line, indexed by line number.
    dir: Vec<LineState>,
    txs: Vec<TxSlot>,
    memos: Vec<LineMemo>,
    /// Undo payloads, one arena per thread (index-linked from
    /// `TxSlot::undo`).
    undo_words: Vec<Vec<W>>,
    doomed: Vec<Option<AbortReason>>,
    predictors: Vec<OverflowPredictor>,
    /// Number of `active` transaction slots; lets the common
    /// no-transactions case skip all conflict machinery.
    active_txs: usize,
    /// Number of `Some` entries in `doomed`. A doomed thread has no active
    /// transaction but must still receive its abort on the next access, so
    /// the fast path requires this to be zero too.
    pending_dooms: usize,
    stats: HtmStats,
    /// Structured event trace; `None` (the default) means tracing is off
    /// and event sites cost only this discriminant test.
    trace: Option<Box<dyn TraceSink>>,
    /// Seeded fault injector; `None` (the default) injects nothing. Draws
    /// are consumed only at transactional accesses, so a differential pair
    /// given injectors from the same plan stays in lockstep.
    injector: Option<FaultInjector>,
    /// Simulated cycle stamped onto trace events; advanced by the caller.
    now: u64,
    /// Lease epoch slots: one per thread (index `t`, stamps leases granted
    /// inside `t`'s transactions) plus a final shared *plain* slot (index
    /// `txs.len()`, stamps leases granted outside any transaction). A
    /// [`LineLease`] is dead once its slot's value moved past its stamp.
    /// All slots start at 1 so [`LineLease::INVALID`] (epoch 0) never
    /// validates. Bumped by [`Self::bump_slot`] / [`Self::bump_all_slots`].
    epochs: Vec<u64>,
    /// Leased reads not yet folded into `stats.reads`.
    pending_reads: u64,
    /// Leased writes not yet folded into `stats.writes`.
    pending_writes: u64,
    /// Test-only injected serializability bug for the schedule-space
    /// explorer: when set, the read path skips the requester-wins doom of
    /// a remote writer, so reads observe speculative (possibly torn)
    /// state. Never enabled outside explore tests. Read-lease grants are
    /// unaffected: they require the reader bit, which `read_with` sets
    /// either way, and leased re-reads of an already-read line match the
    /// memo fast path's (bugged) behaviour exactly.
    bug_dirty_read: bool,
}

impl<W: Clone> TxMemory<W> {
    /// Create a memory of `size` words, all initialized to `init`, with
    /// cache lines of `line_words` words, supporting up to `max_threads`
    /// hardware threads.
    pub fn new(size: usize, line_words: usize, max_threads: usize, init: W) -> Self {
        assert!(line_words.is_power_of_two(), "line size must be 2^k words");
        assert!(
            max_threads <= MAX_THREADS,
            "ownership directory tracks at most {MAX_THREADS} threads"
        );
        TxMemory {
            words: vec![init; size],
            line_words,
            line_shift: line_words.trailing_zeros(),
            dir: vec![EMPTY_LINE; size.div_ceil(line_words)],
            txs: (0..max_threads).map(|_| TxSlot::new()).collect(),
            memos: vec![LineMemo::INVALID; max_threads],
            undo_words: (0..max_threads).map(|_| Vec::new()).collect(),
            doomed: vec![None; max_threads],
            predictors: (0..max_threads).map(|_| OverflowPredictor::disabled()).collect(),
            active_txs: 0,
            pending_dooms: 0,
            stats: HtmStats::default(),
            trace: None,
            injector: None,
            now: 0,
            epochs: vec![1; max_threads + 1],
            pending_reads: 0,
            pending_writes: 0,
            bug_dirty_read: false,
        }
    }

    /// Arm (or disarm) the test-only dirty-read bug — see the field doc.
    pub fn set_bug_dirty_read(&mut self, on: bool) {
        self.bug_dirty_read = on;
    }

    /// Install a fault-injection plan (or remove it with a no-op plan).
    /// Both memories of a differential pair must be given the same plan.
    /// Invalidates all outstanding leases: the leased path never consults
    /// the injector, so no lease may outlive a plan change (and none is
    /// granted while a plan is installed).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.bump_all_slots();
        self.injector = if plan.is_noop() { None } else { Some(FaultInjector::new(plan)) };
    }

    /// Faults injected so far (zero without a plan).
    pub fn faults_injected(&self) -> u64 {
        self.injector.as_ref().map_or(0, FaultInjector::injected)
    }

    /// Install a trace sink; every subsequent begin/commit/abort emits a
    /// [`TraceEvent`] into it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Remove and return the installed trace sink, disabling tracing.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// True when a trace sink is installed.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Set the simulated cycle stamped onto trace events. The executor
    /// calls this as it charges cycle costs; with tracing off it is
    /// a single store.
    #[inline]
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(event);
        }
    }

    /// Install an overflow predictor for thread `t` (Intel profile).
    pub fn set_predictor(&mut self, t: ThreadId, p: OverflowPredictor) {
        self.predictors[t] = p;
    }

    /// Total words.
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Words per cache line.
    pub fn line_words(&self) -> usize {
        self.line_words
    }

    /// Grow the memory by `extra` words initialized to `init` (heap
    /// growth). Only legal while no transaction is active — in the full
    /// system growth happens under the GIL after every transaction was
    /// doomed by the GIL-word write.
    pub fn grow(&mut self, extra: usize, init: W) {
        assert!(self.active_txs == 0, "memory growth with active transactions");
        self.bump_all_slots(); // leases cache end-of-line clamps against the old size
        let new = self.words.len() + extra;
        self.words.resize(new, init);
        self.dir.resize(new.div_ceil(self.line_words), EMPTY_LINE);
    }

    /// Immutable view of the aggregate statistics.
    pub fn stats(&self) -> &HtmStats {
        &self.stats
    }

    /// Cache line of an address.
    #[inline]
    pub fn line_of(&self, addr: usize) -> usize {
        addr >> self.line_shift
    }

    /// True when thread `t` has an active transaction.
    pub fn in_tx(&self, t: ThreadId) -> bool {
        self.txs[t].active
    }

    /// Number of currently active transactions.
    pub fn active_tx_count(&self) -> usize {
        self.active_txs
    }

    /// (read lines, write lines) of `t`'s active transaction.
    pub fn footprint(&self, t: ThreadId) -> (usize, usize) {
        let tx = &self.txs[t];
        if tx.active {
            (tx.read_lines.len(), tx.write_lines.len())
        } else {
            (0, 0)
        }
    }

    /// Begin a transaction for thread `t` with the given budgets
    /// (`TBEGIN`/`XBEGIN`). Fails immediately when the learning predictor
    /// kills it ([`AbortReason::EagerPredicted`]).
    pub fn begin(&mut self, t: ThreadId, budgets: Budgets) -> Result<(), AbortReason> {
        assert!(!self.txs[t].active, "nested transaction on thread {t}");
        // `t`'s own pre-transaction leases die with the mode change, and
        // every plain lease anywhere dies because a transaction now exists.
        // Remote in-transaction leases stay valid: this begin takes no line
        // ownership away from them.
        self.bump_slot(t);
        self.bump_slot(self.txs.len());
        let _ = self.take_doom(t);
        if self.predictors[t].should_abort_eagerly() {
            let reason = AbortReason::EagerPredicted;
            self.stats.begins += 1;
            self.stats.record_abort(reason);
            let cycle = self.now;
            self.emit(TraceEvent::Abort { thread: t, cycle, reason, line: None });
            return Err(reason);
        }
        self.stats.begins += 1;
        self.undo_words[t].clear();
        let tx = &mut self.txs[t];
        debug_assert!(
            tx.read_lines.is_empty() && tx.write_lines.is_empty() && tx.undo.is_empty(),
            "transaction buffers not cleared at release"
        );
        tx.active = true;
        tx.budgets = budgets;
        self.memos[t] = LineMemo::INVALID;
        self.active_txs += 1;
        let cycle = self.now;
        self.emit(TraceEvent::Begin { thread: t, cycle });
        Ok(())
    }

    /// Commit thread `t`'s transaction (`TEND`/`XEND`). Fails if a remote
    /// conflict doomed it first (the transaction is already rolled back).
    pub fn commit(&mut self, t: ThreadId) -> Result<(), AbortReason> {
        // Only `t`'s leases die: releasing `t`'s line marks cannot affect
        // what another thread's settled footprint already covers.
        self.bump_slot(t);
        if let Some(reason) = self.take_doom(t) {
            return Err(reason);
        }
        assert!(self.txs[t].active, "commit without transaction");
        let read_lines = self.txs[t].read_lines.len();
        let write_lines = self.txs[t].write_lines.len();
        self.release_tx(t);
        self.stats.commits += 1;
        self.predictors[t].on_commit();
        let cycle = self.now;
        self.emit(TraceEvent::Commit { thread: t, cycle, read_lines, write_lines });
        Ok(())
    }

    /// Explicit software abort of `t`'s own transaction
    /// (`TABORT`/`XABORT code`). Rolls back and reports the reason.
    pub fn tabort(&mut self, t: ThreadId, code: ExplicitCode) -> AbortReason {
        let reason = AbortReason::Explicit(code);
        self.abort_self(t, reason, None);
        reason
    }

    /// Abort `t`'s transaction because it attempted an operation that is
    /// illegal inside transactions (system call, blocking I/O, GC).
    pub fn abort_restricted(&mut self, t: ThreadId) -> AbortReason {
        let reason = AbortReason::Restricted;
        self.abort_self(t, reason, None);
        reason
    }

    /// Abort `t`'s transaction for an environmental cause the transaction
    /// did not earn — the interrupt-timer model and the fault injector use
    /// this. Transient: the TLE runtime retries it like a conflict.
    pub fn abort_spurious(&mut self, t: ThreadId, cause: SpuriousCause) -> AbortReason {
        let reason = AbortReason::Spurious { cause };
        self.abort_self(t, reason, None);
        reason
    }

    /// Check whether a remote conflict doomed `t`'s transaction. The
    /// transaction memory effects are already rolled back; this consumes
    /// the pending abort reason.
    pub fn poll_doomed(&mut self, t: ThreadId) -> Option<AbortReason> {
        self.take_doom(t)
    }

    /// Transactional or plain read of one word by thread `t`.
    ///
    /// Outside a transaction the read is immediate but still dooms remote
    /// transactions that speculatively *wrote* the line (a real coherence
    /// read request would abort them).
    ///
    /// # Panics
    ///
    /// Panics (also in release builds) when `addr` is out of bounds — a
    /// decoded operand pointing outside memory is a VM bug, and the panic
    /// message carries the address and cache line rather than surfacing as
    /// a bare slice index failure.
    #[inline]
    pub fn read(&mut self, t: ThreadId, addr: usize) -> Result<W, AbortReason> {
        self.read_with(t, addr, W::clone)
    }

    /// [`Self::read`] that applies `f` to the word in place instead of
    /// cloning it out — the full accounting path, one counted access. Lets
    /// callers probe a word (e.g. "is it an immediate integer?") without
    /// paying the clone of heap-carrying variants.
    ///
    /// # Panics
    ///
    /// As [`Self::read`]: out-of-bounds `addr` panics with context.
    pub fn read_with<R>(
        &mut self,
        t: ThreadId,
        addr: usize,
        f: impl FnOnce(&W) -> R,
    ) -> Result<R, AbortReason> {
        if addr >= self.words.len() {
            out_of_bounds("read", addr, addr >> self.line_shift, self.words.len());
        }
        self.stats.reads += 1;
        if self.active_txs == 0 && self.pending_dooms == 0 {
            // Non-transactional fast path: nothing to doom, nothing doomed.
            return Ok(f(&self.words[addr]));
        }
        if let Some(reason) = self.take_doom(t) {
            return Err(reason);
        }
        if let Some(reason) = self.inject_fault(t) {
            return Err(reason);
        }
        let line = addr >> self.line_shift;
        let memo = self.memos[t];
        if memo.line == line && memo.in_read {
            // Line already in our read set ⇒ no remote writer can exist
            // (its write would have doomed us), and the footprint cannot
            // grow — skip the directory entirely.
            return Ok(f(&self.words[addr]));
        }
        // Requester wins: kill a remote writer of this line. (The
        // test-only dirty-read bug skips exactly this doom, letting the
        // read observe the writer's speculative in-place state.)
        let st = self.dir[line];
        if st.writer != NO_WRITER && st.writer as usize != t && !self.bug_dirty_read {
            let in_tx = self.txs[t].active;
            self.doom(st.writer as usize, AbortReason::ConflictWrite { with: t, line }, line);
            if !in_tx {
                self.stats.nontx_dooms += 1;
            }
        }
        if self.txs[t].active {
            let bit = 1u32 << t;
            if self.dir[line].readers & bit == 0 {
                self.dir[line].readers |= bit;
                self.txs[t].read_lines.push(line);
                if self.txs[t].read_lines.len() > self.txs[t].budgets.read_lines {
                    let reason = AbortReason::ReadOverflow;
                    self.abort_self(t, reason, Some(line));
                    self.predictors[t].on_overflow();
                    return Err(reason);
                }
            }
            self.memos[t] =
                LineMemo { line, in_read: true, in_write: self.dir[line].writer as usize == t };
        }
        Ok(f(&self.words[addr]))
    }

    /// Transactional or plain write of one word by thread `t`.
    ///
    /// # Panics
    ///
    /// Panics (also in release builds) when `addr` is out of bounds, with
    /// addr/line context — see [`Self::read`].
    pub fn write(&mut self, t: ThreadId, addr: usize, value: W) -> Result<(), AbortReason> {
        if addr >= self.words.len() {
            out_of_bounds("write", addr, addr >> self.line_shift, self.words.len());
        }
        self.stats.writes += 1;
        if self.active_txs == 0 && self.pending_dooms == 0 {
            // Non-transactional fast path: nothing to doom, nothing doomed.
            self.words[addr] = value;
            return Ok(());
        }
        if let Some(reason) = self.take_doom(t) {
            return Err(reason);
        }
        if let Some(reason) = self.inject_fault(t) {
            return Err(reason);
        }
        let line = addr >> self.line_shift;
        let memo = self.memos[t];
        if memo.line == line && memo.in_write {
            // Line already in our write set ⇒ we are the sole owner; only
            // the undo log needs to grow.
            self.undo_words[t].push(self.words[addr].clone());
            self.txs[t].undo.push(addr);
            self.words[addr] = value;
            return Ok(());
        }
        // Kill remote readers *and* the remote writer of this line, in
        // ascending thread order like the reference scan.
        let st = self.dir[line];
        let own = 1u32 << t;
        let mut victims = st.readers;
        if st.writer != NO_WRITER {
            victims |= 1u32 << st.writer;
        }
        victims &= !own;
        if victims != 0 {
            let in_tx = self.txs[t].active;
            while victims != 0 {
                let v = victims.trailing_zeros() as usize;
                victims &= victims - 1;
                let reason = if st.writer as usize == v {
                    AbortReason::ConflictWrite { with: t, line }
                } else {
                    AbortReason::ConflictRead { with: t, line }
                };
                self.doom(v, reason, line);
            }
            if !in_tx {
                self.stats.nontx_dooms += 1;
            }
        }
        if self.txs[t].active {
            self.undo_words[t].push(self.words[addr].clone());
            self.txs[t].undo.push(addr);
            if self.dir[line].writer as usize != t {
                self.dir[line].writer = t as u8;
                self.txs[t].write_lines.push(line);
                if self.txs[t].write_lines.len() > self.txs[t].budgets.write_lines {
                    let reason = AbortReason::WriteOverflow;
                    self.abort_self(t, reason, Some(line));
                    self.predictors[t].on_overflow();
                    return Err(reason);
                }
            }
            self.memos[t] =
                LineMemo { line, in_read: self.dir[line].readers & own != 0, in_write: true };
        }
        self.words[addr] = value;
        Ok(())
    }

    /// Arm thread `t`'s hardware lock monitor on the line containing
    /// `addr` — the begin-time half of the `LazyGuarded` commit guard
    /// (DESIGN.md §15). Behaves exactly like [`Self::read`] — one counted
    /// access, doom/fault checks, requester-wins doom of a remote
    /// speculative writer, the current word returned — **except** the line
    /// is *not* inserted into `t`'s read set: the monitor is a dedicated
    /// register, so it consumes no read-set capacity. The acquisition-side
    /// half is [`Self::doom_all_active`].
    ///
    /// # Panics
    ///
    /// As [`Self::read`]: out-of-bounds `addr` panics with context.
    pub fn arm_lock_monitor(&mut self, t: ThreadId, addr: usize) -> Result<W, AbortReason> {
        if addr >= self.words.len() {
            out_of_bounds("arm_lock_monitor", addr, addr >> self.line_shift, self.words.len());
        }
        self.stats.reads += 1;
        if self.active_txs == 0 && self.pending_dooms == 0 {
            return Ok(self.words[addr].clone());
        }
        if let Some(reason) = self.take_doom(t) {
            return Err(reason);
        }
        if let Some(reason) = self.inject_fault(t) {
            return Err(reason);
        }
        let line = addr >> self.line_shift;
        let st = self.dir[line];
        if st.writer != NO_WRITER && st.writer as usize != t {
            let in_tx = self.txs[t].active;
            self.doom(st.writer as usize, AbortReason::ConflictWrite { with: t, line }, line);
            if !in_tx {
                self.stats.nontx_dooms += 1;
            }
        }
        Ok(self.words[addr].clone())
    }

    /// The acquisition-side half of the `LazyGuarded` commit guard: a
    /// non-transactional lock acquirer `t` announcing its write to the
    /// monitored `addr` dooms **every** other active transaction, in
    /// ascending thread order — exactly the victim set, reasons, and
    /// timing an eagerly-subscribed population would lose to the
    /// acquirer's lock-word write (under eager subscription every active
    /// transaction holds that line in its read set).
    pub fn doom_all_active(&mut self, t: ThreadId, addr: usize) {
        if self.active_txs == 0 {
            return;
        }
        let line = addr >> self.line_shift;
        let in_tx = self.txs[t].active;
        let mut doomed_any = false;
        for victim in 0..self.txs.len() {
            if victim != t && self.txs[victim].active {
                self.doom(victim, AbortReason::ConflictRead { with: t, line }, line);
                doomed_any = true;
            }
        }
        if doomed_any && !in_tx {
            self.stats.nontx_dooms += 1;
        }
    }

    /// Read bypassing all transaction machinery — *debug/verification
    /// only* (used by tests and by the GC root scanner, which runs with
    /// every transaction already doomed by the GIL-word write).
    pub fn peek(&self, addr: usize) -> &W {
        &self.words[addr]
    }

    /// Write bypassing transaction machinery — initialization only.
    pub fn poke(&mut self, addr: usize, value: W) {
        debug_assert!(self.active_txs == 0, "poke with active transactions");
        self.words[addr] = value;
    }

    // ---- line leases (batched accounting fast path) ---------------------

    /// Current value of one lease epoch slot (thread index, or
    /// `threads()` for the plain slot). A [`LineLease`] is valid iff its
    /// stamp equals its slot's current value.
    #[inline]
    pub fn epoch(&self, slot: usize) -> u64 {
        self.epochs[slot]
    }

    /// True when `lease` is still current: its stamp matches its epoch
    /// slot. Events bump exactly the slots whose leases they can
    /// invalidate — the owner's slot at its own begin/commit/abort and
    /// when it is doomed, the shared plain slot at any begin, every slot
    /// at fault-plan installs and memory growth.
    #[inline]
    pub fn lease_valid(&self, lease: &LineLease) -> bool {
        lease.epoch == self.epochs[lease.slot]
    }

    /// Try to take a lease on the line containing `addr` for thread `t`,
    /// in write mode (`write = true`) or read mode. Returns
    /// [`LineLease::INVALID`] when the batched path cannot soundly serve
    /// accesses that the full path would account for:
    ///
    /// - a fault plan is installed (every access must draw from the PRNG);
    /// - in a transaction, a write lease requires `t` to already be the
    ///   line's speculative writer, and a read lease requires `t`'s reader
    ///   bit — i.e. a full-path access of the same mode must have settled
    ///   the footprint/budget accounting for this line first;
    /// - outside a transaction, no transaction may be active anywhere
    ///   (a leased access performs no dooming) and `t` must have no
    ///   undelivered doom (a leased access delivers no pending abort).
    ///
    /// Every call counts one `lease_misses` — by construction the caller
    /// just performed (or is about to perform) a full-path access that a
    /// valid lease would have absorbed.
    pub fn try_lease(&mut self, t: ThreadId, addr: usize, write: bool) -> LineLease {
        self.stats.lease_misses += 1;
        if self.injector.is_some() || addr >= self.words.len() {
            return LineLease::INVALID;
        }
        let line = addr >> self.line_shift;
        let grantable = if self.txs[t].active {
            let st = self.dir[line];
            if write {
                st.writer as usize == t
            } else {
                // Reader bit set ⇒ line is in our read set; requester-wins
                // guarantees no remote writer can coexist with it.
                st.readers & (1u32 << t) != 0
            }
        } else {
            // Plain leases: no transaction may be active anywhere (a leased
            // access dooms nothing) and `t` itself must have no undelivered
            // doom (a leased access would skip its own abort delivery).
            // Other threads' pending dooms don't matter — they are
            // delivered at those threads' own next full-path access, and a
            // doom can only target an active transaction, which `t` does
            // not have, so none can arrive while the lease is held. This
            // keeps leases alive for a GIL-fallback holder while its
            // victims have not yet polled their dooms.
            self.active_txs == 0 && self.doomed[t].is_none()
        };
        if !grantable {
            return LineLease::INVALID;
        }
        let start = line << self.line_shift;
        let end = (start + self.line_words).min(self.words.len());
        let slot = if self.txs[t].active { t } else { self.txs.len() };
        LineLease { epoch: self.epochs[slot], slot, start, end, write, owner: t }
    }

    /// Read a word through a valid read lease — no accounting beyond a
    /// batched counter. The caller must have checked [`Self::lease_valid`]
    /// and [`LineLease::covers`]; both are debug-asserted.
    #[inline]
    pub fn lease_read(&mut self, lease: &LineLease, addr: usize) -> W {
        self.lease_read_with(lease, addr, W::clone)
    }

    /// [`Self::lease_read`] applying `f` in place instead of cloning.
    #[inline]
    pub fn lease_read_with<R>(
        &mut self,
        lease: &LineLease,
        addr: usize,
        f: impl FnOnce(&W) -> R,
    ) -> R {
        debug_assert!(self.lease_valid(lease), "read through a stale lease");
        debug_assert!(!lease.write && lease.covers(addr), "lease does not cover this read");
        self.pending_reads += 1;
        f(&self.words[addr])
    }

    /// Write a word through a valid write lease. In a transaction the old
    /// word is still undo-logged (skipped when the log's newest entry is
    /// already this address — replaying backward makes the older record
    /// win, so intermediate values need no entry); what the lease skips is
    /// the doom/fault/conflict/footprint bookkeeping. Same caller
    /// obligations as [`Self::lease_read`].
    #[inline]
    pub fn lease_write(&mut self, lease: &LineLease, addr: usize, value: W) {
        debug_assert!(self.lease_valid(lease), "write through a stale lease");
        debug_assert!(lease.write && lease.covers(addr), "lease does not cover this write");
        self.pending_writes += 1;
        let t = lease.owner;
        // slot == owner exactly for in-transaction leases (the plain slot
        // is one past the last thread index).
        if lease.slot == t && self.txs[t].undo.last() != Some(&addr) {
            self.undo_words[t].push(self.words[addr].clone());
            self.txs[t].undo.push(addr);
        }
        self.words[addr] = value;
    }

    /// Fold the batched leased-access counters into [`HtmStats`]. Called
    /// internally at every epoch bump; the executor also calls it at yield
    /// points and before reporting so `stats()` is exact there.
    pub fn flush_lease_stats(&mut self) {
        if self.pending_reads != 0 || self.pending_writes != 0 {
            self.stats.lease_hits += self.pending_reads + self.pending_writes;
            self.stats.reads += self.pending_reads;
            self.stats.writes += self.pending_writes;
            self.pending_reads = 0;
            self.pending_writes = 0;
        }
    }

    // ---- internals ------------------------------------------------------

    /// Invalidate every lease stamped against `slot` (one counter
    /// increment) and settle the batched stats while they are still
    /// attributable.
    #[inline]
    fn bump_slot(&mut self, slot: usize) {
        self.epochs[slot] += 1;
        self.stats.epoch_bumps += 1;
        self.flush_lease_stats();
    }

    /// Invalidate every outstanding lease, whatever its slot — for events
    /// that change global ground rules (fault-plan installs, growth).
    fn bump_all_slots(&mut self) {
        for e in &mut self.epochs {
            *e += 1;
        }
        self.stats.epoch_bumps += self.epochs.len() as u64;
        self.flush_lease_stats();
    }

    /// Consult the fault injector for one transactional access by `t`.
    /// Draws happen only while `t` has a live transaction (one draw per
    /// access, before the memo shortcut), so two memories driven with the
    /// same operation sequence consume identical randomness. Returns the
    /// abort reason when the fault killed the transaction.
    fn inject_fault(&mut self, t: ThreadId) -> Option<AbortReason> {
        // Ordered so the no-plan common case is a single null test.
        self.injector.as_ref()?;
        if !self.txs[t].active {
            return None;
        }
        match self.injector.as_mut()?.decide()? {
            Fault::Spurious(cause) => {
                let reason = AbortReason::Spurious { cause };
                self.abort_self(t, reason, None);
                Some(reason)
            }
            Fault::ForceRestricted => {
                let reason = AbortReason::Restricted;
                self.abort_self(t, reason, None);
                Some(reason)
            }
            Fault::ShrinkBudgets => {
                // The interrupt handler's cache footprint evicted half the
                // speculative capacity; an already-larger footprint bursts
                // immediately (read set checked first, like the reference).
                let tx = &mut self.txs[t];
                tx.budgets = tx.budgets.halved();
                let reason = if tx.read_lines.len() > tx.budgets.read_lines {
                    AbortReason::ReadOverflow
                } else if tx.write_lines.len() > tx.budgets.write_lines {
                    AbortReason::WriteOverflow
                } else {
                    return None;
                };
                self.abort_self(t, reason, None);
                self.predictors[t].on_overflow();
                Some(reason)
            }
        }
    }

    #[inline]
    fn take_doom(&mut self, t: ThreadId) -> Option<AbortReason> {
        // The counter is one hot word; with no doom pending anywhere the
        // per-access check costs a load instead of an `Option::take`
        // load + store on the (much colder) doomed array.
        if self.pending_dooms == 0 {
            return None;
        }
        let reason = self.doomed[t].take();
        if reason.is_some() {
            self.pending_dooms -= 1;
        }
        reason
    }

    /// Doom `victim`'s active transaction on behalf of an access to
    /// `line`: roll it back eagerly and park the abort reason for the
    /// victim's next access or poll.
    fn doom(&mut self, victim: ThreadId, reason: AbortReason, line: usize) {
        // Only the victim's leases die: its ownership marks are about to
        // be released and its memory rolled back, but no other thread's
        // settled footprint changes.
        self.bump_slot(victim);
        self.rollback(victim);
        debug_assert!(self.doomed[victim].is_none(), "victim already doomed");
        self.doomed[victim] = Some(reason);
        self.pending_dooms += 1;
        self.stats.record_abort(reason);
        let cycle = self.now;
        self.emit(TraceEvent::Abort { thread: victim, cycle, reason, line: Some(line) });
    }

    /// Roll back and discard `t`'s transaction, recording `reason`.
    /// `line` is the faulting cache line where the abort has one
    /// (footprint overflows pass the line that burst the budget).
    fn abort_self(&mut self, t: ThreadId, reason: AbortReason, line: Option<usize>) {
        self.bump_slot(t);
        self.rollback(t);
        let _ = self.take_doom(t);
        self.stats.record_abort(reason);
        let cycle = self.now;
        self.emit(TraceEvent::Abort { thread: t, cycle, reason, line });
    }

    /// Replay `t`'s undo log in reverse and drop the transaction. The log
    /// is walked backward with an arena cursor; the earliest record for an
    /// address replays last, so duplicates restore correctly.
    fn rollback(&mut self, t: ThreadId) {
        if !self.txs[t].active {
            return;
        }
        let undo = std::mem::take(&mut self.txs[t].undo);
        let arena = std::mem::take(&mut self.undo_words[t]);
        let mut cursor = arena.len();
        for &entry in undo.iter().rev() {
            cursor -= 1;
            self.words[entry] = arena[cursor].clone();
        }
        debug_assert_eq!(cursor, 0, "undo log and arena out of sync");
        self.txs[t].undo = undo;
        self.undo_words[t] = arena;
        self.release_tx(t);
    }

    /// Deactivate `t`'s transaction: clear its directory ownership and
    /// reset its buffers *keeping their capacity* for the next begin.
    fn release_tx(&mut self, t: ThreadId) {
        debug_assert!(self.txs[t].active, "release without transaction");
        self.txs[t].active = false;
        let keep = !(1u32 << t);
        let mut read_lines = std::mem::take(&mut self.txs[t].read_lines);
        for &line in &read_lines {
            self.dir[line].readers &= keep;
        }
        read_lines.clear();
        self.txs[t].read_lines = read_lines;
        let mut write_lines = std::mem::take(&mut self.txs[t].write_lines);
        for &line in &write_lines {
            debug_assert_eq!(self.dir[line].writer as usize, t, "foreign writer in write set");
            self.dir[line].writer = NO_WRITER;
        }
        write_lines.clear();
        self.txs[t].write_lines = write_lines;
        self.txs[t].undo.clear();
        self.undo_words[t].clear();
        self.memos[t] = LineMemo::INVALID;
        self.active_txs -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abort::abort_codes;

    fn mem() -> TxMemory<u64> {
        // 1024 words, 8-word (64-byte) lines, 4 threads.
        TxMemory::new(1024, 8, 4, 0)
    }

    fn big_budgets() -> Budgets {
        Budgets { read_lines: 1 << 20, write_lines: 1 << 20 }
    }

    #[test]
    fn plain_read_write_roundtrip() {
        let mut m = mem();
        m.write(0, 17, 99).unwrap();
        assert_eq!(m.read(0, 17).unwrap(), 99);
        assert_eq!(m.read(1, 17).unwrap(), 99);
    }

    #[test]
    fn commit_makes_writes_durable() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 5, 1).unwrap();
        m.write(0, 6, 2).unwrap();
        m.commit(0).unwrap();
        assert_eq!(m.read(1, 5).unwrap(), 1);
        assert_eq!(m.read(1, 6).unwrap(), 2);
        assert_eq!(m.stats().commits, 1);
    }

    #[test]
    fn tabort_rolls_back() {
        let mut m = mem();
        m.write(0, 5, 42).unwrap();
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 5, 1).unwrap();
        m.write(0, 5, 2).unwrap();
        let r = m.tabort(0, abort_codes::GIL_LOCKED);
        assert_eq!(r, AbortReason::Explicit(abort_codes::GIL_LOCKED));
        assert!(!m.in_tx(0));
        assert_eq!(m.read(1, 5).unwrap(), 42, "original value restored");
    }

    /// FORTH-style constrained budgets (the `MachineProfile::constrained`
    /// geometry): exactly `read_lines` distinct lines must fit, one more
    /// must burst with `ReadOverflow`.
    #[test]
    fn read_capacity_exact_fit_and_one_over() {
        let budgets = Budgets { read_lines: 8, write_lines: 4 };
        let mut m = mem();
        m.begin(0, budgets).unwrap();
        for line in 0..8 {
            m.read(0, line * 8).unwrap();
        }
        assert_eq!(m.footprint(0), (8, 0), "exactly at the bound: no abort");
        assert_eq!(m.read(0, 8 * 8), Err(AbortReason::ReadOverflow), "one over bursts");
        assert!(!m.in_tx(0), "overflow aborts the transaction");
        assert_eq!(m.stats().overflow_read, 1);
    }

    /// Same at the (smaller) write-set bound: `write_lines` distinct lines
    /// fit, the next one aborts with `WriteOverflow`.
    #[test]
    fn write_capacity_exact_fit_and_one_over() {
        let budgets = Budgets { read_lines: 8, write_lines: 4 };
        let mut m = mem();
        m.begin(0, budgets).unwrap();
        for line in 0..4 {
            m.write(0, line * 8, 1).unwrap();
        }
        assert_eq!(m.footprint(0), (0, 4), "exactly at the bound: no abort");
        assert_eq!(m.write(0, 4 * 8, 1), Err(AbortReason::WriteOverflow), "one over bursts");
        assert!(!m.in_tx(0), "overflow aborts the transaction");
        assert_eq!(m.stats().overflow_write, 1);
        // The speculative writes rolled back with the abort.
        for line in 0..5 {
            assert_eq!(m.read(1, line * 8).unwrap(), 0);
        }
    }

    /// The LazyGuarded lock monitor reads the word with full accounting
    /// but occupies no read-set capacity — a transaction already at its
    /// read bound can still arm it.
    #[test]
    fn lock_monitor_consumes_no_read_capacity() {
        let mut m = mem();
        m.write(0, 800, 1).unwrap(); // "GIL" word, line 100
        m.begin(0, Budgets { read_lines: 1, write_lines: 1 }).unwrap();
        m.read(0, 0).unwrap(); // read set now full
        let reads_before = m.stats().reads;
        assert_eq!(m.arm_lock_monitor(0, 800).unwrap(), 1, "monitor returns the word");
        assert_eq!(m.footprint(0), (1, 0), "no read-set growth");
        assert_eq!(m.stats().reads, reads_before + 1, "still one counted access");
        m.commit(0).unwrap();
    }

    /// Arming the monitor is still a coherence read: it dooms a remote
    /// speculative writer of the monitored line (requester wins).
    #[test]
    fn lock_monitor_dooms_remote_speculative_writer() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 800, 7).unwrap();
        m.begin(1, big_budgets()).unwrap();
        assert_eq!(m.arm_lock_monitor(1, 800).unwrap(), 0, "committed value, not speculative");
        assert!(matches!(m.poll_doomed(0), Some(AbortReason::ConflictWrite { with: 1, .. })));
        m.commit(1).unwrap();
    }

    /// The acquisition half of the guard: a non-transactional acquirer
    /// dooms every active transaction, ascending thread order, with the
    /// same `ConflictRead` an eager subscription population would see.
    #[test]
    fn doom_all_active_kills_every_transaction_in_order() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.begin(1, big_budgets()).unwrap();
        m.write(0, 5, 9).unwrap();
        let nontx_before = m.stats().nontx_dooms;
        m.doom_all_active(2, 800);
        assert!(matches!(m.poll_doomed(0), Some(AbortReason::ConflictRead { with: 2, line: 100 })));
        assert!(matches!(m.poll_doomed(1), Some(AbortReason::ConflictRead { with: 2, line: 100 })));
        assert_eq!(m.active_tx_count(), 0);
        assert_eq!(m.read(2, 5).unwrap(), 0, "speculative write rolled back");
        assert_eq!(m.stats().nontx_dooms, nontx_before + 1, "one doomer access, one count");
        // Idempotent on an empty population.
        m.doom_all_active(2, 800);
        assert_eq!(m.stats().nontx_dooms, nontx_before + 1);
    }

    #[test]
    fn write_write_conflict_dooms_victim() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.begin(1, big_budgets()).unwrap();
        m.write(0, 100, 7).unwrap();
        // Thread 1 writes the same line: requester (1) wins, 0 is doomed.
        m.write(1, 101, 8).unwrap();
        assert!(matches!(m.poll_doomed(0), Some(AbortReason::ConflictWrite { with: 1, .. })));
        assert!(!m.in_tx(0), "victim rolled back eagerly");
        // Thread 0's speculative write is gone; thread 1's is visible to 1.
        assert_eq!(m.read(1, 100).unwrap(), 0);
        assert_eq!(m.read(1, 101).unwrap(), 8);
        m.commit(1).unwrap();
    }

    #[test]
    fn read_write_conflict_dooms_reader_on_remote_write() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        let _ = m.read(0, 200).unwrap();
        m.begin(1, big_budgets()).unwrap();
        m.write(1, 200, 5).unwrap(); // write hits 0's read set
        assert!(matches!(m.poll_doomed(0), Some(AbortReason::ConflictRead { with: 1, .. })));
        m.commit(1).unwrap();
        assert_eq!(m.read(2, 200).unwrap(), 5);
    }

    #[test]
    fn read_read_sharing_is_fine() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.begin(1, big_budgets()).unwrap();
        let _ = m.read(0, 300).unwrap();
        let _ = m.read(1, 300).unwrap();
        m.commit(0).unwrap();
        m.commit(1).unwrap();
        assert_eq!(m.stats().total_aborts(), 0);
    }

    #[test]
    fn nontx_write_dooms_transactions_gil_subscription() {
        // This is exactly how the GIL fallback stays safe: every
        // transaction reads the GIL word at begin; the GIL holder's
        // non-transactional write dooms them all.
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.begin(1, big_budgets()).unwrap();
        let gil_addr = 0;
        let _ = m.read(0, gil_addr).unwrap();
        let _ = m.read(1, gil_addr).unwrap();
        m.write(2, gil_addr, 1).unwrap(); // thread 2 acquires the "GIL"
        assert!(m.poll_doomed(0).is_some());
        assert!(m.poll_doomed(1).is_some());
        assert_eq!(m.stats().nontx_dooms, 1);
    }

    #[test]
    fn write_overflow_is_persistent_and_rolls_back() {
        let mut m = mem();
        m.write(0, 0, 111).unwrap();
        m.begin(0, Budgets { read_lines: 100, write_lines: 2 }).unwrap();
        m.write(0, 0, 1).unwrap(); // line 0
        m.write(0, 8, 2).unwrap(); // line 1
        let err = m.write(0, 16, 3).unwrap_err(); // line 2 > budget
        assert_eq!(err, AbortReason::WriteOverflow);
        assert!(err.is_persistent());
        assert!(!m.in_tx(0));
        assert_eq!(*m.peek(0), 111, "undo restored first line");
        assert_eq!(*m.peek(8), 0);
        assert_eq!(*m.peek(16), 0, "overflowing write never applied");
    }

    #[test]
    fn read_overflow_aborts() {
        let mut m = mem();
        m.begin(0, Budgets { read_lines: 2, write_lines: 100 }).unwrap();
        let _ = m.read(0, 0).unwrap();
        let _ = m.read(0, 8).unwrap();
        let err = m.read(0, 16).unwrap_err();
        assert_eq!(err, AbortReason::ReadOverflow);
    }

    #[test]
    fn same_line_accesses_do_not_grow_footprint() {
        let mut m = mem();
        m.begin(0, Budgets { read_lines: 1, write_lines: 1 }).unwrap();
        for i in 0..8 {
            let _ = m.read(0, i).unwrap();
            m.write(0, i, i as u64).unwrap();
        }
        assert_eq!(m.footprint(0), (1, 1));
        m.commit(0).unwrap();
    }

    #[test]
    fn doomed_transaction_errors_on_next_access() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 50, 1).unwrap();
        m.write(1, 50, 2).unwrap(); // dooms 0
        let err = m.read(0, 60).unwrap_err();
        assert!(err.is_conflict());
        // After consuming the abort, thread 0 operates plainly again.
        assert_eq!(m.read(0, 50).unwrap(), 2);
    }

    #[test]
    fn commit_of_doomed_transaction_fails() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 50, 1).unwrap();
        m.write(1, 50, 2).unwrap();
        assert!(m.commit(0).is_err());
        assert_eq!(m.stats().commits, 0);
    }

    #[test]
    fn undo_restores_multi_write_history_in_order() {
        let mut m = mem();
        m.write(0, 9, 10).unwrap();
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 9, 11).unwrap();
        m.write(0, 9, 12).unwrap();
        m.write(0, 9, 13).unwrap();
        m.tabort(0, 1);
        assert_eq!(*m.peek(9), 10);
    }

    #[test]
    fn grow_extends_memory() {
        let mut m = mem();
        let old = m.size();
        m.grow(512, 0);
        assert_eq!(m.size(), old + 512);
        m.write(0, old + 511, 5).unwrap();
        assert_eq!(m.read(0, old + 511).unwrap(), 5);
    }

    #[test]
    fn budgets_halve_with_floor() {
        let b = Budgets { read_lines: 9, write_lines: 1 };
        let h = b.halved();
        assert_eq!(h.read_lines, 4);
        assert_eq!(h.write_lines, 1);
    }

    #[test]
    fn eager_predictor_aborts_at_begin() {
        let mut m = mem();
        let mut p = OverflowPredictor::intel(10, 1);
        for _ in 0..100 {
            p.on_overflow();
        }
        m.set_predictor(0, p);
        // With confidence saturated the very first begin must be killed.
        let err = m.begin(0, big_budgets()).unwrap_err();
        assert_eq!(err, AbortReason::EagerPredicted);
        assert!(!m.in_tx(0));
        assert_eq!(m.stats().eager_predicted, 1);
    }

    #[test]
    fn trace_records_lifecycle_in_order() {
        use crate::trace::RingBufferSink;
        use std::sync::Arc;

        let mut m = mem();
        let shared = RingBufferSink::shared(64);
        m.set_trace_sink(Box::new(Arc::clone(&shared)));

        m.set_now(10);
        m.begin(0, big_budgets()).unwrap();
        m.set_now(20);
        m.write(0, 5, 1).unwrap();
        m.commit(0).unwrap();

        m.set_now(30);
        m.begin(1, big_budgets()).unwrap();
        m.write(1, 5, 2).unwrap();
        m.set_now(40);
        m.write(2, 5, 3).unwrap(); // non-tx write dooms thread 1

        let events = shared.lock().unwrap().drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], TraceEvent::Begin { thread: 0, cycle: 10 });
        assert_eq!(
            events[1],
            TraceEvent::Commit { thread: 0, cycle: 20, read_lines: 0, write_lines: 1 }
        );
        assert_eq!(events[2], TraceEvent::Begin { thread: 1, cycle: 30 });
        let TraceEvent::Abort { thread, cycle, reason, line } = events[3] else {
            panic!("expected abort, got {:?}", events[3]);
        };
        assert_eq!((thread, cycle), (1, 40));
        assert_eq!(reason, AbortReason::ConflictWrite { with: 2, line: 0 });
        assert_eq!(line, Some(0));
        assert_eq!(reason.faulting_line(), Some(0));
    }

    #[test]
    fn trace_overflow_carries_bursting_line() {
        use crate::trace::{RingBufferSink, TraceEvent};
        use std::sync::Arc;

        let mut m = mem();
        let shared = RingBufferSink::shared(8);
        m.set_trace_sink(Box::new(Arc::clone(&shared)));
        m.begin(0, Budgets { read_lines: 100, write_lines: 1 }).unwrap();
        m.write(0, 0, 1).unwrap();
        let err = m.write(0, 8, 2).unwrap_err(); // line 1 bursts the budget
        assert_eq!(err, AbortReason::WriteOverflow);
        let events = shared.lock().unwrap().drain();
        let Some(TraceEvent::Abort { reason, line, .. }) = events.last().copied() else {
            panic!("expected trailing abort event");
        };
        assert_eq!(reason, AbortReason::WriteOverflow);
        assert_eq!(line, Some(1));
    }

    #[test]
    fn tracing_disabled_by_default() {
        let m = mem();
        assert!(!m.tracing_enabled());
    }

    #[test]
    fn restricted_abort() {
        let mut m = mem();
        m.write(0, 3, 30).unwrap();
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 3, 31).unwrap();
        let r = m.abort_restricted(0);
        assert_eq!(r, AbortReason::Restricted);
        assert!(r.is_persistent());
        assert_eq!(*m.peek(3), 30);
    }

    #[test]
    fn pending_doom_survives_quiescent_memory() {
        // After thread 1's non-transactional write dooms thread 0 there are
        // zero active transactions, but thread 0's abort is still pending —
        // the fast path must not swallow it.
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 50, 1).unwrap();
        m.write(1, 50, 2).unwrap(); // dooms 0; no active transactions left
        assert_eq!(m.active_tx_count(), 0);
        let err = m.read(0, 60).unwrap_err();
        assert!(err.is_conflict());
        assert_eq!(m.stats().nontx_dooms, 1);
    }

    #[test]
    fn plain_accesses_take_fast_path_with_full_stats() {
        // With no transactions anywhere, reads and writes are plain stores
        // but the access counters still advance and no abort machinery
        // fires.
        let mut m = mem();
        for i in 0..10 {
            m.write(0, i, i as u64).unwrap();
        }
        for i in 0..10 {
            assert_eq!(m.read(1, i).unwrap(), i as u64);
        }
        let s = m.stats();
        assert_eq!((s.reads, s.writes), (10, 10));
        assert_eq!(s.begins, 0);
        assert_eq!(s.total_aborts(), 0);
        assert_eq!(s.nontx_dooms, 0);
    }

    #[test]
    fn commit_trace_counts_come_from_footprint_counters() {
        use crate::trace::RingBufferSink;
        use std::sync::Arc;

        // Read lines 0,1,2; write lines 1,4 (line 1 in both sets). The
        // Commit event must carry the line-list lengths, deduplicated.
        let mut m = mem();
        let shared = RingBufferSink::shared(8);
        m.set_trace_sink(Box::new(Arc::clone(&shared)));
        m.begin(0, big_budgets()).unwrap();
        let _ = m.read(0, 0).unwrap();
        let _ = m.read(0, 8).unwrap();
        let _ = m.read(0, 16).unwrap();
        m.write(0, 9, 1).unwrap(); // line 1, already read
        m.write(0, 33, 2).unwrap(); // line 4
        m.write(0, 10, 3).unwrap(); // line 1 again: no growth
        assert_eq!(m.footprint(0), (3, 2));
        m.commit(0).unwrap();
        let events = shared.lock().unwrap().drain();
        assert_eq!(
            events.last(),
            Some(&TraceEvent::Commit { thread: 0, cycle: 0, read_lines: 3, write_lines: 2 })
        );
    }

    #[test]
    fn doomed_victim_memo_is_invalidated() {
        // Thread 0 caches line 6 in its memo, gets doomed by thread 1, then
        // starts a fresh transaction: the stale memo must not let it skip
        // re-recording the line.
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        let _ = m.read(0, 48).unwrap();
        let _ = m.read(0, 49).unwrap(); // memo hit on line 6
        m.begin(1, big_budgets()).unwrap();
        m.write(1, 48, 9).unwrap(); // dooms 0
        assert!(m.poll_doomed(0).is_some());
        m.begin(0, big_budgets()).unwrap();
        let _ = m.read(0, 48).unwrap();
        assert_eq!(m.footprint(0), (1, 0), "line re-recorded after re-begin");
        // That read hit thread 1's speculative write of line 6, so
        // requester-wins must have doomed 1 in turn.
        assert!(matches!(m.poll_doomed(1), Some(AbortReason::ConflictWrite { with: 0, .. })));
    }

    #[test]
    fn buffers_are_retained_across_transactions() {
        // Steady-state transactions reuse their line-list and undo-log
        // capacity; this just exercises many begin/access/commit cycles to
        // shake out release bookkeeping (directory bits must all clear).
        let mut m = mem();
        for round in 0..50u64 {
            m.begin(0, big_budgets()).unwrap();
            for i in 0..32 {
                let _ = m.read(0, i * 8).unwrap();
                m.write(0, i * 8, round).unwrap();
            }
            assert_eq!(m.footprint(0), (32, 32));
            m.commit(0).unwrap();
        }
        assert_eq!(m.stats().commits, 50);
        // After the last commit another thread can write every line freely.
        for i in 0..32 {
            m.write(1, i * 8, 0).unwrap();
        }
        assert_eq!(m.stats().total_aborts(), 0);
    }

    #[test]
    #[should_panic(expected = "read out of bounds: addr 99999")]
    fn read_out_of_bounds_panics_with_context() {
        let mut m = mem();
        let _ = m.read(0, 99_999);
    }

    #[test]
    #[should_panic(expected = "write out of bounds: addr 4096 (line 512)")]
    fn write_out_of_bounds_panics_with_context() {
        let mut m = mem();
        let _ = m.write(0, 4096, 1);
    }

    #[test]
    fn read_with_probes_in_place_and_counts_once() {
        let mut m = mem();
        m.write(0, 7, 41).unwrap();
        let reads_before = m.stats().reads;
        let doubled = m.read_with(1, 7, |w| w * 2).unwrap();
        assert_eq!(doubled, 82);
        assert_eq!(m.stats().reads, reads_before + 1);
    }

    #[test]
    fn plain_lease_round_trip_matches_full_path_stats() {
        let mut m = mem();
        let rl = m.try_lease(0, 10, false);
        let wl = m.try_lease(0, 10, true);
        assert!(m.lease_valid(&rl) && m.lease_valid(&wl));
        assert_eq!((rl.start, rl.end), (8, 16), "line-aligned half-open range");
        m.lease_write(&wl, 10, 5);
        assert_eq!(m.lease_read(&rl, 10), 5);
        // Batched counters are invisible until flushed...
        assert_eq!((m.stats().reads, m.stats().writes), (0, 0));
        m.flush_lease_stats();
        // ...then exactly match what the per-word path would have counted.
        let s = m.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.lease_hits, 2);
        assert_eq!(s.lease_misses, 2, "each try_lease counts one miss");
    }

    #[test]
    fn plain_lease_denied_while_any_transaction_is_active() {
        let mut m = mem();
        m.begin(1, big_budgets()).unwrap();
        let rl = m.try_lease(0, 10, false);
        let wl = m.try_lease(0, 10, true);
        assert!(!m.lease_valid(&rl));
        assert!(!m.lease_valid(&wl));
        m.commit(1).unwrap();
        let rl = m.try_lease(0, 10, false);
        assert!(m.lease_valid(&rl));
    }

    #[test]
    fn in_tx_lease_requires_prior_same_mode_footprint() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        // Nothing touched yet: both modes denied.
        let rl = m.try_lease(0, 10, false);
        let wl = m.try_lease(0, 10, true);
        assert!(!m.lease_valid(&rl));
        assert!(!m.lease_valid(&wl));
        // A full-path read settles the read footprint only.
        let _ = m.read(0, 10).unwrap();
        let rl = m.try_lease(0, 10, false);
        let wl = m.try_lease(0, 10, true);
        assert!(m.lease_valid(&rl));
        assert!(!m.lease_valid(&wl), "read set does not cover writes");
        // A full-path write settles the write footprint.
        m.write(0, 10, 1).unwrap();
        let wl = m.try_lease(0, 10, true);
        assert!(m.lease_valid(&wl));
        m.commit(0).unwrap();
    }

    #[test]
    fn any_begin_invalidates_plain_leases() {
        let mut m = mem();
        let lease = m.try_lease(0, 10, false);
        assert!(m.lease_valid(&lease));
        m.begin(1, big_budgets()).unwrap();
        assert!(!m.lease_valid(&lease), "any begin bumps the plain slot");
        m.commit(1).unwrap();
        assert!(!m.lease_valid(&lease));
        assert!(m.stats().epoch_bumps >= 2);
    }

    #[test]
    fn remote_tx_boundaries_keep_in_tx_leases_valid() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        let _ = m.read(0, 10).unwrap();
        m.write(0, 10, 1).unwrap();
        let rl = m.try_lease(0, 10, false);
        let wl = m.try_lease(0, 10, true);
        assert!(m.lease_valid(&rl) && m.lease_valid(&wl));
        // A remote transaction beginning and committing on an unrelated
        // line cannot take ownership away from thread 0 without dooming
        // it first, so thread 0's leases survive both boundaries.
        m.begin(1, big_budgets()).unwrap();
        assert!(m.lease_valid(&rl) && m.lease_valid(&wl));
        m.write(1, 500, 9).unwrap();
        m.commit(1).unwrap();
        assert!(m.lease_valid(&rl) && m.lease_valid(&wl));
        // Thread 0's own commit kills them.
        m.commit(0).unwrap();
        assert!(!m.lease_valid(&rl) && !m.lease_valid(&wl));
    }

    #[test]
    fn doom_invalidates_only_the_victims_leases() {
        let mut m = mem();
        m.begin(0, big_budgets()).unwrap();
        let _ = m.read(0, 10).unwrap();
        let rl0 = m.try_lease(0, 10, false);
        m.begin(1, big_budgets()).unwrap();
        let _ = m.read(1, 500).unwrap();
        let rl1 = m.try_lease(1, 500, false);
        assert!(m.lease_valid(&rl0) && m.lease_valid(&rl1));
        // Thread 1 writes thread 0's line: requester wins, thread 0 is
        // doomed and its lease dies; thread 1's own lease survives.
        m.write(1, 10, 5).unwrap();
        assert!(!m.lease_valid(&rl0), "doomed victim's slot is bumped");
        assert!(m.lease_valid(&rl1), "the requester's leases survive");
        assert!(m.poll_doomed(0).is_some());
        m.commit(1).unwrap();
    }

    #[test]
    fn leased_writes_roll_back_like_full_path_writes() {
        let mut m = mem();
        for i in 8..16 {
            m.write(0, i, 100 + i as u64).unwrap();
        }
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 10, 1).unwrap(); // full path claims the line
        let wl = m.try_lease(0, 10, true);
        assert!(m.lease_valid(&wl));
        m.lease_write(&wl, 8, 7);
        m.lease_write(&wl, 15, 7);
        m.tabort(0, 1);
        for i in 8..16 {
            assert_eq!(*m.peek(i), 100 + i as u64, "word {i} restored after abort");
        }
    }

    #[test]
    fn repeated_leased_writes_log_one_undo_entry_and_restore_oldest() {
        let mut m = mem();
        m.poke(8, 70);
        m.poke(9, 71);
        m.begin(0, big_budgets()).unwrap();
        m.write(0, 8, 1).unwrap();
        let wl1 = m.try_lease(0, 8, true);
        assert!(m.lease_valid(&wl1));
        m.lease_write(&wl1, 9, 2);
        // A no-op fault-plan install bumps every slot, killing wl1
        // without disturbing thread 0's transaction.
        m.set_fault_plan(FaultPlan::spurious(7, 0.0));
        assert!(!m.lease_valid(&wl1));
        let wl2 = m.try_lease(0, 8, true); // still the writer: re-granted
        assert!(m.lease_valid(&wl2));
        // Consecutive same-address writes dedup to the first undo entry,
        // which holds the oldest (pre-transaction) value.
        m.lease_write(&wl2, 9, 3);
        m.lease_write(&wl2, 9, 4);
        m.tabort(0, 1);
        assert_eq!(*m.peek(8), 70);
        assert_eq!(*m.peek(9), 71, "oldest undo record wins on rollback");
    }

    #[test]
    fn fault_plan_denies_and_invalidates_leases() {
        let mut m = mem();
        let lease = m.try_lease(0, 10, false);
        assert!(m.lease_valid(&lease));
        m.set_fault_plan(FaultPlan::spurious(7, 1.0));
        assert!(!m.lease_valid(&lease), "plan install bumps the epoch");
        let denied = m.try_lease(0, 10, false);
        assert!(!m.lease_valid(&denied), "no leases under injection");
    }

    #[test]
    fn leased_stats_flush_automatically_at_epoch_bumps() {
        let mut m = mem();
        let rl = m.try_lease(0, 10, false);
        let _ = m.lease_read(&rl, 10);
        let _ = m.lease_read(&rl, 11);
        m.begin(1, big_budgets()).unwrap(); // bump flushes the batch
        assert_eq!(m.stats().reads, 2);
        assert_eq!(m.stats().lease_hits, 2);
        m.commit(1).unwrap();
    }

    #[test]
    fn out_of_bounds_lease_request_is_denied() {
        let mut m = mem();
        let lease = m.try_lease(0, 99_999, false);
        assert!(!m.lease_valid(&lease));
    }
}
