//! Model of Intel Haswell's undocumented "learning" abort behaviour.
//!
//! Paper §5.4 discovered (with a write-set-shrinking probe, Fig. 6a) that
//! the Xeon E3-1275 v3 "eagerly aborts a transaction that has suffered from
//! many footprint overflows and thus cannot quickly adapt to change in the
//! data set size": after the probe's write set dropped below capacity, the
//! success ratio recovered only gradually, over roughly 5 000 iterations.
//!
//! We model this as a per-hardware-thread confidence counter:
//!
//! * every genuine footprint overflow *raises* confidence (saturating);
//! * every transaction attempt *decays* confidence by one;
//! * an attempt is eagerly killed with probability `confidence / memory`.
//!
//! With `memory = 5000` this yields a linear ≈5 000-attempt recovery ramp
//! once overflows stop — exactly the Fig. 6a shape. The randomness is a
//! seeded xorshift generator, so runs remain deterministic.

/// Minimal deterministic PRNG (xorshift64*): the predictor only needs a
/// reproducible uniform `f64` stream, not a full RNG crate.
#[derive(Debug, Clone)]
struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Never allow the all-zero fixed point.
        XorShiftRng { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1), 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-hardware-thread overflow-history predictor.
#[derive(Debug, Clone)]
pub struct OverflowPredictor {
    enabled: bool,
    confidence: u32,
    /// Saturation level and decay horizon (attempts to forget).
    memory: u32,
    /// Confidence gained per observed overflow.
    gain: u32,
    rng: XorShiftRng,
}

impl OverflowPredictor {
    /// A predictor that never interferes (zEC12 and generic machines).
    pub fn disabled() -> Self {
        OverflowPredictor {
            enabled: false,
            confidence: 0,
            memory: 1,
            gain: 0,
            rng: XorShiftRng::seed_from_u64(0),
        }
    }

    /// An Intel-like predictor with the given memory horizon. `seed`
    /// decorrelates threads while keeping runs reproducible.
    pub fn intel(memory: u32, seed: u64) -> Self {
        OverflowPredictor {
            enabled: true,
            confidence: 0,
            memory: memory.max(1),
            gain: 8,
            rng: XorShiftRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// True when the predictor is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current confidence (for tests and introspection).
    pub fn confidence(&self) -> u32 {
        self.confidence
    }

    /// Called at every transaction begin. Returns `true` when the hardware
    /// kills the transaction eagerly based on overflow history. Confidence
    /// decays by one per attempt regardless of outcome.
    pub fn should_abort_eagerly(&mut self) -> bool {
        if !self.enabled || self.confidence == 0 {
            return false;
        }
        let p = f64::from(self.confidence) / f64::from(self.memory);
        self.confidence -= 1;
        self.rng.next_f64() < p
    }

    /// Called when a transaction genuinely overflows its footprint budget.
    pub fn on_overflow(&mut self) {
        if self.enabled {
            self.confidence = (self.confidence + self.gain).min(self.memory);
        }
    }

    /// Called on a successful commit. Trust is regained per *attempt*
    /// (see [`OverflowPredictor::should_abort_eagerly`]); with a memory of
    /// 5 000 that yields the ≈5 000-iteration linear recovery ramp of the
    /// paper's Fig. 6(a).
    pub fn on_commit(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_predictor_never_aborts() {
        let mut p = OverflowPredictor::disabled();
        for _ in 0..10_000 {
            p.on_overflow();
            assert!(!p.should_abort_eagerly());
        }
        assert_eq!(p.confidence(), 0);
    }

    #[test]
    fn confidence_saturates_and_decays() {
        let mut p = OverflowPredictor::intel(100, 42);
        for _ in 0..1_000 {
            p.on_overflow();
        }
        assert_eq!(p.confidence(), 100);
        // Attempts decay confidence one by one.
        for _ in 0..100 {
            let _ = p.should_abort_eagerly();
        }
        assert_eq!(p.confidence(), 0);
        assert!(!p.should_abort_eagerly());
    }

    #[test]
    fn recovery_is_gradual_not_instant() {
        // Mimic Fig. 6a: saturate with overflows, then stop overflowing and
        // measure the success ratio in windows. Early windows must fail
        // mostly; late windows must succeed mostly; the middle must be
        // genuinely intermediate — that gradual ramp is the whole point.
        let mut p = OverflowPredictor::intel(5_000, 7);
        for _ in 0..10_000 {
            p.on_overflow();
        }
        let window = |p: &mut OverflowPredictor, n: u32| -> f64 {
            let mut ok = 0;
            for _ in 0..n {
                if !p.should_abort_eagerly() {
                    ok += 1;
                    p.on_commit();
                }
            }
            f64::from(ok) / f64::from(n)
        };
        let early = window(&mut p, 500);
        let mid = window(&mut p, 500);
        let _skip = window(&mut p, 3_500);
        let late = window(&mut p, 500);
        assert!(early < 0.35, "early window too successful: {early}");
        assert!(late > 0.8, "late window should have recovered: {late}");
        assert!(mid > early && mid < late, "recovery must be gradual: {early} {mid} {late}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut p = OverflowPredictor::intel(1_000, 123);
            for _ in 0..2_000 {
                p.on_overflow();
            }
            (0..500).map(|_| p.should_abort_eagerly()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
