//! Abort reasons and their transient/persistent classification.
//!
//! On zEC12 the condition code after `TBEGIN`, and on Haswell the `EAX`
//! register after `XBEGIN`, report whether an abort is worth retrying
//! (paper §2.1). The TLE runtime's retry policy (paper Fig. 1) branches on
//! exactly this classification plus the "GIL was held" special case.

use machine_sim::ThreadId;

/// Software abort code passed to `TABORT`/`XABORT`.
pub type ExplicitCode = u32;

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Another thread's (possibly non-transactional) access collided with
    /// a line in this transaction's read set. `line` is the conflicting
    /// cache line (lets the analysis attribute conflicts to VM structures,
    /// as the paper does in §5.6).
    ConflictRead { with: ThreadId, line: usize },
    /// Another thread's access collided with a line in this transaction's
    /// write set.
    ConflictWrite { with: ThreadId, line: usize },
    /// Distinct read lines exceeded the read-set budget.
    ReadOverflow,
    /// Distinct written lines exceeded the write-set budget.
    WriteOverflow,
    /// Software abort (`TABORT`/`XABORT`) with a code. The TLE runtime uses
    /// [`abort_codes::GIL_LOCKED`] when it reads `GIL.acquired == true`
    /// inside a transaction.
    Explicit(ExplicitCode),
    /// The machine's learning predictor killed the transaction before it
    /// ran, based on overflow history (Intel behaviour, paper Fig. 6a).
    /// Reported like a capacity abort: retrying does not help.
    EagerPredicted,
    /// The operation attempted is not allowed in a transaction (system
    /// call, blocking I/O, GC). Always persistent.
    Restricted,
    /// Environment-induced abort the transaction did nothing to cause:
    /// timer interrupt, TLB miss handled in the kernel, or a page fault
    /// (paper §2.1, §5.6 — a large share of real zEC12/Haswell aborts).
    /// Transient: retrying the same transaction can succeed.
    Spurious { cause: SpuriousCause },
}

/// What the environment did to kill a transaction spuriously (paper §5.6
/// attributes these in its abort breakdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpuriousCause {
    /// OS scheduling-timer interrupt on the hardware thread.
    TimerInterrupt,
    /// TLB miss serviced by the kernel (zEC12's millicode path).
    Tlb,
    /// Page fault — the transaction cannot survive the trap.
    PageFault,
}

impl SpuriousCause {
    pub fn label(self) -> &'static str {
        match self {
            SpuriousCause::TimerInterrupt => "timer-interrupt",
            SpuriousCause::Tlb => "tlb",
            SpuriousCause::PageFault => "page-fault",
        }
    }
}

/// Well-known `TABORT` codes used by the TLE runtime.
pub mod abort_codes {
    use super::ExplicitCode;

    /// Aborted because the GIL was observed held inside the transaction
    /// (paper Fig. 1 line 15).
    pub const GIL_LOCKED: ExplicitCode = 0xff;
}

impl AbortReason {
    /// Number of statistic kinds (one per variant).
    pub const NUM_KINDS: usize = 8;

    /// Canonical per-kind labels in canonical order. Statistics tables,
    /// per-site abort breakdowns and report JSON all index their arrays by
    /// [`AbortReason::kind_index`], so a new variant only needs this table
    /// and `kind_index` extended — everything downstream follows.
    pub const ALL_LABELS: [&'static str; Self::NUM_KINDS] = [
        "conflict-read",
        "conflict-write",
        "overflow-read",
        "overflow-write",
        "explicit",
        "eager-predicted",
        "restricted",
        "spurious",
    ];

    /// Index of this reason's kind in [`AbortReason::ALL_LABELS`]. The
    /// match is exhaustive on purpose: adding a variant without deciding
    /// its statistics slot must not compile.
    pub fn kind_index(self) -> usize {
        match self {
            AbortReason::ConflictRead { .. } => 0,
            AbortReason::ConflictWrite { .. } => 1,
            AbortReason::ReadOverflow => 2,
            AbortReason::WriteOverflow => 3,
            AbortReason::Explicit(_) => 4,
            AbortReason::EagerPredicted => 5,
            AbortReason::Restricted => 6,
            AbortReason::Spurious { .. } => 7,
        }
    }

    /// True when retrying the same transaction cannot succeed and the
    /// thread should fall back to the GIL immediately (paper Fig. 1 lines
    /// 28-29): capacity overflows, restricted operations and predictor
    /// kills. Conflicts and software aborts are transient.
    pub fn is_persistent(self) -> bool {
        matches!(
            self,
            AbortReason::ReadOverflow
                | AbortReason::WriteOverflow
                | AbortReason::EagerPredicted
                | AbortReason::Restricted
        )
    }

    /// True for either conflict variant.
    pub fn is_conflict(self) -> bool {
        matches!(self, AbortReason::ConflictRead { .. } | AbortReason::ConflictWrite { .. })
    }

    /// True for either capacity-overflow variant (excluding predictor
    /// kills, which are reported separately in statistics).
    pub fn is_overflow(self) -> bool {
        matches!(self, AbortReason::ReadOverflow | AbortReason::WriteOverflow)
    }

    /// Cache line the abort itself identifies (conflicts carry the
    /// colliding line). Overflow aborts know their line only at the access
    /// site, so the trace layer supplies it out of band.
    pub fn faulting_line(self) -> Option<usize> {
        match self {
            AbortReason::ConflictRead { line, .. } | AbortReason::ConflictWrite { line, .. } => {
                Some(line)
            }
            _ => None,
        }
    }

    /// Short label used in statistics tables.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::ConflictRead { .. } => "conflict-read",
            AbortReason::ConflictWrite { .. } => "conflict-write",
            AbortReason::ReadOverflow => "overflow-read",
            AbortReason::WriteOverflow => "overflow-write",
            AbortReason::Explicit(_) => "explicit",
            AbortReason::EagerPredicted => "eager-predicted",
            AbortReason::Restricted => "restricted",
            AbortReason::Spurious { .. } => "spurious",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_classification_matches_paper() {
        // Overflows and restricted ops force the GIL fallback…
        assert!(AbortReason::ReadOverflow.is_persistent());
        assert!(AbortReason::WriteOverflow.is_persistent());
        assert!(AbortReason::Restricted.is_persistent());
        assert!(AbortReason::EagerPredicted.is_persistent());
        // …while conflicts, TABORTs and environment-induced aborts are
        // retried (a timer tick or TLB miss says nothing about the next
        // attempt).
        assert!(!AbortReason::ConflictRead { with: 1, line: 0 }.is_persistent());
        assert!(!AbortReason::ConflictWrite { with: 1, line: 0 }.is_persistent());
        assert!(!AbortReason::Explicit(abort_codes::GIL_LOCKED).is_persistent());
        assert!(!AbortReason::Spurious { cause: SpuriousCause::TimerInterrupt }.is_persistent());
        assert!(!AbortReason::Spurious { cause: SpuriousCause::PageFault }.is_persistent());
    }

    #[test]
    fn conflict_and_overflow_predicates() {
        assert!(AbortReason::ConflictRead { with: 0, line: 0 }.is_conflict());
        assert!(!AbortReason::ReadOverflow.is_conflict());
        assert!(AbortReason::WriteOverflow.is_overflow());
        assert!(!AbortReason::EagerPredicted.is_overflow());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = AbortReason::ALL_LABELS;
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn kind_index_agrees_with_canonical_labels() {
        let reasons = [
            AbortReason::ConflictRead { with: 0, line: 0 },
            AbortReason::ConflictWrite { with: 0, line: 0 },
            AbortReason::ReadOverflow,
            AbortReason::WriteOverflow,
            AbortReason::Explicit(1),
            AbortReason::EagerPredicted,
            AbortReason::Restricted,
            AbortReason::Spurious { cause: SpuriousCause::Tlb },
        ];
        assert_eq!(reasons.len(), AbortReason::NUM_KINDS);
        for r in reasons {
            assert_eq!(AbortReason::ALL_LABELS[r.kind_index()], r.label());
        }
    }
}
