//! Abort reasons and their transient/persistent classification.
//!
//! On zEC12 the condition code after `TBEGIN`, and on Haswell the `EAX`
//! register after `XBEGIN`, report whether an abort is worth retrying
//! (paper §2.1). The TLE runtime's retry policy (paper Fig. 1) branches on
//! exactly this classification plus the "GIL was held" special case.

use machine_sim::ThreadId;

/// Software abort code passed to `TABORT`/`XABORT`.
pub type ExplicitCode = u32;

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Another thread's (possibly non-transactional) access collided with
    /// a line in this transaction's read set. `line` is the conflicting
    /// cache line (lets the analysis attribute conflicts to VM structures,
    /// as the paper does in §5.6).
    ConflictRead { with: ThreadId, line: usize },
    /// Another thread's access collided with a line in this transaction's
    /// write set.
    ConflictWrite { with: ThreadId, line: usize },
    /// Distinct read lines exceeded the read-set budget.
    ReadOverflow,
    /// Distinct written lines exceeded the write-set budget.
    WriteOverflow,
    /// Software abort (`TABORT`/`XABORT`) with a code. The TLE runtime uses
    /// [`abort_codes::GIL_LOCKED`] when it reads `GIL.acquired == true`
    /// inside a transaction.
    Explicit(ExplicitCode),
    /// The machine's learning predictor killed the transaction before it
    /// ran, based on overflow history (Intel behaviour, paper Fig. 6a).
    /// Reported like a capacity abort: retrying does not help.
    EagerPredicted,
    /// The operation attempted is not allowed in a transaction (system
    /// call, blocking I/O, GC). Always persistent.
    Restricted,
}

/// Well-known `TABORT` codes used by the TLE runtime.
pub mod abort_codes {
    use super::ExplicitCode;

    /// Aborted because the GIL was observed held inside the transaction
    /// (paper Fig. 1 line 15).
    pub const GIL_LOCKED: ExplicitCode = 0xff;
}

impl AbortReason {
    /// True when retrying the same transaction cannot succeed and the
    /// thread should fall back to the GIL immediately (paper Fig. 1 lines
    /// 28-29): capacity overflows, restricted operations and predictor
    /// kills. Conflicts and software aborts are transient.
    pub fn is_persistent(self) -> bool {
        matches!(
            self,
            AbortReason::ReadOverflow
                | AbortReason::WriteOverflow
                | AbortReason::EagerPredicted
                | AbortReason::Restricted
        )
    }

    /// True for either conflict variant.
    pub fn is_conflict(self) -> bool {
        matches!(self, AbortReason::ConflictRead { .. } | AbortReason::ConflictWrite { .. })
    }

    /// True for either capacity-overflow variant (excluding predictor
    /// kills, which are reported separately in statistics).
    pub fn is_overflow(self) -> bool {
        matches!(self, AbortReason::ReadOverflow | AbortReason::WriteOverflow)
    }

    /// Cache line the abort itself identifies (conflicts carry the
    /// colliding line). Overflow aborts know their line only at the access
    /// site, so the trace layer supplies it out of band.
    pub fn faulting_line(self) -> Option<usize> {
        match self {
            AbortReason::ConflictRead { line, .. } | AbortReason::ConflictWrite { line, .. } => {
                Some(line)
            }
            _ => None,
        }
    }

    /// Short label used in statistics tables.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::ConflictRead { .. } => "conflict-read",
            AbortReason::ConflictWrite { .. } => "conflict-write",
            AbortReason::ReadOverflow => "overflow-read",
            AbortReason::WriteOverflow => "overflow-write",
            AbortReason::Explicit(_) => "explicit",
            AbortReason::EagerPredicted => "eager-predicted",
            AbortReason::Restricted => "restricted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_classification_matches_paper() {
        // Overflows and restricted ops force the GIL fallback…
        assert!(AbortReason::ReadOverflow.is_persistent());
        assert!(AbortReason::WriteOverflow.is_persistent());
        assert!(AbortReason::Restricted.is_persistent());
        assert!(AbortReason::EagerPredicted.is_persistent());
        // …while conflicts and TABORTs are retried.
        assert!(!AbortReason::ConflictRead { with: 1, line: 0 }.is_persistent());
        assert!(!AbortReason::ConflictWrite { with: 1, line: 0 }.is_persistent());
        assert!(!AbortReason::Explicit(abort_codes::GIL_LOCKED).is_persistent());
    }

    #[test]
    fn conflict_and_overflow_predicates() {
        assert!(AbortReason::ConflictRead { with: 0, line: 0 }.is_conflict());
        assert!(!AbortReason::ReadOverflow.is_conflict());
        assert!(AbortReason::WriteOverflow.is_overflow());
        assert!(!AbortReason::EagerPredicted.is_overflow());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            AbortReason::ConflictRead { with: 0, line: 0 }.label(),
            AbortReason::ConflictWrite { with: 0, line: 0 }.label(),
            AbortReason::ReadOverflow.label(),
            AbortReason::WriteOverflow.label(),
            AbortReason::Explicit(1).label(),
            AbortReason::EagerPredicted.label(),
            AbortReason::Restricted.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
