//! Epoch-validated **line leases**: amortized access rights to one cache
//! line.
//!
//! Every call to [`crate::TxMemory::read`]/[`crate::TxMemory::write`] pays
//! the same fixed bookkeeping — doom check, fault-injection poll,
//! requester-wins conflict resolution, directory update, footprint/budget
//! accounting — even though the directory already tracks ownership at
//! cache-line granularity. A [`LineLease`] is a token proving that this
//! bookkeeping has been settled for one `(thread, line, mode)` triple and
//! cannot change until some invalidating event occurs. While the token is
//! current, words on the line are accessed through a direct slice path
//! ([`crate::TxMemory::lease_read`] / [`crate::TxMemory::lease_write`])
//! that skips all of it, batching the stats deltas locally.
//!
//! Validity is a single comparison: the token is stamped with an **epoch
//! slot** counter at grant time — the owning thread's slot for a lease
//! granted inside a transaction, a shared *plain* slot for one granted
//! outside any transaction — and the memory bumps exactly the slots whose
//! leases an event can invalidate. A transaction boundary on thread `t`
//! bumps `t`'s slot (its own leases die with its transaction) and, for
//! `begin`, the plain slot (plain leases assume no transaction is active
//! anywhere); a doom bumps the victim's slot; fault-plan installation and
//! memory growth bump every slot. Remote begins/commits do *not* touch
//! another thread's in-transaction leases: their soundness rests on the
//! per-line directory ownership the remote transaction cannot take away
//! without dooming the owner first. Checking validity costs one indexed
//! load; no per-line generation table is needed. The soundness argument
//! is in `DESIGN.md` §13.

use machine_sim::ThreadId;

/// Access token for one cache line, granted by
/// [`crate::TxMemory::try_lease`] and validated against the memory's epoch
/// slots on every use ([`crate::TxMemory::lease_valid`]).
///
/// A lease is *mode-specific*: a read lease only covers reads and a write
/// lease only covers writes, because the two modes charge different
/// footprint sets on the full path and the leased path must account
/// identically. Holders keep one of each per hot line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineLease {
    /// Epoch stamp; the lease is valid while this equals the memory's
    /// current value for `slot`. 0 never matches (slots start at 1).
    pub epoch: u64,
    /// Epoch slot the stamp compares against: the owner's thread index
    /// for an in-transaction lease, the memory's plain slot otherwise.
    pub slot: usize,
    /// First word address on the leased line.
    pub start: usize,
    /// One past the last covered word (the line may be cut short by the
    /// end of memory).
    pub end: usize,
    /// Write lease (covers `lease_write`) vs read lease (`lease_read`).
    pub write: bool,
    /// Thread the lease was granted to.
    pub owner: ThreadId,
}

impl LineLease {
    /// The never-valid lease: epoch 0 predates every memory.
    pub const INVALID: LineLease =
        LineLease { epoch: 0, slot: 0, start: 0, end: 0, write: false, owner: 0 };

    /// True when `addr` lies on the leased line.
    #[inline]
    pub fn covers(&self, addr: usize) -> bool {
        self.start <= addr && addr < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_lease_covers_nothing() {
        assert!(!LineLease::INVALID.covers(0));
        assert_eq!(LineLease::INVALID.epoch, 0);
    }

    #[test]
    fn covers_is_half_open() {
        let l = LineLease { epoch: 3, slot: 1, start: 8, end: 16, write: false, owner: 1 };
        assert!(!l.covers(7));
        assert!(l.covers(8));
        assert!(l.covers(15));
        assert!(!l.covers(16));
    }
}
