//! Deterministic fault injection for best-effort HTM.
//!
//! Real HTM aborts for reasons the workload never caused: timer
//! interrupts, TLB misses serviced by the kernel, page faults (paper
//! §2.1; §5.6 attributes a large share of zEC12/Haswell aborts to them).
//! The simulator's transactions otherwise only abort for *earned* reasons
//! — conflicts, capacity, restricted ops — so the GIL-fallback machinery
//! in the TLE runtime is never exercised by environmental noise.
//!
//! A [`FaultInjector`] closes that gap: seeded, deterministic, and hooked
//! into **both** `TxMemory` and `ReferenceTxMemory` at the same points
//! (every transactional data access), so the differential property test
//! remains valid with injection enabled. Per access it can:
//!
//! * inject [`AbortReason::Spurious`] with a timer-interrupt / TLB /
//!   page-fault cause (transient — retry may succeed);
//! * shrink the transaction's remaining read/write budgets mid-flight
//!   (modelling capacity lost to the interrupt handler's cache footprint),
//!   which converts into an overflow abort if the footprint already
//!   exceeds the shrunken budget;
//! * force a [`AbortReason::Restricted`] abort, as if the access turned
//!   out to require a restricted operation.
//!
//! Determinism contract: exactly **one** PRNG draw per `decide()` call,
//! and the two memory implementations call `decide()` at identical
//! points, so their injection streams stay in lockstep.

use crate::abort::SpuriousCause;

/// What the injector decided to do to the current access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Abort the transaction with `Spurious { cause }`.
    Spurious(SpuriousCause),
    /// Halve the transaction's remaining read/write budgets (floor 1).
    ShrinkBudgets,
    /// Abort the transaction as `Restricted`.
    ForceRestricted,
}

/// A seeded injection plan: per-access probabilities for each fault class.
/// Rates are probabilities in `[0, 1]`; a plan with all rates zero injects
/// nothing (and is the default everywhere — figure pipelines stay
/// byte-deterministic unless a caller opts in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability a transactional access dies spuriously.
    pub spurious_rate: f64,
    /// Probability the access halves the remaining budgets.
    pub shrink_rate: f64,
    /// Probability the access is treated as a restricted operation.
    pub restricted_rate: f64,
}

impl FaultPlan {
    /// Plan injecting nothing.
    pub fn none() -> FaultPlan {
        FaultPlan { seed: 0, spurious_rate: 0.0, shrink_rate: 0.0, restricted_rate: 0.0 }
    }

    /// Pure spurious-abort plan — the knob the chaos sweep turns.
    pub fn spurious(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan { seed, spurious_rate: rate, shrink_rate: 0.0, restricted_rate: 0.0 }
    }

    /// True when no fault can ever fire (lets the memories skip the hook).
    pub fn is_noop(&self) -> bool {
        self.spurious_rate <= 0.0 && self.shrink_rate <= 0.0 && self.restricted_rate <= 0.0
    }
}

/// xorshift64* (same generator as the overflow predictor's): tiny, fast,
/// and fully determined by the seed.
#[derive(Debug, Clone)]
struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Never allow the all-zero fixed point.
        XorShiftRng { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Seeded fault source. One instance per memory; both memories in a
/// differential pair must be given injectors built from the same plan.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: XorShiftRng,
    injected: u64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, rng: XorShiftRng::seed_from_u64(plan.seed), injected: 0 }
    }

    /// Total faults decided so far (all classes).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decide the fate of one transactional access. Exactly one PRNG draw
    /// per call — the spurious cause is carved out of the same draw's low
    /// bits so both memories consume identical randomness.
    pub fn decide(&mut self) -> Option<Fault> {
        let draw = self.rng.next_u64();
        let u = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let s = self.plan.spurious_rate;
        let k = s + self.plan.shrink_rate;
        let r = k + self.plan.restricted_rate;
        let fault = if u < s {
            Some(Fault::Spurious(match draw % 3 {
                0 => SpuriousCause::TimerInterrupt,
                1 => SpuriousCause::Tlb,
                _ => SpuriousCause::PageFault,
            }))
        } else if u < k {
            Some(Fault::ShrinkBudgets)
        } else if u < r {
            Some(Fault::ForceRestricted)
        } else {
            None
        };
        if fault.is_some() {
            self.injected += 1;
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..10_000 {
            assert_eq!(inj.decide(), None);
        }
        assert_eq!(inj.injected(), 0);
        assert!(FaultPlan::none().is_noop());
    }

    #[test]
    fn full_rate_plan_always_fires_spurious() {
        let mut inj = FaultInjector::new(FaultPlan::spurious(42, 1.0));
        let mut causes = [0u32; 3];
        for _ in 0..3_000 {
            match inj.decide() {
                Some(Fault::Spurious(SpuriousCause::TimerInterrupt)) => causes[0] += 1,
                Some(Fault::Spurious(SpuriousCause::Tlb)) => causes[1] += 1,
                Some(Fault::Spurious(SpuriousCause::PageFault)) => causes[2] += 1,
                other => panic!("unexpected decision {other:?}"),
            }
        }
        assert_eq!(inj.injected(), 3_000);
        // All three causes occur.
        assert!(causes.iter().all(|&c| c > 0), "causes {causes:?}");
    }

    #[test]
    fn same_seed_same_stream() {
        let plan =
            FaultPlan { seed: 7, spurious_rate: 0.2, shrink_rate: 0.1, restricted_rate: 0.05 };
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for _ in 0..5_000 {
            assert_eq!(a.decide(), b.decide());
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0);
    }

    #[test]
    fn rates_partition_roughly() {
        let plan =
            FaultPlan { seed: 99, spurious_rate: 0.25, shrink_rate: 0.25, restricted_rate: 0.25 };
        let mut inj = FaultInjector::new(plan);
        let (mut sp, mut sh, mut rs, mut none) = (0u32, 0u32, 0u32, 0u32);
        let n = 20_000;
        for _ in 0..n {
            match inj.decide() {
                Some(Fault::Spurious(_)) => sp += 1,
                Some(Fault::ShrinkBudgets) => sh += 1,
                Some(Fault::ForceRestricted) => rs += 1,
                None => none += 1,
            }
        }
        for (label, c) in [("spurious", sp), ("shrink", sh), ("restricted", rs), ("none", none)] {
            let share = f64::from(c) / f64::from(n);
            assert!((share - 0.25).abs() < 0.03, "{label} share {share}");
        }
    }
}
