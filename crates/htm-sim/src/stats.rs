//! Aggregate HTM event counters.
//!
//! The TLE runtime keeps its own per-yield-point statistics (those drive
//! the dynamic length adjustment); this struct counts raw hardware events
//! for the abort-ratio and abort-reason breakdowns of the paper's Figures 7
//! and 8 and §5.6.

use crate::abort::AbortReason;

/// Counters of simulated HTM events for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HtmStats {
    /// Word reads through [`crate::TxMemory::read`], transactional and
    /// plain alike (the denominator of the self-benchmark's words/sec).
    pub reads: u64,
    /// Word writes through [`crate::TxMemory::write`], transactional and
    /// plain alike.
    pub writes: u64,
    /// Transactions started (`TBEGIN` that returned 0).
    pub begins: u64,
    /// Transactions committed (`TEND` succeeded).
    pub commits: u64,
    /// Aborts by cause.
    pub conflicts_read: u64,
    pub conflicts_write: u64,
    pub overflow_read: u64,
    pub overflow_write: u64,
    pub explicit: u64,
    pub eager_predicted: u64,
    pub restricted: u64,
    /// Environment-induced aborts (timer interrupt, TLB, page fault)
    /// produced by the fault injector.
    pub spurious: u64,
    /// Non-transactional accesses that doomed at least one transaction
    /// (e.g. GIL-holder writes).
    pub nontx_dooms: u64,
    /// Word accesses served through a still-valid line lease (the batched
    /// direct path). Folded in at flush time, so `reads`/`writes` above
    /// remain the full per-word access counts either way.
    pub lease_hits: u64,
    /// [`crate::TxMemory::try_lease`] calls — each one follows a
    /// full-path access that a valid lease would have absorbed, whether or
    /// not the lease was granted.
    pub lease_misses: u64,
    /// Global lease-epoch bumps (tx begin/commit/abort, dooms, fault-plan
    /// installs, growth); each invalidates every outstanding lease.
    pub epoch_bumps: u64,
}

impl HtmStats {
    /// Record one abort of the given reason.
    pub fn record_abort(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::ConflictRead { .. } => self.conflicts_read += 1,
            AbortReason::ConflictWrite { .. } => self.conflicts_write += 1,
            AbortReason::ReadOverflow => self.overflow_read += 1,
            AbortReason::WriteOverflow => self.overflow_write += 1,
            AbortReason::Explicit(_) => self.explicit += 1,
            AbortReason::EagerPredicted => self.eager_predicted += 1,
            AbortReason::Restricted => self.restricted += 1,
            AbortReason::Spurious { .. } => self.spurious += 1,
        }
    }

    /// Per-kind abort counts in the canonical [`AbortReason::ALL_LABELS`]
    /// order; tables and report JSON iterate this instead of naming the
    /// fields so a new variant cannot desync them.
    pub fn abort_breakdown(&self) -> [(&'static str, u64); AbortReason::NUM_KINDS] {
        let counts = [
            self.conflicts_read,
            self.conflicts_write,
            self.overflow_read,
            self.overflow_write,
            self.explicit,
            self.eager_predicted,
            self.restricted,
            self.spurious,
        ];
        let mut out = [("", 0u64); AbortReason::NUM_KINDS];
        for (i, (&label, &count)) in AbortReason::ALL_LABELS.iter().zip(counts.iter()).enumerate() {
            out[i] = (label, count);
        }
        out
    }

    /// Total aborts of every cause.
    pub fn total_aborts(&self) -> u64 {
        self.abort_breakdown().iter().map(|&(_, c)| c).sum()
    }

    /// Abort ratio in percent: aborts / begins (the paper's Fig. 7/8
    /// metric). Zero when nothing began.
    pub fn abort_ratio_pct(&self) -> f64 {
        if self.begins == 0 {
            0.0
        } else {
            100.0 * self.total_aborts() as f64 / self.begins as f64
        }
    }

    /// Share of aborts that were read-set conflicts, in percent (paper
    /// §5.6: ">80 % for all of the Ruby NPB with 12 threads").
    pub fn read_conflict_share_pct(&self) -> f64 {
        let total = self.total_aborts();
        if total == 0 {
            0.0
        } else {
            100.0 * self.conflicts_read as f64 / total as f64
        }
    }

    /// Total word accesses (reads + writes) through the simulated memory.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &HtmStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.begins += other.begins;
        self.commits += other.commits;
        self.conflicts_read += other.conflicts_read;
        self.conflicts_write += other.conflicts_write;
        self.overflow_read += other.overflow_read;
        self.overflow_write += other.overflow_write;
        self.explicit += other.explicit;
        self.eager_predicted += other.eager_predicted;
        self.restricted += other.restricted;
        self.spurious += other.spurious;
        self.nontx_dooms += other.nontx_dooms;
        self.lease_hits += other.lease_hits;
        self.lease_misses += other.lease_misses;
        self.epoch_bumps += other.epoch_bumps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_ratio_math() {
        let mut s = HtmStats { begins: 200, ..HtmStats::default() };
        s.record_abort(AbortReason::ConflictRead { with: 1, line: 0 });
        s.record_abort(AbortReason::WriteOverflow);
        assert_eq!(s.total_aborts(), 2);
        assert!((s.abort_ratio_pct() - 1.0).abs() < 1e-9);
        assert!((s.read_conflict_share_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = HtmStats::default();
        assert_eq!(s.abort_ratio_pct(), 0.0);
        assert_eq!(s.read_conflict_share_pct(), 0.0);
    }

    #[test]
    fn breakdown_covers_every_kind_in_canonical_order() {
        let mut s = HtmStats::default();
        s.record_abort(AbortReason::Spurious { cause: crate::abort::SpuriousCause::Tlb });
        s.record_abort(AbortReason::ConflictWrite { with: 2, line: 9 });
        let bd = s.abort_breakdown();
        assert_eq!(bd.len(), AbortReason::NUM_KINDS);
        for (i, &(label, _)) in bd.iter().enumerate() {
            assert_eq!(label, AbortReason::ALL_LABELS[i]);
        }
        assert_eq!(bd.iter().find(|&&(l, _)| l == "spurious").unwrap().1, 1);
        assert_eq!(s.total_aborts(), 2);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = HtmStats { begins: 5, commits: 3, reads: 10, ..HtmStats::default() };
        a.record_abort(AbortReason::Restricted);
        let mut b = HtmStats {
            begins: 7,
            nontx_dooms: 2,
            reads: 4,
            writes: 6,
            lease_hits: 3,
            lease_misses: 5,
            epoch_bumps: 9,
            ..HtmStats::default()
        };
        b.record_abort(AbortReason::EagerPredicted);
        a.merge(&b);
        assert_eq!(a.begins, 12);
        assert_eq!(a.commits, 3);
        assert_eq!(a.total_aborts(), 2);
        assert_eq!(a.nontx_dooms, 2);
        assert_eq!(a.reads, 14);
        assert_eq!(a.writes, 6);
        assert_eq!(a.total_accesses(), 20);
        assert_eq!((a.lease_hits, a.lease_misses, a.epoch_bumps), (3, 5, 9));
    }
}
