//! Structured transaction-event tracing.
//!
//! When a sink is installed ([`crate::TxMemory::set_trace_sink`]) the
//! simulator emits one [`TraceEvent`] per transaction begin, commit, and
//! abort, stamped with the owning thread and the current simulated cycle
//! ([`crate::TxMemory::set_now`] — the executor advances it as it charges
//! cycle costs). Abort events carry the structured [`AbortReason`] plus
//! the faulting cache line where one exists (conflicts and footprint
//! overflows), which is what the attribution layer upstairs maps back to
//! VM data structures.
//!
//! Tracing is **off by default** and costs one `Option` discriminant test
//! per event site when disabled; no event is constructed unless a sink is
//! present.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use machine_sim::ThreadId;

use crate::abort::AbortReason;

/// One transaction life-cycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `TBEGIN`/`XBEGIN` succeeded and a transaction is now active.
    Begin { thread: ThreadId, cycle: u64 },
    /// `TEND`/`XEND` succeeded; footprint at commit time in cache lines.
    Commit { thread: ThreadId, cycle: u64, read_lines: usize, write_lines: usize },
    /// The transaction died — at begin (eager prediction), at an access
    /// (conflict, overflow), or by explicit software abort. `line` is the
    /// faulting cache line when the abort has one (conflicts, overflows).
    Abort { thread: ThreadId, cycle: u64, reason: AbortReason, line: Option<usize> },
}

impl TraceEvent {
    /// Thread the event belongs to.
    pub fn thread(&self) -> ThreadId {
        match *self {
            TraceEvent::Begin { thread, .. }
            | TraceEvent::Commit { thread, .. }
            | TraceEvent::Abort { thread, .. } => thread,
        }
    }

    /// Simulated cycle the event was stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Begin { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Abort { cycle, .. } => cycle,
        }
    }
}

/// Receiver for trace events.
///
/// `Debug` is required so a sink can live inside the (Debug-derived)
/// simulator; `Send` so traced memories stay transferable across threads.
pub trait TraceSink: std::fmt::Debug + Send {
    fn record(&mut self, event: TraceEvent);
}

/// A sink shared between the simulator and the code that reads the trace:
/// the executor installs a clone and the caller drains the original.
impl<T: TraceSink> TraceSink for Arc<Mutex<T>> {
    fn record(&mut self, event: TraceEvent) {
        self.lock().expect("trace sink poisoned").record(event);
    }
}

/// Bounded in-memory sink: keeps the most recent `capacity` events and
/// counts how many older ones were evicted.
#[derive(Debug, Default)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            dropped: 0,
        }
    }

    /// Convenience: a ring buffer pre-wrapped for sharing with the
    /// simulator. Install one clone, keep the other to inspect.
    pub fn shared(capacity: usize) -> Arc<Mutex<RingBufferSink>> {
        Arc::new(Mutex::new(RingBufferSink::new(capacity)))
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Remove and return all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(thread: ThreadId, cycle: u64) -> TraceEvent {
        TraceEvent::Begin { thread, cycle }
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_drops() {
        let mut sink = RingBufferSink::new(3);
        for c in 0..5 {
            sink.record(begin(0, c));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let cycles: Vec<u64> = sink.events().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn shared_sink_records_through_the_clone() {
        let shared = RingBufferSink::shared(8);
        let mut handle = Arc::clone(&shared);
        handle.record(begin(1, 7));
        let inner = shared.lock().unwrap();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner.events().next().unwrap().thread(), 1);
    }

    #[test]
    fn drain_empties_the_buffer() {
        let mut sink = RingBufferSink::new(4);
        sink.record(begin(0, 1));
        sink.record(begin(0, 2));
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }
}
