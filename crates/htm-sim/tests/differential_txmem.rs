//! Differential property test: the ownership-directory [`TxMemory`] must
//! be observationally identical to the retained set-based
//! [`ReferenceTxMemory`].
//!
//! Both implementations are driven with the same randomized operation
//! sequence — begins (with randomized budgets), reads, writes, commits,
//! explicit and restricted aborts, polls, and simulated-cycle advances —
//! over randomized geometries (line size, thread count). After *every*
//! operation the test requires:
//!
//! * identical `Result` values, including the exact [`AbortReason`];
//! * identical footprints, `in_tx` flags, and active-transaction counts;
//! * identical aggregate statistics ([`htm_sim::HtmStats`] is `PartialEq`);
//!
//! and at the end of the sequence:
//!
//! * identical trace-event streams (same events, same order, same victim
//!   ordering on multi-victim dooms);
//! * byte-identical final memory images.
//!
//! This is the equivalence proof the rewrite leans on: any divergence in
//! conflict attribution, victim choice, overflow ordering, statistics, or
//! rollback behaviour shows up here as a minimal counterexample.

use htm_sim::{Budgets, FaultPlan, LineLease, ReferenceTxMemory, RingBufferSink, TxMemory};
use proptest::prelude::*;

const MEM_WORDS: usize = 256;

#[derive(Debug, Clone)]
enum Op {
    /// Begin with (read_budget, write_budget); tiny budgets exercise the
    /// overflow paths, huge ones the conflict paths.
    Begin(usize, usize, usize),
    Read(usize, usize),
    Write(usize, usize, u64),
    Commit(usize),
    Tabort(usize),
    Restricted(usize),
    Poll(usize),
    Tick(u64),
    /// `arm_lock_monitor(t, addr)` — the LazyGuarded begin-time guard:
    /// read accounting without read-set growth.
    Arm(usize, usize),
    /// `doom_all_active(t, addr)` — the LazyGuarded acquisition-time
    /// guard: every other active transaction dies.
    DoomAll(usize, usize),
}

/// Operations for the lease differential test: the base interleaving plus
/// lease acquisition, accesses through a held lease (direct path on the
/// directory impl, degenerate per-word fallback on the reference), and the
/// epoch-invalidating events — spurious interrupt kills and fault-plan
/// toggles — the lease protocol must survive.
#[derive(Debug, Clone)]
enum LOp {
    Begin(usize, usize, usize),
    Read(usize, usize),
    Write(usize, usize, u64),
    Commit(usize),
    Tabort(usize),
    Poll(usize),
    /// `try_lease(t, addr, write)` on both sides; the pair is held in the
    /// thread's lease slot (replacing any previous one).
    Acquire(usize, usize, bool),
    /// Access through the thread's held lease: direct path while the
    /// directory lease is valid, full per-word path once it went stale.
    Access(usize, usize, u64),
    /// Timer-interrupt kill (`abort_spurious`), an epoch bump.
    Spurious(usize),
    /// Install (`true`) or remove a fault plan; leases are denied while a
    /// plan is live and every toggle bumps the epoch.
    SetPlan(bool),
}

fn lease_op_strategy(threads: usize) -> impl Strategy<Value = LOp> {
    let unbound = |b: usize| if b == 6 { 1 << 20 } else { b };
    prop_oneof![
        (0..threads, 1usize..7, 1usize..7).prop_map(move |(t, r, w)| LOp::Begin(
            t,
            unbound(r),
            unbound(w)
        )),
        (0..threads, 0..MEM_WORDS).prop_map(|(t, a)| LOp::Read(t, a)),
        (0..threads, 0..MEM_WORDS, any::<u64>()).prop_map(|(t, a, v)| LOp::Write(t, a, v)),
        (0..threads).prop_map(LOp::Commit),
        (0..threads).prop_map(LOp::Tabort),
        (0..threads).prop_map(LOp::Poll),
        (0..threads, 0..MEM_WORDS, any::<bool>()).prop_map(|(t, a, w)| LOp::Acquire(t, a, w)),
        (0..threads, 0..MEM_WORDS, any::<u64>()).prop_map(|(t, o, v)| LOp::Access(t, o, v)),
        (0..threads, 0..MEM_WORDS, any::<u64>()).prop_map(|(t, o, v)| LOp::Access(t, o, v)),
        (0..threads).prop_map(LOp::Spurious),
        any::<bool>().prop_map(LOp::SetPlan),
    ]
}

fn op_strategy(threads: usize) -> impl Strategy<Value = Op> {
    // Budget draw: 1..=5 lines, or effectively unlimited when the draw
    // lands on the top value — tiny budgets exercise overflow, huge ones
    // let conflicts develop.
    let unbound = |b: usize| if b == 6 { 1 << 20 } else { b };
    prop_oneof![
        (0..threads, 1usize..7, 1usize..7).prop_map(move |(t, r, w)| Op::Begin(
            t,
            unbound(r),
            unbound(w)
        )),
        (0..threads, 0..MEM_WORDS).prop_map(|(t, a)| Op::Read(t, a)),
        (0..threads, 0..MEM_WORDS).prop_map(|(t, a)| Op::Read(t, a)),
        (0..threads, 0..MEM_WORDS, any::<u64>()).prop_map(|(t, a, v)| Op::Write(t, a, v)),
        (0..threads, 0..MEM_WORDS, any::<u64>()).prop_map(|(t, a, v)| Op::Write(t, a, v)),
        (0..threads).prop_map(Op::Commit),
        (0..threads).prop_map(Op::Tabort),
        (0..threads).prop_map(Op::Restricted),
        (0..threads).prop_map(Op::Poll),
        (1u64..100).prop_map(Op::Tick),
        (0..threads, 0..MEM_WORDS).prop_map(|(t, a)| Op::Arm(t, a)),
        (0..threads, 0..MEM_WORDS).prop_map(|(t, a)| Op::DoomAll(t, a)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn directory_matches_reference(
        threads in 2usize..6,
        line_words_log2 in 0u32..4,
        ops in proptest::collection::vec((0..5usize, 0..MEM_WORDS, any::<u64>(), 1u64..50), 1..160),
    ) {
        let line_words = 1usize << line_words_log2;
        let mut dut: TxMemory<u64> = TxMemory::new(MEM_WORDS, line_words, threads, 0);
        let mut reference: ReferenceTxMemory<u64> =
            ReferenceTxMemory::new(MEM_WORDS, line_words, threads, 0);
        let dut_trace = RingBufferSink::shared(4096);
        let ref_trace = RingBufferSink::shared(4096);
        dut.set_trace_sink(Box::new(std::sync::Arc::clone(&dut_trace)));
        reference.set_trace_sink(Box::new(std::sync::Arc::clone(&ref_trace)));

        let mut now = 0u64;
        for (i, &(kind, addr, value, tick)) in ops.iter().enumerate() {
            // Derive a concrete op from the tuple so a shrunk failure stays
            // readable; `kind` picks the op class, the rest parameterize it.
            let t = addr % threads;
            match kind {
                0 => {
                    if !dut.in_tx(t) {
                        let budgets = if value % 4 == 0 {
                            Budgets { read_lines: 1 + (value as usize >> 2) % 5,
                                      write_lines: 1 + (value as usize >> 4) % 5 }
                        } else {
                            Budgets { read_lines: 1 << 20, write_lines: 1 << 20 }
                        };
                        prop_assert_eq!(dut.begin(t, budgets), reference.begin(t, budgets),
                            "begin diverged at op {}", i);
                    }
                }
                1 => prop_assert_eq!(dut.read(t, addr), reference.read(t, addr),
                        "read diverged at op {}", i),
                2 => prop_assert_eq!(dut.write(t, addr, value), reference.write(t, addr, value),
                        "write diverged at op {}", i),
                3 => {
                    if dut.in_tx(t) {
                        prop_assert_eq!(dut.commit(t), reference.commit(t),
                            "commit diverged at op {}", i);
                    } else if value % 3 == 0 {
                        prop_assert_eq!(dut.tabort(t, 1), reference.tabort(t, 1),
                            "tabort diverged at op {}", i);
                    } else {
                        prop_assert_eq!(dut.abort_restricted(t), reference.abort_restricted(t),
                            "restricted diverged at op {}", i);
                    }
                }
                _ => {
                    prop_assert_eq!(dut.poll_doomed(t), reference.poll_doomed(t),
                        "poll diverged at op {}", i);
                    now += tick;
                    dut.set_now(now);
                    reference.set_now(now);
                }
            }
            for u in 0..threads {
                prop_assert_eq!(dut.in_tx(u), reference.in_tx(u), "in_tx({}) at op {}", u, i);
                prop_assert_eq!(dut.footprint(u), reference.footprint(u),
                    "footprint({}) at op {}", u, i);
            }
            prop_assert_eq!(dut.active_tx_count(), reference.active_tx_count(),
                "active count at op {}", i);
            prop_assert_eq!(dut.stats(), reference.stats(), "stats at op {}", i);
        }

        let dut_events = dut_trace.lock().unwrap().drain();
        let ref_events = ref_trace.lock().unwrap().drain();
        prop_assert_eq!(dut_events, ref_events, "trace streams diverged");
        for a in 0..MEM_WORDS {
            prop_assert_eq!(dut.peek(a), reference.peek(a), "memory image at {}", a);
        }
    }

    /// The reference uses the same interleaving as the ops above but with
    /// structured `Op` values, biasing toward conflicting accesses in a
    /// narrow address window so multi-victim dooms and requester-wins
    /// ordering actually occur.
    #[test]
    fn directory_matches_reference_hot_lines(
        threads in 2usize..6,
        ops in proptest::collection::vec(op_strategy(5), 1..200),
    ) {
        let line_words = 4usize;
        let mut dut: TxMemory<u64> = TxMemory::new(MEM_WORDS, line_words, threads, 0);
        let mut reference: ReferenceTxMemory<u64> =
            ReferenceTxMemory::new(MEM_WORDS, line_words, threads, 0);
        let dut_trace = RingBufferSink::shared(8192);
        let ref_trace = RingBufferSink::shared(8192);
        dut.set_trace_sink(Box::new(std::sync::Arc::clone(&dut_trace)));
        reference.set_trace_sink(Box::new(std::sync::Arc::clone(&ref_trace)));

        let mut now = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Begin(t, r, w) => {
                    let t = t % threads;
                    if !dut.in_tx(t) {
                        let b = Budgets { read_lines: r, write_lines: w };
                        prop_assert_eq!(dut.begin(t, b), reference.begin(t, b),
                            "begin diverged at op {}", i);
                    }
                }
                Op::Read(t, a) => {
                    let (t, a) = (t % threads, a % 32); // hot window: 8 lines
                    prop_assert_eq!(dut.read(t, a), reference.read(t, a),
                        "read diverged at op {}", i);
                }
                Op::Write(t, a, v) => {
                    let (t, a) = (t % threads, a % 32);
                    prop_assert_eq!(dut.write(t, a, v), reference.write(t, a, v),
                        "write diverged at op {}", i);
                }
                Op::Commit(t) => {
                    let t = t % threads;
                    if dut.in_tx(t) {
                        prop_assert_eq!(dut.commit(t), reference.commit(t),
                            "commit diverged at op {}", i);
                    }
                }
                Op::Tabort(t) => {
                    let t = t % threads;
                    prop_assert_eq!(dut.tabort(t, 7), reference.tabort(t, 7),
                        "tabort diverged at op {}", i);
                }
                Op::Restricted(t) => {
                    let t = t % threads;
                    prop_assert_eq!(dut.abort_restricted(t), reference.abort_restricted(t),
                        "restricted diverged at op {}", i);
                }
                Op::Poll(t) => {
                    let t = t % threads;
                    prop_assert_eq!(dut.poll_doomed(t), reference.poll_doomed(t),
                        "poll diverged at op {}", i);
                }
                Op::Tick(d) => {
                    now += d;
                    dut.set_now(now);
                    reference.set_now(now);
                }
                Op::Arm(t, a) => {
                    let (t, a) = (t % threads, a % 32);
                    prop_assert_eq!(
                        dut.arm_lock_monitor(t, a), reference.arm_lock_monitor(t, a),
                        "arm diverged at op {}", i);
                }
                Op::DoomAll(t, a) => {
                    let (t, a) = (t % threads, a % 32);
                    dut.doom_all_active(t, a);
                    reference.doom_all_active(t, a);
                }
            }
            prop_assert_eq!(dut.stats(), reference.stats(), "stats at op {}", i);
        }

        let dut_events = dut_trace.lock().unwrap().drain();
        let ref_events = ref_trace.lock().unwrap().drain();
        prop_assert_eq!(dut_events, ref_events, "trace streams diverged");
        for a in 0..MEM_WORDS {
            prop_assert_eq!(dut.peek(a), reference.peek(a), "memory image at {}", a);
        }
    }

    /// The same hot-line interleaving with the fault injector enabled on
    /// **both** implementations: spurious aborts, mid-transaction budget
    /// shrinks and forced restricted ops must fire at the same accesses,
    /// attribute the same reasons, and leave identical memory images.
    #[test]
    fn directory_matches_reference_with_fault_injection(
        threads in 2usize..6,
        seed in any::<u64>(),
        spurious_pct in 0u32..31,
        shrink_pct in 0u32..16,
        restricted_pct in 0u32..11,
        ops in proptest::collection::vec(op_strategy(5), 1..200),
    ) {
        let plan = FaultPlan {
            seed,
            spurious_rate: f64::from(spurious_pct) / 100.0,
            shrink_rate: f64::from(shrink_pct) / 100.0,
            restricted_rate: f64::from(restricted_pct) / 100.0,
        };
        let line_words = 4usize;
        let mut dut: TxMemory<u64> = TxMemory::new(MEM_WORDS, line_words, threads, 0);
        let mut reference: ReferenceTxMemory<u64> =
            ReferenceTxMemory::new(MEM_WORDS, line_words, threads, 0);
        dut.set_fault_plan(plan);
        reference.set_fault_plan(plan);
        let dut_trace = RingBufferSink::shared(8192);
        let ref_trace = RingBufferSink::shared(8192);
        dut.set_trace_sink(Box::new(std::sync::Arc::clone(&dut_trace)));
        reference.set_trace_sink(Box::new(std::sync::Arc::clone(&ref_trace)));

        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Begin(t, r, w) => {
                    let t = t % threads;
                    if !dut.in_tx(t) {
                        let b = Budgets { read_lines: r, write_lines: w };
                        prop_assert_eq!(dut.begin(t, b), reference.begin(t, b),
                            "begin diverged at op {}", i);
                    }
                }
                Op::Read(t, a) => {
                    let (t, a) = (t % threads, a % 32);
                    prop_assert_eq!(dut.read(t, a), reference.read(t, a),
                        "read diverged at op {}", i);
                }
                Op::Write(t, a, v) => {
                    let (t, a) = (t % threads, a % 32);
                    prop_assert_eq!(dut.write(t, a, v), reference.write(t, a, v),
                        "write diverged at op {}", i);
                }
                Op::Commit(t) => {
                    let t = t % threads;
                    if dut.in_tx(t) {
                        prop_assert_eq!(dut.commit(t), reference.commit(t),
                            "commit diverged at op {}", i);
                    }
                }
                Op::Tabort(t) => {
                    let t = t % threads;
                    prop_assert_eq!(dut.tabort(t, 7), reference.tabort(t, 7),
                        "tabort diverged at op {}", i);
                }
                Op::Restricted(t) => {
                    let t = t % threads;
                    prop_assert_eq!(dut.abort_restricted(t), reference.abort_restricted(t),
                        "restricted diverged at op {}", i);
                }
                Op::Poll(t) => {
                    let t = t % threads;
                    prop_assert_eq!(dut.poll_doomed(t), reference.poll_doomed(t),
                        "poll diverged at op {}", i);
                }
                Op::Tick(d) => {
                    dut.set_now(d);
                    reference.set_now(d);
                }
                Op::Arm(t, a) => {
                    let (t, a) = (t % threads, a % 32);
                    prop_assert_eq!(
                        dut.arm_lock_monitor(t, a), reference.arm_lock_monitor(t, a),
                        "arm diverged at op {}", i);
                }
                Op::DoomAll(t, a) => {
                    let (t, a) = (t % threads, a % 32);
                    dut.doom_all_active(t, a);
                    reference.doom_all_active(t, a);
                }
            }
            for u in 0..threads {
                prop_assert_eq!(dut.in_tx(u), reference.in_tx(u), "in_tx({}) at op {}", u, i);
                prop_assert_eq!(dut.footprint(u), reference.footprint(u),
                    "footprint({}) at op {}", u, i);
            }
            prop_assert_eq!(dut.stats(), reference.stats(), "stats at op {}", i);
            prop_assert_eq!(dut.faults_injected(), reference.faults_injected(),
                "injection streams diverged at op {}", i);
        }

        let dut_events = dut_trace.lock().unwrap().drain();
        let ref_events = ref_trace.lock().unwrap().drain();
        prop_assert_eq!(dut_events, ref_events, "trace streams diverged");
        for a in 0..MEM_WORDS {
            prop_assert_eq!(dut.peek(a), reference.peek(a), "memory image at {}", a);
        }
    }

    /// Lease differential: the directory impl serving accesses through
    /// epoch-validated line leases (batched direct path, span undo) must be
    /// observationally identical to the reference serving the *same* lease
    /// operations through its degenerate per-word fallback — across
    /// interleaved transactions, dooms, mid-lease aborts, interrupt kills,
    /// and fault-plan toggles. Compared per op: results, abort reasons,
    /// `in_tx`/footprints, fault-draw counts, and the full stats struct
    /// with only `lease_hits` masked (the fallback never hits); compared at
    /// the end: trace streams and the byte-exact memory image.
    #[test]
    fn leases_match_reference_degenerate_fallback(
        threads in 2usize..6,
        seed in any::<u64>(),
        ops in proptest::collection::vec(lease_op_strategy(5), 1..250),
    ) {
        let line_words = 4usize;
        let mut dut: TxMemory<u64> = TxMemory::new(MEM_WORDS, line_words, threads, 0);
        let mut reference: ReferenceTxMemory<u64> =
            ReferenceTxMemory::new(MEM_WORDS, line_words, threads, 0);
        let dut_trace = RingBufferSink::shared(8192);
        let ref_trace = RingBufferSink::shared(8192);
        dut.set_trace_sink(Box::new(std::sync::Arc::clone(&dut_trace)));
        reference.set_trace_sink(Box::new(std::sync::Arc::clone(&ref_trace)));

        // One held (directory lease, reference lease) pair per thread.
        let mut held: Vec<Option<(LineLease, LineLease)>> = vec![None; threads];
        for (i, op) in ops.iter().enumerate() {
            match *op {
                LOp::Begin(t, r, w) => {
                    let t = t % threads;
                    if !dut.in_tx(t) {
                        let b = Budgets { read_lines: r, write_lines: w };
                        prop_assert_eq!(dut.begin(t, b), reference.begin(t, b),
                            "begin diverged at op {}", i);
                    }
                }
                LOp::Read(t, a) => {
                    let (t, a) = (t % threads, a % 32);
                    prop_assert_eq!(dut.read(t, a), reference.read(t, a),
                        "read diverged at op {}", i);
                }
                LOp::Write(t, a, v) => {
                    let (t, a) = (t % threads, a % 32);
                    prop_assert_eq!(dut.write(t, a, v), reference.write(t, a, v),
                        "write diverged at op {}", i);
                }
                LOp::Commit(t) => {
                    let t = t % threads;
                    if dut.in_tx(t) {
                        prop_assert_eq!(dut.commit(t), reference.commit(t),
                            "commit diverged at op {}", i);
                    }
                }
                LOp::Tabort(t) => {
                    let t = t % threads;
                    prop_assert_eq!(dut.tabort(t, 7), reference.tabort(t, 7),
                        "tabort diverged at op {}", i);
                }
                LOp::Poll(t) => {
                    let t = t % threads;
                    prop_assert_eq!(dut.poll_doomed(t), reference.poll_doomed(t),
                        "poll diverged at op {}", i);
                }
                LOp::Acquire(t, a, write) => {
                    let (t, a) = (t % threads, a % 32);
                    let d = dut.try_lease(t, a, write);
                    let r = reference.try_lease(t, a, write);
                    prop_assert!(!reference.lease_valid(&r),
                        "reference must never grant a lease (op {})", i);
                    held[t] = Some((d, r));
                }
                LOp::Access(t, off, v) => {
                    let t = t % threads;
                    let Some((d, r)) = held[t] else { continue };
                    if dut.lease_valid(&d) {
                        let a = d.start + off % (d.end - d.start);
                        if d.write {
                            dut.lease_write(&d, a, v);
                            reference.lease_write(&r, a, v);
                        } else {
                            prop_assert_eq!(
                                dut.lease_read(&d, a), reference.lease_read(&r, a),
                                "leased read diverged at op {}", i);
                        }
                    } else {
                        // Stale token: the interpreter falls back to the
                        // full per-word path on both sides.
                        let a = if d.end > d.start {
                            d.start + off % (d.end - d.start)
                        } else {
                            off % 32
                        };
                        if d.write {
                            prop_assert_eq!(dut.write(t, a, v), reference.write(t, a, v),
                                "post-lease write diverged at op {}", i);
                        } else {
                            prop_assert_eq!(dut.read(t, a), reference.read(t, a),
                                "post-lease read diverged at op {}", i);
                        }
                    }
                }
                LOp::Spurious(t) => {
                    let t = t % threads;
                    prop_assert_eq!(
                        dut.abort_spurious(t, htm_sim::SpuriousCause::TimerInterrupt),
                        reference.abort_spurious(t, htm_sim::SpuriousCause::TimerInterrupt),
                        "spurious kill diverged at op {}", i);
                }
                LOp::SetPlan(on) => {
                    let plan = if on {
                        FaultPlan {
                            seed,
                            spurious_rate: 0.10,
                            shrink_rate: 0.05,
                            restricted_rate: 0.05,
                        }
                    } else {
                        FaultPlan::none()
                    };
                    dut.set_fault_plan(plan);
                    reference.set_fault_plan(plan);
                }
            }
            for u in 0..threads {
                prop_assert_eq!(dut.in_tx(u), reference.in_tx(u), "in_tx({}) at op {}", u, i);
                prop_assert_eq!(dut.footprint(u), reference.footprint(u),
                    "footprint({}) at op {}", u, i);
            }
            // Settle the directory impl's batched counters, then compare
            // every stats field except lease_hits (zero in the fallback).
            dut.flush_lease_stats();
            let mut ds = dut.stats().clone();
            let mut rs = reference.stats().clone();
            ds.lease_hits = 0;
            rs.lease_hits = 0;
            prop_assert_eq!(ds, rs, "stats at op {}", i);
            prop_assert_eq!(dut.faults_injected(), reference.faults_injected(),
                "injection streams diverged at op {}", i);
        }

        let dut_events = dut_trace.lock().unwrap().drain();
        let ref_events = ref_trace.lock().unwrap().drain();
        prop_assert_eq!(dut_events, ref_events, "trace streams diverged");
        for a in 0..MEM_WORDS {
            prop_assert_eq!(dut.peek(a), reference.peek(a), "memory image at {}", a);
        }
    }
}
