//! Property tests for the transactional-memory substrate.
//!
//! The key invariants the GIL-elision correctness argument rests on:
//!
//! 1. **Rollback exactness** — an aborted transaction leaves no trace in
//!    memory.
//! 2. **Committed-state serializability (single writer)** — interleaved
//!    transactions that all commit produced exactly the values they wrote;
//!    conflicting ones were doomed, never half-applied.
//! 3. **Footprint accounting** — distinct-line counting matches an oracle.

use htm_sim::{AbortReason, Budgets, TxMemory};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const LINE_WORDS: usize = 8;
const MEM_WORDS: usize = 512;
const THREADS: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Begin(usize),
    Read(usize, usize),
    Write(usize, usize, u64),
    Commit(usize),
    Abort(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..THREADS).prop_map(Op::Begin),
        (0..THREADS, 0..MEM_WORDS).prop_map(|(t, a)| Op::Read(t, a)),
        (0..THREADS, 0..MEM_WORDS, any::<u64>()).prop_map(|(t, a, v)| Op::Write(t, a, v)),
        (0..THREADS).prop_map(Op::Commit),
        (0..THREADS).prop_map(Op::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings: memory must always equal the "oracle" image
    /// built from plain writes and *committed* transactional writes only.
    /// Aborted/doomed transactions must contribute nothing.
    #[test]
    fn committed_writes_only_survive(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut m: TxMemory<u64> = TxMemory::new(MEM_WORDS, LINE_WORDS, THREADS, 0);
        // Oracle: the durable image plus, per live transaction, its
        // speculative overlay.
        let mut durable: HashMap<usize, u64> = HashMap::new();
        let mut overlay: Vec<Option<HashMap<usize, u64>>> = vec![None; THREADS];
        let budgets = Budgets { read_lines: 1 << 20, write_lines: 1 << 20 };

        for op in ops {
            match op {
                Op::Begin(t) => {
                    if !m.in_tx(t) {
                        // Consume any pending doom first, as the runtime would.
                        let _ = m.poll_doomed(t);
                        overlay[t] = None;
                        if m.begin(t, budgets).is_ok() {
                            overlay[t] = Some(HashMap::new());
                        }
                    }
                }
                Op::Read(t, a) => {
                    match m.read(t, a) {
                        Ok(v) => {
                            let expect = overlay[t].as_ref().and_then(|o| o.get(&a).copied())
                                .or_else(|| durable.get(&a).copied())
                                .unwrap_or(0);
                            prop_assert_eq!(v, expect, "read at {} by {}", a, t);
                        }
                        Err(_) => { overlay[t] = None; } // doomed: overlay discarded
                    }
                }
                Op::Write(t, a, v) => {
                    match m.write(t, a, v) {
                        Ok(()) => {
                            if m.in_tx(t) {
                                overlay[t].as_mut().expect("tx overlay").insert(a, v);
                            } else {
                                durable.insert(a, v);
                            }
                        }
                        Err(_) => { overlay[t] = None; }
                    }
                    // A successful plain/committing write may have doomed others.
                    for (u, ov) in overlay.iter_mut().enumerate() {
                        if u != t && !m.in_tx(u) {
                            *ov = None;
                        }
                    }
                }
                Op::Commit(t) => {
                    if m.in_tx(t) {
                        match m.commit(t) {
                            Ok(()) => {
                                for (a, v) in overlay[t].take().expect("overlay on commit") {
                                    durable.insert(a, v);
                                }
                            }
                            Err(_) => { overlay[t] = None; }
                        }
                    }
                }
                Op::Abort(t) => {
                    if m.in_tx(t) {
                        m.tabort(t, 1);
                        overlay[t] = None;
                    }
                }
            }
            // Sync: anyone doomed remotely has lost their overlay in memory
            // already; our oracle drops it when observed. For the final
            // check below we conservatively abort all live transactions.
        }

        // Tear down: abort every live transaction; durable image must match.
        for t in 0..THREADS {
            let _ = m.poll_doomed(t);
            if m.in_tx(t) {
                m.tabort(t, 9);
            }
        }
        for a in 0..MEM_WORDS {
            let expect = durable.get(&a).copied().unwrap_or(0);
            prop_assert_eq!(*m.peek(a), expect, "address {}", a);
        }
    }

    /// Footprint counting matches a recomputed distinct-line oracle, and
    /// overflow triggers exactly when the oracle exceeds the budget.
    #[test]
    fn footprint_matches_oracle(
        addrs in proptest::collection::vec(0..MEM_WORDS, 1..64),
        write_budget in 1usize..8,
    ) {
        let mut m: TxMemory<u64> = TxMemory::new(MEM_WORDS, LINE_WORDS, 1, 0);
        m.begin(0, Budgets { read_lines: 1 << 20, write_lines: write_budget }).unwrap();
        let mut lines: HashSet<usize> = HashSet::new();
        let mut overflowed = false;
        for (i, &a) in addrs.iter().enumerate() {
            lines.insert(a / LINE_WORDS);
            match m.write(0, a, i as u64) {
                Ok(()) => {
                    prop_assert!(lines.len() <= write_budget);
                    prop_assert_eq!(m.footprint(0).1, lines.len());
                }
                Err(e) => {
                    prop_assert_eq!(e, AbortReason::WriteOverflow);
                    prop_assert!(lines.len() > write_budget,
                        "aborted though oracle says {} lines <= {}", lines.len(), write_budget);
                    overflowed = true;
                    break;
                }
            }
        }
        if !overflowed {
            m.commit(0).unwrap();
        }
    }

    /// After an abort of any cause, a fresh transaction by the same thread
    /// starts from clean sets.
    #[test]
    fn abort_then_restart_is_clean(
        n in 1usize..20,
    ) {
        let mut m: TxMemory<u64> = TxMemory::new(MEM_WORDS, LINE_WORDS, 1, 0);
        for round in 0..n {
            m.begin(0, Budgets { read_lines: 4, write_lines: 2 }).unwrap();
            m.write(0, (round * 8) % MEM_WORDS, round as u64).unwrap();
            prop_assert_eq!(m.footprint(0), (0, 1));
            m.tabort(0, 3);
            prop_assert!(!m.in_tx(0));
        }
        for a in 0..MEM_WORDS {
            prop_assert_eq!(*m.peek(a), 0u64);
        }
    }
}
