//! Criterion microbenchmarks of the simulator's hot paths: interpreter
//! stepping, the While/Iterator micro workloads end-to-end, and a small
//! NPB kernel per runtime mode. These measure *host* performance of the
//! simulation (useful for keeping figure sweeps fast), not simulated
//! time — the figures come from the `fig*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htm_gil_core::{ExecConfig, Executor, LengthPolicy, RuntimeMode};
use machine_sim::MachineProfile;
use ruby_vm::VmConfig;

fn run_once(src: &str, mode: RuntimeMode, threads: usize) -> u64 {
    let profile = MachineProfile::generic(4);
    let vmc = VmConfig { max_threads: threads + 2, ..VmConfig::default() };
    let cfg = ExecConfig::new(mode, &profile);
    let mut ex = Executor::new(src, vmc, profile, cfg).expect("boot");
    ex.run().expect("run").elapsed_cycles
}

fn bench_micro_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("while_micro");
    g.sample_size(10);
    for mode in [
        RuntimeMode::Gil,
        RuntimeMode::Htm { length: LengthPolicy::Fixed(16) },
        RuntimeMode::Htm { length: LengthPolicy::Dynamic },
        RuntimeMode::Ideal,
    ] {
        let w = workloads::micro::while_bench(2, 150);
        g.bench_with_input(BenchmarkId::from_parameter(mode.label()), &w, |b, w| {
            b.iter(|| run_once(&w.source, mode, w.threads));
        });
    }
    g.finish();
}

fn bench_interpreter_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    g.sample_size(10);
    g.bench_function("fib_single_thread", |b| {
        let src = "def fib(n)\n  return n if n < 2\n  fib(n - 1) + fib(n - 2)\nend\nfib(13)";
        b.iter(|| run_once(src, RuntimeMode::Gil, 1));
    });
    g.bench_function("string_heavy", |b| {
        let src = r#"
s = ""
i = 0
while i < 60
  s = s + i.to_s + ","
  i += 1
end
s.length
"#;
        b.iter(|| run_once(src, RuntimeMode::Gil, 1));
    });
    g.finish();
}

fn bench_npb_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("npb_cg");
    g.sample_size(10);
    for mode in [RuntimeMode::Gil, RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }] {
        let w = workloads::npb::cg(2, 1);
        g.bench_with_input(BenchmarkId::from_parameter(mode.label()), &w, |b, w| {
            b.iter(|| run_once(&w.source, mode, w.threads));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_micro_modes, bench_interpreter_throughput, bench_npb_kernel);
criterion_main!(benches);
