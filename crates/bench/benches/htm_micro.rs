//! Criterion microbenchmarks of the HTM substrate itself: transactional
//! read/write throughput, commit/rollback costs, and conflict-detection
//! overhead with concurrent transactions.

use criterion::{criterion_group, criterion_main, Criterion};
use htm_sim::{Budgets, RingBufferSink, TxMemory};

fn big() -> Budgets {
    Budgets { read_lines: 1 << 20, write_lines: 1 << 20 }
}

fn bench_tx_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("txmem");
    g.sample_size(20);
    g.bench_function("write_commit_64_lines", |b| {
        let mut m: TxMemory<u64> = TxMemory::new(64 * 8, 8, 2, 0);
        b.iter(|| {
            m.begin(0, big()).unwrap();
            for i in 0..64 {
                m.write(0, i * 8, i as u64).unwrap();
            }
            m.commit(0).unwrap();
        });
    });
    // Same loop with a trace sink installed: the delta against
    // write_commit_64_lines is the cost of structured tracing (the default
    // configuration installs no sink, so emission is a discriminant test).
    g.bench_function("write_commit_64_lines_traced", |b| {
        let mut m: TxMemory<u64> = TxMemory::new(64 * 8, 8, 2, 0);
        m.set_trace_sink(Box::new(RingBufferSink::shared(1024)));
        b.iter(|| {
            m.begin(0, big()).unwrap();
            for i in 0..64 {
                m.write(0, i * 8, i as u64).unwrap();
            }
            m.commit(0).unwrap();
        });
    });
    g.bench_function("write_rollback_64_lines", |b| {
        let mut m: TxMemory<u64> = TxMemory::new(64 * 8, 8, 2, 0);
        b.iter(|| {
            m.begin(0, big()).unwrap();
            for i in 0..64 {
                m.write(0, i * 8, i as u64).unwrap();
            }
            m.tabort(0, 1);
        });
    });
    g.bench_function("read_with_concurrent_tx", |b| {
        // Conflict checks must scan the other thread's sets.
        let mut m: TxMemory<u64> = TxMemory::new(1024 * 8, 8, 2, 0);
        m.begin(1, big()).unwrap();
        for i in 512..640 {
            m.write(1, i * 8, 1).unwrap();
        }
        b.iter(|| {
            m.begin(0, big()).unwrap();
            for i in 0..128 {
                let _ = m.read(0, i * 8).unwrap();
            }
            m.commit(0).unwrap();
        });
    });
    g.bench_function("plain_rw_no_tx", |b| {
        let mut m: TxMemory<u64> = TxMemory::new(1024, 8, 2, 0);
        b.iter(|| {
            for i in 0..128 {
                m.write(0, i, i as u64).unwrap();
                let _ = m.read(0, i).unwrap();
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_tx_ops);
criterion_main!(benches);
