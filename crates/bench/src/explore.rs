//! `bench::explore` — schedule-space search over the deterministic
//! simulator.
//!
//! Built on the `machine_sim::explore` decision-point encoding and the
//! `htm_gil_core::explore` oracle-checked replay. Two search modes:
//!
//! * **Bounded DFS** (`dfs`): breadth-first waves over the branch tree.
//!   The root is the empty path (the natural schedule); executing a path
//!   records the decision trail (taken choices + arities), and every
//!   alternative choice at every decision index past the submitted
//!   prefix spawns a child path. Each child adds exactly one non-zero
//!   byte, so **wave k contains exactly the paths with k forced
//!   deviations** — the waves *are* iterative deepening over the
//!   preemption bound, and `max_preempt` is simply the last wave.
//! * **Seeded random walks** (`random_walks`): xorshift-generated paths
//!   of a fixed depth, biased toward the natural schedule (about half
//!   the bytes zero), replayed as a single wave.
//!
//! Both fan across `--jobs` through [`crate::pool`] with deterministic
//! partitioning: wave membership depends only on prior-wave replay
//! results (each deterministic), submission order is fixed
//! (parent-major, decision index, then choice), budget truncation cuts
//! the tail of a wave, and `--stop-first` uses the pruned pool map —
//! so stats and violations are identical at any pool size.
//!
//! A violating path is minimized by the core shrinker and packaged as a
//! self-contained repro artifact (`htm-gil-explore-repro/v1`: source,
//! config, hex path, trail, mismatch) ready to pin under
//! `tests/schedule_regressions.rs`.

use std::collections::HashSet;

use htm_gil_core::explore::{
    check_path, gil_expected, mismatch_of, run_path, shrink, Expected, ExploreTarget,
};
use htm_gil_core::{Json, LengthPolicy, RuntimeMode, SubscriptionPolicy};
use machine_sim::{MachineProfile, SchedPath};

use crate::pool::{self, PointOutcome};

/// Schema tag of the exploration stats document (`--report-json`).
pub const REPORT_SCHEMA: &str = "htm-gil-explore-report/v1";
/// Schema tag of a pinned counterexample artifact.
pub const REPRO_SCHEMA: &str = "htm-gil-explore-repro/v1";

/// Search tuning shared by both modes.
#[derive(Debug, Clone)]
pub struct SearchParams {
    /// Maximum replays per target (budget truncation is deterministic:
    /// it cuts the tail of the current wave).
    pub budget: u64,
    /// Preemption bound: maximum forced deviations per path (= deepest
    /// DFS wave).
    pub max_preempt: u32,
    /// Branch only at the first `horizon` decision indices of a trail
    /// (runs make thousands of decisions; the tree is pruned, not the
    /// replay).
    pub horizon: usize,
    /// Stop the whole search at the first violation.
    pub stop_first: bool,
    /// Replay budget for minimizing each violation.
    pub shrink_budget: u64,
    /// Re-run every clean path with `force_word_access` and diff the
    /// run reports (modulo the lease counters) — the PR 8 differential
    /// reinterpreted as a schedule-space invariant.
    pub differential: bool,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            budget: 400,
            max_preempt: 3,
            horizon: 96,
            stop_first: false,
            shrink_budget: 300,
            differential: false,
        }
    }
}

/// Random-walk tuning.
#[derive(Debug, Clone)]
pub struct WalkParams {
    pub walks: u64,
    pub depth: usize,
    pub seed: u64,
}

impl Default for WalkParams {
    fn default() -> Self {
        WalkParams { walks: 64, depth: 24, seed: 0xC0FFEE }
    }
}

/// One minimized counterexample.
#[derive(Debug)]
pub struct ViolationRecord {
    pub target_id: String,
    pub mode_label: String,
    /// The path the search found.
    pub found: SchedPath,
    /// The shrinker's minimized path (still violating).
    pub minimized: SchedPath,
    pub shrink_executions: u64,
    /// Mismatch text of the minimized replay.
    pub mismatch: String,
    /// Decision-trail tail of the minimized replay (deadlock-dump
    /// format, e.g. `"S1 I1 W0"`).
    pub trail: String,
    pub actual_stdout: String,
}

/// Per-target exploration counters (the `--report-json` rows).
#[derive(Debug, Clone)]
pub struct TargetStats {
    pub id: String,
    pub mode_label: String,
    pub executions: u64,
    pub distinct_paths: u64,
    pub max_depth: u64,
    pub max_preemptions: u64,
    pub violations: u64,
    pub differential_mismatches: u64,
    /// Wave-tail paths never replayed because the budget ran out.
    pub dropped_by_budget: u64,
    /// Length of the shortest minimized counterexample, if any.
    pub min_repro_len: Option<u64>,
}

impl TargetStats {
    fn new(target: &ExploreTarget) -> Self {
        TargetStats {
            id: target.id.clone(),
            mode_label: target.mode.label(),
            executions: 0,
            distinct_paths: 0,
            max_depth: 0,
            max_preemptions: 0,
            violations: 0,
            differential_mismatches: 0,
            dropped_by_budget: 0,
            min_repro_len: None,
        }
    }

    pub fn to_json(&self) -> Json {
        let repro = match self.min_repro_len {
            Some(n) => Json::from(n),
            None => Json::Null,
        };
        Json::obj()
            .field("id", self.id.as_str())
            .field("mode", self.mode_label.as_str())
            .field("executions", self.executions)
            .field("distinct_paths", self.distinct_paths)
            .field("max_depth", self.max_depth)
            .field("max_preemptions", self.max_preemptions)
            .field("violations", self.violations)
            .field("differential_mismatches", self.differential_mismatches)
            .field("dropped_by_budget", self.dropped_by_budget)
            .field("min_repro_len", repro)
    }
}

/// Result of exploring one target.
#[derive(Debug)]
pub struct ExploreOutcome {
    pub stats: TargetStats,
    pub violations: Vec<ViolationRecord>,
}

fn profile() -> MachineProfile {
    MachineProfile::generic(4)
}

fn htm1() -> RuntimeMode {
    RuntimeMode::Htm { length: LengthPolicy::Fixed(1) }
}

fn htm16() -> RuntimeMode {
    RuntimeMode::Htm { length: LengthPolicy::Fixed(16) }
}

fn htm_dyn() -> RuntimeMode {
    RuntimeMode::Htm { length: LengthPolicy::Dynamic }
}

fn mutex_counter_src(threads: usize, iters: usize) -> String {
    format!(
        r#"
$sum = 0
m = Mutex.new()
threads = []
{threads}.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    while j < {iters}
      m.synchronize do
        $sum += 1
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts($sum)
"#
    )
}

/// Many threads pounding one mutex: every release publishes a wake to a
/// herd of waiters, so the Wake decision points get real arity.
fn herd_src(threads: usize, iters: usize) -> String {
    format!(
        r#"
$log = 0
m = Mutex.new()
threads = []
{threads}.times do |i|
  threads << Thread.new(i) do |tid|
    j = 0
    while j < {iters}
      m.synchronize do
        $log = $log + tid + 1
        $log = $log + 1
      end
      j += 1
    end
  end
end
threads.each do |t|
  t.join()
end
puts($log)
"#
    )
}

/// Unsynchronized writer/reader pair whose correctness rests entirely on
/// yield-point atomicity: the writer's four stores sit between two yield
/// points (one VM slice), as does the reader's pair-load, so under *any*
/// serializable execution the reader can only observe `$x == $y` and
/// prints `0`. The injected dirty-read bug lets the reader observe a
/// torn `$x != $y` mid-slice state.
fn torn_pair_src(iters: usize) -> String {
    format!(
        r#"
$x = 0
$y = 0
$bad = 0
writer = Thread.new(0) do |tid|
  k = 0
  while k < {iters}
    $x = 1
    $y = 1
    $x = 2
    $y = 2
    k += 1
  end
end
reader = Thread.new(1) do |tid|
  k = 0
  while k < {iters}
    a = $x
    b = $y
    if a != b
      $bad += 1
    end
    k += 1
  end
end
writer.join()
reader.join()
puts($bad)
"#
    )
}

fn target(
    id: &str,
    source: String,
    threads: usize,
    mode: RuntimeMode,
    interrupts: bool,
) -> ExploreTarget {
    ExploreTarget {
        id: id.to_string(),
        source,
        threads,
        mode,
        profile: profile(),
        subscription: SubscriptionPolicy::Eager,
        interrupts,
        bug_dirty_read: false,
        max_cycles: 500_000_000,
        force_word_access: false,
    }
}

/// The clean exploration corpus: workloads whose explored schedules must
/// all match the GIL oracle. `quick` shrinks iteration counts for CI
/// smoke runs.
pub fn clean_targets(quick: bool) -> Vec<ExploreTarget> {
    let (ci, hi, wi) = if quick { (4, 3, 20) } else { (8, 5, 60) };
    vec![
        target("mutex-counter/htm16", mutex_counter_src(2, ci), 2, htm16(), true),
        target("mutex-counter/htmdyn", mutex_counter_src(2, ci), 2, htm_dyn(), true),
        target("mutex-counter/gil", mutex_counter_src(2, ci), 2, RuntimeMode::Gil, false),
        target("herd4/htm16", herd_src(4, hi), 4, htm16(), true),
        target("while/htm16", workloads::micro::while_bench(2, wi).source, 2, htm16(), true),
    ]
}

/// The violation demo: the torn-pair workload with the test-only
/// dirty-read bug armed.
pub fn bug_demo_target(quick: bool) -> ExploreTarget {
    let iters = if quick { 20 } else { 60 };
    let mut t = target("torn-pair/bug/htm16", torn_pair_src(iters), 2, htm16(), true);
    t.bug_dirty_read = true;
    t
}

/// The same torn-pair workload with the bug off — every explored
/// schedule must match the oracle.
pub fn torn_pair_clean_target(quick: bool) -> ExploreTarget {
    let iters = if quick { 20 } else { 60 };
    target("torn-pair/clean/htm16", torn_pair_src(iters), 2, htm16(), true)
}

/// The lazy-subscription hunting ground (DESIGN.md §15). The watcher
/// prints every iteration, so it lives on the GIL fallback and its
/// pair-load of `$x`/`$y` runs *non-transactionally* — invisible to the
/// conflict directory. The writer toggles the pair between `(1,1)` and
/// `(2,2)` with **constant** stores (the torn-pair idiom: a `$x = k`
/// would read local `k`, and `getlocal` is an extended yield point that
/// would split the pair across two transactions), so all four stores sit
/// between two yield points — one VM slice ⇒ one transaction, and every
/// *committed* state satisfies `$x == $y`. Under `Eager` and
/// `LazyGuarded` no transaction can be live during the watcher's GIL
/// tenure, so the watcher always sees a committed state. Under `Lazy` a
/// transaction begun *before* the acquisition survives the whole tenure
/// and can commit its toggle between the watcher's two loads — a torn
/// observation no GIL schedule can produce, so `puts($bad)` diverges
/// from the oracle's `0`. The filler locals widen the load-load window
/// (in cycles) without adding a yield point the schedule could use. The
/// demo runs under HTM-1: the surviving transaction must *fit inside*
/// that window (begin → stores → commit), which only one-yield-point
/// transactions are short enough to do.
fn lazy_pair_src(iters: usize) -> String {
    format!(
        r#"
$x = 1
$y = 1
$bad = 0
watcher = Thread.new(0) do |tid|
  k = 0
  while k < {iters}
    print("")
    u = $x
    w0 = 0
    w1 = 0
    w2 = 0
    w3 = 0
    w4 = 0
    w5 = 0
    w6 = 0
    w7 = 0
    w8 = 0
    w9 = 0
    v = $y
    if u != v
      $bad = $bad + 1
    end
    k += 1
  end
end
writer = Thread.new(1) do |tid|
  k = 0
  while k < {iters}
    $x = 1
    $y = 1
    $x = 2
    $y = 2
    k += 1
  end
end
watcher.join()
writer.join()
puts($bad)
"#
    )
}

/// The lazy-subscription violation demo: the pair workload under the
/// observably-unsafe `Lazy` policy.
pub fn lazy_sub_demo_target(quick: bool) -> ExploreTarget {
    let iters = if quick { 12 } else { 40 };
    let mut t = target("lazy-sub/bug/htm1", lazy_pair_src(iters), 2, htm1(), true);
    t.subscription = SubscriptionPolicy::Lazy;
    t
}

/// The same workload under the two safe policies — every explored
/// schedule (including the pinned Lazy counterexample) must match the
/// oracle.
pub fn lazy_sub_clean_targets(quick: bool) -> Vec<ExploreTarget> {
    let iters = if quick { 12 } else { 40 };
    let eager = target("lazy-sub/eager/htm1", lazy_pair_src(iters), 2, htm1(), true);
    let mut guarded = target("lazy-sub/guarded/htm1", lazy_pair_src(iters), 2, htm1(), true);
    guarded.subscription = SubscriptionPolicy::LazyGuarded;
    vec![eager, guarded]
}

/// Strip the lease counters from a report JSON tree: the word-access
/// differential compares everything else byte-for-byte (mirrors the
/// lease-differential CI job).
fn strip_lease_fields(j: &Json) -> Json {
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "lease_hits" && k != "lease_misses")
                .map(|(k, v)| (k.clone(), strip_lease_fields(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_lease_fields).collect()),
        other => other.clone(),
    }
}

/// Replay `path` under `force_word_access` and diff the run report
/// (modulo lease counters) against the lease-layout replay. `None` when
/// the reports agree.
pub fn differential_mismatch(target: &ExploreTarget, path: &SchedPath) -> Option<String> {
    let lease_run = run_path(target, path);
    let mut word_target = target.clone();
    word_target.force_word_access = true;
    let word_run = run_path(&word_target, path);
    match (&lease_run.report, &word_run.report) {
        (Some(a), Some(b)) => {
            let a = strip_lease_fields(&a.to_json()).to_compact();
            let b = strip_lease_fields(&b.to_json()).to_compact();
            (a != b).then(|| {
                format!("lease/word-access reports diverge on this schedule\n  lease: {a}\n  word:  {b}")
            })
        }
        (Some(_), None) => {
            Some(format!("word-access replay failed: {}", word_run.error.unwrap_or_default()))
        }
        (None, Some(_)) => {
            Some(format!("lease replay failed: {}", lease_run.error.unwrap_or_default()))
        }
        (None, None) => None, // both failed the same way — the oracle check reports it
    }
}

/// Minimize a violating path and package the counterexample.
fn minimize(
    target: &ExploreTarget,
    expected: &Expected,
    found: &SchedPath,
    shrink_budget: u64,
) -> ViolationRecord {
    let result = shrink(target, expected, found, shrink_budget);
    let run = run_path(target, &result.path);
    let mismatch =
        mismatch_of(expected, &run).unwrap_or_else(|| "shrunk path no longer violates".into());
    let trail = {
        let mut s = String::new();
        for (k, t) in run.kind_tags.chars().zip(run.taken.iter()).take(32) {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push(k);
            s.push_str(&t.to_string());
        }
        s
    };
    ViolationRecord {
        target_id: target.id.clone(),
        mode_label: target.mode.label(),
        found: found.clone(),
        minimized: result.path,
        shrink_executions: result.executions,
        mismatch,
        trail,
        actual_stdout: run.stdout,
    }
}

/// Execute one wave of paths through the pool, updating `stats` and
/// collecting violations; returns the non-violating `(path, decisions,
/// taken, arities)` trails for expansion. Deterministic at any `jobs`.
#[allow(clippy::too_many_arguments)]
fn run_wave(
    target: &ExploreTarget,
    expected: &Expected,
    wave: &[SchedPath],
    params: &SearchParams,
    jobs: usize,
    stats: &mut TargetStats,
    violations: &mut Vec<ViolationRecord>,
) -> Vec<(SchedPath, usize, Vec<u8>, Vec<u8>)> {
    let results = pool::try_map_ordered_pruned(
        jobs,
        wave,
        |p| p.to_hex(),
        |_, path| {
            let (run, mismatch) = check_path(target, expected, path);
            let diff = if mismatch.is_none() && params.differential {
                differential_mismatch(target, path)
            } else {
                None
            };
            let stop = params.stop_first && (mismatch.is_some() || diff.is_some());
            let out = (run, mismatch, diff);
            if stop {
                PointOutcome::Prune(out)
            } else {
                PointOutcome::Continue(out)
            }
        },
        |_, _| {},
    )
    .unwrap_or_else(|e| panic!("explore '{}': {e}", target.id));
    let mut clean = Vec::new();
    for (path, slot) in wave.iter().zip(results) {
        let Some((run, mismatch, diff)) = slot else { continue };
        stats.executions += 1;
        stats.distinct_paths += 1;
        stats.max_depth = stats.max_depth.max(run.decisions as u64);
        stats.max_preemptions = stats.max_preemptions.max(run.preemptions);
        if let Some(d) = diff {
            stats.differential_mismatches += 1;
            stats.violations += 1;
            let mut v = minimize(target, expected, path, 0);
            v.mismatch = d;
            let len = v.minimized.len() as u64;
            stats.min_repro_len = Some(stats.min_repro_len.map_or(len, |m| m.min(len)));
            violations.push(v);
            continue;
        }
        if mismatch.is_some() {
            stats.violations += 1;
            let v = minimize(target, expected, path, params.shrink_budget);
            let len = v.minimized.len() as u64;
            stats.min_repro_len = Some(stats.min_repro_len.map_or(len, |m| m.min(len)));
            violations.push(v);
            continue;
        }
        clean.push((path.clone(), run.decisions, run.taken, run.arities));
    }
    clean
}

/// Bounded DFS over the schedule tree (see the module docs for the
/// wave/preemption-bound equivalence).
pub fn dfs(target: &ExploreTarget, params: &SearchParams, jobs: usize) -> ExploreOutcome {
    let expected = gil_expected(target);
    let mut stats = TargetStats::new(target);
    let mut violations = Vec::new();
    let mut visited: HashSet<Vec<u8>> = HashSet::new();
    visited.insert(Vec::new());
    let mut wave = vec![SchedPath::empty()];
    while !wave.is_empty() && stats.executions < params.budget {
        let room = (params.budget - stats.executions) as usize;
        if wave.len() > room {
            stats.dropped_by_budget += (wave.len() - room) as u64;
            wave.truncate(room);
        }
        let clean = run_wave(target, &expected, &wave, params, jobs, &mut stats, &mut violations);
        if params.stop_first && !violations.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for (path, decisions, _taken, arities) in &clean {
            // Every child adds exactly one non-zero byte, so a parent
            // already at the preemption bound spawns nothing: the search
            // stops one wave past the bound.
            if path.deviations() >= params.max_preempt as usize {
                continue;
            }
            let upto = (*decisions).min(params.horizon);
            for j in path.len()..upto {
                // Decisions past the submitted prefix read byte 0 (the
                // natural choice); each alternative is one child.
                let arity = arities.get(j).copied().unwrap_or(1);
                for c in 1..arity {
                    let child = path.child(j, c);
                    if visited.insert(child.as_bytes().to_vec()) {
                        next.push(child);
                    }
                }
            }
        }
        wave = next;
    }
    ExploreOutcome { stats, violations }
}

/// Seeded random walks: one deterministic pre-generated wave.
pub fn random_walks(
    target: &ExploreTarget,
    params: &SearchParams,
    walk: &WalkParams,
    jobs: usize,
) -> ExploreOutcome {
    let expected = gil_expected(target);
    let mut stats = TargetStats::new(target);
    let mut violations = Vec::new();
    let mut state = walk.seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut wave: Vec<SchedPath> = Vec::new();
    for _ in 0..walk.walks {
        if wave.len() as u64 >= params.budget {
            stats.dropped_by_budget += walk.walks - wave.len() as u64;
            break;
        }
        let bytes: Vec<u8> = (0..walk.depth)
            .map(|_| {
                let r = rng();
                // Half the bytes stay on the natural schedule; deviations
                // spread over the small choice range.
                if r & 1 == 0 {
                    0
                } else {
                    ((r >> 1) % 4) as u8
                }
            })
            .collect();
        let p = SchedPath::new(bytes).trimmed();
        if p.deviations() <= params.max_preempt as usize && seen.insert(p.as_bytes().to_vec()) {
            wave.push(p);
        }
    }
    run_wave(target, &expected, &wave, params, jobs, &mut stats, &mut violations);
    ExploreOutcome { stats, violations }
}

/// The self-contained repro artifact for one violation.
pub fn repro_json(target: &ExploreTarget, expected: &Expected, v: &ViolationRecord) -> Json {
    Json::obj()
        .field("schema", REPRO_SCHEMA)
        .field("target", v.target_id.as_str())
        .field("mode", v.mode_label.as_str())
        .field("threads", target.threads)
        .field("interrupts", target.interrupts)
        .field("bug_dirty_read", target.bug_dirty_read)
        .field("subscription", target.subscription.label())
        .field("max_cycles", target.max_cycles)
        .field("path_hex", v.minimized.to_hex())
        .field("found_path_hex", v.found.to_hex())
        .field("deviations", v.minimized.deviations())
        .field("shrink_executions", v.shrink_executions)
        .field("trail", v.trail.as_str())
        .field("mismatch", v.mismatch.as_str())
        .field("expected_stdout", expected.stdout.as_str())
        .field("actual_stdout", v.actual_stdout.as_str())
        .field("source", target.source.as_str())
}

/// Assemble the exploration stats document. Deliberately carries **no**
/// `jobs` field: the same search must produce the same bytes at any
/// pool size, and `tests/pool_determinism.rs` compares these documents
/// across `--jobs` values.
pub fn stats_json(search: &str, params: &SearchParams, targets: &[TargetStats]) -> Json {
    let mut rows = Vec::new();
    let mut tot_exec = 0u64;
    let mut tot_paths = 0u64;
    let mut tot_viol = 0u64;
    let mut tot_diff = 0u64;
    let mut max_depth = 0u64;
    let mut max_preempt = 0u64;
    for t in targets {
        tot_exec += t.executions;
        tot_paths += t.distinct_paths;
        tot_viol += t.violations;
        tot_diff += t.differential_mismatches;
        max_depth = max_depth.max(t.max_depth);
        max_preempt = max_preempt.max(t.max_preemptions);
        rows.push(t.to_json());
    }
    Json::obj()
        .field("schema", REPORT_SCHEMA)
        .field("search", search)
        .field("budget", params.budget)
        .field("max_preempt", params.max_preempt)
        .field("horizon", params.horizon)
        .field("stop_first", params.stop_first)
        .field("differential", params.differential)
        .field("targets", Json::Arr(rows))
        .field(
            "totals",
            Json::obj()
                .field("executions", tot_exec)
                .field("distinct_paths", tot_paths)
                .field("violations", tot_viol)
                .field("differential_mismatches", tot_diff)
                .field("max_depth", max_depth)
                .field("max_preemptions", max_preempt),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> SearchParams {
        SearchParams { budget: 40, max_preempt: 2, horizon: 24, ..SearchParams::default() }
    }

    #[test]
    fn dfs_on_a_clean_target_finds_no_violations() {
        let t = target("mini/htm16", mutex_counter_src(2, 3), 2, htm16(), true);
        let out = dfs(&t, &small_params(), 1);
        assert_eq!(out.stats.violations, 0, "{:#?}", out.violations);
        assert!(out.stats.executions > 1, "must explore beyond the natural path");
        assert!(out.stats.max_preemptions > 0, "deviations must be exercised");
    }

    #[test]
    fn dfs_stats_are_pool_size_invariant() {
        let t = target("mini/htmdyn", mutex_counter_src(2, 3), 2, htm_dyn(), true);
        let a = dfs(&t, &small_params(), 1);
        let b = dfs(&t, &small_params(), 4);
        assert_eq!(
            stats_json("dfs", &small_params(), &[a.stats]).to_compact(),
            stats_json("dfs", &small_params(), &[b.stats]).to_compact()
        );
    }

    #[test]
    fn random_walks_on_a_clean_target_find_no_violations() {
        let t = target("mini/gil", mutex_counter_src(2, 3), 2, RuntimeMode::Gil, false);
        let w = WalkParams { walks: 12, depth: 10, seed: 7 };
        let out = random_walks(&t, &small_params(), &w, 2);
        assert_eq!(out.stats.violations, 0);
        assert!(out.stats.executions > 0);
    }

    #[test]
    fn dfs_finds_and_shrinks_the_injected_dirty_read() {
        let t = bug_demo_target(true);
        let mut p = small_params();
        p.budget = 120;
        p.stop_first = true;
        let out = dfs(&t, &p, 2);
        assert!(out.stats.violations > 0, "bounded DFS must find the injected bug");
        let v = &out.violations[0];
        assert!(v.minimized.len() <= 8, "minimized to ≤8 branches, got {}", v.minimized.len());
        // Pinned-replay round trip: the minimized path still violates.
        let expected = gil_expected(&t);
        let (_, mismatch) = check_path(&t, &expected, &v.minimized);
        assert!(mismatch.is_some(), "minimized path must still violate");
        // And with the bug off, the very same path is clean.
        let clean = torn_pair_clean_target(true);
        let clean_expected = gil_expected(&clean);
        let (_, m2) = check_path(&clean, &clean_expected, &v.minimized);
        assert!(m2.is_none(), "bug off, same path: {}", m2.unwrap());
    }
}
